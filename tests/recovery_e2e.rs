//! End-to-end recovery tests (Section 5): checkpointing, coordinated
//! trimming, and a replica recovering from a remote checkpoint plus
//! acceptor retransmissions after the acceptors trimmed their logs.

use atomic_multicast::core::app::Application;
use atomic_multicast::core::config::{ClusterConfig, RingSpec, RingTuning, Roles};
use atomic_multicast::core::replica::{CheckpointPolicy, Replica};
use atomic_multicast::core::types::{ClientId, GroupId, ProcessId, RingId, Time};
use atomic_multicast::sim::actor::Hosted;
use atomic_multicast::sim::cluster::{Cluster, SimConfig};
use atomic_multicast::sim::disk::DiskModel;
use atomic_multicast::sim::net::Topology;
use atomic_multicast::storage::NodeStorage;
use atomic_multicast::store::command::StoreCommand;
use atomic_multicast::store::StoreApp;
use bytes::Bytes;
use mrp_bench::OpenLoopClient;

type StoreReplica = Hosted<Replica<StoreApp>>;

fn build_cluster(ckpt_interval_s: u64, trim_interval_s: u64) -> (Cluster, ClusterConfig) {
    let tuning = RingTuning {
        lambda: 2_000,
        trim_interval_us: trim_interval_s * 1_000_000,
        ..RingTuning::default()
    };
    let mut spec = RingSpec::new(RingId::new(0)).tuning(tuning);
    for i in 0..3 {
        spec = spec.member(ProcessId::new(i), Roles::PROPOSER | Roles::ACCEPTOR);
    }
    for i in 3..6 {
        spec = spec.member(ProcessId::new(i), Roles::LEARNER);
    }
    let mut builder = ClusterConfig::builder()
        .ring(spec)
        .group(GroupId::new(0), RingId::new(0));
    for i in 3..6 {
        builder = builder.subscribe(ProcessId::new(i), GroupId::new(0));
    }
    let config = builder.build().expect("config");

    let mut cluster = Cluster::new(
        SimConfig {
            seed: 77,
            election_timeout_us: 300_000,
            ..SimConfig::default()
        },
        Topology::lan(8),
    );
    cluster.set_protocol(config.clone());
    for i in 0..3 {
        let p = ProcessId::new(i);
        cluster.add_actor(
            p,
            Hosted::new(atomic_multicast::core::node::Node::new(p, config.clone())).boxed(),
        );
        cluster.add_disk(p, DiskModel::ssd());
    }
    let policy = CheckpointPolicy {
        interval_us: ckpt_interval_s * 1_000_000,
        sync: true,
    };
    for i in 3..6 {
        let p = ProcessId::new(i);
        let replica = Replica::new(p, config.clone(), StoreApp::new(0), policy);
        cluster.add_actor(p, Hosted::new(replica).boxed());
        cluster.add_disk(p, DiskModel::ssd());
        let cfg = config.clone();
        cluster.set_factory(
            p,
            Box::new(move |storage: &NodeStorage| {
                Hosted::new(Replica::recovering(
                    p,
                    cfg.clone(),
                    StoreApp::new(0),
                    policy,
                    storage.acceptor_recovery(),
                    storage.checkpoint_cloned(),
                ))
                .boxed()
            }),
        );
    }
    let client_proc = ProcessId::new(900);
    let client_id = ClientId::new(1);
    let mut k = 0u64;
    let client = OpenLoopClient::new(
        client_id,
        ProcessId::new(0),
        GroupId::new(0),
        2_000, // 500 writes/s
        "load",
        move |_req| {
            k += 1;
            StoreCommand::Insert {
                key: Bytes::from(format!("key{:05}", k % 500)),
                value: Bytes::from(vec![0x11u8; 64]),
            }
            .encode()
        },
    );
    cluster.add_actor(client_proc, Box::new(client));
    cluster.register_client(client_id, client_proc);
    (cluster, config)
}

#[test]
fn checkpoints_enable_acceptor_trimming() {
    let (mut cluster, _config) = build_cluster(2, 2);
    cluster.start();
    cluster.run_until(Time::from_secs(10));
    // Replicas checkpointed and the coordinator trimmed acceptor logs.
    let mut checkpoints = 0;
    for i in 3..6 {
        let r = cluster
            .actor_as::<StoreReplica>(ProcessId::new(i))
            .expect("replica");
        checkpoints += r.inner().checkpoints_taken();
    }
    assert!(checkpoints >= 3, "replicas checkpoint periodically");
    assert!(
        cluster.metrics().counter("trim_storage") > 0,
        "acceptors trimmed their logs after quorum checkpoints"
    );
    // The stable storage of an acceptor is bounded: it retains far fewer
    // payload bytes than the total written.
    let storage = cluster.storage(ProcessId::new(0)).expect("storage");
    let total_written: u64 = cluster.metrics().counter("load/ops") * 64;
    assert!(
        (storage.payload_bytes() as u64) < total_written / 2,
        "trim keeps the acceptor log bounded ({} vs {} written)",
        storage.payload_bytes(),
        total_written
    );
}

#[test]
fn replica_recovers_from_remote_checkpoint_after_trim() {
    let (mut cluster, _config) = build_cluster(2, 2);
    cluster.start();
    // Kill replica p4 early; let the system run long enough that the
    // acceptors trim past everything p4 saw; then restart it.
    cluster.schedule_crash(Time::from_secs(3), ProcessId::new(4));
    cluster.schedule_restart(Time::from_secs(12), ProcessId::new(4));
    cluster.run_until(Time::from_secs(18));

    assert!(cluster.is_up(ProcessId::new(4)));
    let mut lens = Vec::new();
    let mut executed = Vec::new();
    for i in 3..6 {
        let r = cluster
            .actor_as::<StoreReplica>(ProcessId::new(i))
            .expect("replica");
        assert!(
            !r.inner().is_recovering(),
            "p{i} finished the recovery protocol"
        );
        lens.push(r.inner().app().len());
        executed.push(r.inner().executed());
    }
    assert_eq!(lens[0], lens[1]);
    assert_eq!(
        lens[1], lens[2],
        "recovered replica converged to its peers' state"
    );
    // The recovered replica did NOT re-execute history covered by the
    // checkpoint it installed (state transfer, not full replay).
    assert!(
        executed[1] < executed[0],
        "recovered replica skipped checkpointed history ({} vs {})",
        executed[1],
        executed[0]
    );
    // And the snapshots are byte-identical.
    let snap3 = cluster
        .actor_as::<StoreReplica>(ProcessId::new(3))
        .unwrap()
        .inner()
        .app()
        .snapshot();
    let snap4 = cluster
        .actor_as::<StoreReplica>(ProcessId::new(4))
        .unwrap()
        .inner()
        .app()
        .snapshot();
    assert_eq!(snap3, snap4);
}
