//! Cross-crate integration tests of the atomic multicast properties
//! (Section 2 of the paper): agreement, validity and acyclic order —
//! including the global acyclicity of multi-group deliveries, checked by
//! building the delivery graph and topologically sorting it.
//!
//! Every test is parameterized over [`EngineKind::ALL`] through the
//! [`AmcastEngine`] abstraction: the same invariants must hold for the
//! Multi-Ring Paxos engine and for the timestamp-based white-box
//! engine, on the identical workload and simulated network. The
//! total-order and exactly-once tests are additionally parameterized
//! over submission batching ([`BatchMode`]): off (today's default),
//! size-bound and window-bound — the ordering invariants must be
//! insensitive to how submissions are packed into engine rounds.

use atomic_multicast::amcast::{
    AmcastEngine, AnyEngine, BatchConfig, EngineKind, HealthReport, RecoveryCounters,
    TelemetrySnapshot,
};
use atomic_multicast::core::config::{ClusterConfig, RingSpec, RingTuning, Roles};
use atomic_multicast::core::types::{ClientId, GroupId, ProcessId, RingId, Time, ValueId};
use atomic_multicast::sim::actor::{Actor, ActorCtx, ActorEvent, Hosted, Outbox};
use atomic_multicast::sim::cluster::{Cluster, SimConfig};
use atomic_multicast::sim::net::Topology;
use bytes::Bytes;
use multiring_paxos::event::Message;
use proptest::prelude::*;
use std::any::Any;
use std::collections::{BTreeMap, BTreeSet, VecDeque};

/// Client that sends `n` requests to `target`, each addressed to the
/// group set `groups` (one element = the classic single-group case).
#[derive(Debug)]
struct Burst {
    target: ProcessId,
    groups: Vec<GroupId>,
    client: ClientId,
    n: u64,
}

impl Actor for Burst {
    fn on_event(&mut self, _now: Time, ev: ActorEvent, out: &mut Outbox, _ctx: &mut ActorCtx<'_>) {
        if ev == ActorEvent::Start {
            for i in 0..self.n {
                out.send(
                    self.target,
                    Message::Request {
                        client: self.client,
                        request: i,
                        groups: self.groups.clone(),
                        payload: Bytes::from(vec![0u8; 16]),
                    },
                );
            }
        }
    }
    fn as_any(&mut self) -> &mut dyn Any {
        self
    }
}

/// Records its node's deliveries (wraps a hosted engine and captures the
/// Delivered ops the harness would otherwise only count), plus every
/// received engine frame that carries or references a value — the
/// observable genuineness tests assert on.
#[derive(Debug)]
struct Recorder {
    node: Hosted<AnyEngine>,
    delivered: Vec<(GroupId, ValueId)>,
    value_frames: u64,
}

impl Recorder {
    fn new(node: AnyEngine) -> Self {
        Self {
            node: Hosted::new(node),
            delivered: Vec::new(),
            value_frames: 0,
        }
    }
}

/// Counts value-bearing engine frames, descending into link-level
/// [`Message::Batch`] packs (the wrapper's frame coalescing must not
/// hide value traffic from the genuineness assertions).
fn count_value_frames(msg: &Message, count: &mut u64) {
    match msg {
        Message::Engine { payload, .. }
            if atomic_multicast::amcast::wbcast::frame_references_value(payload.clone()) =>
        {
            *count += 1;
        }
        Message::Batch(inner) => {
            for m in inner {
                count_value_frames(m, count);
            }
        }
        _ => {}
    }
}

impl Actor for Recorder {
    fn on_event(&mut self, now: Time, ev: ActorEvent, out: &mut Outbox, ctx: &mut ActorCtx<'_>) {
        if let ActorEvent::Message { msg, .. } = &ev {
            count_value_frames(msg, &mut self.value_frames);
        }
        let mut inner_out = Outbox::new();
        self.node.on_event(now, ev, &mut inner_out, ctx);
        for op in inner_out.take() {
            if let mrp_sim::actor::Op::Delivered { group, value, .. } = &op {
                self.delivered.push((*group, value.id));
            }
            out.push(op);
        }
    }
    fn as_any(&mut self) -> &mut dyn Any {
        self
    }
}

/// The submission-batching modes the ordering tests run under. Off is
/// today's default (one engine round per value); the other two enable
/// the wrapper's [`Batcher`](atomic_multicast::amcast::batcher::Batcher)
/// with the flush trigger skewed toward the size budget or the window
/// timer respectively. The ordering/exactly-once invariants must hold
/// identically under all three.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
enum BatchMode {
    /// Batching disabled — must reproduce the unbatched engine exactly.
    Off,
    /// Small value budget, so bursts flush by size; the window only
    /// sweeps the final partial batch (a size-only config would strand
    /// a tail smaller than `max_values` forever).
    SizeBound,
    /// Budgets too large to trip — every flush comes from the window
    /// timer.
    WindowBound,
}

const BATCH_MODES: [BatchMode; 3] = [BatchMode::Off, BatchMode::SizeBound, BatchMode::WindowBound];

impl BatchMode {
    fn config(self) -> Option<BatchConfig> {
        match self {
            BatchMode::Off => None,
            BatchMode::SizeBound => Some(BatchConfig {
                max_values: 4,
                max_bytes: 64 * 1024,
                window_us: 500,
            }),
            BatchMode::WindowBound => Some(BatchConfig {
                max_values: 1 << 20,
                max_bytes: 1 << 30,
                window_us: 300,
            }),
        }
    }
}

/// Builds an engine for `pid` and applies the batch mode. At build time
/// nothing is queued, so reconfiguring flushes nothing.
fn build_engine(
    kind: EngineKind,
    mode: BatchMode,
    pid: ProcessId,
    config: &ClusterConfig,
) -> AnyEngine {
    let mut engine = kind.build(pid, config.clone());
    let flushed = engine.set_batching(Time::ZERO, mode.config());
    assert!(flushed.is_empty(), "no submissions pending at build time");
    engine
}

/// The Figure 2(c) deployment: two rings; learners L1, L2 subscribe to
/// both; L3 subscribes to ring 2 only.
fn fig2c_config() -> ClusterConfig {
    let tuning = RingTuning {
        lambda: 3_000,
        delta_us: 5_000,
        ..RingTuning::default()
    };
    let mut b = ClusterConfig::builder();
    for ring in 0..2u16 {
        let mut spec = RingSpec::new(RingId::new(ring)).tuning(tuning);
        for p in 0..3u32 {
            spec = spec.member(ProcessId::new(p), Roles::ALL);
        }
        b = b.ring(spec).group(GroupId::new(ring), RingId::new(ring));
    }
    b = b
        .subscribe(ProcessId::new(0), GroupId::new(0))
        .subscribe(ProcessId::new(0), GroupId::new(1))
        .subscribe(ProcessId::new(1), GroupId::new(0))
        .subscribe(ProcessId::new(1), GroupId::new(1))
        .subscribe(ProcessId::new(2), GroupId::new(1));
    b.build().expect("fig2c config")
}

fn run_fig2c(
    seed: u64,
    kind: EngineKind,
    mode: BatchMode,
) -> BTreeMap<ProcessId, Vec<(GroupId, ValueId)>> {
    let config = fig2c_config();
    let mut cluster = Cluster::new(
        SimConfig {
            seed,
            ..SimConfig::default()
        },
        Topology::lan(8),
    );
    cluster.set_protocol(config.clone());
    for p in 0..3u32 {
        let pid = ProcessId::new(p);
        cluster.add_actor(
            pid,
            Box::new(Recorder::new(build_engine(kind, mode, pid, &config))),
        );
    }
    for (i, group) in [(0u32, 0u16), (1, 1)] {
        let client_proc = ProcessId::new(100 + i);
        let client_id = ClientId::new(u64::from(i));
        cluster.add_actor(
            client_proc,
            Box::new(Burst {
                target: ProcessId::new(i),
                groups: vec![GroupId::new(group)],
                client: client_id,
                n: 25,
            }),
        );
        cluster.register_client(client_id, client_proc);
    }
    cluster.start();
    cluster.run_until(Time::from_secs(5));
    let mut out = BTreeMap::new();
    for p in 0..3u32 {
        let pid = ProcessId::new(p);
        let r = cluster.actor_as::<Recorder>(pid).expect("recorder");
        out.insert(pid, r.delivered.clone());
    }
    out
}

#[test]
fn agreement_and_validity_per_group() {
    for kind in EngineKind::ALL {
        for mode in BATCH_MODES {
            let delivered = run_fig2c(17, kind, mode);
            // Validity: all 25 multicasts to each group delivered at its
            // subscribers.
            for (p, seq) in &delivered {
                let g0 = seq.iter().filter(|(g, _)| *g == GroupId::new(0)).count();
                let g1 = seq.iter().filter(|(g, _)| *g == GroupId::new(1)).count();
                if *p == ProcessId::new(2) {
                    assert_eq!(g0, 0, "{kind}/{mode:?}: L3 does not subscribe to group 0");
                } else {
                    assert_eq!(g0, 25, "{kind}/{mode:?}: {p} must deliver all of group 0");
                }
                assert_eq!(g1, 25, "{kind}/{mode:?}: {p} must deliver all of group 1");
            }
            // Agreement + same relative order per group at all
            // subscribers.
            let filt = |p: u32, g: u16| -> Vec<ValueId> {
                delivered[&ProcessId::new(p)]
                    .iter()
                    .filter(|(gr, _)| *gr == GroupId::new(g))
                    .map(|(_, id)| *id)
                    .collect()
            };
            assert_eq!(filt(0, 0), filt(1, 0), "{kind}/{mode:?}");
            assert_eq!(filt(0, 1), filt(1, 1), "{kind}/{mode:?}");
            assert_eq!(filt(0, 1), filt(2, 1), "{kind}/{mode:?}");
        }
    }
}

#[test]
fn multigroup_delivery_order_is_acyclic() {
    for kind in EngineKind::ALL {
        for mode in BATCH_MODES {
            let delivered = run_fig2c(23, kind, mode);
            // Build the global precedence graph: m -> m' if some process
            // delivers m before m'. Atomic multicast requires it acyclic.
            let mut edges: BTreeMap<(GroupId, ValueId), BTreeSet<(GroupId, ValueId)>> =
                BTreeMap::new();
            let mut nodes: BTreeSet<(GroupId, ValueId)> = BTreeSet::new();
            for seq in delivered.values() {
                for w in seq.windows(2) {
                    edges.entry(w[0]).or_default().insert(w[1]);
                    nodes.insert(w[0]);
                    nodes.insert(w[1]);
                }
            }
            // Kahn's algorithm: a topological order must consume every node.
            let mut indegree: BTreeMap<(GroupId, ValueId), usize> =
                nodes.iter().map(|&n| (n, 0)).collect();
            for succs in edges.values() {
                for s in succs {
                    *indegree.get_mut(s).expect("known node") += 1;
                }
            }
            let mut queue: VecDeque<(GroupId, ValueId)> = indegree
                .iter()
                .filter(|&(_, &d)| d == 0)
                .map(|(&n, _)| n)
                .collect();
            let mut visited = 0;
            while let Some(n) = queue.pop_front() {
                visited += 1;
                if let Some(succs) = edges.get(&n) {
                    for &s in succs {
                        let d = indegree.get_mut(&s).expect("known node");
                        *d -= 1;
                        if *d == 0 {
                            queue.push_back(s);
                        }
                    }
                }
            }
            assert_eq!(
                visited,
                nodes.len(),
                "{kind}/{mode:?}: delivery precedence graph has a cycle: atomic multicast order \
             violated"
            );
        }
    }
}

#[test]
fn deterministic_merge_interleaving_matches_across_learners() {
    // L1 and L2 subscribe to the same two groups: their *interleaved*
    // sequences (not just per-group projections) must match exactly —
    // for the ring engine via the deterministic merge, for the
    // white-box engine via the global (timestamp, group) order.
    for kind in EngineKind::ALL {
        for mode in BATCH_MODES {
            let delivered = run_fig2c(31, kind, mode);
            assert_eq!(
                delivered[&ProcessId::new(0)],
                delivered[&ProcessId::new(1)],
                "{kind}/{mode:?}: learners with identical subscriptions must deliver identical \
                 sequences"
            );
        }
    }
}

/// Two groups over the same three processes, everyone subscribing to
/// both: the deployment where single- and multi-group messages share
/// every subscriber, so their interleaving is fully observable. Any
/// group covers both, so the ring engine can order multi-group
/// messages here too (through the covering-group path).
fn shared_two_group_config() -> ClusterConfig {
    let tuning = RingTuning {
        lambda: 3_000,
        delta_us: 5_000,
        ..RingTuning::default()
    };
    let mut b = ClusterConfig::builder();
    for ring in 0..2u16 {
        let mut spec = RingSpec::new(RingId::new(ring)).tuning(tuning);
        for p in 0..3u32 {
            spec = spec.member(ProcessId::new((p + u32::from(ring)) % 3), Roles::ALL);
        }
        b = b.ring(spec).group(GroupId::new(ring), RingId::new(ring));
    }
    for p in 0..3u32 {
        for g in 0..2u16 {
            b = b.subscribe(ProcessId::new(p), GroupId::new(g));
        }
    }
    b.build().expect("shared two-group config")
}

/// Runs a two-group, three-process cluster under `kind` and `mode`:
/// `bursts[i]` single-group requests fired at proposer `i` for group
/// `i % 2`, plus `multi` requests addressed to *both* groups. Returns
/// each process's delivery sequence and each process's end-of-run
/// engine telemetry snapshot.
fn run_mixed(
    seed: u64,
    kind: EngineKind,
    mode: BatchMode,
    bursts: &[u8],
    multi: u8,
) -> (BTreeMap<ProcessId, Vec<ValueId>>, Vec<TelemetrySnapshot>) {
    let config = shared_two_group_config();
    let mut cluster = Cluster::new(
        SimConfig {
            seed,
            ..SimConfig::default()
        },
        Topology::lan(8),
    );
    cluster.set_protocol(config.clone());
    for p in 0..3u32 {
        let pid = ProcessId::new(p);
        cluster.add_actor(
            pid,
            Box::new(Recorder::new(build_engine(kind, mode, pid, &config))),
        );
    }
    for (i, &n) in bursts.iter().enumerate() {
        let client_proc = ProcessId::new(100 + i as u32);
        let client_id = ClientId::new(i as u64);
        cluster.add_actor(
            client_proc,
            Box::new(Burst {
                target: ProcessId::new(i as u32 % 3),
                groups: vec![GroupId::new(i as u16 % 2)],
                client: client_id,
                n: u64::from(n),
            }),
        );
        cluster.register_client(client_id, client_proc);
    }
    if multi > 0 {
        let client_proc = ProcessId::new(200);
        let client_id = ClientId::new(99);
        cluster.add_actor(
            client_proc,
            Box::new(Burst {
                target: ProcessId::new(2),
                groups: vec![GroupId::new(0), GroupId::new(1)],
                client: client_id,
                n: u64::from(multi),
            }),
        );
        cluster.register_client(client_id, client_proc);
    }
    cluster.start();
    cluster.run_until(Time::from_secs(2));
    let mut delivered = BTreeMap::new();
    let mut telemetry = Vec::new();
    for p in 0..3u32 {
        let pid = ProcessId::new(p);
        let r = cluster.actor_as::<Recorder>(pid).expect("recorder");
        delivered.insert(pid, r.delivered.iter().map(|(_, id)| *id).collect());
        telemetry.push(r.node.inner().telemetry());
    }
    (delivered, telemetry)
}

/// A multi-group message addressed to both groups interleaves with
/// single-group traffic in one total order: every process delivers the
/// identical sequence, each message exactly once — on both engines
/// (genuinely for wbcast, via the covering group for Multi-Ring Paxos).
#[test]
fn multigroup_and_single_group_share_one_total_order() {
    for kind in EngineKind::ALL {
        for mode in BATCH_MODES {
            let (delivered, _) = run_mixed(41, kind, mode, &[10, 10], 5);
            let reference = &delivered[&ProcessId::new(0)];
            assert_eq!(
                reference.len(),
                25,
                "{kind}/{mode:?}: all messages delivered"
            );
            let unique: BTreeSet<&ValueId> = reference.iter().collect();
            assert_eq!(
                unique.len(),
                reference.len(),
                "{kind}/{mode:?}: multi-group message delivered twice at one process"
            );
            for (p, seq) in &delivered {
                assert_eq!(seq, reference, "{kind}/{mode:?}: {p} diverges");
            }
        }
    }
}

/// The batching telemetry surface: under either batched mode every
/// submission flows through the batcher (`batch.submitted_values`
/// accounts for the whole workload), flushes are recorded with their
/// occupancy distribution, and — for the white-box engine, whose
/// protocol frames ride `Message::Engine` — the wrapper coalesces
/// same-destination frame fan-outs (`wire.frames_coalesced`). With
/// batching off, none of the batch metrics exist: the wrapper is
/// telemetry-invisible.
#[test]
fn batched_submission_records_batch_telemetry() {
    for kind in EngineKind::ALL {
        for mode in [BatchMode::SizeBound, BatchMode::WindowBound] {
            let (_, telemetry) = run_mixed(41, kind, mode, &[10, 10], 5);
            let flushes: u64 = telemetry.iter().map(|s| s.counter("batch.flushes")).sum();
            let submitted: u64 = telemetry
                .iter()
                .map(|s| s.counter("batch.submitted_values"))
                .sum();
            assert!(flushes > 0, "{kind}/{mode:?}: no batch flush recorded");
            assert_eq!(
                submitted, 25,
                "{kind}/{mode:?}: every submission must flow through the batcher"
            );
            assert!(
                flushes < submitted,
                "{kind}/{mode:?}: batching must pack multiple values per flush \
                 ({flushes} flushes for {submitted} values)"
            );
            let occupancy_max = telemetry
                .iter()
                .filter_map(|s| s.histogram("batch.occupancy"))
                .map(atomic_multicast::sim::metrics::Histogram::max)
                .max()
                .unwrap_or_else(|| {
                    panic!("{kind}/{mode:?}: occupancy histogram missing despite flushes")
                });
            match mode {
                BatchMode::SizeBound => assert_eq!(
                    occupancy_max, 4,
                    "{kind}/{mode:?}: size-bound batches flush at max_values"
                ),
                BatchMode::WindowBound => assert!(
                    occupancy_max >= 10,
                    "{kind}/{mode:?}: a window flush takes a whole burst ({occupancy_max})"
                ),
                BatchMode::Off => unreachable!(),
            }
            if kind == EngineKind::Wbcast {
                let coalesced: u64 = telemetry
                    .iter()
                    .map(|s| s.counter("wire.frames_coalesced"))
                    .sum();
                assert!(
                    coalesced > 0,
                    "{kind}/{mode:?}: batched submissions must coalesce engine frames"
                );
            }
        }
        // Off: the batch metrics must not exist at all.
        let (_, telemetry) = run_mixed(41, kind, BatchMode::Off, &[10, 10], 5);
        for snap in &telemetry {
            for key in [
                "batch.flushes",
                "batch.submitted_values",
                "wire.frames_coalesced",
            ] {
                assert!(
                    !snap.counters.contains_key(key),
                    "{kind}: {key} reported with batching off"
                );
            }
            assert!(
                snap.histogram("batch.occupancy").is_none(),
                "{kind}: occupancy histogram reported with batching off"
            );
        }
    }
}

/// Genuineness (wbcast): three disjoint two-process groups; traffic —
/// single- and multi-group — addressed to groups 0 and 1 only. Group
/// 2's processes must receive *no* engine frame carrying or referencing
/// a value (their own group's heartbeats are the only permitted
/// traffic), and deliver nothing.
#[test]
fn wbcast_nonaddressed_groups_see_no_engine_traffic() {
    let tuning = RingTuning {
        lambda: 3_000,
        delta_us: 5_000,
        ..RingTuning::default()
    };
    let mut b = ClusterConfig::builder();
    for ring in 0..3u16 {
        let mut spec = RingSpec::new(RingId::new(ring)).tuning(tuning);
        for p in 0..2u32 {
            spec = spec.member(ProcessId::new(u32::from(ring) * 2 + p), Roles::ALL);
        }
        b = b.ring(spec).group(GroupId::new(ring), RingId::new(ring));
        for p in 0..2u32 {
            b = b.subscribe(ProcessId::new(u32::from(ring) * 2 + p), GroupId::new(ring));
        }
    }
    let config = b.build().expect("disjoint three-group config");
    let mut cluster = Cluster::new(
        SimConfig {
            seed: 7,
            ..SimConfig::default()
        },
        Topology::lan(8),
    );
    cluster.set_protocol(config.clone());
    for p in 0..6u32 {
        let pid = ProcessId::new(p);
        cluster.add_actor(
            pid,
            Box::new(Recorder::new(EngineKind::Wbcast.build(pid, config.clone()))),
        );
    }
    for (i, groups) in [
        vec![GroupId::new(0)],
        vec![GroupId::new(1)],
        vec![GroupId::new(0), GroupId::new(1)],
    ]
    .into_iter()
    .enumerate()
    {
        let client_proc = ProcessId::new(100 + i as u32);
        let client_id = ClientId::new(i as u64);
        // Target a proposer inside the first addressed group.
        let target = ProcessId::new(u32::from(groups[0].value()) * 2);
        cluster.add_actor(
            client_proc,
            Box::new(Burst {
                target,
                groups,
                client: client_id,
                n: 10,
            }),
        );
        cluster.register_client(client_id, client_proc);
    }
    cluster.start();
    cluster.run_until(Time::from_secs(5));
    // The addressed groups' subscribers deliver everything addressed to
    // them: 10 singles + 10 multis each.
    for p in 0..4u32 {
        let r = cluster.actor_as::<Recorder>(ProcessId::new(p)).unwrap();
        assert_eq!(r.delivered.len(), 20, "process {p}");
        let unique: BTreeSet<ValueId> = r.delivered.iter().map(|(_, id)| *id).collect();
        assert_eq!(unique.len(), 20, "process {p}: duplicate delivery");
    }
    // Acyclic cross-group order: the messages delivered on both sides
    // (exactly the multi-group ones) appear in the same relative order
    // at a group-0 subscriber and a group-1 subscriber.
    let seq_of = |cluster: &mut Cluster, p: u32| -> Vec<ValueId> {
        cluster
            .actor_as::<Recorder>(ProcessId::new(p))
            .unwrap()
            .delivered
            .iter()
            .map(|(_, id)| *id)
            .collect()
    };
    let g0_seq = seq_of(&mut cluster, 0);
    let g1_seq = seq_of(&mut cluster, 2);
    let shared: BTreeSet<ValueId> = g0_seq
        .iter()
        .copied()
        .filter(|id| g1_seq.contains(id))
        .collect();
    assert_eq!(shared.len(), 10, "the ten multi-group messages");
    let project = |seq: &[ValueId]| -> Vec<ValueId> {
        seq.iter()
            .copied()
            .filter(|id| shared.contains(id))
            .collect()
    };
    assert_eq!(
        project(&g0_seq),
        project(&g1_seq),
        "multi-group messages must be ordered identically across groups"
    );
    // Genuineness: group 2's processes saw zero value-bearing frames.
    for p in 4..6u32 {
        let r = cluster.actor_as::<Recorder>(ProcessId::new(p)).unwrap();
        assert_eq!(
            r.value_frames, 0,
            "process {p} is outside every addressed γ but received value traffic"
        );
        assert!(r.delivered.is_empty(), "process {p} delivered a value");
    }
}

/// Like [`shared_two_group_config`], tuned for crash tests: faster
/// proposer retransmission so the ring engine recovers in-flight
/// proposals lost with the coordinator within the test horizon.
fn failover_config() -> ClusterConfig {
    let tuning = RingTuning {
        lambda: 3_000,
        delta_us: 5_000,
        proposal_resend_us: 50_000,
        ..RingTuning::default()
    };
    let mut b = ClusterConfig::builder();
    for ring in 0..2u16 {
        let mut spec = RingSpec::new(RingId::new(ring)).tuning(tuning);
        for p in 0..3u32 {
            spec = spec.member(ProcessId::new((p + u32::from(ring)) % 3), Roles::ALL);
        }
        b = b.ring(spec).group(GroupId::new(ring), RingId::new(ring));
    }
    for p in 0..3u32 {
        for g in 0..2u16 {
            b = b.subscribe(ProcessId::new(p), GroupId::new(g));
        }
    }
    b.build().expect("failover config")
}

/// Crashes p0 — the sequencer of group 0 for the white-box engine, the
/// ring-0 Paxos coordinator for the ring engine — at `crash_us`, with
/// single- and multi-group messages still in flight, then submits a
/// post-election wave. Returns the survivors' delivery sequences, their
/// residual engine backlogs, and their telemetry read-outs (snapshot,
/// health report at the end of the run, recovery counters).
#[allow(clippy::type_complexity)]
fn run_failover(
    seed: u64,
    kind: EngineKind,
    mode: BatchMode,
    crash_us: u64,
) -> (
    BTreeMap<ProcessId, Vec<ValueId>>,
    Vec<usize>,
    Vec<(TelemetrySnapshot, HealthReport, RecoveryCounters)>,
) {
    let config = failover_config();
    let mut cluster = Cluster::new(
        SimConfig {
            seed,
            election_timeout_us: 50_000,
            ..SimConfig::default()
        },
        Topology::lan(8),
    );
    cluster.set_protocol(config.clone());
    for p in 0..3u32 {
        let pid = ProcessId::new(p);
        cluster.add_actor(
            pid,
            Box::new(Recorder::new(build_engine(kind, mode, pid, &config))),
        );
    }
    // In-flight at crash time: singles on both groups plus multi-group
    // messages, all initiated at the survivors. Each proposer sticks to
    // one ring (p1: group 0 + multis through the covering group 0; p2:
    // group 1): the ring engine's value ids are per-ring proposer
    // sequences, so a proposer splitting traffic across rings would
    // reuse ids and defeat the exactly-once accounting below.
    for (i, (target, groups, n)) in [
        (1u32, vec![GroupId::new(0)], 6u64),
        (2, vec![GroupId::new(1)], 6),
        (1, vec![GroupId::new(0), GroupId::new(1)], 5),
    ]
    .into_iter()
    .enumerate()
    {
        let client_proc = ProcessId::new(100 + i as u32);
        let client_id = ClientId::new(i as u64);
        cluster.add_actor(
            client_proc,
            Box::new(Burst {
                target: ProcessId::new(target),
                groups,
                client: client_id,
                n,
            }),
        );
        cluster.register_client(client_id, client_proc);
    }
    cluster.schedule_crash(Time::ZERO.plus(crash_us), ProcessId::new(0));
    cluster.start();
    cluster.run_until(Time::from_secs(1));
    // Post-election wave: the new sequencer must order fresh traffic.
    for (i, (target, groups, n)) in [
        (1u32, vec![GroupId::new(0), GroupId::new(1)], 3u64),
        (2, vec![GroupId::new(1)], 3),
    ]
    .into_iter()
    .enumerate()
    {
        let client_proc = ProcessId::new(200 + i as u32);
        let client_id = ClientId::new(10 + i as u64);
        cluster.add_actor(
            client_proc,
            Box::new(Burst {
                target: ProcessId::new(target),
                groups,
                client: client_id,
                n,
            }),
        );
        cluster.register_client(client_id, client_proc);
    }
    cluster.run_until(Time::from_secs(3));
    let mut delivered = BTreeMap::new();
    let mut backlogs = Vec::new();
    let mut telemetry = Vec::new();
    for p in 1..3u32 {
        let pid = ProcessId::new(p);
        let r = cluster.actor_as::<Recorder>(pid).expect("survivor");
        delivered.insert(pid, r.delivered.iter().map(|(_, id)| *id).collect());
        backlogs.push(r.node.inner().backlog());
        let engine = r.node.inner();
        telemetry.push((
            engine.telemetry(),
            engine.health(Time::from_secs(3)),
            engine.recovery_counters(),
        ));
    }
    (delivered, backlogs, telemetry)
}

/// Coordinator-crash-and-resume liveness (the ROADMAP's former top open
/// item): crashing the process that sequences an addressed group while
/// single- and multi-group messages are undecided must not stall the
/// engine. After re-election, every message — submitted before the
/// crash or after the election — is delivered exactly once by both
/// survivors, in one identical total order, with zero residual
/// initiator backlog. Parameterized over every engine and over crash
/// instants that catch the protocol in different phases.
///
/// The engines' own telemetry must agree with the injected fault: each
/// survivor's delivery counter matches the workload, exactly one
/// survivor records a sequencer takeover for the crashed coordinator's
/// group (wbcast), no orphan recovery runs (the multi-group initiators
/// survive here), and every health probe is clean once the run settles.
#[test]
fn sequencer_failover_delivers_every_message_exactly_once() {
    // Batching is safe to enable here because every initiator survives:
    // a value queued in a batcher dies with its process exactly like a
    // request lost on the wire, which only the client (absent in this
    // harness) could retry — so the initiator-crash test below runs
    // unbatched, while this one must hold under every mode.
    for kind in EngineKind::ALL {
        for mode in BATCH_MODES {
            for crash_us in [400u64, 2_000, 12_000] {
                let (delivered, backlogs, telemetry) = run_failover(47, kind, mode, crash_us);
                let total = 6 + 6 + 5 + 3 + 3;
                let reference = &delivered[&ProcessId::new(1)];
                assert_eq!(
                    reference.len(),
                    total,
                    "{kind}/{mode:?}/crash@{crash_us}µs: every message delivered"
                );
                let unique: BTreeSet<&ValueId> = reference.iter().collect();
                assert_eq!(
                    unique.len(),
                    total,
                    "{kind}/{mode:?}/crash@{crash_us}µs: duplicate delivery"
                );
                assert_eq!(
                    reference,
                    &delivered[&ProcessId::new(2)],
                    "{kind}/{mode:?}/crash@{crash_us}µs: survivors diverge"
                );
                for (i, b) in backlogs.iter().enumerate() {
                    assert_eq!(
                        *b, 0,
                        "{kind}/{mode:?}/crash@{crash_us}µs: residual backlog at survivor {i}"
                    );
                }
                // Telemetry agrees with the injected fault and the outcome.
                let delivered_counter = match kind {
                    EngineKind::MultiRing => "delivered",
                    EngineKind::Wbcast => "sub.delivered",
                };
                for (i, (snap, health, _)) in telemetry.iter().enumerate() {
                    assert_eq!(
                        snap.counter(delivered_counter),
                        total as u64,
                        "{kind}/{mode:?}/crash@{crash_us}µs: survivor {i} delivery counter"
                    );
                    assert!(
                    health.is_healthy(),
                    "{kind}/{mode:?}/crash@{crash_us}µs: survivor {i} unhealthy after settle: {:?}",
                    health.issues
                );
                }
                if kind == EngineKind::Wbcast {
                    let takeovers: u64 = telemetry
                        .iter()
                        .map(|(_, _, rc)| rc.sequencer_takeovers)
                        .sum();
                    assert_eq!(
                        takeovers, 1,
                        "{kind}/{mode:?}/crash@{crash_us}µs: exactly one survivor adopts the dead \
                     sequencer's group"
                    );
                    let orphans: u64 = telemetry
                        .iter()
                        .map(|(_, _, rc)| rc.orphan_rounds_started)
                        .sum();
                    assert_eq!(
                    orphans, 0,
                    "{kind}/{mode:?}/crash@{crash_us}µs: no orphan recovery — the initiators survive"
                );
                }
            }
        }
    }
}

/// Crashes p2 — a plain proposer that coordinates nothing, i.e. a pure
/// *initiator* — at `crash_us`, with its multi-group submissions caught
/// mid-round at a phase the instant selects: before any `ProposeAck`
/// reached it, after partial `ProposeAck`s, or after partial `Final`s
/// already left. Survivors keep submitting before and after. Returns
/// the survivors' delivery sequences, their residual engine backlogs,
/// (wbcast) their residual undecided-proposal counts, and their
/// recovery counters and end-of-run health reports.
#[allow(clippy::type_complexity)]
fn run_initiator_crash(
    seed: u64,
    kind: EngineKind,
    crash_us: u64,
) -> (
    BTreeMap<ProcessId, Vec<ValueId>>,
    Vec<usize>,
    Vec<usize>,
    Vec<(RecoveryCounters, HealthReport)>,
) {
    let config = failover_config();
    let mut cluster = Cluster::new(
        SimConfig {
            seed,
            election_timeout_us: 50_000,
            ..SimConfig::default()
        },
        Topology::lan(8),
    );
    cluster.set_protocol(config.clone());
    for p in 0..3u32 {
        let pid = ProcessId::new(p);
        cluster.add_actor(
            pid,
            Box::new(Recorder::new(kind.build(pid, config.clone()))),
        );
    }
    // In flight at crash time: singles on both groups from the
    // survivors (p0 sequences/coordinates group 0, p1 group 1), plus
    // multi-group messages whose *initiator is p2* — the process about
    // to die. p2 coordinates no ring, so its crash triggers no
    // election: the orphaned rounds must be recovered by the addressed
    // groups themselves.
    for (i, (target, groups, n)) in [
        (0u32, vec![GroupId::new(0)], 6u64),
        (1, vec![GroupId::new(1)], 6),
        (2, vec![GroupId::new(0), GroupId::new(1)], 5),
    ]
    .into_iter()
    .enumerate()
    {
        let client_proc = ProcessId::new(100 + i as u32);
        let client_id = ClientId::new(i as u64);
        cluster.add_actor(
            client_proc,
            Box::new(Burst {
                target: ProcessId::new(target),
                groups,
                client: client_id,
                n,
            }),
        );
        cluster.register_client(client_id, client_proc);
    }
    cluster.schedule_crash(Time::ZERO.plus(crash_us), ProcessId::new(2));
    cluster.start();
    cluster.run_until(Time::from_secs(1));
    // Post-crash wave: both streams must still be live — nothing may
    // stay wedged behind an orphaned proposal.
    for (i, (target, groups, n)) in [
        (0u32, vec![GroupId::new(0), GroupId::new(1)], 3u64),
        (1, vec![GroupId::new(1)], 3),
    ]
    .into_iter()
    .enumerate()
    {
        let client_proc = ProcessId::new(200 + i as u32);
        let client_id = ClientId::new(10 + i as u64);
        cluster.add_actor(
            client_proc,
            Box::new(Burst {
                target: ProcessId::new(target),
                groups,
                client: client_id,
                n,
            }),
        );
        cluster.register_client(client_id, client_proc);
    }
    cluster.run_until(Time::from_secs(3));
    let mut delivered = BTreeMap::new();
    let mut backlogs = Vec::new();
    let mut undecided = Vec::new();
    let mut recovery = Vec::new();
    for p in 0..2u32 {
        let pid = ProcessId::new(p);
        let r = cluster.actor_as::<Recorder>(pid).expect("survivor");
        delivered.insert(pid, r.delivered.iter().map(|(_, id)| *id).collect());
        backlogs.push(r.node.inner().backlog());
        undecided.push(
            r.node
                .inner()
                .as_wbcast()
                .map_or(0, atomic_multicast::amcast::WbcastNode::undecided_len),
        );
        let engine = r.node.inner();
        recovery.push((
            engine.recovery_counters(),
            engine.health(Time::from_secs(3)),
        ));
    }
    (delivered, backlogs, undecided, recovery)
}

/// The tentpole acceptance test: crashing the *initiator* of in-flight
/// multi-group rounds must not stall `multicast(γ, m)` — previously the
/// engine's own docs admitted this wedged every addressed group's
/// stream forever. With orphan recovery, every submitted value — the
/// orphaned multi-group rounds included — is delivered exactly once in
/// an identical order at all surviving subscribers, the post-crash wave
/// proves no stream stayed wedged, and no residual backlog or
/// undecided proposal survives. Parameterized over every engine and
/// over crash instants that catch the Skeen rounds in different
/// phases: before any `ProposeAck` returned (≈120 µs: the submissions
/// are at the sequencers, the acks still in flight), amid the
/// `ProposeAck` burst (≈170 µs), amid the `Final` fan-out (≈185 µs),
/// and long after quiescence (2 ms, the trivial instant).
#[test]
fn initiator_crash_mid_round_does_not_stall_delivery() {
    for kind in EngineKind::ALL {
        for crash_us in [120u64, 170, 185, 2_000] {
            let (delivered, backlogs, undecided, recovery) =
                run_initiator_crash(61, kind, crash_us);
            let total = 6 + 6 + 5 + 3 + 3;
            let reference = &delivered[&ProcessId::new(0)];
            assert_eq!(
                reference.len(),
                total,
                "{kind}/crash@{crash_us}µs: every submitted value delivered"
            );
            let unique: BTreeSet<&ValueId> = reference.iter().collect();
            assert_eq!(
                unique.len(),
                total,
                "{kind}/crash@{crash_us}µs: duplicate delivery"
            );
            assert_eq!(
                reference,
                &delivered[&ProcessId::new(1)],
                "{kind}/crash@{crash_us}µs: survivors diverge"
            );
            for (i, b) in backlogs.iter().enumerate() {
                assert_eq!(
                    *b, 0,
                    "{kind}/crash@{crash_us}µs: residual backlog at survivor {i}"
                );
            }
            for (i, u) in undecided.iter().enumerate() {
                assert_eq!(
                    *u, 0,
                    "{kind}/crash@{crash_us}µs: stalled undecided proposal at survivor {i}"
                );
            }
            // Telemetry agrees with the injected fault: every orphan
            // round a survivor started was driven to confirmation, and
            // the survivors end the run healthy. The earliest instant
            // (120 µs: the initiator dies before any ProposeAck returns)
            // is guaranteed to orphan all five multi-group rounds; after
            // quiescence (2 ms) there is nothing to recover. The
            // intermediate instants may resolve either way — the Finals
            // may already have left the initiator — so only the
            // started == completed invariant is asserted there.
            for (i, (rc, health)) in recovery.iter().enumerate() {
                assert_eq!(
                    rc.orphan_rounds_completed, rc.orphan_rounds_started,
                    "{kind}/crash@{crash_us}µs: unfinished orphan recovery at survivor {i}"
                );
                assert!(
                    health.is_healthy(),
                    "{kind}/crash@{crash_us}µs: survivor {i} unhealthy after settle: {:?}",
                    health.issues
                );
            }
            if kind == EngineKind::Wbcast {
                let started: u64 = recovery
                    .iter()
                    .map(|(rc, _)| rc.orphan_rounds_started)
                    .sum();
                if crash_us == 120 {
                    assert!(
                        started > 0,
                        "{kind}/crash@{crash_us}µs: mid-flight initiator crash must \
                         trigger orphan recovery"
                    );
                } else if crash_us == 2_000 {
                    assert_eq!(
                        started, 0,
                        "{kind}/crash@{crash_us}µs: nothing was in flight to orphan"
                    );
                }
            }
        }
    }
}

/// A deterministic application for the recovery test: records every
/// executed command as a `(client, request)` pair — so duplicate
/// executions and gaps are directly visible — and snapshot/restore
/// round-trips the whole state, as the checkpoint protocol requires.
#[derive(Default, Debug)]
struct CmdLog {
    entries: Vec<(u64, u64)>,
}

impl multiring_paxos::app::Application for CmdLog {
    fn execute(
        &mut self,
        delivery: &multiring_paxos::app::Delivery,
    ) -> Vec<multiring_paxos::app::Reply> {
        if let Some((client, request, _)) =
            multiring_paxos::app::decode_command(delivery.value.payload.clone())
        {
            self.entries.push((client.value(), request));
        }
        Vec::new()
    }

    fn snapshot(&self) -> Bytes {
        use bytes::BufMut;
        let mut buf = bytes::BytesMut::with_capacity(self.entries.len() * 16);
        for &(client, request) in &self.entries {
            buf.put_u64_le(client);
            buf.put_u64_le(request);
        }
        buf.freeze()
    }

    fn restore(&mut self, snapshot: &Bytes) {
        use bytes::Buf;
        let mut buf = snapshot.clone();
        self.entries.clear();
        while buf.remaining() >= 16 {
            let client = buf.get_u64_le();
            let request = buf.get_u64_le();
            self.entries.push((client, request));
        }
    }
}

/// The recovery deployment: two proposer/acceptor rings over p0–p2
/// (ring 1 rotated so its coordinator — and wbcast sequencer — is p1),
/// three learner-only replicas p3–p5 subscribing to both groups.
fn recovery_config() -> ClusterConfig {
    let tuning = RingTuning {
        lambda: 3_000,
        delta_us: 5_000,
        proposal_resend_us: 50_000,
        ..RingTuning::default()
    };
    let mut b = ClusterConfig::builder();
    for ring in 0..2u16 {
        let mut spec = RingSpec::new(RingId::new(ring)).tuning(tuning);
        for p in 0..3u32 {
            spec = spec.member(
                ProcessId::new((p + u32::from(ring)) % 3),
                Roles::PROPOSER | Roles::ACCEPTOR,
            );
        }
        for p in 3..6u32 {
            spec = spec.member(ProcessId::new(p), Roles::LEARNER);
        }
        b = b.ring(spec).group(GroupId::new(ring), RingId::new(ring));
    }
    for p in 3..6u32 {
        for g in 0..2u16 {
            b = b.subscribe(ProcessId::new(p), GroupId::new(g));
        }
    }
    b.build().expect("recovery config")
}

/// The tentpole acceptance test: a replica killed mid-run recovers from
/// its latest durable checkpoint and converges to the identical
/// delivery sequence, each command executed exactly once — for every
/// engine. The ring engine recovers through `Replica::recovering`
/// (checkpoint query + acceptor backfill), the white-box engine through
/// `EngineReplica::recovering` (local checkpoint + sequencer stream
/// resync); both are wired through the same
/// `Cluster::add_recoverable_replica_actor` surface. For wbcast the
/// test additionally asserts the dedup state is pruned below the
/// durable watermark — the unbounded-growth fix.
#[test]
fn replica_crash_and_restart_recovers_from_checkpoint() {
    use atomic_multicast::core::replica::{CheckpointPolicy, Replica};
    use mrp_amcast::EngineReplica;

    let g0 = GroupId::new(0);
    let g1 = GroupId::new(1);
    for kind in EngineKind::ALL {
        let config = recovery_config();
        let mut cluster = Cluster::new(
            SimConfig {
                seed: 53,
                election_timeout_us: 50_000,
                ..SimConfig::default()
            },
            Topology::lan(8),
        );
        cluster.set_protocol(config.clone());
        for p in 0..3u32 {
            let pid = ProcessId::new(p);
            cluster.add_actor(pid, Hosted::new(kind.build(pid, config.clone())).boxed());
        }
        let policy = CheckpointPolicy {
            interval_us: 150_000,
            sync: true,
        };
        for p in 3..6u32 {
            cluster.add_recoverable_replica_actor(
                kind,
                ProcessId::new(p),
                config.clone(),
                policy,
                CmdLog::default,
            );
        }
        let mut expected = 0u64;
        let wave = |cluster: &mut Cluster, base: u64, bursts: &[(u32, Vec<GroupId>, u64)]| {
            for (i, (target, groups, n)) in bursts.iter().enumerate() {
                let client_proc = ProcessId::new(100 + base as u32 * 10 + i as u32);
                let client_id = ClientId::new(base * 10 + i as u64);
                cluster.add_actor(
                    client_proc,
                    Box::new(Burst {
                        target: ProcessId::new(*target),
                        groups: groups.clone(),
                        client: client_id,
                        n: *n,
                    }),
                );
                cluster.register_client(client_id, client_proc);
            }
        };
        // Wave 1: singles on both groups plus multi-group messages, all
        // delivered and checkpointed before the crash.
        wave(
            &mut cluster,
            0,
            &[(0, vec![g0], 10), (1, vec![g1], 10), (0, vec![g0, g1], 5)],
        );
        expected += 25;
        cluster.start();
        cluster.run_until(Time::from_millis(700));
        // A durable checkpoint exists on the victim's stable storage
        // before the crash: recovery below starts from it, not from
        // scratch.
        let ckpt_watermark = cluster
            .storage(ProcessId::new(4))
            .and_then(|s| s.checkpoint())
            .map_or_else(
                || panic!("{kind}: no durable checkpoint before the crash"),
                |(id, _)| id.clone(),
            );
        assert!(
            ckpt_watermark.total_instances() > 0,
            "{kind}: checkpoint covers deliveries"
        );
        cluster.schedule_crash(Time::from_millis(750), ProcessId::new(4));
        cluster.run_until(Time::from_millis(800));
        // Wave 2 while the replica is down: it must recover these from
        // the checkpointed peers' streams, not have seen them live.
        wave(&mut cluster, 1, &[(0, vec![g0], 8), (1, vec![g1], 8)]);
        expected += 16;
        cluster.run_until(Time::from_millis(1_500));
        cluster.schedule_restart(Time::from_millis(1_550), ProcessId::new(4));
        cluster.run_until(Time::from_millis(1_700));
        assert!(
            cluster.is_up(ProcessId::new(4)),
            "{kind}: replica restarted"
        );
        // Wave 3 after the restart: new traffic reaches everyone.
        wave(
            &mut cluster,
            2,
            &[(0, vec![g0], 6), (1, vec![g1], 6), (1, vec![g0, g1], 3)],
        );
        expected += 15;
        cluster.run_until(Time::from_secs(4));

        let log_of = |cluster: &mut Cluster, p: u32| -> Vec<(u64, u64)> {
            let pid = ProcessId::new(p);
            match kind {
                EngineKind::MultiRing => cluster
                    .actor_as::<Hosted<Replica<CmdLog>>>(pid)
                    .map(|r| r.inner().app().entries.clone()),
                EngineKind::Wbcast => cluster
                    .actor_as::<Hosted<EngineReplica<CmdLog>>>(pid)
                    .map(|r| r.inner().app().entries.clone()),
            }
            .expect("replica actor")
        };
        let reference = log_of(&mut cluster, 3);
        assert_eq!(
            reference.len() as u64,
            expected,
            "{kind}: every command executed at the survivor"
        );
        let unique: BTreeSet<&(u64, u64)> = reference.iter().collect();
        assert_eq!(
            unique.len(),
            reference.len(),
            "{kind}: a command executed twice at the survivor"
        );
        assert_eq!(
            log_of(&mut cluster, 5),
            reference,
            "{kind}: survivors diverge"
        );
        // The acceptance bar: the crashed-and-restarted replica holds
        // the identical execution history, exactly once per command —
        // the pre-checkpoint prefix from the restored snapshot, the
        // post-checkpoint window from backfill/resync, the rest live.
        assert_eq!(
            log_of(&mut cluster, 4),
            reference,
            "{kind}: restarted replica diverges from the survivors"
        );
        if kind == EngineKind::Wbcast {
            let r = cluster
                .actor_as::<Hosted<EngineReplica<CmdLog>>>(ProcessId::new(4))
                .expect("wbcast replica");
            let watermark = r
                .inner()
                .stable_watermark()
                .expect("checkpoints resumed after restart")
                .clone();
            let min_mark = watermark
                .marks
                .iter()
                .map(|&(_, i)| i.value())
                .min()
                .expect("two subscribed groups");
            assert!(min_mark > 0, "watermark advanced past genesis");
            let engine = r.inner().engine().as_wbcast().expect("wbcast engine");
            assert_eq!(
                engine.dedup_retained_at_or_below(min_mark),
                0,
                "dedup state pruned below the durable watermark"
            );
            assert!(
                engine.dedup_len() < expected as usize,
                "dedup entries bounded by the checkpoint window, not history: {}",
                engine.dedup_len()
            );
        }
    }
}

proptest! {
    /// Cross-engine property: for random mixes of single-group bursts
    /// and multi-group messages under random schedules, delivery is a
    /// *legal total order* on every engine — all processes deliver the
    /// same sequence, with no duplicates, and exactly the multicast
    /// values in it.
    #[test]
    fn mixed_group_delivery_is_a_legal_total_order(
        seed in 1u64..1_000_000,
        bursts in proptest::collection::vec(1u8..8, 2..4),
        multi in 0u8..5,
    ) {
        // One batched mode per case keeps the proptest budget flat; the
        // mode is drawn from the seed so the corpus covers all three.
        let mode = BATCH_MODES[(seed % 3) as usize];
        for kind in EngineKind::ALL {
            let (delivered, _) = run_mixed(seed, kind, mode, &bursts, multi);
            let total: u64 =
                bursts.iter().map(|&n| u64::from(n)).sum::<u64>() + u64::from(multi);
            let reference = &delivered[&ProcessId::new(0)];
            // Totality: every multicast value is delivered exactly once.
            prop_assert_eq!(reference.len() as u64, total, "{}/{:?}: wrong count", kind, mode);
            let unique: BTreeSet<&ValueId> = reference.iter().collect();
            prop_assert_eq!(
                unique.len(),
                reference.len(),
                "{}/{:?}: duplicate delivery",
                kind,
                mode
            );
            // Total order: identical sequences at every subscriber.
            for (p, seq) in &delivered {
                prop_assert_eq!(seq, reference, "{}/{:?}: {} diverges", kind, mode, p);
            }
        }
    }
}
