//! Cross-crate integration tests of the atomic multicast properties
//! (Section 2 of the paper): agreement, validity and acyclic order —
//! including the global acyclicity of multi-group deliveries, checked by
//! building the delivery graph and topologically sorting it.
//!
//! Every test is parameterized over [`EngineKind::ALL`] through the
//! [`AmcastEngine`] abstraction: the same invariants must hold for the
//! Multi-Ring Paxos engine and for the timestamp-based white-box
//! engine, on the identical workload and simulated network.

use atomic_multicast::amcast::{AnyEngine, EngineKind};
use atomic_multicast::core::config::{ClusterConfig, RingSpec, RingTuning, Roles};
use atomic_multicast::core::types::{ClientId, GroupId, ProcessId, RingId, Time, ValueId};
use atomic_multicast::sim::actor::{Actor, ActorCtx, ActorEvent, Hosted, Outbox};
use atomic_multicast::sim::cluster::{Cluster, SimConfig};
use atomic_multicast::sim::net::Topology;
use bytes::Bytes;
use multiring_paxos::event::Message;
use proptest::prelude::*;
use std::any::Any;
use std::collections::{BTreeMap, BTreeSet, VecDeque};

/// Client that sends `n` requests to `target` for `group`.
#[derive(Debug)]
struct Burst {
    target: ProcessId,
    group: GroupId,
    client: ClientId,
    n: u64,
}

impl Actor for Burst {
    fn on_event(&mut self, _now: Time, ev: ActorEvent, out: &mut Outbox, _ctx: &mut ActorCtx<'_>) {
        if ev == ActorEvent::Start {
            for i in 0..self.n {
                out.send(
                    self.target,
                    Message::Request {
                        client: self.client,
                        request: i,
                        group: self.group,
                        payload: Bytes::from(vec![0u8; 16]),
                    },
                );
            }
        }
    }
    fn as_any(&mut self) -> &mut dyn Any {
        self
    }
}

/// Records its node's deliveries (wraps a hosted engine and captures the
/// Delivered ops the harness would otherwise only count).
#[derive(Debug)]
struct Recorder {
    node: Hosted<AnyEngine>,
    delivered: Vec<(GroupId, ValueId)>,
}

impl Actor for Recorder {
    fn on_event(&mut self, now: Time, ev: ActorEvent, out: &mut Outbox, ctx: &mut ActorCtx<'_>) {
        let mut inner_out = Outbox::new();
        self.node.on_event(now, ev, &mut inner_out, ctx);
        for op in inner_out.take() {
            if let mrp_sim::actor::Op::Delivered { group, value, .. } = &op {
                self.delivered.push((*group, value.id));
            }
            out.push(op);
        }
    }
    fn as_any(&mut self) -> &mut dyn Any {
        self
    }
}

/// The Figure 2(c) deployment: two rings; learners L1, L2 subscribe to
/// both; L3 subscribes to ring 2 only.
fn fig2c_config() -> ClusterConfig {
    let tuning = RingTuning {
        lambda: 3_000,
        delta_us: 5_000,
        ..RingTuning::default()
    };
    let mut b = ClusterConfig::builder();
    for ring in 0..2u16 {
        let mut spec = RingSpec::new(RingId::new(ring)).tuning(tuning);
        for p in 0..3u32 {
            spec = spec.member(ProcessId::new(p), Roles::ALL);
        }
        b = b.ring(spec).group(GroupId::new(ring), RingId::new(ring));
    }
    b = b
        .subscribe(ProcessId::new(0), GroupId::new(0))
        .subscribe(ProcessId::new(0), GroupId::new(1))
        .subscribe(ProcessId::new(1), GroupId::new(0))
        .subscribe(ProcessId::new(1), GroupId::new(1))
        .subscribe(ProcessId::new(2), GroupId::new(1));
    b.build().expect("fig2c config")
}

fn run_fig2c(seed: u64, kind: EngineKind) -> BTreeMap<ProcessId, Vec<(GroupId, ValueId)>> {
    let config = fig2c_config();
    let mut cluster = Cluster::new(
        SimConfig {
            seed,
            ..SimConfig::default()
        },
        Topology::lan(8),
    );
    cluster.set_protocol(config.clone());
    for p in 0..3u32 {
        let pid = ProcessId::new(p);
        cluster.add_actor(
            pid,
            Box::new(Recorder {
                node: Hosted::new(kind.build(pid, config.clone())),
                delivered: Vec::new(),
            }),
        );
    }
    for (i, group) in [(0u32, 0u16), (1, 1)] {
        let client_proc = ProcessId::new(100 + i);
        let client_id = ClientId::new(u64::from(i));
        cluster.add_actor(
            client_proc,
            Box::new(Burst {
                target: ProcessId::new(i),
                group: GroupId::new(group),
                client: client_id,
                n: 25,
            }),
        );
        cluster.register_client(client_id, client_proc);
    }
    cluster.start();
    cluster.run_until(Time::from_secs(5));
    let mut out = BTreeMap::new();
    for p in 0..3u32 {
        let pid = ProcessId::new(p);
        let r = cluster.actor_as::<Recorder>(pid).expect("recorder");
        out.insert(pid, r.delivered.clone());
    }
    out
}

#[test]
fn agreement_and_validity_per_group() {
    for kind in EngineKind::ALL {
        let delivered = run_fig2c(17, kind);
        // Validity: all 25 multicasts to each group delivered at its
        // subscribers.
        for (p, seq) in &delivered {
            let g0 = seq.iter().filter(|(g, _)| *g == GroupId::new(0)).count();
            let g1 = seq.iter().filter(|(g, _)| *g == GroupId::new(1)).count();
            if *p == ProcessId::new(2) {
                assert_eq!(g0, 0, "{kind}: L3 does not subscribe to group 0");
            } else {
                assert_eq!(g0, 25, "{kind}: {p} must deliver all of group 0");
            }
            assert_eq!(g1, 25, "{kind}: {p} must deliver all of group 1");
        }
        // Agreement + same relative order per group at all subscribers.
        let filt = |p: u32, g: u16| -> Vec<ValueId> {
            delivered[&ProcessId::new(p)]
                .iter()
                .filter(|(gr, _)| *gr == GroupId::new(g))
                .map(|(_, id)| *id)
                .collect()
        };
        assert_eq!(filt(0, 0), filt(1, 0), "{kind}");
        assert_eq!(filt(0, 1), filt(1, 1), "{kind}");
        assert_eq!(filt(0, 1), filt(2, 1), "{kind}");
    }
}

#[test]
fn multigroup_delivery_order_is_acyclic() {
    for kind in EngineKind::ALL {
        let delivered = run_fig2c(23, kind);
        // Build the global precedence graph: m -> m' if some process
        // delivers m before m'. Atomic multicast requires it acyclic.
        let mut edges: BTreeMap<(GroupId, ValueId), BTreeSet<(GroupId, ValueId)>> = BTreeMap::new();
        let mut nodes: BTreeSet<(GroupId, ValueId)> = BTreeSet::new();
        for seq in delivered.values() {
            for w in seq.windows(2) {
                edges.entry(w[0]).or_default().insert(w[1]);
                nodes.insert(w[0]);
                nodes.insert(w[1]);
            }
        }
        // Kahn's algorithm: a topological order must consume every node.
        let mut indegree: BTreeMap<(GroupId, ValueId), usize> =
            nodes.iter().map(|&n| (n, 0)).collect();
        for succs in edges.values() {
            for s in succs {
                *indegree.get_mut(s).expect("known node") += 1;
            }
        }
        let mut queue: VecDeque<(GroupId, ValueId)> = indegree
            .iter()
            .filter(|&(_, &d)| d == 0)
            .map(|(&n, _)| n)
            .collect();
        let mut visited = 0;
        while let Some(n) = queue.pop_front() {
            visited += 1;
            if let Some(succs) = edges.get(&n) {
                for &s in succs {
                    let d = indegree.get_mut(&s).expect("known node");
                    *d -= 1;
                    if *d == 0 {
                        queue.push_back(s);
                    }
                }
            }
        }
        assert_eq!(
            visited,
            nodes.len(),
            "{kind}: delivery precedence graph has a cycle: atomic multicast order violated"
        );
    }
}

#[test]
fn deterministic_merge_interleaving_matches_across_learners() {
    // L1 and L2 subscribe to the same two groups: their *interleaved*
    // sequences (not just per-group projections) must match exactly —
    // for the ring engine via the deterministic merge, for the
    // white-box engine via the global (timestamp, group) order.
    for kind in EngineKind::ALL {
        let delivered = run_fig2c(31, kind);
        assert_eq!(
            delivered[&ProcessId::new(0)],
            delivered[&ProcessId::new(1)],
            "{kind}: learners with identical subscriptions must deliver identical sequences"
        );
    }
}

/// Runs a single-group, three-process cluster under `kind` with
/// `bursts[i]` requests fired at proposer `i`, returning each process's
/// delivery sequence.
fn run_single_group(
    seed: u64,
    kind: EngineKind,
    bursts: &[u8],
) -> BTreeMap<ProcessId, Vec<ValueId>> {
    let config = atomic_multicast::core::config::single_ring(
        3,
        RingTuning {
            lambda: 3_000,
            delta_us: 5_000,
            ..RingTuning::default()
        },
    );
    let mut cluster = Cluster::new(
        SimConfig {
            seed,
            ..SimConfig::default()
        },
        Topology::lan(8),
    );
    cluster.set_protocol(config.clone());
    for p in 0..3u32 {
        let pid = ProcessId::new(p);
        cluster.add_actor(
            pid,
            Box::new(Recorder {
                node: Hosted::new(kind.build(pid, config.clone())),
                delivered: Vec::new(),
            }),
        );
    }
    for (i, &n) in bursts.iter().enumerate() {
        let client_proc = ProcessId::new(100 + i as u32);
        let client_id = ClientId::new(i as u64);
        cluster.add_actor(
            client_proc,
            Box::new(Burst {
                target: ProcessId::new(i as u32 % 3),
                group: GroupId::new(0),
                client: client_id,
                n: u64::from(n),
            }),
        );
        cluster.register_client(client_id, client_proc);
    }
    cluster.start();
    cluster.run_until(Time::from_secs(2));
    (0..3u32)
        .map(|p| {
            let pid = ProcessId::new(p);
            let r = cluster.actor_as::<Recorder>(pid).expect("recorder");
            (pid, r.delivered.iter().map(|(_, id)| *id).collect())
        })
        .collect()
}

proptest! {
    /// Cross-engine property: for random burst mixes and schedules,
    /// single-group delivery is a *legal total order* on every engine —
    /// all processes deliver the same sequence, with no duplicates, and
    /// exactly the multicast values in it.
    #[test]
    fn single_group_delivery_is_a_legal_total_order(
        seed in 1u64..1_000_000,
        bursts in proptest::collection::vec(1u8..8, 2..4),
    ) {
        for kind in EngineKind::ALL {
            let delivered = run_single_group(seed, kind, &bursts);
            let total: u64 = bursts.iter().map(|&n| u64::from(n)).sum();
            let reference = &delivered[&ProcessId::new(0)];
            // Totality: every multicast value is delivered exactly once.
            prop_assert_eq!(reference.len() as u64, total, "{}: wrong count", kind);
            let unique: BTreeSet<&ValueId> = reference.iter().collect();
            prop_assert_eq!(unique.len(), reference.len(), "{}: duplicate delivery", kind);
            // Total order: identical sequences at every subscriber.
            for (p, seq) in &delivered {
                prop_assert_eq!(seq, reference, "{}: {} diverges", kind, p);
            }
        }
    }
}
