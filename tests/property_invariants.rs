//! Property-based tests of the protocol's core invariants, driven by
//! proptest over randomized inputs and schedules.

use bytes::Bytes;
use multiring_paxos::multiring::Merger;
use multiring_paxos::recovery::CheckpointId;
use multiring_paxos::types::{ConsensusValue, GroupId, InstanceId, ProcessId, Value, ValueId};
use proptest::prelude::*;

fn value(group: u16, proposer: u32, seq: u64) -> ConsensusValue {
    ConsensusValue::Values(vec![Value::new(
        ValueId::new(ProcessId::new(proposer), seq),
        GroupId::new(group),
        Bytes::from(vec![0u8; 8]),
    )])
}

/// Builds per-group decision streams: group g gets `lens[g]` instances,
/// a pseudo-random subset of which are skips.
fn streams(lens: &[u8], skip_mask: u64) -> Vec<Vec<(InstanceId, ConsensusValue)>> {
    lens.iter()
        .enumerate()
        .map(|(g, &len)| {
            (1..=u64::from(len))
                .map(|i| {
                    let cv = if (skip_mask >> ((i + g as u64) % 64)) & 1 == 1 {
                        ConsensusValue::Skip
                    } else {
                        value(g as u16, g as u32 + 1, i)
                    };
                    (InstanceId::new(i), cv)
                })
                .collect()
        })
        .collect()
}

proptest! {
    /// Determinism: for any pair of arrival interleavings of the same
    /// per-ring streams, two mergers deliver identical sequences.
    #[test]
    fn merge_is_deterministic_under_interleaving(
        lens in proptest::collection::vec(1u8..40, 2..4),
        skip_mask in any::<u64>(),
        order_seed in any::<u64>(),
        m in 1u32..4,
    ) {
        let groups: Vec<GroupId> = (0..lens.len() as u16).map(GroupId::new).collect();
        let streams = streams(&lens, skip_mask);

        // Merger A: strictly group by group.
        let mut a = Merger::new(groups.clone(), m);
        let mut out_a = Vec::new();
        for (g, s) in streams.iter().enumerate() {
            for (i, cv) in s {
                a.push(GroupId::new(g as u16), *i, 1, cv.clone());
                out_a.extend(a.poll());
            }
        }

        // Merger B: pseudo-random round-robin interleaving.
        let mut b = Merger::new(groups, m);
        let mut out_b = Vec::new();
        let mut cursors = vec![0usize; streams.len()];
        let mut state = order_seed | 1;
        while cursors.iter().zip(&streams).any(|(&c, s)| c < s.len()) {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let pick = (state >> 33) as usize % streams.len();
            if cursors[pick] < streams[pick].len() {
                let (i, cv) = &streams[pick][cursors[pick]];
                b.push(GroupId::new(pick as u16), *i, 1, cv.clone());
                cursors[pick] += 1;
                out_b.extend(b.poll());
            }
        }

        let key = |d: &multiring_paxos::multiring::MergeDelivery| (d.group, d.instance, d.value.id);
        prop_assert_eq!(
            out_a.iter().map(key).collect::<Vec<_>>(),
            out_b.iter().map(key).collect::<Vec<_>>()
        );
    }

    /// The merge cursor always satisfies Predicate 1 of the paper
    /// (checkpoint tuples are cursor-consistent at every point).
    #[test]
    fn merge_watermarks_always_satisfy_predicate1(
        lens in proptest::collection::vec(1u8..30, 2..4),
        skip_mask in any::<u64>(),
        m in 1u32..4,
    ) {
        let groups: Vec<GroupId> = (0..lens.len() as u16).map(GroupId::new).collect();
        let streams = streams(&lens, skip_mask);
        let mut merger = Merger::new(groups, m);
        for (g, s) in streams.iter().enumerate() {
            for (i, cv) in s {
                merger.push(GroupId::new(g as u16), *i, 1, cv.clone());
                merger.poll();
                let w = merger.watermarks();
                prop_assert!(
                    w.cursor_consistent(m),
                    "inconsistent watermark {w} with M={m}"
                );
            }
        }
    }

    /// Install/watermark round trip: reconstructing a merger from any
    /// intermediate checkpoint resumes at exactly the same position.
    #[test]
    fn merge_install_resumes_identically(
        lens in proptest::collection::vec(5u8..30, 2..3),
        skip_mask in any::<u64>(),
        cut in 1u8..5,
    ) {
        let groups: Vec<GroupId> = (0..lens.len() as u16).map(GroupId::new).collect();
        let streams = streams(&lens, skip_mask);
        // Feed only a prefix, checkpoint, then feed the rest to both the
        // original and a freshly installed merger.
        let mut original = Merger::new(groups.clone(), 1);
        for (g, s) in streams.iter().enumerate() {
            for (i, cv) in s.iter().take(usize::from(cut)) {
                original.push(GroupId::new(g as u16), *i, 1, cv.clone());
            }
        }
        original.poll();
        let ckpt = original.watermarks();
        let mut restored = Merger::new(groups, 1);
        restored.install(&ckpt);
        prop_assert_eq!(restored.watermarks(), ckpt.clone());

        let mut out_orig = Vec::new();
        let mut out_rest = Vec::new();
        for (g, s) in streams.iter().enumerate() {
            for (i, cv) in s {
                // Feed everything after each merger's own watermark.
                if i.value() > ckpt.mark_of(GroupId::new(g as u16)).value() {
                    original.push(GroupId::new(g as u16), *i, 1, cv.clone());
                    restored.push(GroupId::new(g as u16), *i, 1, cv.clone());
                }
            }
        }
        out_orig.extend(original.poll());
        out_rest.extend(restored.poll());
        let key = |d: &multiring_paxos::multiring::MergeDelivery| (d.group, d.instance, d.value.id);
        prop_assert_eq!(
            out_orig.iter().map(key).collect::<Vec<_>>(),
            out_rest.iter().map(key).collect::<Vec<_>>()
        );
    }

    /// Checkpoint total order (Predicate 1 consequence): any two valid
    /// cursor-consistent checkpoints over the same groups are comparable.
    #[test]
    fn valid_checkpoints_are_totally_ordered(
        lens in proptest::collection::vec(10u8..40, 2..3),
        skip_mask in any::<u64>(),
        cut_a in 1u8..9,
        cut_b in 1u8..9,
    ) {
        let groups: Vec<GroupId> = (0..lens.len() as u16).map(GroupId::new).collect();
        let streams = streams(&lens, skip_mask);
        let snapshot_at = |cut: u8| -> CheckpointId {
            let mut m = Merger::new(groups.clone(), 1);
            for (g, s) in streams.iter().enumerate() {
                for (i, cv) in s.iter().take(usize::from(cut)) {
                    m.push(GroupId::new(g as u16), *i, 1, cv.clone());
                }
            }
            m.poll();
            m.watermarks()
        };
        let a = snapshot_at(cut_a);
        let b = snapshot_at(cut_b);
        prop_assert!(
            a.dominates(&b) || b.dominates(&a),
            "checkpoints {a} and {b} are incomparable"
        );
    }
}
