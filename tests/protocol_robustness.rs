//! Robustness tests: the protocol under message loss, with link-level
//! batching enabled, with synchronous storage gating votes, across
//! coordinator failovers (no duplicate or lost deliveries), and for the
//! wbcast orphan-recovery exchange under duplicated/reordered frames
//! and revived-initiator retries.

use atomic_multicast::amcast::wbcast::{frame_kind, WbcastNode};
use atomic_multicast::amcast::AmcastEngine;
use atomic_multicast::core::config::{
    single_ring, ClusterConfig, LinkBatching, RingSpec, RingTuning, Roles, StorageMode,
};
use atomic_multicast::core::node::Node;
use atomic_multicast::core::types::{ClientId, GroupId, ProcessId, RingId, Time, ValueId};
use atomic_multicast::sim::actor::{Actor, ActorCtx, ActorEvent, Hosted, Op, Outbox};
use atomic_multicast::sim::cluster::{Cluster, SimConfig};
use atomic_multicast::sim::disk::DiskModel;
use atomic_multicast::sim::net::Topology;
use bytes::Bytes;
use multiring_paxos::event::{Action, Event, Message, StateMachine, TimerKind};
use std::any::Any;
use std::collections::{BTreeMap, VecDeque};

/// Client that spreads `n` requests over time (one per `gap_us`).
#[derive(Debug)]
struct Trickle {
    target: ProcessId,
    client: ClientId,
    n: u64,
    sent: u64,
    gap_us: u64,
}

impl Actor for Trickle {
    fn on_event(&mut self, _now: Time, ev: ActorEvent, out: &mut Outbox, _ctx: &mut ActorCtx<'_>) {
        match ev {
            ActorEvent::Start | ActorEvent::Wakeup(0) if self.sent < self.n => {
                out.send(
                    self.target,
                    Message::Request {
                        client: self.client,
                        request: self.sent,
                        groups: vec![GroupId::new(0)],
                        payload: Bytes::from(vec![0u8; 32]),
                    },
                );
                self.sent += 1;
                out.wakeup(self.gap_us, 0);
            }
            _ => {}
        }
    }
    fn as_any(&mut self) -> &mut dyn Any {
        self
    }
}

/// Wraps a node and records delivered value ids.
#[derive(Debug)]
struct Recorder {
    node: Hosted<Node>,
    delivered: Vec<ValueId>,
}

impl Actor for Recorder {
    fn on_event(&mut self, now: Time, ev: ActorEvent, out: &mut Outbox, ctx: &mut ActorCtx<'_>) {
        let mut inner = Outbox::new();
        self.node.on_event(now, ev, &mut inner, ctx);
        for op in inner.take() {
            if let Op::Delivered { value, .. } = &op {
                self.delivered.push(value.id);
            }
            out.push(op);
        }
    }
    fn as_any(&mut self) -> &mut dyn Any {
        self
    }
}

fn build(tuning: RingTuning, topology: Topology, seed: u64, disks: bool) -> Cluster {
    let config = single_ring(3, tuning);
    let mut cluster = Cluster::new(
        SimConfig {
            seed,
            election_timeout_us: 200_000,
            ..SimConfig::default()
        },
        topology,
    );
    cluster.set_protocol(config.clone());
    for i in 0..3 {
        let p = ProcessId::new(i);
        cluster.add_actor(
            p,
            Box::new(Recorder {
                node: Hosted::new(Node::new(p, config.clone())),
                delivered: Vec::new(),
            }),
        );
        if disks {
            cluster.add_disk(p, DiskModel::ssd());
        }
    }
    cluster
}

fn delivered(cluster: &mut Cluster, p: u32) -> Vec<ValueId> {
    cluster
        .actor_as::<Recorder>(ProcessId::new(p))
        .expect("recorder")
        .delivered
        .clone()
}

#[test]
fn survives_heavy_message_loss() {
    // 20% of messages dropped: proposer resend, coordinator re-proposal
    // and learner gap repair must still deliver everything exactly once.
    let tuning = RingTuning {
        lambda: 0,
        gap_timeout_us: 50_000,
        proposal_resend_us: 100_000,
        repropose_us: 150_000,
        ..RingTuning::default()
    };
    let mut topology = Topology::lan(8);
    topology.loss = 0.2;
    let mut cluster = build(tuning, topology, 41, false);
    let client_proc = ProcessId::new(100);
    cluster.add_actor(
        client_proc,
        Box::new(Trickle {
            target: ProcessId::new(1),
            client: ClientId::new(1),
            n: 40,
            sent: 0,
            gap_us: 10_000,
        }),
    );
    cluster.register_client(ClientId::new(1), client_proc);
    cluster.start();
    cluster.run_until(Time::from_secs(30));

    for p in 0..3 {
        let seq = delivered(&mut cluster, p);
        assert_eq!(
            seq.len(),
            40,
            "learner {p} delivered everything exactly once"
        );
        let mut dedup = seq.clone();
        dedup.sort();
        dedup.dedup();
        assert_eq!(dedup.len(), 40, "no duplicates at learner {p}");
    }
    let a = delivered(&mut cluster, 0);
    assert_eq!(a, delivered(&mut cluster, 1));
    assert_eq!(a, delivered(&mut cluster, 2));
}

#[test]
fn link_batching_preserves_order_and_cuts_messages() {
    let run = |batching: Option<LinkBatching>| -> (Vec<ValueId>, u64) {
        let tuning = RingTuning {
            lambda: 0,
            link_batching: batching,
            ..RingTuning::default()
        };
        let mut cluster = build(tuning, Topology::lan(8), 42, false);
        let client_proc = ProcessId::new(100);
        cluster.add_actor(
            client_proc,
            Box::new(Trickle {
                target: ProcessId::new(0),
                client: ClientId::new(1),
                n: 200,
                sent: 0,
                gap_us: 200,
            }),
        );
        cluster.register_client(ClientId::new(1), client_proc);
        cluster.start();
        cluster.run_until(Time::from_secs(5));
        let seq = delivered(&mut cluster, 2);
        (seq, cluster.network_bytes())
    };
    let (plain, _) = run(None);
    let (batched, _) = run(Some(LinkBatching {
        max_bytes: 4 * 1024,
        max_delay_us: 2_000,
    }));
    assert_eq!(plain.len(), 200);
    assert_eq!(
        plain, batched,
        "batched and unbatched runs deliver the identical sequence"
    );
}

#[test]
fn sync_storage_gates_votes_but_preserves_total_order() {
    let tuning = RingTuning {
        lambda: 0,
        storage: StorageMode::SyncDisk,
        ..RingTuning::default()
    };
    let mut cluster = build(tuning, Topology::lan(8), 43, true);
    let client_proc = ProcessId::new(100);
    cluster.add_actor(
        client_proc,
        Box::new(Trickle {
            target: ProcessId::new(0),
            client: ClientId::new(1),
            n: 50,
            sent: 0,
            gap_us: 2_000,
        }),
    );
    cluster.register_client(ClientId::new(1), client_proc);
    cluster.start();
    cluster.run_until(Time::from_secs(5));
    let a = delivered(&mut cluster, 0);
    assert_eq!(a.len(), 50);
    assert_eq!(a, delivered(&mut cluster, 1));
    assert_eq!(a, delivered(&mut cluster, 2));
    // Votes really are on stable storage.
    let storage = cluster.storage(ProcessId::new(1)).expect("storage");
    let rec = storage.acceptor_recovery();
    assert!(
        rec[&multiring_paxos::types::RingId::new(0)].accepted.len() >= 50,
        "sync mode logged every vote"
    );
}

#[test]
fn coordinator_failover_neither_loses_nor_duplicates() {
    let tuning = RingTuning {
        lambda: 0,
        gap_timeout_us: 50_000,
        proposal_resend_us: 100_000,
        repropose_us: 200_000,
        ..RingTuning::default()
    };
    let mut cluster = build(tuning, Topology::lan(8), 44, false);
    let client_proc = ProcessId::new(100);
    // 100 requests over 4 seconds aimed at p1 (which survives); the
    // coordinator p0 dies mid-stream.
    cluster.add_actor(
        client_proc,
        Box::new(Trickle {
            target: ProcessId::new(1),
            client: ClientId::new(1),
            n: 100,
            sent: 0,
            gap_us: 40_000,
        }),
    );
    cluster.register_client(ClientId::new(1), client_proc);
    cluster.start();
    cluster.schedule_crash(Time::from_secs(2), ProcessId::new(0));
    cluster.run_until(Time::from_secs(10));

    for p in 1..3 {
        let seq = delivered(&mut cluster, p);
        let mut dedup = seq.clone();
        dedup.sort();
        dedup.dedup();
        assert_eq!(
            dedup.len(),
            seq.len(),
            "learner {p} must not deliver duplicates across failover"
        );
        assert_eq!(seq.len(), 100, "learner {p} delivered the full stream");
    }
    assert_eq!(delivered(&mut cluster, 1), delivered(&mut cluster, 2));
    assert!(cluster.metrics().counter("elections") >= 1);
}

// ---------------- wbcast orphan-recovery robustness -------------------

/// Two disjoint two-process groups: ring 0 = {p0, p1} (sequencer p0),
/// ring 1 = {p2, p3} (sequencer p2); members subscribe their own
/// group. p1 — a proposer that coordinates nothing — initiates the
/// multi-group rounds.
fn orphan_config() -> ClusterConfig {
    let mut b = ClusterConfig::builder();
    for (ring, members) in [(0u16, [0u32, 1]), (1, [2, 3])] {
        let mut spec = RingSpec::new(RingId::new(ring));
        for p in members {
            spec = spec.member(ProcessId::new(p), Roles::ALL);
        }
        b = b.ring(spec).group(GroupId::new(ring), RingId::new(ring));
        for p in members {
            b = b.subscribe(ProcessId::new(p), GroupId::new(ring));
        }
    }
    b.build().expect("orphan config")
}

/// A hand-driven network over [`WbcastNode`]s with targeted fault
/// injection: frames to `slow` are *held* (the falsely-suspected
/// initiator — delayed, not lost, matching the engine's reliable-FIFO
/// channel contract), and — when enabled — every orphan-recovery frame
/// (`OrphanQuery`/`OrphanState`/`OrphanFinal`) is delivered twice and
/// each step's batch of them in reverse order.
struct OrphanNet {
    nodes: BTreeMap<ProcessId, WbcastNode>,
    slow: ProcessId,
    held: Vec<(ProcessId, Message)>,
    dup_reorder_orphans: bool,
    delivered: BTreeMap<ProcessId, Vec<(u64, ValueId)>>,
    /// `Ordered` frames put on the wire (releases and re-releases).
    ordered_frames: u64,
}

impl OrphanNet {
    fn new(config: &ClusterConfig, slow: ProcessId) -> Self {
        Self {
            nodes: config
                .processes()
                .into_iter()
                .map(|p| (p, WbcastNode::new(p, config.clone())))
                .collect(),
            slow,
            held: Vec::new(),
            dup_reorder_orphans: false,
            delivered: BTreeMap::new(),
            ordered_frames: 0,
        }
    }

    fn enqueue(
        &mut self,
        queue: &mut VecDeque<(ProcessId, ProcessId, Message)>,
        from: ProcessId,
        actions: Vec<Action>,
    ) {
        let mut orphans = Vec::new();
        for a in actions {
            match a {
                Action::Send { to, msg } => {
                    let is_orphan = matches!(
                        &msg,
                        Message::Engine { payload, .. }
                            if frame_kind(payload.clone())
                                .is_some_and(|k| k.starts_with("orphan"))
                    );
                    if let Message::Engine { payload, .. } = &msg {
                        if frame_kind(payload.clone()) == Some("ordered") {
                            self.ordered_frames += 1;
                        }
                    }
                    if self.dup_reorder_orphans && is_orphan {
                        orphans.push((from, to, msg));
                    } else {
                        queue.push_back((from, to, msg));
                    }
                }
                Action::Deliver {
                    instance, value, ..
                } => self
                    .delivered
                    .entry(from)
                    .or_default()
                    .push((instance.value(), value.id)),
                _ => {}
            }
        }
        // Reordered and duplicated: the exchange must be insensitive to
        // both.
        for (from, to, msg) in orphans.into_iter().rev() {
            queue.push_back((from, to, msg.clone()));
            queue.push_back((from, to, msg));
        }
    }

    /// Runs `actions` (attributed to `from`) to quiescence at `t`.
    fn pump(&mut self, t: Time, from: ProcessId, actions: Vec<Action>) {
        let mut queue = VecDeque::new();
        self.enqueue(&mut queue, from, actions);
        let mut steps = 0;
        while let Some((origin, to, msg)) = queue.pop_front() {
            steps += 1;
            assert!(steps < 100_000, "no quiescence");
            if to == self.slow {
                self.held.push((origin, msg));
                continue;
            }
            let out = self
                .nodes
                .get_mut(&to)
                .expect("known process")
                .on_event(t, Event::Message { from: origin, msg });
            self.enqueue(&mut queue, to, out);
        }
    }

    /// Fires an event on one node and pumps the fallout.
    fn fire(&mut self, t: Time, p: ProcessId, ev: Event) {
        let out = self
            .nodes
            .get_mut(&p)
            .expect("known process")
            .on_event(t, ev);
        self.pump(t, p, out);
    }

    /// Releases the frames held for the slow process (the "partition"
    /// heals: they arrive late, in order) and pumps the fallout.
    fn heal(&mut self, t: Time) {
        let held = std::mem::take(&mut self.held);
        let slow = self.slow;
        for (origin, msg) in held {
            let out = self
                .nodes
                .get_mut(&slow)
                .expect("slow process")
                .on_event(t, Event::Message { from: origin, msg });
            self.pump(t, slow, out);
        }
    }

    fn copies_of(&self, p: u32, id: ValueId) -> usize {
        self.delivered
            .get(&ProcessId::new(p))
            .into_iter()
            .flatten()
            .filter(|(_, i)| *i == id)
            .count()
    }

    fn key_of(&self, p: u32, id: ValueId) -> Option<u64> {
        self.delivered
            .get(&ProcessId::new(p))
            .into_iter()
            .flatten()
            .find(|(_, i)| *i == id)
            .map(|(ts, _)| *ts)
    }
}

/// Drives a multi-group round into the orphaned state — p1's `Submit`s
/// are out, every reply toward p1 is held — and returns the round's id.
fn strand_round(net: &mut OrphanNet) -> ValueId {
    let p1 = ProcessId::new(1);
    let (id, actions) = AmcastEngine::multicast(
        net.nodes.get_mut(&p1).unwrap(),
        Time::ZERO,
        &[GroupId::new(0), GroupId::new(1)],
        Bytes::from_static(b"orphan"),
    )
    .unwrap();
    net.pump(Time::ZERO, p1, actions);
    assert_eq!(net.nodes[&ProcessId::new(0)].undecided_len(), 1);
    assert_eq!(net.nodes[&ProcessId::new(2)].undecided_len(), 1);
    id
}

/// Both sequencers detect the orphan concurrently, every recovery frame
/// is delivered twice and each batch in reverse order: the exchange
/// must stay idempotent — one delivery per subscriber, one consistent
/// final timestamp across groups, no undecided residue (no
/// double-decide: a second decision would re-release at a second key).
#[test]
fn orphan_recovery_is_idempotent_under_duplicated_and_reordered_frames() {
    let config = orphan_config();
    let mut net = OrphanNet::new(&config, ProcessId::new(1));
    let id = strand_round(&mut net);
    net.dup_reorder_orphans = true;
    // Both sequencers' orphan timeouts fire in the same instant: two
    // concurrent recoverers, their exchanges interleaved, duplicated
    // and reordered.
    let t = Time::from_millis(100);
    net.fire(
        t,
        ProcessId::new(0),
        Event::Timer(TimerKind::Delta(RingId::new(0))),
    );
    net.fire(
        t,
        ProcessId::new(2),
        Event::Timer(TimerKind::Delta(RingId::new(1))),
    );
    for p in [0u32, 2, 3] {
        assert_eq!(
            net.copies_of(p, id),
            1,
            "subscriber {p} must deliver the orphan exactly once"
        );
    }
    assert_eq!(
        net.key_of(0, id),
        net.key_of(2, id),
        "one final timestamp across groups — no double-decide"
    );
    for p in [0u32, 2] {
        assert_eq!(net.nodes[&ProcessId::new(p)].undecided_len(), 0);
    }
}

/// A falsely-suspected initiator revives after the group completed its
/// round: its stale `ProposeAck`s make it compute and distribute its
/// own `Final`, and its retry timer re-submits the round — all of it
/// must be absorbed by the id-based dedup (re-acknowledged, never
/// re-released), and the revived initiator itself converges: it
/// delivers the value once and its backlog settles.
#[test]
fn revived_initiator_retries_after_orphan_completion_are_deduplicated() {
    let config = orphan_config();
    let mut net = OrphanNet::new(&config, ProcessId::new(1));
    let id = strand_round(&mut net);
    let t = Time::from_millis(100);
    net.fire(
        t,
        ProcessId::new(0),
        Event::Timer(TimerKind::Delta(RingId::new(0))),
    );
    assert_eq!(net.copies_of(0, id), 1, "recovery completed");
    let released = net.ordered_frames;
    // The partition heals: p1 processes the stale ProposeAcks (and the
    // held Ordered release), completes "its" round with its own Final,
    // and its retry timer re-probes both groups.
    let t2 = Time::from_millis(200);
    net.heal(t2);
    net.fire(
        t2,
        ProcessId::new(1),
        Event::Timer(TimerKind::ProposalResend(RingId::new(0))),
    );
    net.fire(
        t2,
        ProcessId::new(1),
        Event::Timer(TimerKind::ProposalResend(RingId::new(1))),
    );
    assert_eq!(
        net.ordered_frames, released,
        "the revived initiator's stale Final/Submit retries must re-release nothing"
    );
    for p in [0u32, 1, 2, 3] {
        assert_eq!(
            net.copies_of(p, id),
            1,
            "subscriber {p} delivers exactly once despite the revival"
        );
    }
    assert_eq!(
        net.key_of(1, id),
        net.key_of(0, id),
        "the revived initiator's copy sits at the recovered timestamp"
    );
    assert_eq!(
        AmcastEngine::backlog(&net.nodes[&ProcessId::new(1)]),
        0,
        "the revived initiator's round settles"
    );
}
