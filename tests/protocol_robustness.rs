//! Robustness tests: the protocol under message loss, with link-level
//! batching enabled, with synchronous storage gating votes, and across
//! coordinator failovers (no duplicate or lost deliveries).

use atomic_multicast::core::config::{single_ring, LinkBatching, RingTuning, StorageMode};
use atomic_multicast::core::node::Node;
use atomic_multicast::core::types::{ClientId, GroupId, ProcessId, Time, ValueId};
use atomic_multicast::sim::actor::{Actor, ActorCtx, ActorEvent, Hosted, Op, Outbox};
use atomic_multicast::sim::cluster::{Cluster, SimConfig};
use atomic_multicast::sim::disk::DiskModel;
use atomic_multicast::sim::net::Topology;
use bytes::Bytes;
use multiring_paxos::event::Message;
use std::any::Any;

/// Client that spreads `n` requests over time (one per `gap_us`).
#[derive(Debug)]
struct Trickle {
    target: ProcessId,
    client: ClientId,
    n: u64,
    sent: u64,
    gap_us: u64,
}

impl Actor for Trickle {
    fn on_event(&mut self, _now: Time, ev: ActorEvent, out: &mut Outbox, _ctx: &mut ActorCtx<'_>) {
        match ev {
            ActorEvent::Start | ActorEvent::Wakeup(0) if self.sent < self.n => {
                out.send(
                    self.target,
                    Message::Request {
                        client: self.client,
                        request: self.sent,
                        groups: vec![GroupId::new(0)],
                        payload: Bytes::from(vec![0u8; 32]),
                    },
                );
                self.sent += 1;
                out.wakeup(self.gap_us, 0);
            }
            _ => {}
        }
    }
    fn as_any(&mut self) -> &mut dyn Any {
        self
    }
}

/// Wraps a node and records delivered value ids.
#[derive(Debug)]
struct Recorder {
    node: Hosted<Node>,
    delivered: Vec<ValueId>,
}

impl Actor for Recorder {
    fn on_event(&mut self, now: Time, ev: ActorEvent, out: &mut Outbox, ctx: &mut ActorCtx<'_>) {
        let mut inner = Outbox::new();
        self.node.on_event(now, ev, &mut inner, ctx);
        for op in inner.take() {
            if let Op::Delivered { value, .. } = &op {
                self.delivered.push(value.id);
            }
            out.push(op);
        }
    }
    fn as_any(&mut self) -> &mut dyn Any {
        self
    }
}

fn build(tuning: RingTuning, topology: Topology, seed: u64, disks: bool) -> Cluster {
    let config = single_ring(3, tuning);
    let mut cluster = Cluster::new(
        SimConfig {
            seed,
            election_timeout_us: 200_000,
            ..SimConfig::default()
        },
        topology,
    );
    cluster.set_protocol(config.clone());
    for i in 0..3 {
        let p = ProcessId::new(i);
        cluster.add_actor(
            p,
            Box::new(Recorder {
                node: Hosted::new(Node::new(p, config.clone())),
                delivered: Vec::new(),
            }),
        );
        if disks {
            cluster.add_disk(p, DiskModel::ssd());
        }
    }
    cluster
}

fn delivered(cluster: &mut Cluster, p: u32) -> Vec<ValueId> {
    cluster
        .actor_as::<Recorder>(ProcessId::new(p))
        .expect("recorder")
        .delivered
        .clone()
}

#[test]
fn survives_heavy_message_loss() {
    // 20% of messages dropped: proposer resend, coordinator re-proposal
    // and learner gap repair must still deliver everything exactly once.
    let tuning = RingTuning {
        lambda: 0,
        gap_timeout_us: 50_000,
        proposal_resend_us: 100_000,
        repropose_us: 150_000,
        ..RingTuning::default()
    };
    let mut topology = Topology::lan(8);
    topology.loss = 0.2;
    let mut cluster = build(tuning, topology, 41, false);
    let client_proc = ProcessId::new(100);
    cluster.add_actor(
        client_proc,
        Box::new(Trickle {
            target: ProcessId::new(1),
            client: ClientId::new(1),
            n: 40,
            sent: 0,
            gap_us: 10_000,
        }),
    );
    cluster.register_client(ClientId::new(1), client_proc);
    cluster.start();
    cluster.run_until(Time::from_secs(30));

    for p in 0..3 {
        let seq = delivered(&mut cluster, p);
        assert_eq!(
            seq.len(),
            40,
            "learner {p} delivered everything exactly once"
        );
        let mut dedup = seq.clone();
        dedup.sort();
        dedup.dedup();
        assert_eq!(dedup.len(), 40, "no duplicates at learner {p}");
    }
    let a = delivered(&mut cluster, 0);
    assert_eq!(a, delivered(&mut cluster, 1));
    assert_eq!(a, delivered(&mut cluster, 2));
}

#[test]
fn link_batching_preserves_order_and_cuts_messages() {
    let run = |batching: Option<LinkBatching>| -> (Vec<ValueId>, u64) {
        let tuning = RingTuning {
            lambda: 0,
            link_batching: batching,
            ..RingTuning::default()
        };
        let mut cluster = build(tuning, Topology::lan(8), 42, false);
        let client_proc = ProcessId::new(100);
        cluster.add_actor(
            client_proc,
            Box::new(Trickle {
                target: ProcessId::new(0),
                client: ClientId::new(1),
                n: 200,
                sent: 0,
                gap_us: 200,
            }),
        );
        cluster.register_client(ClientId::new(1), client_proc);
        cluster.start();
        cluster.run_until(Time::from_secs(5));
        let seq = delivered(&mut cluster, 2);
        (seq, cluster.network_bytes())
    };
    let (plain, _) = run(None);
    let (batched, _) = run(Some(LinkBatching {
        max_bytes: 4 * 1024,
        max_delay_us: 2_000,
    }));
    assert_eq!(plain.len(), 200);
    assert_eq!(
        plain, batched,
        "batched and unbatched runs deliver the identical sequence"
    );
}

#[test]
fn sync_storage_gates_votes_but_preserves_total_order() {
    let tuning = RingTuning {
        lambda: 0,
        storage: StorageMode::SyncDisk,
        ..RingTuning::default()
    };
    let mut cluster = build(tuning, Topology::lan(8), 43, true);
    let client_proc = ProcessId::new(100);
    cluster.add_actor(
        client_proc,
        Box::new(Trickle {
            target: ProcessId::new(0),
            client: ClientId::new(1),
            n: 50,
            sent: 0,
            gap_us: 2_000,
        }),
    );
    cluster.register_client(ClientId::new(1), client_proc);
    cluster.start();
    cluster.run_until(Time::from_secs(5));
    let a = delivered(&mut cluster, 0);
    assert_eq!(a.len(), 50);
    assert_eq!(a, delivered(&mut cluster, 1));
    assert_eq!(a, delivered(&mut cluster, 2));
    // Votes really are on stable storage.
    let storage = cluster.storage(ProcessId::new(1)).expect("storage");
    let rec = storage.acceptor_recovery();
    assert!(
        rec[&multiring_paxos::types::RingId::new(0)].accepted.len() >= 50,
        "sync mode logged every vote"
    );
}

#[test]
fn coordinator_failover_neither_loses_nor_duplicates() {
    let tuning = RingTuning {
        lambda: 0,
        gap_timeout_us: 50_000,
        proposal_resend_us: 100_000,
        repropose_us: 200_000,
        ..RingTuning::default()
    };
    let mut cluster = build(tuning, Topology::lan(8), 44, false);
    let client_proc = ProcessId::new(100);
    // 100 requests over 4 seconds aimed at p1 (which survives); the
    // coordinator p0 dies mid-stream.
    cluster.add_actor(
        client_proc,
        Box::new(Trickle {
            target: ProcessId::new(1),
            client: ClientId::new(1),
            n: 100,
            sent: 0,
            gap_us: 40_000,
        }),
    );
    cluster.register_client(ClientId::new(1), client_proc);
    cluster.start();
    cluster.schedule_crash(Time::from_secs(2), ProcessId::new(0));
    cluster.run_until(Time::from_secs(10));

    for p in 1..3 {
        let seq = delivered(&mut cluster, p);
        let mut dedup = seq.clone();
        dedup.sort();
        dedup.dedup();
        assert_eq!(
            dedup.len(),
            seq.len(),
            "learner {p} must not deliver duplicates across failover"
        );
        assert_eq!(seq.len(), 100, "learner {p} delivered the full stream");
    }
    assert_eq!(delivered(&mut cluster, 1), delivered(&mut cluster, 2));
    assert!(cluster.metrics().counter("elections") >= 1);
}
