//! The application interface for state-machine replication.
//!
//! Services (the key-value store `mrp-store`, the distributed log
//! `mrp-dlog`, or user code) implement [`Application`] and are hosted by
//! a [`Replica`](crate::replica::Replica): every atomic-multicast
//! delivery is executed deterministically, replies are routed back to
//! client sessions, and the application state is periodically
//! checkpointed for recovery.

use crate::types::{ClientId, GroupId, InstanceId, Value};
use bytes::{Buf, BufMut, Bytes, BytesMut};

/// One delivered multicast value handed to the application.
#[derive(Clone, PartialEq, Debug)]
pub struct Delivery {
    /// Group the value was multicast to.
    pub group: GroupId,
    /// Consensus instance of the group's ring that decided it.
    pub instance: InstanceId,
    /// The value.
    pub value: Value,
}

/// A reply to a client session, produced by command execution.
#[derive(Clone, PartialEq, Debug)]
pub struct Reply {
    /// The client session to answer.
    pub client: ClientId,
    /// The request number being answered.
    pub request: u64,
    /// Reply payload.
    pub payload: Bytes,
}

/// A deterministic, checkpointable replicated state machine.
///
/// Implementations must be deterministic: executing the same deliveries
/// in the same order from the same snapshot must produce identical state
/// and replies on every replica. All I/O must go through the returned
/// replies and the snapshot mechanism.
pub trait Application {
    /// Executes one delivered command, mutating the state and returning
    /// any client replies.
    fn execute(&mut self, delivery: &Delivery) -> Vec<Reply>;

    /// Serializes the full application state.
    fn snapshot(&self) -> Bytes;

    /// Replaces the state with a previously produced snapshot.
    fn restore(&mut self, snapshot: &Bytes);
}

/// Encodes a client command frame: services embed the client session and
/// request number in the multicast payload so any replica can answer
/// (the paper's replicas reply to clients over UDP).
pub fn encode_command(client: ClientId, request: u64, cmd: &[u8]) -> Bytes {
    let mut buf = BytesMut::with_capacity(8 + 8 + 4 + cmd.len());
    buf.put_u64_le(client.value());
    buf.put_u64_le(request);
    buf.put_u32_le(cmd.len() as u32);
    buf.put_slice(cmd);
    buf.freeze()
}

/// Decodes a client command frame produced by [`encode_command`].
/// Returns `None` if the frame is malformed.
pub fn decode_command(mut frame: Bytes) -> Option<(ClientId, u64, Bytes)> {
    if frame.len() < 20 {
        return None;
    }
    let client = ClientId::new(frame.get_u64_le());
    let request = frame.get_u64_le();
    let len = frame.get_u32_le() as usize;
    if frame.remaining() < len {
        return None;
    }
    Some((client, request, frame.copy_to_bytes(len)))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn command_frame_roundtrip() {
        let frame = encode_command(ClientId::new(42), 7, b"hello");
        let (client, request, cmd) = decode_command(frame).unwrap();
        assert_eq!(client, ClientId::new(42));
        assert_eq!(request, 7);
        assert_eq!(&cmd[..], b"hello");
    }

    #[test]
    fn malformed_frames_rejected() {
        assert!(decode_command(Bytes::from_static(b"short")).is_none());
        // Length prefix larger than remaining payload.
        let mut buf = BytesMut::new();
        buf.put_u64_le(1);
        buf.put_u64_le(1);
        buf.put_u32_le(100);
        buf.put_slice(b"abc");
        assert!(decode_command(buf.freeze()).is_none());
    }

    #[test]
    fn empty_command_allowed() {
        let frame = encode_command(ClientId::new(0), 0, b"");
        let (_, _, cmd) = decode_command(frame).unwrap();
        assert!(cmd.is_empty());
    }
}
