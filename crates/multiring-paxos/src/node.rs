//! The composite per-process state machine.
//!
//! A [`Node`] hosts, for one process, every role it plays in every ring
//! it belongs to, plus the deterministic merge over its subscribed
//! groups and (when it coordinates a ring) the trim protocol. It is the
//! unit a runtime drives: feed it [`Event`]s, execute the returned
//! [`Action`]s.
//!
//! Messages a node sends to itself (its own successor in a singleton
//! ring, the local acceptor of a coordinator, …) are processed inline
//! rather than round-tripping through the runtime.

use crate::config::ClusterConfig;
use crate::event::{Action, Event, Message, PersistToken, StateMachine, TimerKind};
use crate::multiring::Merger;
use crate::paxos::AcceptorRecovery;
use crate::recovery::{CheckpointId, TrimCoordinator};
use crate::ring::{Effects, RingState};
use crate::types::{Ballot, ClientId, GroupId, InstanceId, ProcessId, RingId, Time, ValueId};
use bytes::Bytes;
use std::collections::{BTreeMap, VecDeque};
use std::fmt;

/// Locally submitted values whose submission time is retained for
/// latency attribution; beyond this many in flight, extra submissions
/// are simply not timed (the protocol itself is unaffected).
const PENDING_TIMING_CAP: usize = 4096;

/// Delivery-latency samples retained for telemetry read-out.
const LATENCY_SAMPLE_CAP: usize = 1024;

/// Recovery events (backfills, checkpoint installs) retained for
/// telemetry read-out.
const RECOVERY_EVENT_CAP: usize = 64;

/// Plain-scalar protocol statistics a [`Node`] accumulates as it runs:
/// submissions, merge deliveries, end-to-end ring latency, and recovery
/// activity. Zero-dependency by design — the engine layer above folds
/// these into its richer telemetry snapshots.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct NodeStats {
    /// Values multicast from this process (accepted submissions).
    pub proposed: u64,
    /// Values delivered by the deterministic merge on this process.
    pub delivered: u64,
    /// Sum of submit→deliver latencies (µs) over locally submitted
    /// values delivered here.
    pub latency_sum_us: u64,
    /// Number of latency samples in [`latency_sum_us`](Self::latency_sum_us).
    pub latency_count: u64,
    /// Largest submit→deliver latency observed (µs).
    pub latency_max_us: u64,
    /// Backfill rounds requested from the acceptors (checkpoint resume).
    pub backfill_rounds: u64,
    /// Checkpoints installed into the merge (recovery events).
    pub checkpoint_installs: u64,
}

/// Errors returned by [`Node::multicast`].
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum MulticastError {
    /// The group does not exist in the configuration.
    UnknownGroup(GroupId),
    /// This process has no proposer role in the group's ring.
    NotAProposer(GroupId),
    /// The destination group set was empty.
    NoDestination,
    /// A multi-group message was submitted but no configured group's
    /// subscribers cover every addressed group's subscribers, so the
    /// ring engine has no single ring that reaches them all (deploy a
    /// global ring, or use a genuine engine).
    NoCoveringGroup(Vec<GroupId>),
}

impl fmt::Display for MulticastError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MulticastError::UnknownGroup(g) => write!(f, "unknown group {g}"),
            MulticastError::NotAProposer(g) => {
                write!(f, "process is not a proposer for group {g}")
            }
            MulticastError::NoDestination => write!(f, "empty destination group set"),
            MulticastError::NoCoveringGroup(gs) => {
                write!(f, "no configured group covers the subscribers of {gs:?}")
            }
        }
    }
}

impl std::error::Error for MulticastError {}

/// The per-process protocol state machine: ring roles, deterministic
/// merge, trim coordination.
pub struct Node {
    me: ProcessId,
    config: ClusterConfig,
    rings: BTreeMap<RingId, RingState>,
    merger: Merger,
    trim: BTreeMap<RingId, TrimCoordinator>,
    gated: BTreeMap<PersistToken, Vec<Action>>,
    token_seed: u64,
    need_checkpoint: Option<(RingId, InstanceId)>,
    /// Memoized covering-group resolutions, keyed by the sorted,
    /// deduplicated multi-group destination set.
    covering: BTreeMap<Vec<GroupId>, GroupId>,
    stats: NodeStats,
    /// Submission times of locally multicast values, for latency
    /// attribution at delivery (bounded by `PENDING_TIMING_CAP`).
    pending_at: BTreeMap<ValueId, Time>,
    /// Most recent submit→deliver latency samples (µs), bounded.
    recent_latencies: VecDeque<u64>,
    /// Recent recovery events as `(time, kind, detail)` tuples, bounded
    /// by `RECOVERY_EVENT_CAP`. Kinds: `"ring.backfill"` (detail: chunk
    /// size) and `"ring.ckpt_install"` (detail: total instances covered;
    /// time 0 — installation happens before the clock is threaded in).
    recovery_events: VecDeque<(Time, &'static str, u64)>,
}

impl fmt::Debug for Node {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Node")
            .field("me", &self.me)
            .field("rings", &self.rings.keys().collect::<Vec<_>>())
            .field("groups", &self.merger.groups())
            .finish_non_exhaustive()
    }
}

impl Node {
    /// Creates a fresh node for process `me`.
    pub fn new(me: ProcessId, config: ClusterConfig) -> Self {
        Self::with_recovery(me, config, BTreeMap::new())
    }

    /// Creates a node restoring acceptor state from recovered stable
    /// logs (keyed by ring).
    pub fn with_recovery(
        me: ProcessId,
        config: ClusterConfig,
        mut acceptor_logs: BTreeMap<RingId, AcceptorRecovery>,
    ) -> Self {
        let subscriptions = config.subscriptions_of(me);
        let mut rings = BTreeMap::new();
        for (&ring_id, ring_cfg) in config.rings() {
            if !ring_cfg.is_member(me) {
                continue;
            }
            let group = config
                .group_of_ring(ring_id)
                .expect("validated config maps every ring to a group");
            let subscribed = subscriptions.contains(&group);
            let state = RingState::with_recovery(
                me,
                group,
                ring_cfg.clone(),
                subscribed,
                acceptor_logs.remove(&ring_id),
            );
            rings.insert(ring_id, state);
        }
        let merger = Merger::new(subscriptions, config.merge_window());
        Self {
            me,
            config,
            rings,
            merger,
            trim: BTreeMap::new(),
            gated: BTreeMap::new(),
            token_seed: 0,
            need_checkpoint: None,
            covering: BTreeMap::new(),
            stats: NodeStats::default(),
            pending_at: BTreeMap::new(),
            recent_latencies: VecDeque::new(),
            recovery_events: VecDeque::new(),
        }
    }

    fn note_recovery_event(&mut self, at: Time, kind: &'static str, detail: u64) {
        if self.recovery_events.len() == RECOVERY_EVENT_CAP {
            self.recovery_events.pop_front();
        }
        self.recovery_events.push_back((at, kind, detail));
    }

    /// Recent recovery events as `(time, kind, detail)` tuples, oldest
    /// first (see the field docs for the kinds).
    pub fn recovery_events(&self) -> impl Iterator<Item = (Time, &'static str, u64)> + '_ {
        self.recovery_events.iter().copied()
    }

    /// Submission time of the oldest locally submitted value that has
    /// not been delivered back through the merge yet (stall-probe
    /// input; `None` when nothing timed is outstanding).
    pub fn oldest_pending_submission(&self) -> Option<Time> {
        self.pending_at.values().min().copied()
    }

    /// The largest rate-leveling interval Δ (µs) over this node's rings
    /// — the natural unit for stall thresholds.
    pub fn max_delta_us(&self) -> u64 {
        self.config
            .rings()
            .values()
            .map(|r| r.tuning().delta_us)
            .max()
            .unwrap_or(0)
    }

    /// The node's accumulated protocol statistics.
    pub fn stats(&self) -> NodeStats {
        self.stats
    }

    /// The most recent submit→deliver latency samples (µs), oldest
    /// first, bounded to the last `LATENCY_SAMPLE_CAP` deliveries.
    pub fn recent_latencies(&self) -> impl Iterator<Item = u64> + '_ {
        self.recent_latencies.iter().copied()
    }

    /// The process this node embodies.
    pub fn me(&self) -> ProcessId {
        self.me
    }

    /// The cluster configuration.
    pub fn config(&self) -> &ClusterConfig {
        &self.config
    }

    /// Per-ring state (for inspection and tests).
    pub fn ring(&self, ring: RingId) -> Option<&RingState> {
        self.rings.get(&ring)
    }

    /// The merge position over subscribed groups, used as checkpoint id.
    pub fn watermarks(&self) -> CheckpointId {
        self.merger.watermarks()
    }

    /// Total consensus instances consumed by the merge (progress metric).
    pub fn merge_progress(&self) -> u64 {
        self.merger.total_consumed()
    }

    /// Suppresses or resumes learner gap repair on all subscribed rings
    /// (used while replica recovery decides which checkpoint to install).
    pub fn hold_repair(&mut self, hold: bool) {
        for ring in self.rings.values_mut() {
            if let Some(l) = ring.learner_mut() {
                l.hold_repair(hold);
            }
        }
    }

    /// Repositions the merge and the per-ring learners at `ckpt`
    /// (checkpoint installation during recovery).
    pub fn install_watermarks(&mut self, ckpt: &CheckpointId) {
        self.stats.checkpoint_installs += 1;
        self.note_recovery_event(Time::ZERO, "ring.ckpt_install", ckpt.total_instances());
        self.merger.install(ckpt);
        for ring in self.rings.values_mut() {
            let mark = ckpt.mark_of(ring.group());
            if let Some(l) = ring.learner_mut() {
                l.fast_forward(mark);
            }
        }
    }

    /// Asks acceptors to retransmit everything after the current learner
    /// positions (bounded by `chunk` instances per ring); used right
    /// after checkpoint installation to backfill without waiting for
    /// live traffic to reveal the gap.
    pub fn request_backfill(&mut self, now: Time, chunk: u64) -> Vec<Action> {
        self.stats.backfill_rounds += 1;
        self.note_recovery_event(now, "ring.backfill", chunk);
        let mut fx = Effects::new(self.token_seed);
        for ring in self.rings.values_mut() {
            ring.backfill(chunk, &mut fx);
        }
        self.token_seed = fx.token_seed();
        let mut out = Vec::new();
        self.finish(Time::ZERO, fx, &mut out);
        out
    }

    /// Signals raised by learners whose repair hit trimmed acceptor logs;
    /// consumed by the replica layer to trigger checkpoint recovery.
    pub fn take_need_checkpoint(&mut self) -> Option<(RingId, InstanceId)> {
        self.need_checkpoint.take()
    }

    /// An FNV-1a fingerprint of the protocol-relevant state: ring role
    /// machines, merge queues, trim rounds and persist-gated actions.
    /// Telemetry counters and latency samples are excluded so schedules
    /// that commute into the same protocol state fingerprint identically
    /// (see [`crate::digest`]).
    pub fn state_digest(&self) -> u64 {
        use crate::digest::{DigestInto, Fnv1a};
        let mut h = Fnv1a::new();
        self.me.digest_into(&mut h);
        h.write_usize(self.rings.len());
        for (id, ring) in &self.rings {
            id.digest_into(&mut h);
            ring.digest_into(&mut h);
        }
        self.merger.digest_into(&mut h);
        h.write_usize(self.trim.len());
        for (id, t) in &self.trim {
            id.digest_into(&mut h);
            t.digest_into(&mut h);
        }
        self.gated.digest_into(&mut h);
        h.write_u64(self.token_seed);
        self.need_checkpoint.digest_into(&mut h);
        h.finish()
    }

    /// Atomically multicasts `payload` to the group set `groups` via the
    /// local proposer role (the paper's `multicast(γ, m)`). Returns the
    /// assigned value id plus the actions to execute.
    ///
    /// A single-group message is ordered on that group's ring. A
    /// multi-group message is routed through a *covering group*: a
    /// configured group whose subscribers include every subscriber of
    /// every addressed group (deployments realize this as their global
    /// ring), preserving the engine's ordering semantics at the cost of
    /// involving the covering group's whole subscriber set.
    ///
    /// # Errors
    ///
    /// Fails if the set is empty, a group is unknown, this process
    /// cannot propose to the serving ring, or no covering group exists.
    pub fn multicast(
        &mut self,
        now: Time,
        groups: &[GroupId],
        payload: Bytes,
    ) -> Result<(ValueId, Vec<Action>), MulticastError> {
        let (group, ring_id) = self.resolve_serving_ring(groups)?;
        let Some(ring) = self.rings.get_mut(&ring_id) else {
            return Err(MulticastError::NotAProposer(group));
        };
        let mut fx = Effects::new(self.token_seed);
        let id = ring
            .multicast(now, payload, &mut fx)
            .ok_or(MulticastError::NotAProposer(group))?;
        self.stats.proposed += 1;
        // Only timed when this node also subscribes to the serving
        // group: otherwise the merge never delivers the value here and
        // the entry would never resolve (poisoning the stall probe).
        if self.pending_at.len() < PENDING_TIMING_CAP && self.merger.groups().contains(&group) {
            self.pending_at.insert(id, now);
        }
        self.token_seed = fx.token_seed();
        let mut out = Vec::new();
        self.finish(now, fx, &mut out);
        Ok((id, out))
    }

    /// Batched form of [`Node::multicast`]: all payloads target the
    /// same group set and are handed to the serving ring in one
    /// submission, so the coordinator can pack them into as few
    /// consensus instances as its tuning allows
    /// (`values_per_instance` / `bytes_per_instance`). Delivery is
    /// unchanged — each value is still delivered individually, in
    /// submission order.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Node::multicast`]; on error no value from
    /// the batch is submitted.
    pub fn multicast_many(
        &mut self,
        now: Time,
        groups: &[GroupId],
        payloads: Vec<Bytes>,
    ) -> Result<(Vec<ValueId>, Vec<Action>), MulticastError> {
        let (group, ring_id) = self.resolve_serving_ring(groups)?;
        let Some(ring) = self.rings.get_mut(&ring_id) else {
            return Err(MulticastError::NotAProposer(group));
        };
        let n = payloads.len();
        let mut fx = Effects::new(self.token_seed);
        let ids = ring
            .multicast_many(now, payloads, &mut fx)
            .ok_or(MulticastError::NotAProposer(group))?;
        self.stats.proposed += n as u64;
        if self.merger.groups().contains(&group) {
            for &id in &ids {
                if self.pending_at.len() >= PENDING_TIMING_CAP {
                    break;
                }
                self.pending_at.insert(id, now);
            }
        }
        self.token_seed = fx.token_seed();
        let mut out = Vec::new();
        self.finish(now, fx, &mut out);
        Ok((ids, out))
    }

    /// Resolves the group a multicast to `groups` is ordered through
    /// (the single group, or the covering group for a multi-group set)
    /// and the ring serving it.
    fn resolve_serving_ring(
        &mut self,
        groups: &[GroupId],
    ) -> Result<(GroupId, RingId), MulticastError> {
        let group = match groups {
            [] => return Err(MulticastError::NoDestination),
            [one] => *one,
            many => {
                // Memoized per deduped set: the answer is a pure
                // function of the (immutable) configuration, and
                // multi-group traffic tends to repeat the same sets
                // (a store's scan range, a dlog's destination logs).
                let mut key = many.to_vec();
                key.sort_unstable();
                key.dedup();
                match self.covering.get(&key) {
                    Some(&g) => g,
                    None => {
                        let g = self.covering_group(&key)?;
                        self.covering.insert(key, g);
                        g
                    }
                }
            }
        };
        let ring_id = self
            .config
            .ring_of_group(group)
            .ok_or(MulticastError::UnknownGroup(group))?;
        Ok((group, ring_id))
    }

    /// Resolves the group whose ring orders a multi-group message: the
    /// smallest configured group (fewest subscribers, then lowest id)
    /// whose subscriber set contains every subscriber of every addressed
    /// group.
    fn covering_group(&self, groups: &[GroupId]) -> Result<GroupId, MulticastError> {
        let mut union: Vec<ProcessId> = Vec::new();
        for &g in groups {
            if !self.config.groups().contains_key(&g) {
                return Err(MulticastError::UnknownGroup(g));
            }
            union.extend(self.config.subscribers_of(g));
        }
        union.sort_unstable();
        union.dedup();
        self.config
            .groups()
            .keys()
            .filter_map(|&candidate| {
                let subs = self.config.subscribers_of(candidate);
                union
                    .iter()
                    .all(|p| subs.contains(p))
                    .then_some((subs.len(), candidate))
            })
            .min()
            .map(|(_, g)| g)
            .ok_or_else(|| MulticastError::NoCoveringGroup(groups.to_vec()))
    }

    /// Values proposed locally and not yet acknowledged as decided.
    pub fn proposer_backlog(&self) -> usize {
        self.rings.values().map(RingState::proposer_pending).sum()
    }

    fn finish(&mut self, now: Time, fx: Effects, out: &mut Vec<Action>) {
        let Effects {
            actions,
            released,
            need_checkpoint,
            gated,
            ..
        } = fx;
        if let Some(nc) = need_checkpoint {
            self.need_checkpoint = Some(nc);
        }
        for (ring_id, range) in released {
            let group = self
                .rings
                .get(&ring_id)
                .map_or_else(|| GroupId::new(u16::MAX), RingState::group);
            self.merger
                .push(group, range.first, range.count, range.value);
        }
        for d in self.merger.poll() {
            self.stats.delivered += 1;
            if let Some(submitted) = self.pending_at.remove(&d.value.id) {
                let lat = now.since(submitted);
                self.stats.latency_sum_us += lat;
                self.stats.latency_count += 1;
                self.stats.latency_max_us = self.stats.latency_max_us.max(lat);
                if self.recent_latencies.len() == LATENCY_SAMPLE_CAP {
                    self.recent_latencies.pop_front();
                }
                self.recent_latencies.push_back(lat);
            }
            out.push(Action::Deliver {
                group: d.group,
                instance: d.instance,
                value: d.value,
            });
        }
        self.gated.extend(gated);
        for action in actions {
            match action {
                Action::Send { to, msg } if to == self.me => {
                    self.dispatch_message(now, self.me, msg, out);
                }
                other => out.push(other),
            }
        }
    }

    fn dispatch_message(
        &mut self,
        now: Time,
        from: ProcessId,
        msg: Message,
        out: &mut Vec<Action>,
    ) {
        match msg {
            Message::Batch(msgs) => {
                for m in msgs {
                    self.dispatch_message(now, from, m, out);
                }
            }
            Message::TrimReply { group, seq, safe } => {
                self.on_trim_reply(now, from, group, seq, safe, out);
            }
            Message::Request {
                client,
                request,
                groups,
                payload,
            } => {
                self.on_request(now, client, request, &groups, payload, out);
            }
            msg => {
                if let Some(ring_id) = msg.ring() {
                    let mut fx = Effects::new(self.token_seed);
                    if let Some(ring) = self.rings.get_mut(&ring_id) {
                        ring.on_message(now, from, msg, &mut fx);
                    }
                    self.token_seed = fx.token_seed();
                    self.finish(now, fx, out);
                }
                // Messages without a ring scope that reach a bare node
                // (checkpoint queries, trim queries) are replica-layer
                // concerns; `Replica` intercepts them before this point.
            }
        }
    }

    /// Handles a client request arriving at this proposer: wraps the
    /// command with the client session so replicas can reply directly.
    fn on_request(
        &mut self,
        now: Time,
        client: ClientId,
        request: u64,
        groups: &[GroupId],
        payload: Bytes,
        out: &mut Vec<Action>,
    ) {
        let framed = crate::app::encode_command(client, request, &payload);
        match self.multicast(now, groups, framed) {
            Ok((_, actions)) => out.extend(actions),
            Err(_) => {
                // Not a proposer for this group set: drop; the client
                // will time out and retry against a correct proposer.
            }
        }
    }

    fn on_trim_reply(
        &mut self,
        now: Time,
        from: ProcessId,
        group: GroupId,
        seq: u64,
        safe: InstanceId,
        out: &mut Vec<Action>,
    ) {
        let Some(ring_id) = self.config.ring_of_group(group) else {
            return;
        };
        let Some(tc) = self.trim.get_mut(&ring_id) else {
            return;
        };
        if let Some(upto) = tc.on_reply(from, seq, safe) {
            let acceptors: Vec<ProcessId> = self
                .config
                .ring(ring_id)
                .map(|r| r.acceptors().to_vec())
                .unwrap_or_default();
            for a in acceptors {
                let msg = Message::TrimCommand {
                    ring: ring_id,
                    upto,
                };
                if a == self.me {
                    self.dispatch_message(now, self.me, msg, out);
                } else {
                    out.push(Action::Send { to: a, msg });
                }
            }
        }
    }

    fn on_start(&mut self, now: Time, out: &mut Vec<Action>) {
        let ring_ids: Vec<RingId> = self.rings.keys().copied().collect();
        for ring_id in ring_ids {
            let mut fx = Effects::new(self.token_seed);
            if let Some(ring) = self.rings.get_mut(&ring_id) {
                ring.on_start(now, &mut fx);
            }
            self.token_seed = fx.token_seed();
            self.finish(now, fx, out);
            self.maybe_start_trim(ring_id, out);
        }
    }

    fn maybe_start_trim(&mut self, ring_id: RingId, out: &mut Vec<Action>) {
        let Some(ring) = self.rings.get(&ring_id) else {
            return;
        };
        let interval = ring.config().tuning().trim_interval_us;
        if interval == 0 || ring.coordinator_proc() != self.me {
            self.trim.remove(&ring_id);
            return;
        }
        if !self.trim.contains_key(&ring_id) {
            let group = ring.group();
            self.trim
                .insert(ring_id, TrimCoordinator::new(group, ring_id, &self.config));
            out.push(Action::SetTimer {
                after_us: interval,
                timer: TimerKind::TrimTick(ring_id),
            });
        }
    }

    fn on_timer(&mut self, now: Time, kind: TimerKind, out: &mut Vec<Action>) {
        match kind {
            TimerKind::Delta(r)
            | TimerKind::FlushLinks(r)
            | TimerKind::GapCheck(r)
            | TimerKind::ProposalResend(r) => {
                let mut fx = Effects::new(self.token_seed);
                if let Some(ring) = self.rings.get_mut(&r) {
                    ring.on_timer(now, kind, &mut fx);
                }
                self.token_seed = fx.token_seed();
                self.finish(now, fx, out);
            }
            TimerKind::TrimTick(r) => {
                let interval = self
                    .rings
                    .get(&r)
                    .map_or(0, |ring| ring.config().tuning().trim_interval_us);
                if let Some(tc) = self.trim.get_mut(&r) {
                    let group = tc.group();
                    let (seq, targets) = tc.begin_round();
                    for t in targets {
                        let msg = Message::TrimQuery { group, seq };
                        if t == self.me {
                            // The replica layer answers; a bare node has
                            // no checkpoints and simply does not reply.
                        } else {
                            out.push(Action::Send { to: t, msg });
                        }
                    }
                    if interval > 0 {
                        out.push(Action::SetTimer {
                            after_us: interval,
                            timer: kind,
                        });
                    }
                }
            }
            TimerKind::CheckpointTick | TimerKind::RecoveryRetry | TimerKind::SubmitFlush => {
                // Replica- and batcher-layer timers; a bare node
                // ignores them.
            }
        }
    }

    fn on_coordinator_change(
        &mut self,
        now: Time,
        ring_id: RingId,
        coordinator: ProcessId,
        supersedes: Ballot,
        out: &mut Vec<Action>,
    ) {
        let mut fx = Effects::new(self.token_seed);
        if let Some(ring) = self.rings.get_mut(&ring_id) {
            ring.set_coordinator(now, coordinator, supersedes, &mut fx);
        }
        self.token_seed = fx.token_seed();
        self.finish(now, fx, out);
        self.maybe_start_trim(ring_id, out);
    }
}

impl StateMachine for Node {
    fn on_event(&mut self, now: Time, event: Event) -> Vec<Action> {
        let mut out = Vec::new();
        match event {
            Event::Start => self.on_start(now, &mut out),
            Event::Message { from, msg } => self.dispatch_message(now, from, msg, &mut out),
            Event::Timer(kind) => self.on_timer(now, kind, &mut out),
            Event::PersistDone(token) => {
                if let Some(actions) = self.gated.remove(&token) {
                    for action in actions {
                        match action {
                            Action::Send { to, msg } if to == self.me => {
                                self.dispatch_message(now, self.me, msg, &mut out);
                            }
                            other => out.push(other),
                        }
                    }
                }
            }
            Event::CoordinatorChange {
                ring,
                coordinator,
                supersedes,
            } => self.on_coordinator_change(now, ring, coordinator, supersedes, &mut out),
            Event::MembershipChange { ring, down } => {
                if let Some(state) = self.rings.get_mut(&ring) {
                    state.set_down(down);
                }
            }
        }
        out
    }

    fn process_id(&self) -> ProcessId {
        self.me
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{single_ring, RingTuning};

    fn quiet_tuning() -> RingTuning {
        RingTuning {
            lambda: 0,
            ..RingTuning::default()
        }
    }

    /// Drives a set of nodes to quiescence by executing all Send actions
    /// (zero-latency, in-order), returning delivered values per process.
    fn run_to_quiescence(
        nodes: &mut BTreeMap<ProcessId, Node>,
        mut queue: Vec<(ProcessId, Action)>,
    ) -> BTreeMap<ProcessId, Vec<(GroupId, InstanceId, ValueId)>> {
        let mut delivered: BTreeMap<ProcessId, Vec<(GroupId, InstanceId, ValueId)>> =
            BTreeMap::new();
        let now = Time::ZERO;
        let mut steps = 0;
        while let Some((origin, action)) = queue.pop() {
            steps += 1;
            assert!(steps < 100_000, "no quiescence");
            match action {
                Action::Send { to, msg } => {
                    let node = nodes.get_mut(&to).expect("known process");
                    let actions = node.on_event(now, Event::Message { from: origin, msg });
                    for a in actions {
                        queue.push((to, a));
                    }
                }
                Action::Deliver {
                    group,
                    instance,
                    value,
                } => {
                    delivered
                        .entry(origin)
                        .or_default()
                        .push((group, instance, value.id));
                }
                Action::Persist { token, .. } => {
                    // Immediate durable completion.
                    let node = nodes.get_mut(&origin).expect("known process");
                    for a in node.on_event(now, Event::PersistDone(token)) {
                        queue.push((origin, a));
                    }
                }
                Action::SetTimer { .. } | Action::TrimStorage { .. } | Action::Respond { .. } => {}
            }
        }
        delivered
    }

    #[test]
    fn three_process_ring_delivers_in_total_order() {
        let config = single_ring(3, quiet_tuning());
        let mut nodes: BTreeMap<ProcessId, Node> = (0..3)
            .map(|i| {
                let p = ProcessId::new(i);
                (p, Node::new(p, config.clone()))
            })
            .collect();
        let mut queue = Vec::new();
        for (&p, node) in &mut nodes {
            for a in node.on_event(Time::ZERO, Event::Start) {
                queue.push((p, a));
            }
        }
        run_to_quiescence(&mut nodes, std::mem::take(&mut queue));

        // Multicast three values from different proposers.
        for (i, proposer) in [0u32, 1, 2].iter().enumerate() {
            let p = ProcessId::new(*proposer);
            let (_, actions) = nodes
                .get_mut(&p)
                .unwrap()
                .multicast(Time::ZERO, &[GroupId::new(0)], Bytes::from(vec![i as u8]))
                .unwrap();
            for a in actions {
                queue.push((p, a));
            }
        }
        let delivered = run_to_quiescence(&mut nodes, queue);
        assert_eq!(delivered.len(), 3, "all three learners deliver");
        let reference = &delivered[&ProcessId::new(0)];
        assert_eq!(reference.len(), 3);
        for seq in delivered.values() {
            assert_eq!(seq, reference, "identical delivery order everywhere");
        }
    }

    #[test]
    fn multicast_to_unknown_group_fails() {
        let config = single_ring(3, quiet_tuning());
        let mut node = Node::new(ProcessId::new(0), config);
        let err = node
            .multicast(Time::ZERO, &[GroupId::new(9)], Bytes::new())
            .unwrap_err();
        assert_eq!(err, MulticastError::UnknownGroup(GroupId::new(9)));
        let err = node.multicast(Time::ZERO, &[], Bytes::new()).unwrap_err();
        assert_eq!(err, MulticastError::NoDestination);
    }

    /// Two partition rings over disjoint learners plus a "global" ring
    /// everyone subscribes to: a multi-group message must be routed
    /// through the global group; without it, there is no covering group.
    #[test]
    fn multigroup_routes_through_covering_group() {
        use crate::config::{ClusterConfig, RingSpec, Roles};
        let mut b = ClusterConfig::builder();
        for ring in 0..2u16 {
            let mut spec = RingSpec::new(RingId::new(ring)).tuning(quiet_tuning());
            for p in 0..2u32 {
                spec = spec.member(ProcessId::new(u32::from(ring) * 2 + p), Roles::ALL);
            }
            b = b.ring(spec).group(GroupId::new(ring), RingId::new(ring));
        }
        let mut global = RingSpec::new(RingId::new(2)).tuning(quiet_tuning());
        for p in 0..4u32 {
            global = global.member(ProcessId::new(p), Roles::ALL);
        }
        b = b.ring(global).group(GroupId::new(2), RingId::new(2));
        for p in 0..4u32 {
            b = b
                .subscribe(ProcessId::new(p), GroupId::new(p as u16 / 2))
                .subscribe(ProcessId::new(p), GroupId::new(2));
        }
        let config = b.build().expect("covering config");
        let node = Node::new(ProcessId::new(0), config.clone());
        assert_eq!(
            node.covering_group(&[GroupId::new(0), GroupId::new(1)]),
            Ok(GroupId::new(2))
        );
        // Degenerate covering: a set within one partition is covered by
        // the partition group itself (2 subscribers beat the global 4).
        assert_eq!(
            node.covering_group(&[GroupId::new(0), GroupId::new(0)]),
            Ok(GroupId::new(0))
        );

        // Without the global ring no group covers {0, 1}.
        let mut b = ClusterConfig::builder();
        for ring in 0..2u16 {
            let mut spec = RingSpec::new(RingId::new(ring)).tuning(quiet_tuning());
            for p in 0..2u32 {
                spec = spec.member(ProcessId::new(u32::from(ring) * 2 + p), Roles::ALL);
            }
            b = b.ring(spec).group(GroupId::new(ring), RingId::new(ring));
        }
        for p in 0..4u32 {
            b = b.subscribe(ProcessId::new(p), GroupId::new(p as u16 / 2));
        }
        let independent = b.build().expect("independent config");
        let mut node = Node::new(ProcessId::new(0), independent);
        let err = node
            .multicast(
                Time::ZERO,
                &[GroupId::new(0), GroupId::new(1)],
                Bytes::new(),
            )
            .unwrap_err();
        assert_eq!(
            err,
            MulticastError::NoCoveringGroup(vec![GroupId::new(0), GroupId::new(1)])
        );
    }

    #[test]
    fn request_is_framed_and_multicast() {
        let config = single_ring(3, quiet_tuning());
        let mut nodes: BTreeMap<ProcessId, Node> = (0..3)
            .map(|i| {
                let p = ProcessId::new(i);
                (p, Node::new(p, config.clone()))
            })
            .collect();
        let mut queue = Vec::new();
        for (&p, node) in &mut nodes {
            for a in node.on_event(Time::ZERO, Event::Start) {
                queue.push((p, a));
            }
        }
        run_to_quiescence(&mut nodes, std::mem::take(&mut queue));
        let p0 = ProcessId::new(0);
        let actions = nodes.get_mut(&p0).unwrap().on_event(
            Time::ZERO,
            Event::Message {
                from: ProcessId::new(99),
                msg: Message::Request {
                    client: ClientId::new(5),
                    request: 1,
                    groups: vec![GroupId::new(0)],
                    payload: Bytes::from_static(b"cmd"),
                },
            },
        );
        let delivered =
            run_to_quiescence(&mut nodes, actions.into_iter().map(|a| (p0, a)).collect());
        assert_eq!(delivered[&p0].len(), 1);
    }
}
