//! Replica recovery (Section 5.2).
//!
//! A recovering replica must rebuild a state consistent with its
//! partition peers. It queries the peers for their most recent durable
//! checkpoints, waits for a recovery quorum `Q_R` (a majority of the
//! partition, the recovering replica included), installs the most
//! up-to-date checkpoint available (Predicate 3) — preferring its own
//! local checkpoint when it is close enough (the "too old" optimization
//! of Section 5.1) — and then retransmits the missing consensus
//! instances from the acceptors.

use crate::recovery::CheckpointId;
use crate::types::ProcessId;
use bytes::Bytes;
use std::collections::BTreeMap;

/// Where the recovery protocol stands.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum RecoveryPhase {
    /// Querying partition peers for checkpoint ids.
    Querying,
    /// Fetching a remote checkpoint snapshot.
    Fetching,
    /// Recovery complete (checkpoint chosen and installed).
    Complete,
}

/// What the replica should do next, produced by the manager when enough
/// information arrived.
#[derive(Clone, PartialEq, Debug)]
pub enum Resolution {
    /// Keep the locally available checkpoint (or start fresh if `None`):
    /// no peer had anything meaningfully newer.
    UseLocal(Option<CheckpointId>),
    /// Install the fetched remote checkpoint.
    Install {
        /// The checkpoint id.
        id: CheckpointId,
        /// Serialized application state.
        snapshot: Bytes,
    },
}

/// Messages the manager wants sent, expressed abstractly so the replica
/// layer can wrap them into [`crate::event::Message`]s.
#[derive(Clone, PartialEq, Debug)]
pub enum RecoveryStep {
    /// Send `CheckpointQuery { seq }` to each process.
    Query {
        /// Correlation sequence number.
        seq: u64,
        /// Peers to query.
        peers: Vec<ProcessId>,
    },
    /// Send `CheckpointFetch { seq, id }` to `from`.
    Fetch {
        /// Correlation sequence number.
        seq: u64,
        /// The peer holding the checkpoint.
        from: ProcessId,
        /// The checkpoint to transfer.
        id: CheckpointId,
    },
}

/// The recovery protocol state machine at a recovering replica.
#[derive(Debug)]
pub struct RecoveryManager {
    peers: Vec<ProcessId>,
    /// Majority of the partition (peers + self).
    quorum: usize,
    local: Option<CheckpointId>,
    /// Prefer the local checkpoint unless a remote one is ahead by more
    /// than this many total instances (state-transfer cost trade-off).
    prefer_local_within: u64,
    seq: u64,
    phase: RecoveryPhase,
    replies: BTreeMap<ProcessId, Option<CheckpointId>>,
    chosen: Option<(ProcessId, CheckpointId)>,
}

impl RecoveryManager {
    /// Creates a manager for a replica whose partition peers are `peers`
    /// (excluding the replica itself) and whose local durable checkpoint
    /// is `local`.
    pub fn new(
        peers: Vec<ProcessId>,
        local: Option<CheckpointId>,
        prefer_local_within: u64,
    ) -> Self {
        let quorum = peers.len().div_ceil(2) + 1;
        Self {
            peers,
            quorum,
            local,
            prefer_local_within,
            seq: 0,
            phase: RecoveryPhase::Querying,
            replies: BTreeMap::new(),
            chosen: None,
        }
    }

    /// Current phase.
    pub fn phase(&self) -> RecoveryPhase {
        self.phase
    }

    /// Kicks off recovery. Returns the first step, or a resolution if no
    /// peers exist (singleton partition).
    pub fn start(&mut self) -> Result<RecoveryStep, Resolution> {
        if self.peers.is_empty() {
            self.phase = RecoveryPhase::Complete;
            return Err(Resolution::UseLocal(self.local.clone()));
        }
        self.seq += 1;
        self.phase = RecoveryPhase::Querying;
        self.replies.clear();
        Ok(RecoveryStep::Query {
            seq: self.seq,
            peers: self.peers.clone(),
        })
    }

    /// Handles a `CheckpointInfo` reply. Returns the next step or the
    /// final resolution once a recovery quorum `Q_R` has answered.
    pub fn on_info(
        &mut self,
        from: ProcessId,
        seq: u64,
        checkpoint: Option<CheckpointId>,
    ) -> Option<Result<RecoveryStep, Resolution>> {
        if self.phase != RecoveryPhase::Querying || seq != self.seq {
            return None;
        }
        if !self.peers.contains(&from) {
            return None;
        }
        self.replies.insert(from, checkpoint);
        // Q_R = majority of the partition; the recovering replica itself
        // counts as one member.
        if self.replies.len() + 1 < self.quorum {
            return None;
        }
        // Predicate 3: pick the most up-to-date checkpoint in Q_R.
        let best_remote: Option<(ProcessId, CheckpointId)> = self
            .replies
            .iter()
            .filter_map(|(&p, c)| c.clone().map(|c| (p, c)))
            .max_by(|(_, a), (_, b)| a.cmp_total(b));
        let local_total = self.local.as_ref().map_or(0, CheckpointId::total_instances);
        match best_remote {
            Some((owner, remote))
                if remote.total_instances() > local_total + self.prefer_local_within =>
            {
                self.phase = RecoveryPhase::Fetching;
                self.seq += 1;
                self.chosen = Some((owner, remote.clone()));
                Some(Ok(RecoveryStep::Fetch {
                    seq: self.seq,
                    from: owner,
                    id: remote,
                }))
            }
            _ => {
                self.phase = RecoveryPhase::Complete;
                Some(Err(Resolution::UseLocal(self.local.clone())))
            }
        }
    }

    /// Handles a `CheckpointData` reply carrying the snapshot (or `None`
    /// if the peer no longer holds it, in which case recovery restarts).
    pub fn on_data(
        &mut self,
        seq: u64,
        id: &CheckpointId,
        snapshot: Option<Bytes>,
    ) -> Option<Result<RecoveryStep, Resolution>> {
        if self.phase != RecoveryPhase::Fetching || seq != self.seq {
            return None;
        }
        match (&self.chosen, snapshot) {
            (Some((_, chosen_id)), Some(bytes)) if chosen_id == id => {
                self.phase = RecoveryPhase::Complete;
                Some(Err(Resolution::Install {
                    id: id.clone(),
                    snapshot: bytes,
                }))
            }
            _ => {
                // The peer lost the checkpoint (e.g. it advanced and
                // dropped the old one): restart the query round.
                Some(self.start())
            }
        }
    }

    /// Retry hook for the `RecoveryRetry` timer: re-issues the current
    /// step (peers may have been down or messages lost).
    pub fn on_retry(&mut self) -> Option<RecoveryStep> {
        match self.phase {
            RecoveryPhase::Querying => {
                let missing: Vec<ProcessId> = self
                    .peers
                    .iter()
                    .copied()
                    .filter(|p| !self.replies.contains_key(p))
                    .collect();
                (!missing.is_empty()).then_some(RecoveryStep::Query {
                    seq: self.seq,
                    peers: missing,
                })
            }
            RecoveryPhase::Fetching => self.chosen.clone().map(|(from, id)| RecoveryStep::Fetch {
                seq: self.seq,
                from,
                id,
            }),
            RecoveryPhase::Complete => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::{GroupId, InstanceId};

    fn p(i: u32) -> ProcessId {
        ProcessId::new(i)
    }

    fn ckpt(n: u64) -> CheckpointId {
        CheckpointId {
            marks: vec![(GroupId::new(0), InstanceId::new(n))],
            cursor_group: 0,
            cursor_used: 0,
        }
    }

    #[test]
    fn singleton_partition_uses_local() {
        let mut m = RecoveryManager::new(vec![], Some(ckpt(5)), 0);
        match m.start() {
            Err(Resolution::UseLocal(Some(c))) => assert_eq!(c, ckpt(5)),
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(m.phase(), RecoveryPhase::Complete);
    }

    #[test]
    fn fetches_newer_remote_checkpoint() {
        let mut m = RecoveryManager::new(vec![p(1), p(2)], Some(ckpt(5)), 0);
        let step = m.start().unwrap();
        let RecoveryStep::Query { seq, peers } = step else {
            panic!()
        };
        assert_eq!(peers.len(), 2);
        // Quorum of partition {me,1,2} is 2 → one peer reply suffices.
        let next = m.on_info(p(1), seq, Some(ckpt(50))).unwrap().unwrap();
        let RecoveryStep::Fetch {
            seq: fseq,
            from,
            id,
        } = next
        else {
            panic!()
        };
        assert_eq!(from, p(1));
        assert_eq!(id, ckpt(50));
        let res = m.on_data(fseq, &ckpt(50), Some(Bytes::from_static(b"s")));
        match res {
            Some(Err(Resolution::Install { id, snapshot })) => {
                assert_eq!(id, ckpt(50));
                assert_eq!(&snapshot[..], b"s");
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn prefers_local_when_close_enough() {
        let mut m = RecoveryManager::new(vec![p(1), p(2)], Some(ckpt(45)), 10);
        let RecoveryStep::Query { seq, .. } = m.start().unwrap() else {
            panic!()
        };
        // Remote is ahead by 5 ≤ 10: stay local.
        match m.on_info(p(1), seq, Some(ckpt(50))) {
            Some(Err(Resolution::UseLocal(Some(c)))) => assert_eq!(c, ckpt(45)),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn no_remote_checkpoints_means_local_or_fresh() {
        let mut m = RecoveryManager::new(vec![p(1), p(2)], None, 0);
        let RecoveryStep::Query { seq, .. } = m.start().unwrap() else {
            panic!()
        };
        match m.on_info(p(2), seq, None) {
            Some(Err(Resolution::UseLocal(None))) => {}
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn lost_snapshot_restarts_query() {
        let mut m = RecoveryManager::new(vec![p(1), p(2)], None, 0);
        let RecoveryStep::Query { seq, .. } = m.start().unwrap() else {
            panic!()
        };
        let RecoveryStep::Fetch { seq: fseq, id, .. } =
            m.on_info(p(1), seq, Some(ckpt(9))).unwrap().unwrap()
        else {
            panic!()
        };
        match m.on_data(fseq, &id, None) {
            Some(Ok(RecoveryStep::Query { .. })) => {}
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(m.phase(), RecoveryPhase::Querying);
    }

    #[test]
    fn stale_and_foreign_replies_ignored() {
        let mut m = RecoveryManager::new(vec![p(1), p(2)], None, 0);
        let RecoveryStep::Query { seq, .. } = m.start().unwrap() else {
            panic!()
        };
        assert!(m.on_info(p(1), seq + 9, Some(ckpt(1))).is_none());
        assert!(m.on_info(p(7), seq, Some(ckpt(1))).is_none());
    }

    #[test]
    fn retry_targets_missing_peers() {
        let mut m = RecoveryManager::new(vec![p(1), p(2), p(3), p(4)], None, 0);
        let RecoveryStep::Query { seq, .. } = m.start().unwrap() else {
            panic!()
        };
        // Quorum of 5 is 3 → two replies are not enough.
        assert!(m.on_info(p(1), seq, None).is_none());
        match m.on_retry() {
            Some(RecoveryStep::Query { peers, .. }) => {
                assert_eq!(peers, vec![p(2), p(3), p(4)]);
            }
            other => panic!("unexpected {other:?}"),
        }
    }
}
