//! Coordinated log trimming (Section 5.2).
//!
//! The coordinator of a multicast group periodically asks the replicas
//! subscribed to the group for the highest consensus instance their
//! durable checkpoints cover (`k[x]_p`). Once a quorum `Q_T` answers, the
//! coordinator computes `K[x]_T = min` over the answers (Predicate 2) and
//! authorizes the ring's acceptors to delete log entries up to it.
//!
//! To guarantee `Q_T ∩ Q_R ≠ ∅` for *every* partition that may later
//! recover a replica (Predicates 4–5), this implementation strengthens
//! the quorum: it waits for a majority of subscribers **within each
//! partition** among the group's subscribers, not just a global majority.

use crate::config::ClusterConfig;
use crate::types::{GroupId, InstanceId, ProcessId, RingId};
use std::collections::BTreeMap;

/// The trim protocol state at a group's coordinator.
#[derive(Debug)]
pub struct TrimCoordinator {
    group: GroupId,
    ring: RingId,
    /// Partition groups among the subscribers of `group`.
    partitions: Vec<Vec<ProcessId>>,
    seq: u64,
    replies: BTreeMap<ProcessId, InstanceId>,
    last_trim: InstanceId,
}

impl TrimCoordinator {
    /// Folds the trim round state into a fingerprint (see
    /// [`crate::digest`]). The static partition layout is excluded.
    pub(crate) fn digest_into(&self, h: &mut crate::digest::Fnv1a) {
        use crate::digest::DigestInto;
        self.group.digest_into(h);
        self.ring.digest_into(h);
        h.write_u64(self.seq);
        self.replies.digest_into(h);
        self.last_trim.digest_into(h);
    }

    /// Builds the trim coordinator for `group` from the cluster layout.
    pub fn new(group: GroupId, ring: RingId, config: &ClusterConfig) -> Self {
        let subscribers = config.subscribers_of(group);
        let mut partitions: Vec<Vec<ProcessId>> = Vec::new();
        for &p in &subscribers {
            let members: Vec<ProcessId> = config
                .partition_of(p)
                .into_iter()
                .filter(|q| subscribers.contains(q))
                .collect();
            if !partitions.contains(&members) {
                partitions.push(members);
            }
        }
        Self {
            group,
            ring,
            partitions,
            seq: 0,
            replies: BTreeMap::new(),
            last_trim: InstanceId::ZERO,
        }
    }

    /// The group being trimmed.
    pub fn group(&self) -> GroupId {
        self.group
    }

    /// The ring whose acceptors get trimmed.
    pub fn ring(&self) -> RingId {
        self.ring
    }

    /// The highest instance already authorized for trimming.
    pub fn last_trim(&self) -> InstanceId {
        self.last_trim
    }

    /// All subscribers queried by the protocol.
    pub fn subscribers(&self) -> Vec<ProcessId> {
        let mut all: Vec<ProcessId> = self.partitions.iter().flatten().copied().collect();
        all.sort_unstable();
        all.dedup();
        all
    }

    /// Starts a new round: returns the query sequence number and the
    /// replicas to query.
    pub fn begin_round(&mut self) -> (u64, Vec<ProcessId>) {
        self.seq += 1;
        self.replies.clear();
        (self.seq, self.subscribers())
    }

    /// Records a reply. When the per-partition majorities are all in,
    /// returns the new trim watermark `K[x]_T` (only if it advances).
    pub fn on_reply(&mut self, from: ProcessId, seq: u64, safe: InstanceId) -> Option<InstanceId> {
        if seq != self.seq {
            return None;
        }
        self.replies.insert(from, safe);
        let quorate = self.partitions.iter().all(|members| {
            let majority = members.len() / 2 + 1;
            members
                .iter()
                .filter(|p| self.replies.contains_key(p))
                .count()
                >= majority
        });
        if !quorate {
            return None;
        }
        // Predicate 2: K ≤ k[x]_p for every p in the quorum — take the
        // minimum over everything heard this round.
        let k = self.replies.values().copied().min()?;
        if k > self.last_trim {
            self.last_trim = k;
            // Close the round so late replies do not re-trigger.
            self.seq += 1;
            self.replies.clear();
            Some(k)
        } else {
            None
        }
    }
}

/// The replica-side responder: answers trim queries with the watermark of
/// the replica's last **durable** checkpoint for the queried group.
#[derive(Debug, Default)]
pub struct TrimResponder {
    stable: Option<crate::recovery::CheckpointId>,
}

impl TrimResponder {
    /// A responder with no durable checkpoint yet (reports instance 0,
    /// which keeps acceptor logs untrimmed — correct but unbounded).
    pub fn new() -> Self {
        Self::default()
    }

    /// Updates the durable checkpoint after a successful checkpoint
    /// persist.
    pub fn set_stable(&mut self, ckpt: crate::recovery::CheckpointId) {
        self.stable = Some(ckpt);
    }

    /// The last durable checkpoint, if any.
    pub fn stable(&self) -> Option<&crate::recovery::CheckpointId> {
        self.stable.as_ref()
    }

    /// The safe instance to report for `group` (`k[x]_p`).
    pub fn safe_instance(&self, group: GroupId) -> InstanceId {
        self.stable
            .as_ref()
            .map_or(InstanceId::ZERO, |c| c.mark_of(group))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{ClusterConfig, RingSpec, Roles};

    fn p(i: u32) -> ProcessId {
        ProcessId::new(i)
    }

    fn g(i: u16) -> GroupId {
        GroupId::new(i)
    }

    fn i(n: u64) -> InstanceId {
        InstanceId::new(n)
    }

    fn three_replica_config() -> ClusterConfig {
        crate::config::single_ring(3, crate::config::RingTuning::default())
    }

    #[test]
    fn trims_at_quorum_minimum() {
        let cfg = three_replica_config();
        let mut tc = TrimCoordinator::new(g(0), RingId::new(0), &cfg);
        let (seq, targets) = tc.begin_round();
        assert_eq!(targets, vec![p(0), p(1), p(2)]);
        assert_eq!(tc.on_reply(p(0), seq, i(10)), None);
        // Majority of the single partition {0,1,2} is 2: second reply
        // closes the round with the minimum.
        assert_eq!(tc.on_reply(p(1), seq, i(7)), Some(i(7)));
        assert_eq!(tc.last_trim(), i(7));
    }

    #[test]
    fn stale_replies_ignored() {
        let cfg = three_replica_config();
        let mut tc = TrimCoordinator::new(g(0), RingId::new(0), &cfg);
        let (seq, _) = tc.begin_round();
        assert_eq!(tc.on_reply(p(0), seq + 5, i(10)), None);
        assert_eq!(tc.on_reply(p(0), seq, i(10)), None);
        assert_eq!(tc.on_reply(p(1), seq, i(10)), Some(i(10)));
        // A late third reply cannot re-trigger the closed round.
        assert_eq!(tc.on_reply(p(2), seq, i(3)), None);
    }

    #[test]
    fn watermark_only_advances() {
        let cfg = three_replica_config();
        let mut tc = TrimCoordinator::new(g(0), RingId::new(0), &cfg);
        let (seq, _) = tc.begin_round();
        tc.on_reply(p(0), seq, i(10));
        tc.on_reply(p(1), seq, i(10));
        assert_eq!(tc.last_trim(), i(10));
        let (seq2, _) = tc.begin_round();
        tc.on_reply(p(0), seq2, i(9));
        assert_eq!(tc.on_reply(p(1), seq2, i(9)), None);
        assert_eq!(tc.last_trim(), i(10));
    }

    #[test]
    fn per_partition_majorities_required() {
        // Five subscribers of g1: partition A = {0,1} (subscribe to g0
        // and g1), partition B = {2,3,4} (subscribe to g1 only).
        let mut spec0 = RingSpec::new(RingId::new(0));
        let mut spec1 = RingSpec::new(RingId::new(1));
        for n in 0..5 {
            spec0 = spec0.member(p(n), Roles::ALL);
            spec1 = spec1.member(p(n), Roles::ALL);
        }
        let mut b = ClusterConfig::builder()
            .ring(spec0)
            .ring(spec1)
            .group(g(0), RingId::new(0))
            .group(g(1), RingId::new(1));
        for n in 0..2 {
            b = b.subscribe(p(n), g(0)).subscribe(p(n), g(1));
        }
        for n in 2..5 {
            b = b.subscribe(p(n), g(1));
        }
        let cfg = b.build().unwrap();
        let mut tc = TrimCoordinator::new(g(1), RingId::new(1), &cfg);
        let (seq, targets) = tc.begin_round();
        assert_eq!(targets.len(), 5);
        // A global majority (3 of 5) drawn only from partition B must
        // NOT trigger: partition A has no majority yet.
        assert_eq!(tc.on_reply(p(2), seq, i(5)), None);
        assert_eq!(tc.on_reply(p(3), seq, i(6)), None);
        assert_eq!(tc.on_reply(p(4), seq, i(7)), None);
        // One reply from partition A ({0,1} majority = 1... no: 2/2+1=2).
        assert_eq!(tc.on_reply(p(0), seq, i(4)), None);
        assert_eq!(tc.on_reply(p(1), seq, i(9)), Some(i(4)));
    }

    #[test]
    fn responder_reports_stable_marks() {
        use crate::recovery::CheckpointId;
        let mut r = TrimResponder::new();
        assert_eq!(r.safe_instance(g(0)), InstanceId::ZERO);
        r.set_stable(CheckpointId {
            marks: vec![(g(0), i(12)), (g(1), i(11))],
            cursor_group: 1,
            cursor_used: 0,
        });
        assert_eq!(r.safe_instance(g(0)), i(12));
        assert_eq!(r.safe_instance(g(1)), i(11));
        assert_eq!(r.safe_instance(g(9)), InstanceId::ZERO);
    }
}
