//! Recovery: checkpoint identifiers, coordinated log trimming and replica
//! recovery (Section 5 of the paper).
//!
//! Recovery in Multi-Ring Paxos is more elaborate than in a single ring
//! because replicas subscribed to different group sets evolve through
//! different state sequences. The protocol pieces are:
//!
//! * [`CheckpointId`] — a replica checkpoint is identified by a *tuple* of
//!   consensus instances, one entry per subscribed group, plus the
//!   deterministic-merge cursor; Predicate 1 of the paper (monotonicity
//!   along the round-robin delivery order) makes tuples of one partition
//!   totally ordered.
//! * [`trim::TrimCoordinator`] — the coordinator of a group periodically
//!   collects checkpoint watermarks from a quorum `Q_T` of subscribed
//!   replicas and authorizes acceptors to trim their logs up to the
//!   quorum minimum (Predicate 2).
//! * [`manager::RecoveryManager`] — a recovering replica queries a quorum
//!   `Q_R` of partition peers, installs the most recent checkpoint
//!   available (Predicate 3) and retransmits the missing instances from
//!   acceptors; `Q_T ∩ Q_R ≠ ∅` guarantees those instances have not been
//!   trimmed (Predicates 4–5).

pub mod manager;
pub mod trim;

pub use manager::{RecoveryManager, RecoveryPhase, RecoveryStep, Resolution};
pub use trim::{TrimCoordinator, TrimResponder};

use crate::types::{GroupId, InstanceId};
use std::cmp::Ordering;
use std::fmt;

/// Identifies a replica checkpoint: for every subscribed group, the
/// highest consensus instance whose effects are reflected in the
/// checkpointed state, plus the position of the deterministic merge
/// cursor at checkpoint time.
///
/// Within one partition (replicas with identical subscription sets),
/// checkpoints are totally ordered (Predicate 1 of the paper):
/// comparing any two, one dominates the other component-wise.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct CheckpointId {
    /// `(group, highest reflected instance)` pairs, sorted by group id
    /// (the round-robin order of the merge).
    pub marks: Vec<(GroupId, InstanceId)>,
    /// Index (into the sorted group list) of the group the merge would
    /// consume from next.
    pub cursor_group: u32,
    /// Instances already consumed from that group in the current
    /// `M`-instance window.
    pub cursor_used: u32,
}

impl CheckpointId {
    /// A checkpoint covering nothing (fresh replica).
    pub fn genesis(groups: &[GroupId]) -> Self {
        Self {
            marks: groups.iter().map(|&g| (g, InstanceId::ZERO)).collect(),
            cursor_group: 0,
            cursor_used: 0,
        }
    }

    /// The watermark for `group`, or [`InstanceId::ZERO`] if the group is
    /// not part of this checkpoint.
    pub fn mark_of(&self, group: GroupId) -> InstanceId {
        self.marks
            .iter()
            .find(|&&(g, _)| g == group)
            .map_or(InstanceId::ZERO, |&(_, i)| i)
    }

    /// Whether both checkpoints cover the same group set (i.e. belong to
    /// the same partition).
    pub fn same_partition(&self, other: &CheckpointId) -> bool {
        self.marks.len() == other.marks.len()
            && self
                .marks
                .iter()
                .zip(&other.marks)
                .all(|(&(g, _), &(h, _))| g == h)
    }

    /// Whether every mark of `self` is at least the corresponding mark of
    /// `other` (the `≥` of Predicate 3).
    pub fn dominates(&self, other: &CheckpointId) -> bool {
        self.same_partition(other)
            && self
                .marks
                .iter()
                .zip(&other.marks)
                .all(|(&(_, a), &(_, b))| a >= b)
    }

    /// Total order among checkpoints of the same partition.
    ///
    /// Predicate 1 guarantees that valid checkpoints are componentwise
    /// comparable; for robustness against malformed inputs this falls
    /// back to lexicographic comparison when neither dominates.
    pub fn cmp_total(&self, other: &CheckpointId) -> Ordering {
        if self.dominates(other) && other.dominates(self) {
            Ordering::Equal
        } else if self.dominates(other) {
            Ordering::Greater
        } else if other.dominates(self) {
            Ordering::Less
        } else {
            // Not expected for checkpoints produced by the protocol;
            // compare lexicographically so the order stays total.
            self.marks
                .iter()
                .map(|&(_, i)| i)
                .cmp(other.marks.iter().map(|&(_, i)| i))
        }
    }

    /// Total consensus instances covered by this checkpoint, summed over
    /// groups. Useful as a cheap progress metric.
    pub fn total_instances(&self) -> u64 {
        self.marks.iter().map(|&(_, i)| i.value()).sum()
    }

    /// Checks Predicate 1 of the paper: since the merge consumes groups
    /// round-robin in group-id order, for any two subscribed groups
    /// `x < y` the checkpoint must satisfy `k[x] >= k[y]` whenever both
    /// groups have seen the same number of merge rounds.
    ///
    /// With `m` instances consumed per group per round, a valid cursor
    /// position implies marks differ by at most `m` across groups and are
    /// non-increasing... more precisely: groups before the cursor are one
    /// window ahead. This verifies exactly that shape.
    pub fn cursor_consistent(&self, m: u32) -> bool {
        let m = u64::from(m);
        if self.marks.is_empty() {
            return self.cursor_group == 0 && self.cursor_used == 0;
        }
        if self.cursor_group as usize >= self.marks.len() || u64::from(self.cursor_used) > m {
            return false;
        }
        // Let r be the number of completed windows of the cursor group.
        let cg = self.cursor_group as usize;
        let r = (self.marks[cg]
            .1
            .value()
            .saturating_sub(u64::from(self.cursor_used)))
            / m;
        for (i, &(_, mark)) in self.marks.iter().enumerate() {
            let expect = match i.cmp(&cg) {
                Ordering::Less => (r + 1) * m,
                Ordering::Equal => r * m + u64::from(self.cursor_used),
                Ordering::Greater => r * m,
            };
            if mark.value() != expect {
                return false;
            }
        }
        true
    }
}

impl fmt::Display for CheckpointId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ckpt[")?;
        for (i, (g, inst)) in self.marks.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{}:{}", g.value(), inst.value())?;
        }
        write!(f, "]@{}+{}", self.cursor_group, self.cursor_used)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn g(i: u16) -> GroupId {
        GroupId::new(i)
    }

    fn ckpt(marks: &[(u16, u64)], cg: u32, cu: u32) -> CheckpointId {
        CheckpointId {
            marks: marks
                .iter()
                .map(|&(gr, i)| (g(gr), InstanceId::new(i)))
                .collect(),
            cursor_group: cg,
            cursor_used: cu,
        }
    }

    #[test]
    fn genesis_covers_nothing() {
        let c = CheckpointId::genesis(&[g(0), g(1)]);
        assert_eq!(c.mark_of(g(0)), InstanceId::ZERO);
        assert_eq!(c.mark_of(g(1)), InstanceId::ZERO);
        assert_eq!(c.mark_of(g(9)), InstanceId::ZERO);
        assert_eq!(c.total_instances(), 0);
        assert!(c.cursor_consistent(1));
    }

    #[test]
    fn domination_and_total_order() {
        let a = ckpt(&[(0, 5), (1, 5)], 0, 0);
        let b = ckpt(&[(0, 6), (1, 5)], 1, 0);
        assert!(b.dominates(&a));
        assert!(!a.dominates(&b));
        assert_eq!(a.cmp_total(&b), Ordering::Less);
        assert_eq!(b.cmp_total(&a), Ordering::Greater);
        assert_eq!(a.cmp_total(&a.clone()), Ordering::Equal);
    }

    #[test]
    fn different_partitions_do_not_dominate() {
        let a = ckpt(&[(0, 5)], 0, 0);
        let b = ckpt(&[(0, 5), (1, 5)], 0, 0);
        assert!(!a.same_partition(&b));
        assert!(!a.dominates(&b));
        assert!(!b.dominates(&a));
    }

    #[test]
    fn predicate1_shape_m1() {
        // With M = 1 and groups (0, 1): valid states alternate.
        assert!(ckpt(&[(0, 0), (1, 0)], 0, 0).cursor_consistent(1));
        assert!(ckpt(&[(0, 1), (1, 0)], 1, 0).cursor_consistent(1));
        assert!(ckpt(&[(0, 1), (1, 1)], 0, 0).cursor_consistent(1));
        assert!(ckpt(&[(0, 2), (1, 1)], 1, 0).cursor_consistent(1));
        // k[0] < k[1] violates Predicate 1.
        assert!(!ckpt(&[(0, 0), (1, 1)], 0, 0).cursor_consistent(1));
        // Jumping two ahead violates the round-robin shape.
        assert!(!ckpt(&[(0, 2), (1, 0)], 1, 0).cursor_consistent(1));
    }

    #[test]
    fn predicate1_shape_m3_mid_window() {
        // M = 3, cursor inside group 1's window: group 0 finished its
        // window (6 = 2 rounds * 3), group 1 consumed 3 + 2.
        let c = ckpt(&[(0, 6), (1, 5)], 1, 2);
        assert!(c.cursor_consistent(3));
        assert!(!c.cursor_consistent(1));
    }

    #[test]
    fn cursor_bounds_checked() {
        assert!(!ckpt(&[(0, 0)], 1, 0).cursor_consistent(1));
        assert!(!ckpt(&[(0, 0)], 0, 5).cursor_consistent(1));
    }

    #[test]
    fn display_is_compact() {
        let c = ckpt(&[(0, 5), (1, 4)], 1, 0);
        assert_eq!(c.to_string(), "ckpt[0:5,1:4]@1+0");
    }
}
