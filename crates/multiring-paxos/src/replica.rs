//! State-machine replication on top of atomic multicast: a [`Replica`]
//! couples a [`Node`] with an [`Application`], executing deliveries,
//! answering clients, taking periodic checkpoints, answering the trim
//! protocol, serving checkpoints to recovering peers, and running the
//! recovery protocol itself after a crash.

use crate::app::{Application, Delivery, Reply};
use crate::config::ClusterConfig;
use crate::event::{Action, Event, Message, PersistRecord, PersistToken, StateMachine, TimerKind};
use crate::node::Node;
use crate::paxos::AcceptorRecovery;
use crate::recovery::{CheckpointId, RecoveryManager, RecoveryStep, Resolution, TrimResponder};
use crate::types::{ProcessId, RingId, Time};
use bytes::Bytes;
use std::collections::BTreeMap;
use std::fmt;

/// Checkpointing policy of a replica.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub struct CheckpointPolicy {
    /// Take a checkpoint every this many microseconds (0 disables
    /// periodic checkpoints).
    pub interval_us: u64,
    /// Whether checkpoints are flushed synchronously (the paper's
    /// MRP-Store writes them synchronously so acceptor logs can be
    /// trimmed safely).
    pub sync: bool,
}

impl Default for CheckpointPolicy {
    fn default() -> Self {
        Self {
            interval_us: 5_000_000,
            sync: true,
        }
    }
}

/// How many instances per ring to request in one backfill batch after
/// installing a checkpoint.
const BACKFILL_CHUNK: u64 = 10_000;

/// Prefer the local checkpoint unless a remote one is ahead by more than
/// this many total instances (Section 5.1's "too old" heuristic).
const PREFER_LOCAL_WITHIN: u64 = 1_000;

/// A replicated service endpoint: node + deterministic application.
pub struct Replica<A> {
    node: Node,
    app: A,
    policy: CheckpointPolicy,
    responder: TrimResponder,
    /// Last durable checkpoint (id + snapshot), served to peers.
    stable: Option<(CheckpointId, Bytes)>,
    /// Checkpoints written but not yet durable, keyed by persist token.
    pending_ckpt: BTreeMap<PersistToken, (CheckpointId, Bytes)>,
    ckpt_token_seed: u64,
    recovery: Option<RecoveryManager>,
    /// Statistics: commands executed since start.
    executed: u64,
    /// Statistics: checkpoints completed since start.
    checkpoints_taken: u64,
}

impl<A: fmt::Debug> fmt::Debug for Replica<A> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Replica")
            .field("node", &self.node)
            .field("app", &self.app)
            .field("recovering", &self.recovery.is_some())
            .finish_non_exhaustive()
    }
}

impl<A: Application> Replica<A> {
    /// A fresh replica (first boot).
    pub fn new(me: ProcessId, config: ClusterConfig, app: A, policy: CheckpointPolicy) -> Self {
        Self {
            node: Node::new(me, config),
            app,
            policy,
            responder: TrimResponder::new(),
            stable: None,
            pending_ckpt: BTreeMap::new(),
            ckpt_token_seed: u64::MAX / 2, // disjoint from node tokens
            recovery: None,
            executed: 0,
            checkpoints_taken: 0,
        }
    }

    /// A replica restarting after a crash: `acceptor_logs` is the state
    /// recovered from the acceptor's stable log and `local_checkpoint`
    /// the replica's last durable checkpoint, both loaded by the runtime
    /// from stable storage. The recovery protocol of Section 5.2 runs on
    /// [`Event::Start`].
    pub fn recovering(
        me: ProcessId,
        config: ClusterConfig,
        app: A,
        policy: CheckpointPolicy,
        acceptor_logs: BTreeMap<RingId, AcceptorRecovery>,
        local_checkpoint: Option<(CheckpointId, Bytes)>,
    ) -> Self {
        let partition = config.partition_of(me);
        let peers: Vec<ProcessId> = partition.into_iter().filter(|&p| p != me).collect();
        let local_id = local_checkpoint.as_ref().map(|(id, _)| id.clone());
        let node = Node::with_recovery(me, config, acceptor_logs);
        let mut responder = TrimResponder::new();
        if let Some(id) = &local_id {
            responder.set_stable(id.clone());
        }
        Self {
            node,
            app,
            policy,
            responder,
            stable: local_checkpoint,
            pending_ckpt: BTreeMap::new(),
            ckpt_token_seed: u64::MAX / 2,
            recovery: Some(RecoveryManager::new(peers, local_id, PREFER_LOCAL_WITHIN)),
            executed: 0,
            checkpoints_taken: 0,
        }
    }

    /// The wrapped node.
    pub fn node(&self) -> &Node {
        &self.node
    }

    /// Mutable access to the wrapped node (e.g. to multicast).
    pub fn node_mut(&mut self) -> &mut Node {
        &mut self.node
    }

    /// The application.
    pub fn app(&self) -> &A {
        &self.app
    }

    /// Commands executed since start.
    pub fn executed(&self) -> u64 {
        self.executed
    }

    /// Checkpoints completed since start.
    pub fn checkpoints_taken(&self) -> u64 {
        self.checkpoints_taken
    }

    /// Whether the replica is still running the recovery protocol.
    pub fn is_recovering(&self) -> bool {
        self.recovery.is_some()
    }

    /// The last durable checkpoint id, if any.
    pub fn stable_checkpoint(&self) -> Option<&CheckpointId> {
        self.stable.as_ref().map(|(id, _)| id)
    }

    fn emit_step(&self, step: RecoveryStep, out: &mut Vec<Action>) {
        match step {
            RecoveryStep::Query { seq, peers } => {
                for p in peers {
                    out.push(Action::Send {
                        to: p,
                        msg: Message::CheckpointQuery { seq },
                    });
                }
            }
            RecoveryStep::Fetch { seq, from, id } => {
                out.push(Action::Send {
                    to: from,
                    msg: Message::CheckpointFetch { seq, id },
                });
            }
        }
        out.push(Action::SetTimer {
            after_us: 500_000,
            timer: TimerKind::RecoveryRetry,
        });
    }

    fn apply_resolution(&mut self, now: Time, resolution: Resolution, out: &mut Vec<Action>) {
        match resolution {
            Resolution::UseLocal(Some(id)) => {
                if let Some((_, snapshot)) = self.stable.clone() {
                    self.app.restore(&snapshot);
                }
                self.node.install_watermarks(&id);
            }
            Resolution::UseLocal(None) => {
                // Fresh start: nothing to install.
            }
            Resolution::Install { id, snapshot } => {
                self.app.restore(&snapshot);
                self.node.install_watermarks(&id);
                self.responder.set_stable(id.clone());
                self.stable = Some((id, snapshot));
            }
        }
        self.recovery = None;
        self.node.hold_repair(false);
        out.extend(self.node.request_backfill(now, BACKFILL_CHUNK));
    }

    fn take_checkpoint(&mut self, out: &mut Vec<Action>) {
        let id = self.node.watermarks();
        if self
            .stable
            .as_ref()
            .is_some_and(|(stable_id, _)| *stable_id == id)
        {
            return; // nothing new to checkpoint
        }
        let snapshot = self.app.snapshot();
        self.ckpt_token_seed += 1;
        let token = PersistToken(self.ckpt_token_seed);
        self.pending_ckpt
            .insert(token, (id.clone(), snapshot.clone()));
        out.push(Action::Persist {
            record: PersistRecord::Checkpoint { id, snapshot },
            sync: self.policy.sync,
            token,
        });
    }

    /// Post-processes node actions: deliveries are executed against the
    /// application and turned into client responses.
    fn post_process(&mut self, actions: Vec<Action>, out: &mut Vec<Action>) {
        for action in actions {
            match action {
                Action::Deliver {
                    group,
                    instance,
                    value,
                } => {
                    let delivery = Delivery {
                        group,
                        instance,
                        value,
                    };
                    self.executed += 1;
                    for Reply {
                        client,
                        request,
                        payload,
                    } in self.app.execute(&delivery)
                    {
                        out.push(Action::Respond {
                            client,
                            request,
                            payload,
                        });
                    }
                }
                other => out.push(other),
            }
        }
    }
}

impl<A: Application> StateMachine for Replica<A> {
    fn on_event(&mut self, now: Time, event: Event) -> Vec<Action> {
        let mut out = Vec::new();
        match event {
            Event::Start => {
                if let Some(recovery) = self.recovery.as_mut() {
                    self.node.hold_repair(true);
                    match recovery.start() {
                        Ok(step) => self.emit_step(step, &mut out),
                        Err(resolution) => self.apply_resolution(now, resolution, &mut out),
                    }
                }
                let actions = self.node.on_event(now, Event::Start);
                self.post_process(actions, &mut out);
                if self.policy.interval_us > 0 {
                    out.push(Action::SetTimer {
                        after_us: self.policy.interval_us,
                        timer: TimerKind::CheckpointTick,
                    });
                }
            }
            Event::Timer(TimerKind::CheckpointTick) => {
                if self.recovery.is_none() {
                    self.take_checkpoint(&mut out);
                }
                if self.policy.interval_us > 0 {
                    out.push(Action::SetTimer {
                        after_us: self.policy.interval_us,
                        timer: TimerKind::CheckpointTick,
                    });
                }
            }
            Event::Timer(TimerKind::RecoveryRetry) => {
                if let Some(recovery) = self.recovery.as_mut() {
                    if let Some(step) = recovery.on_retry() {
                        self.emit_step(step, &mut out);
                    }
                }
            }
            Event::PersistDone(token) if self.pending_ckpt.contains_key(&token) => {
                let (id, snapshot) = self
                    .pending_ckpt
                    .remove(&token)
                    .expect("checked contains_key");
                self.checkpoints_taken += 1;
                self.responder.set_stable(id.clone());
                self.stable = Some((id, snapshot));
            }
            Event::Message { from, msg } => match msg {
                Message::TrimQuery { group, seq } => {
                    out.push(Action::Send {
                        to: from,
                        msg: Message::TrimReply {
                            group,
                            seq,
                            safe: self.responder.safe_instance(group),
                        },
                    });
                }
                Message::CheckpointQuery { seq } => {
                    out.push(Action::Send {
                        to: from,
                        msg: Message::CheckpointInfo {
                            seq,
                            checkpoint: self.stable.as_ref().map(|(id, _)| id.clone()),
                        },
                    });
                }
                Message::CheckpointFetch { seq, id } => {
                    let snapshot = self
                        .stable
                        .as_ref()
                        .filter(|(stable_id, _)| *stable_id == id)
                        .map(|(_, snap)| snap.clone());
                    out.push(Action::Send {
                        to: from,
                        msg: Message::CheckpointData { seq, id, snapshot },
                    });
                }
                Message::CheckpointInfo { seq, checkpoint } => {
                    if let Some(recovery) = self.recovery.as_mut() {
                        if let Some(step) = recovery.on_info(from, seq, checkpoint) {
                            match step {
                                Ok(step) => self.emit_step(step, &mut out),
                                Err(resolution) => self.apply_resolution(now, resolution, &mut out),
                            }
                        }
                    }
                }
                Message::CheckpointData { seq, id, snapshot } => {
                    if let Some(recovery) = self.recovery.as_mut() {
                        if let Some(step) = recovery.on_data(seq, &id, snapshot) {
                            match step {
                                Ok(step) => self.emit_step(step, &mut out),
                                Err(resolution) => self.apply_resolution(now, resolution, &mut out),
                            }
                        }
                    }
                }
                msg => {
                    let actions = self.node.on_event(now, Event::Message { from, msg });
                    self.post_process(actions, &mut out);
                }
            },
            event => {
                let actions = self.node.on_event(now, event);
                self.post_process(actions, &mut out);
            }
        }
        out
    }

    fn process_id(&self) -> ProcessId {
        self.node.me()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{single_ring, RingTuning};
    use crate::types::{ClientId, GroupId};
    use bytes::BufMut;

    /// A toy application: appends every command byte to a buffer and
    /// echoes it back.
    #[derive(Default, Debug)]
    struct Echo {
        log: Vec<u8>,
    }

    impl Application for Echo {
        fn execute(&mut self, delivery: &Delivery) -> Vec<Reply> {
            let Some((client, request, cmd)) =
                crate::app::decode_command(delivery.value.payload.clone())
            else {
                return Vec::new();
            };
            self.log.extend_from_slice(&cmd);
            vec![Reply {
                client,
                request,
                payload: cmd,
            }]
        }

        fn snapshot(&self) -> Bytes {
            let mut b = bytes::BytesMut::new();
            b.put_slice(&self.log);
            b.freeze()
        }

        fn restore(&mut self, snapshot: &Bytes) {
            self.log = snapshot.to_vec();
        }
    }

    fn config() -> ClusterConfig {
        single_ring(
            1,
            RingTuning {
                lambda: 0,
                ..RingTuning::default()
            },
        )
    }

    #[test]
    fn singleton_replica_executes_and_responds() {
        let mut r = Replica::new(
            ProcessId::new(0),
            config(),
            Echo::default(),
            CheckpointPolicy {
                interval_us: 0,
                sync: true,
            },
        );
        let mut actions = r.on_event(Time::ZERO, Event::Start);
        // Singleton ring: phase 1 completes locally with no sends.
        actions.retain(|a| matches!(a, Action::Respond { .. }));
        assert!(actions.is_empty());
        let out = r.on_event(
            Time::ZERO,
            Event::Message {
                from: ProcessId::new(9),
                msg: Message::Request {
                    client: ClientId::new(7),
                    request: 3,
                    groups: vec![GroupId::new(0)],
                    payload: Bytes::from_static(b"x"),
                },
            },
        );
        let responds: Vec<&Action> = out
            .iter()
            .filter(|a| matches!(a, Action::Respond { .. }))
            .collect();
        assert_eq!(responds.len(), 1);
        match responds[0] {
            Action::Respond {
                client,
                request,
                payload,
            } => {
                assert_eq!(*client, ClientId::new(7));
                assert_eq!(*request, 3);
                assert_eq!(&payload[..], b"x");
            }
            _ => unreachable!(),
        }
        assert_eq!(r.executed(), 1);
        assert_eq!(r.app().log, vec![b'x']);
    }

    #[test]
    fn checkpoint_lifecycle_and_trim_reply() {
        let mut r = Replica::new(
            ProcessId::new(0),
            config(),
            Echo::default(),
            CheckpointPolicy {
                interval_us: 1_000,
                sync: true,
            },
        );
        r.on_event(Time::ZERO, Event::Start);
        r.on_event(
            Time::ZERO,
            Event::Message {
                from: ProcessId::new(9),
                msg: Message::Request {
                    client: ClientId::new(1),
                    request: 1,
                    groups: vec![GroupId::new(0)],
                    payload: Bytes::from_static(b"y"),
                },
            },
        );
        // Before any checkpoint, trim replies report instance 0.
        let out = r.on_event(
            Time::ZERO,
            Event::Message {
                from: ProcessId::new(2),
                msg: Message::TrimQuery {
                    group: GroupId::new(0),
                    seq: 1,
                },
            },
        );
        assert!(matches!(
            out[0],
            Action::Send { msg: Message::TrimReply { safe, .. }, .. }
            if safe == crate::types::InstanceId::ZERO
        ));
        // Checkpoint tick persists, completion makes it durable.
        let out = r.on_event(
            Time::from_millis(1),
            Event::Timer(TimerKind::CheckpointTick),
        );
        let token = out
            .iter()
            .find_map(|a| match a {
                Action::Persist { token, sync, .. } => {
                    assert!(*sync);
                    Some(*token)
                }
                _ => None,
            })
            .expect("checkpoint persisted");
        assert_eq!(r.checkpoints_taken(), 0);
        r.on_event(Time::from_millis(2), Event::PersistDone(token));
        assert_eq!(r.checkpoints_taken(), 1);
        let id = r.stable_checkpoint().unwrap().clone();
        assert_eq!(id.mark_of(GroupId::new(0)).value(), 1);
        // Trim replies now report the durable watermark.
        let out = r.on_event(
            Time::from_millis(3),
            Event::Message {
                from: ProcessId::new(2),
                msg: Message::TrimQuery {
                    group: GroupId::new(0),
                    seq: 2,
                },
            },
        );
        assert!(matches!(
            out[0],
            Action::Send { msg: Message::TrimReply { safe, .. }, .. }
            if safe.value() == 1
        ));
        // Peers can query and fetch the checkpoint.
        let out = r.on_event(
            Time::from_millis(4),
            Event::Message {
                from: ProcessId::new(5),
                msg: Message::CheckpointQuery { seq: 9 },
            },
        );
        assert!(matches!(
            &out[0],
            Action::Send { msg: Message::CheckpointInfo { checkpoint: Some(c), .. }, .. }
            if *c == id
        ));
        let out = r.on_event(
            Time::from_millis(5),
            Event::Message {
                from: ProcessId::new(5),
                msg: Message::CheckpointFetch {
                    seq: 10,
                    id: id.clone(),
                },
            },
        );
        assert!(matches!(
            &out[0],
            Action::Send { msg: Message::CheckpointData { snapshot: Some(s), .. }, .. }
            if &s[..] == b"y"
        ));
    }

    #[test]
    fn unchanged_state_skips_checkpoint() {
        let mut r = Replica::new(
            ProcessId::new(0),
            config(),
            Echo::default(),
            CheckpointPolicy {
                interval_us: 1_000,
                sync: false,
            },
        );
        r.on_event(Time::ZERO, Event::Start);
        let out = r.on_event(
            Time::from_millis(1),
            Event::Timer(TimerKind::CheckpointTick),
        );
        let token = out.iter().find_map(|a| match a {
            Action::Persist { token, .. } => Some(*token),
            _ => None,
        });
        // First checkpoint covers the empty watermark tuple: allowed.
        let token = token.expect("initial checkpoint");
        r.on_event(Time::from_millis(1), Event::PersistDone(token));
        // No new deliveries: the next tick produces no persist.
        let out = r.on_event(
            Time::from_millis(2),
            Event::Timer(TimerKind::CheckpointTick),
        );
        assert!(out.iter().all(|a| !matches!(a, Action::Persist { .. })));
    }
}
