//! State fingerprinting for the model checker (`mrp-check`).
//!
//! A digest is an FNV-1a hash over a *canonical serialization* of the
//! protocol-relevant state of a node: every field that influences future
//! protocol behavior is folded in, in a fixed field order, with
//! collections walked in their deterministic (`BTreeMap`/`BTreeSet`)
//! iteration order. Telemetry, latency samples and event-trace rings are
//! deliberately excluded — two schedules that commute into the same
//! protocol state must produce the same digest even though they counted
//! different things along the way, otherwise state deduplication in the
//! checker's DFS degrades to nothing.
//!
//! The serialization is not self-describing and never leaves the
//! process; it exists only to be hashed. Composite types implement
//! [`DigestInto`]; protocol structs with private fields expose
//! `digest_into` inherent methods in their own modules and the engines
//! surface the result as `state_digest()` on the `AmcastEngine` trait.

use crate::event::{Action, Message, PersistToken, TimerKind};
use crate::types::{
    Ballot, ClientId, ConsensusValue, GroupId, InstanceId, ProcessId, RingId, SeqFilter, Time,
    Value, ValueId,
};
use bytes::Bytes;
use std::collections::{BTreeMap, BTreeSet, VecDeque};

/// The 64-bit FNV-1a offset basis.
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// The 64-bit FNV-1a prime.
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// An incremental 64-bit FNV-1a hasher.
///
/// FNV-1a is not cryptographic; it is chosen for speed and simplicity —
/// a collision merely makes the checker skip a state it should have
/// explored, it can never manufacture a spurious violation.
#[derive(Clone, Debug)]
pub struct Fnv1a {
    state: u64,
}

impl Default for Fnv1a {
    fn default() -> Self {
        Self::new()
    }
}

impl Fnv1a {
    /// Starts a hash at the FNV offset basis.
    pub const fn new() -> Self {
        Self { state: FNV_OFFSET }
    }

    /// Folds raw bytes into the hash.
    pub fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.state ^= u64::from(b);
            self.state = self.state.wrapping_mul(FNV_PRIME);
        }
    }

    /// Folds one byte into the hash.
    pub fn write_u8(&mut self, v: u8) {
        self.state ^= u64::from(v);
        self.state = self.state.wrapping_mul(FNV_PRIME);
    }

    /// Folds a `u64` into the hash (little-endian).
    pub fn write_u64(&mut self, v: u64) {
        self.write(&v.to_le_bytes());
    }

    /// Folds a `usize` into the hash.
    pub fn write_usize(&mut self, v: usize) {
        self.write_u64(v as u64);
    }

    /// The current hash value.
    pub const fn finish(&self) -> u64 {
        self.state
    }
}

/// Types that can fold themselves into an [`Fnv1a`] hash canonically.
///
/// Implementations must be deterministic functions of the value alone:
/// same value, same byte stream, on every run and platform.
pub trait DigestInto {
    /// Folds `self` into `h`.
    fn digest_into(&self, h: &mut Fnv1a);
}

macro_rules! digest_uint {
    ($($t:ty),*) => {$(
        impl DigestInto for $t {
            fn digest_into(&self, h: &mut Fnv1a) {
                h.write_u64(u64::from(*self));
            }
        }
    )*};
}

digest_uint!(u8, u16, u32, u64, bool);

impl DigestInto for usize {
    fn digest_into(&self, h: &mut Fnv1a) {
        h.write_usize(*self);
    }
}

impl DigestInto for Bytes {
    fn digest_into(&self, h: &mut Fnv1a) {
        h.write_usize(self.len());
        h.write(self);
    }
}

impl DigestInto for &str {
    fn digest_into(&self, h: &mut Fnv1a) {
        h.write_usize(self.len());
        h.write(self.as_bytes());
    }
}

impl<T: DigestInto> DigestInto for Option<T> {
    fn digest_into(&self, h: &mut Fnv1a) {
        match self {
            None => h.write_u8(0),
            Some(v) => {
                h.write_u8(1);
                v.digest_into(h);
            }
        }
    }
}

impl<T: DigestInto> DigestInto for Vec<T> {
    fn digest_into(&self, h: &mut Fnv1a) {
        h.write_usize(self.len());
        for v in self {
            v.digest_into(h);
        }
    }
}

impl<T: DigestInto> DigestInto for VecDeque<T> {
    fn digest_into(&self, h: &mut Fnv1a) {
        h.write_usize(self.len());
        for v in self {
            v.digest_into(h);
        }
    }
}

impl<T: DigestInto> DigestInto for BTreeSet<T> {
    fn digest_into(&self, h: &mut Fnv1a) {
        h.write_usize(self.len());
        for v in self {
            v.digest_into(h);
        }
    }
}

impl<K: DigestInto, V: DigestInto> DigestInto for BTreeMap<K, V> {
    fn digest_into(&self, h: &mut Fnv1a) {
        h.write_usize(self.len());
        for (k, v) in self {
            k.digest_into(h);
            v.digest_into(h);
        }
    }
}

impl<A: DigestInto, B: DigestInto> DigestInto for (A, B) {
    fn digest_into(&self, h: &mut Fnv1a) {
        self.0.digest_into(h);
        self.1.digest_into(h);
    }
}

impl<A: DigestInto, B: DigestInto, C: DigestInto> DigestInto for (A, B, C) {
    fn digest_into(&self, h: &mut Fnv1a) {
        self.0.digest_into(h);
        self.1.digest_into(h);
        self.2.digest_into(h);
    }
}

macro_rules! digest_id {
    ($($t:ty),*) => {$(
        impl DigestInto for $t {
            fn digest_into(&self, h: &mut Fnv1a) {
                h.write_u64(u64::from(self.value()));
            }
        }
    )*};
}

digest_id!(ProcessId, RingId, GroupId, ClientId, InstanceId);

impl DigestInto for Time {
    fn digest_into(&self, h: &mut Fnv1a) {
        h.write_u64(self.as_micros());
    }
}

impl DigestInto for Ballot {
    fn digest_into(&self, h: &mut Fnv1a) {
        h.write_u64(u64::from(self.round()));
        self.node().digest_into(h);
    }
}

impl DigestInto for ValueId {
    fn digest_into(&self, h: &mut Fnv1a) {
        self.proposer.digest_into(h);
        h.write_u64(self.seq);
    }
}

impl DigestInto for Value {
    fn digest_into(&self, h: &mut Fnv1a) {
        self.id.digest_into(h);
        self.group.digest_into(h);
        self.payload.digest_into(h);
    }
}

impl DigestInto for ConsensusValue {
    fn digest_into(&self, h: &mut Fnv1a) {
        match self {
            ConsensusValue::Values(vs) => {
                h.write_u8(1);
                vs.digest_into(h);
            }
            ConsensusValue::Skip => h.write_u8(2),
        }
    }
}

impl DigestInto for SeqFilter {
    fn digest_into(&self, h: &mut Fnv1a) {
        h.write_u64(self.watermark());
        h.write_usize(self.sparse_len());
        for s in self.sparse() {
            h.write_u64(s);
        }
    }
}

impl DigestInto for PersistToken {
    fn digest_into(&self, h: &mut Fnv1a) {
        h.write_u64(self.0);
    }
}

/// A compact, `Ord`-able key identifying a [`TimerKind`]: discriminant
/// plus the ring it concerns (0 for process-wide timers).
///
/// `TimerKind` itself deliberately does not implement `Ord`; the checker
/// needs a canonical order for its choice enumeration and schedules, and
/// the digest needs a stable encoding, so both use this key.
pub fn timer_kind_key(kind: TimerKind) -> (u8, u16) {
    match kind {
        TimerKind::Delta(r) => (1, r.value()),
        TimerKind::FlushLinks(r) => (2, r.value()),
        TimerKind::GapCheck(r) => (3, r.value()),
        TimerKind::TrimTick(r) => (4, r.value()),
        TimerKind::ProposalResend(r) => (5, r.value()),
        TimerKind::CheckpointTick => (6, 0),
        TimerKind::RecoveryRetry => (7, 0),
        TimerKind::SubmitFlush => (8, 0),
    }
}

impl DigestInto for TimerKind {
    fn digest_into(&self, h: &mut Fnv1a) {
        let (tag, ring) = timer_kind_key(*self);
        h.write_u8(tag);
        h.write_u64(u64::from(ring));
    }
}

impl DigestInto for Message {
    fn digest_into(&self, h: &mut Fnv1a) {
        // The wire codec is already a canonical serialization of every
        // message (round-trip tested), so reuse it rather than
        // duplicating the per-variant field walk here.
        crate::codec::encode_to_bytes(self).digest_into(h);
    }
}

impl DigestInto for Action {
    fn digest_into(&self, h: &mut Fnv1a) {
        match self {
            Action::Send { to, msg } => {
                h.write_u8(1);
                to.digest_into(h);
                msg.digest_into(h);
            }
            Action::SetTimer { after_us, timer } => {
                h.write_u8(2);
                h.write_u64(*after_us);
                timer.digest_into(h);
            }
            Action::Persist { token, sync, .. } => {
                // The record's content is a function of the state that
                // produced it, which is hashed elsewhere; token + sync
                // flag pin the gating behavior.
                h.write_u8(3);
                token.digest_into(h);
                sync.digest_into(h);
            }
            Action::TrimStorage { ring, upto } => {
                h.write_u8(4);
                ring.digest_into(h);
                upto.digest_into(h);
            }
            Action::Deliver {
                group,
                instance,
                value,
            } => {
                h.write_u8(5);
                group.digest_into(h);
                instance.digest_into(h);
                value.digest_into(h);
            }
            Action::Respond {
                client,
                request,
                payload,
            } => {
                h.write_u8(6);
                client.digest_into(h);
                h.write_u64(*request);
                payload.digest_into(h);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv_matches_reference_vectors() {
        // Published FNV-1a test vectors.
        let mut h = Fnv1a::new();
        assert_eq!(h.finish(), 0xcbf2_9ce4_8422_2325);
        h.write(b"a");
        assert_eq!(h.finish(), 0xaf63_dc4c_8601_ec8c);
        let mut h = Fnv1a::new();
        h.write(b"foobar");
        assert_eq!(h.finish(), 0x85944171f73967e8);
    }

    #[test]
    fn collections_digest_by_content() {
        let mut a = Fnv1a::new();
        let mut b = Fnv1a::new();
        let m1: BTreeMap<u64, u64> = [(1, 10), (2, 20)].into_iter().collect();
        let m2: BTreeMap<u64, u64> = [(2, 20), (1, 10)].into_iter().collect();
        m1.digest_into(&mut a);
        m2.digest_into(&mut b);
        assert_eq!(a.finish(), b.finish());

        let mut c = Fnv1a::new();
        let m3: BTreeMap<u64, u64> = [(1, 10), (2, 21)].into_iter().collect();
        m3.digest_into(&mut c);
        assert_ne!(a.finish(), c.finish());
    }

    #[test]
    fn length_prefix_distinguishes_nesting() {
        // [[1], []] vs [[], [1]] must not collide.
        let x: Vec<Vec<u64>> = vec![vec![1], vec![]];
        let y: Vec<Vec<u64>> = vec![vec![], vec![1]];
        let mut a = Fnv1a::new();
        let mut b = Fnv1a::new();
        x.digest_into(&mut a);
        y.digest_into(&mut b);
        assert_ne!(a.finish(), b.finish());
    }

    #[test]
    fn timer_keys_are_distinct() {
        use std::collections::BTreeSet;
        let kinds = [
            TimerKind::Delta(RingId::new(0)),
            TimerKind::Delta(RingId::new(1)),
            TimerKind::FlushLinks(RingId::new(0)),
            TimerKind::GapCheck(RingId::new(0)),
            TimerKind::TrimTick(RingId::new(0)),
            TimerKind::ProposalResend(RingId::new(0)),
            TimerKind::CheckpointTick,
            TimerKind::RecoveryRetry,
            TimerKind::SubmitFlush,
        ];
        let keys: BTreeSet<(u8, u16)> = kinds.iter().map(|&k| timer_kind_key(k)).collect();
        assert_eq!(keys.len(), kinds.len());
    }
}
