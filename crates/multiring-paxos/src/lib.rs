//! # Multi-Ring Paxos: atomic multicast for global and scalable systems
//!
//! This crate implements the **Multi-Ring Paxos** atomic multicast protocol
//! described in *"Building global and scalable systems with atomic
//! multicast"* (Benz, Jalili Marandi, Pedone, Garbinato — Middleware 2014).
//!
//! Atomic multicast is a communication abstraction defined by two
//! primitives, `multicast(group, message)` and `deliver(message)`, that
//! guarantees *agreement* (all correct subscribers of a group deliver the
//! same messages), *validity* (messages from correct processes are
//! delivered) and *acyclic order* (the global delivery relation has no
//! cycles, so any two processes deliver common messages in the same order).
//! Unlike atomic **broadcast**, a message is only handled by the rings its
//! group maps to, which is what makes the primitive scale with partitioned
//! state.
//!
//! Multi-Ring Paxos composes one [Ring Paxos](crate::ring) instance per
//! multicast group and coordinates them at the learners with a
//! [deterministic merge](crate::multiring) strategy (round-robin over
//! subscribed rings, `M` consensus instances at a time), complemented by
//! *rate leveling*: coordinators of slow rings periodically propose `skip`
//! (null) instances so that merge never stalls on an idle ring.
//!
//! ## Sans-io design
//!
//! Every protocol participant is a pure state machine: it consumes
//! [`Event`]s (message received, timer fired, disk write completed) and
//! emits [`Action`]s (send a message, set a timer, persist a record,
//! deliver a value). No sockets, threads or clocks appear in protocol
//! code. The same state machines therefore run unchanged under
//!
//! * `mrp-sim` — a deterministic discrete-event simulator used by the test
//!   suite and by the benchmark harness that regenerates the paper's
//!   figures, and
//! * `mrp-transport` — a real TCP runtime (thread-per-peer, crossbeam
//!   queues) for actual deployments.
//!
//! ## Quickstart
//!
//! ```
//! use multiring_paxos::config::{ClusterConfig, RingSpec, Roles};
//! use multiring_paxos::types::{GroupId, ProcessId, RingId};
//!
//! // Three processes, all of them proposer + acceptor + learner, one ring.
//! let p: Vec<ProcessId> = (0..3).map(ProcessId::new).collect();
//! let config = ClusterConfig::builder()
//!     .ring(RingSpec::new(RingId::new(0))
//!         .member(p[0], Roles::ALL)
//!         .member(p[1], Roles::ALL)
//!         .member(p[2], Roles::ALL))
//!     .group(GroupId::new(0), RingId::new(0))
//!     .subscribe(p[0], GroupId::new(0))
//!     .subscribe(p[1], GroupId::new(0))
//!     .subscribe(p[2], GroupId::new(0))
//!     .build()?;
//! assert_eq!(config.rings().len(), 1);
//! # Ok::<(), multiring_paxos::config::ConfigError>(())
//! ```
//!
//! The crate is organized bottom-up:
//!
//! * [`types`] — identifiers, time, values, ballots.
//! * [`config`] — cluster/ring configuration and validation.
//! * [`event`] — the [`Event`]/[`Action`] vocabulary of the state machines.
//! * [`paxos`] — single-ring consensus roles (coordinator, acceptor).
//! * [`ring`] — the Ring Paxos overlay: unidirectional ring routing,
//!   batching, decisions, learner gap handling.
//! * [`multiring`] — group subscriptions, deterministic merge, rate
//!   leveling.
//! * [`recovery`] — checkpoint tuples, coordinated log trimming and
//!   replica recovery (Section 5 of the paper).
//! * [`node`] — the composite per-process state machine.
//! * [`replica`] — couples a [`node::Node`] with an [`app::Application`]
//!   (state-machine replication, checkpointing, recovery).
//! * [`codec`] — binary wire encoding shared by transports and simulator.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod app;
pub mod codec;
pub mod config;
pub mod digest;
pub mod event;
pub mod multiring;
pub mod node;
pub mod paxos;
pub mod recovery;
pub mod replica;
pub mod ring;
pub mod types;

pub use app::Application;
pub use config::{ClusterConfig, ClusterConfigBuilder, RingSpec, Roles};
pub use event::{Action, Event};
pub use node::Node;
pub use replica::Replica;
pub use types::{Ballot, GroupId, InstanceId, ProcessId, RingId, Time, Value};

/// Commonly used items, for glob import in examples and tests.
pub mod prelude {
    pub use crate::app::Application;
    pub use crate::config::{ClusterConfig, RingSpec, Roles};
    pub use crate::event::{Action, Event};
    pub use crate::node::Node;
    pub use crate::replica::Replica;
    pub use crate::types::{Ballot, GroupId, InstanceId, ProcessId, RingId, Time, Value, ValueId};
}
