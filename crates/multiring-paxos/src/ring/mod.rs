//! The Ring Paxos overlay: unidirectional ring routing for one ring.
//!
//! [`RingState`] hosts the consensus roles a process plays in one ring
//! and implements the message choreography of Section 4 / Figure 2 of the
//! paper:
//!
//! * proposals circulate along the ring until they reach the coordinator;
//! * the coordinator emits a combined Phase 2A/2B message that travels
//!   from acceptor to acceptor accumulating votes;
//! * the *last acceptor* (the one farthest from the coordinator along the
//!   ring) replaces a majority-voted Phase 2 message with a decision;
//! * decisions circulate until every member has seen them, carrying the
//!   value only on the arc whose members did not see the Phase 2 message
//!   (each link transports each value exactly once);
//! * messages for several consensus instances may be packed into larger
//!   frames (link batching).

pub mod learner;

pub use learner::{ReleasedRange, RepairOutcome, RingLearner};

use crate::config::{LinkBatching, RingConfig, StorageMode};
use crate::event::{Action, Message, PersistRecord, PersistToken, TimerKind};
use crate::paxos::acceptor::InstanceRange;
use crate::paxos::{Acceptor, AcceptorRecovery, Coordinator, Phase1Outcome, Phase2Outcome};
use crate::types::{
    Ballot, ConsensusValue, GroupId, InstanceId, ProcessId, RingId, Time, Value, ValueId,
};
use std::collections::{BTreeMap, BTreeSet};

/// Effect sink passed through ring processing; the node translates it
/// into the final action list, routing self-sends back into itself and
/// registering persist-gated actions.
#[derive(Debug, Default)]
pub struct Effects {
    /// Plain actions, in order.
    pub actions: Vec<Action>,
    /// Decided ranges released by learners, to feed the merge.
    pub released: Vec<(RingId, ReleasedRange)>,
    /// Signals that acceptors trimmed instances a learner still needs
    /// (replica recovery must fetch a checkpoint).
    pub need_checkpoint: Option<(RingId, InstanceId)>,
    /// Gated actions keyed by persist token: released on `PersistDone`.
    pub gated: Vec<(PersistToken, Vec<Action>)>,
    next_token: u64,
}

impl Effects {
    /// A sink whose persist tokens start after `token_seed`.
    pub fn new(token_seed: u64) -> Self {
        Self {
            next_token: token_seed,
            ..Self::default()
        }
    }

    /// Tokens consumed so far (the node persists this as its seed).
    pub fn token_seed(&self) -> u64 {
        self.next_token
    }

    fn send(&mut self, to: ProcessId, msg: Message) {
        self.actions.push(Action::Send { to, msg });
    }

    fn timer(&mut self, after_us: u64, timer: TimerKind) {
        self.actions.push(Action::SetTimer { after_us, timer });
    }

    /// Emits a persist action and returns its token.
    fn persist(&mut self, record: PersistRecord, sync: bool) -> PersistToken {
        let token = PersistToken(self.next_token);
        self.next_token += 1;
        self.actions.push(Action::Persist {
            record,
            sync,
            token,
        });
        token
    }

    /// Runs `build` to collect actions, then either gates them behind a
    /// synchronous persist of `record` or emits them directly, according
    /// to the storage `mode`.
    fn persist_then(&mut self, mode: StorageMode, record: PersistRecord, follow_ups: Vec<Action>) {
        match mode {
            StorageMode::InMemory => self.actions.extend(follow_ups),
            StorageMode::AsyncDisk => {
                self.persist(record, false);
                self.actions.extend(follow_ups);
            }
            StorageMode::SyncDisk => {
                let token = self.persist(record, true);
                self.gated.push((token, follow_ups));
            }
        }
    }
}

#[derive(Debug, Default)]
struct ProposerState {
    next_seq: u64,
    /// Unacknowledged values by sequence number.
    pending: BTreeMap<u64, Value>,
    resend_armed: bool,
}

impl ProposerState {
    /// Acknowledges pending values strictly by the *contents* of a
    /// decision. Acking by instance number would be unsound: after a
    /// coordinator change an instance a value was once proposed at can
    /// be re-decided with a different value (e.g. a hole-filling skip),
    /// and the original value would be silently dropped. A value whose
    /// decisions this proposer never sees resolved simply keeps being
    /// resent; the coordinator's per-proposer sequence filter makes the
    /// resends idempotent.
    fn observe_decision(&mut self, me: ProcessId, value: Option<&ConsensusValue>) {
        if let Some(ConsensusValue::Values(vs)) = value {
            for v in vs {
                if v.id.proposer == me {
                    self.pending.remove(&v.id.seq);
                }
            }
        }
    }
}

#[derive(Debug)]
struct Batcher {
    cfg: LinkBatching,
    buf: Vec<Message>,
    bytes: usize,
    armed: bool,
}

/// Per-ring protocol state of one process: the roles it plays plus the
/// routing logic of the unidirectional ring overlay.
#[derive(Debug)]
pub struct RingState {
    me: ProcessId,
    cfg: RingConfig,
    group: GroupId,
    /// Current believed coordinator (starts at the configured one; updated
    /// by `CoordinatorChange` events from the coordination service).
    coordinator_proc: ProcessId,
    highest_ballot_seen: Ballot,
    coordinator: Option<Coordinator>,
    acceptor: Option<Acceptor>,
    learner: Option<RingLearner>,
    proposer: Option<ProposerState>,
    batcher: Option<Batcher>,
    gap_timer_armed: bool,
    /// When the current Phase 1 round started (for retry under loss).
    phase1_at: Time,
    /// Rotates the acceptor asked for retransmissions, so a learner is
    /// not stuck on an acceptor that lost its history.
    repair_attempts: u32,
    /// Members currently reported down by the coordination service; the
    /// overlay routes around them.
    down: BTreeSet<ProcessId>,
}

impl RingState {
    /// Folds the ring's protocol state into a fingerprint (see
    /// [`crate::digest`]): role state machines, believed coordinator,
    /// link-batch buffers and repair/timer arming. The static
    /// `RingConfig` is excluded (it never changes under exploration).
    pub(crate) fn digest_into(&self, h: &mut crate::digest::Fnv1a) {
        use crate::digest::DigestInto;
        self.me.digest_into(h);
        self.group.digest_into(h);
        self.coordinator_proc.digest_into(h);
        self.highest_ballot_seen.digest_into(h);
        match &self.coordinator {
            None => h.write_u8(0),
            Some(c) => {
                h.write_u8(1);
                c.digest_into(h);
            }
        }
        match &self.acceptor {
            None => h.write_u8(0),
            Some(a) => {
                h.write_u8(1);
                a.digest_into(h);
            }
        }
        match &self.learner {
            None => h.write_u8(0),
            Some(l) => {
                h.write_u8(1);
                l.digest_into(h);
            }
        }
        match &self.proposer {
            None => h.write_u8(0),
            Some(p) => {
                h.write_u8(1);
                h.write_u64(p.next_seq);
                p.pending.digest_into(h);
                p.resend_armed.digest_into(h);
            }
        }
        match &self.batcher {
            None => h.write_u8(0),
            Some(b) => {
                h.write_u8(1);
                b.buf.digest_into(h);
                h.write_usize(b.bytes);
                b.armed.digest_into(h);
            }
        }
        self.gap_timer_armed.digest_into(h);
        self.phase1_at.digest_into(h);
        h.write_u64(u64::from(self.repair_attempts));
        self.down.digest_into(h);
    }

    /// Creates the per-ring state for process `me`. `subscribed` controls
    /// whether the learner role is activated (a learner member that does
    /// not subscribe to the ring's group only forwards traffic).
    pub fn new(me: ProcessId, group: GroupId, cfg: RingConfig, subscribed: bool) -> Self {
        Self::with_recovery(me, group, cfg, subscribed, None)
    }

    /// Like [`RingState::new`], but restores the acceptor from the state
    /// recovered from its stable log.
    pub fn with_recovery(
        me: ProcessId,
        group: GroupId,
        cfg: RingConfig,
        subscribed: bool,
        acceptor_log: Option<AcceptorRecovery>,
    ) -> Self {
        let roles = cfg.roles_of(me);
        let acceptor = roles.is_acceptor().then(|| match acceptor_log {
            Some(rec) => Acceptor::recover(cfg.id(), rec),
            None => Acceptor::new(cfg.id()),
        });
        let learner = (roles.is_learner() && subscribed).then(|| RingLearner::new(cfg.id()));
        let proposer = roles.is_proposer().then(ProposerState::default);
        let batcher = cfg.tuning().link_batching.map(|b| Batcher {
            cfg: b,
            buf: Vec::new(),
            bytes: 0,
            armed: false,
        });
        let coordinator_proc = cfg.coordinator();
        Self {
            me,
            cfg,
            group,
            coordinator_proc,
            highest_ballot_seen: Ballot::ZERO,
            coordinator: None,
            acceptor,
            learner,
            proposer,
            batcher,
            gap_timer_armed: false,
            phase1_at: Time::ZERO,
            repair_attempts: 0,
            down: BTreeSet::new(),
        }
    }

    /// Updates the set of members the coordination service reports as
    /// down; ring traffic is routed around them from now on.
    pub fn set_down(&mut self, down: impl IntoIterator<Item = ProcessId>) {
        self.down = down.into_iter().collect();
        self.down.remove(&self.me);
    }

    /// Live members (not reported down).
    fn live_len(&self) -> usize {
        self.cfg.len() - self.down.len()
    }

    /// The ring id.
    pub fn id(&self) -> RingId {
        self.cfg.id()
    }

    /// The multicast group served by this ring.
    pub fn group(&self) -> GroupId {
        self.group
    }

    /// The ring configuration.
    pub fn config(&self) -> &RingConfig {
        &self.cfg
    }

    /// The process currently believed to coordinate the ring.
    pub fn coordinator_proc(&self) -> ProcessId {
        self.coordinator_proc
    }

    /// The learner, if this process learns for the ring.
    pub fn learner(&self) -> Option<&RingLearner> {
        self.learner.as_ref()
    }

    /// Mutable learner access (used by replica recovery to fast-forward).
    pub fn learner_mut(&mut self) -> Option<&mut RingLearner> {
        self.learner.as_mut()
    }

    /// The acceptor, if this process accepts for the ring.
    pub fn acceptor(&self) -> Option<&Acceptor> {
        self.acceptor.as_ref()
    }

    /// The active coordinator state, if this process coordinates.
    pub fn coordinator(&self) -> Option<&Coordinator> {
        self.coordinator.as_ref()
    }

    /// Values submitted by the local proposer that have not been
    /// acknowledged as decided yet.
    pub fn proposer_pending(&self) -> usize {
        self.proposer.as_ref().map_or(0, |p| p.pending.len())
    }

    fn successor(&self) -> ProcessId {
        let mut succ = self.cfg.successor(self.me);
        // Route around members reported down (at most n-1 skips).
        for _ in 0..self.cfg.len() {
            if succ == self.me || !self.down.contains(&succ) {
                break;
            }
            succ = self.cfg.successor(succ);
        }
        succ
    }

    /// The *live* acceptor farthest from the current coordinator: the
    /// member that observes majorities and emits decisions.
    fn last_acceptor(&self) -> ProcessId {
        self.cfg
            .acceptors()
            .iter()
            .filter(|a| !self.down.contains(a))
            .max_by_key(|&&a| self.cfg.distance(self.coordinator_proc, a))
            .copied()
            .unwrap_or(self.coordinator_proc)
    }

    /// Whether `p` lies on the Phase 2 arc (coordinator → last acceptor)
    /// relative to the current coordinator.
    fn on_phase2_arc(&self, p: ProcessId) -> bool {
        self.cfg.distance(self.coordinator_proc, p)
            <= self
                .cfg
                .distance(self.coordinator_proc, self.last_acceptor())
    }

    /// Initial activity on process start: if this process is the
    /// configured coordinator, run Phase 1.
    pub fn on_start(&mut self, now: Time, fx: &mut Effects) {
        if self.me == self.coordinator_proc {
            self.become_coordinator(now, Ballot::ZERO, fx);
        }
        if self.learner.is_some() {
            // Periodic low-rate safety net for gaps that form without
            // further traffic behind them.
            self.arm_gap_timer(fx);
        }
    }

    /// The coordination service designated `who` as the ring coordinator.
    pub fn set_coordinator(
        &mut self,
        now: Time,
        who: ProcessId,
        supersedes: Ballot,
        fx: &mut Effects,
    ) {
        self.coordinator_proc = who;
        if who == self.me {
            self.become_coordinator(now, supersedes.max(self.highest_ballot_seen), fx);
        } else {
            self.coordinator = None;
        }
    }

    fn become_coordinator(&mut self, now: Time, supersedes: Ballot, fx: &mut Effects) {
        let tuning = *self.cfg.tuning();
        let majority = self.cfg.majority();
        let coord = self
            .coordinator
            .get_or_insert_with(|| Coordinator::new(self.cfg.id(), self.me, majority, tuning));
        self.phase1_at = now;
        let (ballot, from) = coord.start(now, supersedes);
        self.highest_ballot_seen = self.highest_ballot_seen.max(ballot);
        for &a in self.cfg.acceptors() {
            fx.send(
                a,
                Message::Phase1A {
                    ring: self.cfg.id(),
                    ballot,
                    from,
                },
            );
        }
        // Rate leveling and re-proposal housekeeping.
        fx.timer(self.cfg.tuning().delta_us, TimerKind::Delta(self.cfg.id()));
    }

    /// Multicasts `payload` to the ring's group via the local proposer.
    /// Returns the assigned value id, or `None` if this process has no
    /// proposer role here.
    pub fn multicast(
        &mut self,
        now: Time,
        payload: bytes::Bytes,
        fx: &mut Effects,
    ) -> Option<ValueId> {
        let group = self.group;
        let resend_us = self.cfg.tuning().proposal_resend_us;
        let ring_id = self.cfg.id();
        let proposer = self.proposer.as_mut()?;
        proposer.next_seq += 1;
        let id = ValueId::new(self.me, proposer.next_seq);
        let value = Value::new(id, group, payload);
        proposer.pending.insert(id.seq, value.clone());
        if !proposer.resend_armed {
            proposer.resend_armed = true;
            fx.timer(resend_us, TimerKind::ProposalResend(ring_id));
        }
        self.submit_or_forward(now, vec![value], 0, fx);
        Some(id)
    }

    /// Multicasts a batch of payloads to the ring's group in one
    /// submission: all values are minted and handed to the coordinator
    /// (or forwarded) together, so instance packing can amortize the
    /// consensus round across the whole batch. Returns the assigned
    /// value ids in payload order, or `None` if this process has no
    /// proposer role here.
    pub fn multicast_many(
        &mut self,
        now: Time,
        payloads: Vec<bytes::Bytes>,
        fx: &mut Effects,
    ) -> Option<Vec<ValueId>> {
        let group = self.group;
        let resend_us = self.cfg.tuning().proposal_resend_us;
        let ring_id = self.cfg.id();
        let proposer = self.proposer.as_mut()?;
        let mut ids = Vec::with_capacity(payloads.len());
        let mut values = Vec::with_capacity(payloads.len());
        for payload in payloads {
            proposer.next_seq += 1;
            let id = ValueId::new(self.me, proposer.next_seq);
            let value = Value::new(id, group, payload);
            proposer.pending.insert(id.seq, value.clone());
            ids.push(id);
            values.push(value);
        }
        if !values.is_empty() {
            if !proposer.resend_armed {
                proposer.resend_armed = true;
                fx.timer(resend_us, TimerKind::ProposalResend(ring_id));
            }
            self.submit_or_forward(now, values, 0, fx);
        }
        Some(ids)
    }

    fn submit_or_forward(&mut self, now: Time, values: Vec<Value>, hops: u32, fx: &mut Effects) {
        if self.me == self.coordinator_proc {
            if let Some(c) = self.coordinator.as_mut() {
                let proposals = c.submit(now, values);
                self.emit_proposals(now, proposals, fx);
            }
            // Not started yet: drop; proposer resend recovers the values.
        } else if hops < self.live_len() as u32 {
            let msg = Message::Forward {
                ring: self.cfg.id(),
                values,
                hops: hops + 1,
            };
            self.send_ring(msg, fx);
        }
    }

    fn emit_proposals(&mut self, now: Time, proposals: Vec<InstanceRange>, fx: &mut Effects) {
        let Some(c) = self.coordinator.as_ref() else {
            return;
        };
        let ballot = c.ballot();
        for p in proposals {
            let msg = Message::Phase2 {
                ring: self.cfg.id(),
                ballot,
                first: p.first,
                count: p.count,
                value: p.value,
                votes: 0,
            };
            // The coordinator is itself an acceptor: vote locally first.
            self.handle_phase2(now, msg, fx);
        }
    }

    fn send_ring(&mut self, msg: Message, fx: &mut Effects) {
        let succ = self.successor();
        if let Some(b) = self.batcher.as_mut() {
            let size = crate::codec::encoded_len(&msg);
            b.buf.push(msg);
            b.bytes += size;
            if b.bytes >= b.cfg.max_bytes {
                Self::flush_batch(self.me, succ, b, fx);
            } else if !b.armed {
                b.armed = true;
                fx.timer(b.cfg.max_delay_us, TimerKind::FlushLinks(self.cfg.id()));
            }
        } else {
            fx.send(succ, msg);
        }
    }

    fn flush_batch(_me: ProcessId, succ: ProcessId, b: &mut Batcher, fx: &mut Effects) {
        if b.buf.is_empty() {
            return;
        }
        let msgs = std::mem::take(&mut b.buf);
        b.bytes = 0;
        if msgs.len() == 1 {
            fx.send(succ, msgs.into_iter().next().expect("len checked"));
        } else {
            fx.send(succ, Message::Batch(msgs));
        }
    }

    fn arm_gap_timer(&mut self, fx: &mut Effects) {
        if !self.gap_timer_armed {
            self.gap_timer_armed = true;
            let timeout = self.cfg.tuning().gap_timeout_us;
            fx.timer(timeout, TimerKind::GapCheck(self.cfg.id()));
        }
    }

    /// Handles a ring-scoped message addressed to this process.
    pub fn on_message(&mut self, now: Time, from: ProcessId, msg: Message, fx: &mut Effects) {
        match msg {
            Message::Forward { values, hops, .. } => self.submit_or_forward(now, values, hops, fx),
            Message::Phase1A {
                ballot, from: f, ..
            } => self.handle_phase1a(ballot, f, fx),
            Message::Phase1B {
                ballot,
                accepted,
                trimmed,
                ..
            } => self.handle_phase1b(now, from, ballot, accepted, trimmed, fx),
            msg @ Message::Phase2 { .. } => self.handle_phase2(now, msg, fx),
            Message::Decision {
                first,
                count,
                value,
                hops,
                ..
            } => self.handle_decision(now, first, count, value, hops, fx),
            Message::Retransmit { from: f, to, .. } => {
                if let Some(a) = self.acceptor.as_ref() {
                    let (decided, trimmed) = a.serve_retransmit(f, to);
                    fx.send(
                        from,
                        Message::RetransmitReply {
                            ring: self.cfg.id(),
                            decided,
                            trimmed,
                        },
                    );
                }
            }
            Message::RetransmitReply {
                decided, trimmed, ..
            } => {
                if let Some(l) = self.learner.as_mut() {
                    let (released, outcome) = l.on_retransmit_reply(now, decided, trimmed);
                    for r in released {
                        fx.released.push((self.cfg.id(), r));
                    }
                    if let RepairOutcome::NeedCheckpoint { trimmed } = outcome {
                        fx.need_checkpoint = Some((self.cfg.id(), trimmed));
                    }
                    if self.learner.as_ref().is_some_and(RingLearner::has_gap) {
                        self.arm_gap_timer(fx);
                    }
                }
            }
            Message::TrimCommand { upto, .. } => {
                if let Some(a) = self.acceptor.as_mut() {
                    a.trim(upto);
                    fx.actions.push(Action::TrimStorage {
                        ring: self.cfg.id(),
                        upto,
                    });
                }
            }
            _ => {}
        }
    }

    fn handle_phase1a(&mut self, ballot: Ballot, from_inst: InstanceId, fx: &mut Effects) {
        self.highest_ballot_seen = self.highest_ballot_seen.max(ballot);
        let mode = self.cfg.tuning().storage;
        let Some(a) = self.acceptor.as_mut() else {
            return;
        };
        match a.on_phase1a(ballot, from_inst) {
            Phase1Outcome::Promised { accepted } => {
                let trimmed = a.trimmed();
                let reply = Action::Send {
                    to: ballot.node(),
                    msg: Message::Phase1B {
                        ring: self.cfg.id(),
                        ballot,
                        from: from_inst,
                        accepted,
                        trimmed,
                    },
                };
                fx.persist_then(
                    mode,
                    PersistRecord::Promise {
                        ring: self.cfg.id(),
                        ballot,
                        from: from_inst,
                    },
                    vec![reply],
                );
            }
            Phase1Outcome::Rejected { promised } => {
                // Tell the stale coordinator which ballot to supersede.
                fx.send(
                    ballot.node(),
                    Message::Phase1B {
                        ring: self.cfg.id(),
                        ballot: promised,
                        from: from_inst,
                        accepted: Vec::new(),
                        trimmed: InstanceId::ZERO,
                    },
                );
            }
        }
    }

    fn handle_phase1b(
        &mut self,
        now: Time,
        from: ProcessId,
        ballot: Ballot,
        accepted: Vec<(InstanceId, Ballot, ConsensusValue)>,
        trimmed: InstanceId,
        fx: &mut Effects,
    ) {
        self.highest_ballot_seen = self.highest_ballot_seen.max(ballot);
        let Some(c) = self.coordinator.as_mut() else {
            return;
        };
        if ballot == c.ballot() {
            let proposals = c.on_phase1b(now, from, ballot, accepted, trimmed);
            self.emit_proposals(now, proposals, fx);
        } else if ballot > c.ballot() {
            // An acceptor promised a higher ballot: restart Phase 1 above
            // it (we remain the designated coordinator).
            self.become_coordinator(now, ballot, fx);
        }
    }

    fn handle_phase2(&mut self, now: Time, msg: Message, fx: &mut Effects) {
        let Message::Phase2 {
            ballot,
            first,
            count,
            value,
            mut votes,
            ..
        } = msg
        else {
            unreachable!("handle_phase2 called with a non-Phase2 message");
        };
        self.highest_ballot_seen = self.highest_ballot_seen.max(ballot);
        if let Some(l) = self.learner.as_mut() {
            l.on_phase2_value(first, count, &value);
        }
        let mode = self.cfg.tuning().storage;
        let mut voted = false;
        if let Some(a) = self.acceptor.as_mut() {
            match a.on_phase2(ballot, first, count, &value) {
                Phase2Outcome::Voted => {
                    votes += 1;
                    voted = true;
                }
                Phase2Outcome::Rejected { .. } => {}
            }
        }
        let majority = self.cfg.majority() as u32;
        let i_am_last = self.me == self.last_acceptor() && self.acceptor.is_some();
        if i_am_last {
            if votes >= majority {
                // Replace the Phase 2 message by a decision.
                let follow_ups = self.decision_sends(first, count, &value);
                let record = PersistRecord::Vote {
                    ring: self.cfg.id(),
                    ballot,
                    first,
                    count,
                    value: value.clone(),
                };
                if voted {
                    fx.persist_then(mode, record, follow_ups);
                } else {
                    fx.actions.extend(follow_ups);
                }
                self.process_decision_locally(now, first, count, Some(value), fx);
            }
            // Below majority at the last acceptor: the round is lost;
            // the coordinator re-proposes after its timeout.
        } else {
            let forward = Message::Phase2 {
                ring: self.cfg.id(),
                ballot,
                first,
                count,
                value: value.clone(),
                votes,
            };
            if voted {
                let record = PersistRecord::Vote {
                    ring: self.cfg.id(),
                    ballot,
                    first,
                    count,
                    value,
                };
                match mode {
                    StorageMode::SyncDisk => {
                        let token = fx.persist(record, true);
                        // The forward (possibly batched) must wait for
                        // durability; batching is disabled in sync mode
                        // (Section 8.2), so send directly.
                        fx.gated.push((
                            token,
                            vec![Action::Send {
                                to: self.successor(),
                                msg: forward,
                            }],
                        ));
                    }
                    StorageMode::AsyncDisk => {
                        fx.persist(record, false);
                        self.send_ring(forward, fx);
                    }
                    StorageMode::InMemory => self.send_ring(forward, fx),
                }
            } else {
                self.send_ring(forward, fx);
            }
        }
    }

    /// Builds the decision message(s) the last acceptor sends to its
    /// successor, stripping the value when the successor saw Phase 2.
    fn decision_sends(
        &mut self,
        first: InstanceId,
        count: u32,
        value: &ConsensusValue,
    ) -> Vec<Action> {
        if self.live_len() <= 1 {
            return Vec::new();
        }
        let succ = self.successor();
        let carried = if self.on_phase2_arc(succ) {
            None
        } else {
            Some(value.clone())
        };
        vec![Action::Send {
            to: succ,
            msg: Message::Decision {
                ring: self.cfg.id(),
                first,
                count,
                value: carried,
                hops: 1,
            },
        }]
    }

    fn handle_decision(
        &mut self,
        now: Time,
        first: InstanceId,
        count: u32,
        value: Option<ConsensusValue>,
        hops: u32,
        fx: &mut Effects,
    ) {
        self.process_decision_locally(now, first, count, value.clone(), fx);
        let n = self.live_len() as u32;
        if n > 1 && hops < n - 1 {
            let succ = self.successor();
            let carried = if self.on_phase2_arc(succ) {
                None
            } else {
                // Re-materialize the value if we can (robust against arcs
                // shifting under coordinator changes).
                value.or_else(|| {
                    self.acceptor
                        .as_ref()
                        .and_then(|a| a.decided_at(first))
                        .map(|r| r.value)
                })
            };
            self.send_ring(
                Message::Decision {
                    ring: self.cfg.id(),
                    first,
                    count,
                    value: carried,
                    hops: hops + 1,
                },
                fx,
            );
        }
    }

    fn process_decision_locally(
        &mut self,
        now: Time,
        first: InstanceId,
        count: u32,
        value: Option<ConsensusValue>,
        fx: &mut Effects,
    ) {
        let resolved = if let Some(a) = self.acceptor.as_mut() {
            let resolved = match value {
                Some(v) => {
                    a.on_decision(first, count, v.clone());
                    Some(v)
                }
                None => a.on_decision_from_accepted(first, count),
            };
            if resolved.is_some() && self.cfg.tuning().storage != StorageMode::InMemory {
                // Tiny async marker so a restarted acceptor can still
                // serve retransmissions (the value is recovered from the
                // vote record logged for the same instance).
                fx.persist(
                    PersistRecord::Decision {
                        ring: self.cfg.id(),
                        first,
                        count,
                    },
                    false,
                );
            }
            resolved
        } else {
            value
        };
        if let Some(p) = self.proposer.as_mut() {
            p.observe_decision(self.me, resolved.as_ref());
        }
        if let Some(l) = self.learner.as_mut() {
            let released = l.on_decision(now, first, count, resolved);
            for r in released {
                fx.released.push((self.cfg.id(), r));
            }
            if self.learner.as_ref().is_some_and(RingLearner::has_gap) {
                self.arm_gap_timer(fx);
            }
        }
        if self.coordinator.is_some() && self.me == self.coordinator_proc {
            let more = self
                .coordinator
                .as_mut()
                .map(|c| c.on_decided(now, first, count))
                .unwrap_or_default();
            self.emit_proposals(now, more, fx);
        }
    }

    /// Handles a ring-scoped timer. Returns `false` if the timer does not
    /// belong to this ring.
    pub fn on_timer(&mut self, now: Time, kind: TimerKind, fx: &mut Effects) -> bool {
        match kind {
            TimerKind::Delta(r) if r == self.cfg.id() => {
                if self.me == self.coordinator_proc {
                    // Phase 1 retry: lost Phase 1A/1B messages would
                    // otherwise leave the coordinator preparing forever.
                    let stuck = self.coordinator.as_ref().is_some_and(|c| {
                        c.status() == crate::paxos::CoordinatorStatus::Preparing
                            && now.since(self.phase1_at) >= self.cfg.tuning().repropose_us
                    });
                    if stuck {
                        let supersedes = self.highest_ballot_seen;
                        self.become_coordinator(now, supersedes, fx);
                        return true; // become_coordinator re-arms Delta
                    }
                    if let Some(c) = self.coordinator.as_mut() {
                        let proposals = c.on_delta(now);
                        self.emit_proposals(now, proposals, fx);
                        fx.timer(self.cfg.tuning().delta_us, kind);
                    }
                }
                true
            }
            TimerKind::FlushLinks(r) if r == self.cfg.id() => {
                let succ = self.successor();
                if let Some(b) = self.batcher.as_mut() {
                    b.armed = false;
                    Self::flush_batch(self.me, succ, b, fx);
                }
                true
            }
            TimerKind::GapCheck(r) if r == self.cfg.id() => {
                self.gap_timer_armed = false;
                let timeout = self.cfg.tuning().gap_timeout_us;
                if let Some(l) = self.learner.as_ref() {
                    if let Some((from, to)) = l.repair_request(now, timeout) {
                        let target = self.repair_target();
                        self.repair_attempts = self.repair_attempts.wrapping_add(1);
                        fx.send(
                            target,
                            Message::Retransmit {
                                ring: self.cfg.id(),
                                from,
                                to,
                            },
                        );
                    } else {
                        self.repair_attempts = 0;
                    }
                    if l.has_gap() {
                        self.arm_gap_timer(fx);
                    }
                }
                true
            }
            TimerKind::ProposalResend(r) if r == self.cfg.id() => {
                let resend_us = self.cfg.tuning().proposal_resend_us;
                let Some(p) = self.proposer.as_mut() else {
                    return true;
                };
                p.resend_armed = false;
                let values: Vec<Value> = p.pending.values().cloned().collect();
                if !values.is_empty() {
                    if let Some(p) = self.proposer.as_mut() {
                        p.resend_armed = true;
                    }
                    fx.timer(resend_us, kind);
                    self.submit_or_forward(now, values, 0, fx);
                }
                true
            }
            _ => false,
        }
    }

    /// Proactively asks an acceptor for the next `chunk` instances after
    /// the learner's current position (used right after a recovering
    /// replica installs a checkpoint, when no live traffic reveals the
    /// backlog).
    pub fn backfill(&mut self, chunk: u64, fx: &mut Effects) {
        let Some(l) = self.learner.as_ref() else {
            return;
        };
        let from = l.next_release();
        let to = from.plus(chunk.max(1) - 1);
        let target = self.repair_target();
        fx.send(
            target,
            Message::Retransmit {
                ring: self.cfg.id(),
                from,
                to,
            },
        );
    }

    /// The acceptor a learner asks for retransmissions: the nearest live
    /// acceptor upstream of this process (possibly itself), rotating to
    /// the next one on repeated attempts.
    fn repair_target(&self) -> ProcessId {
        let acceptors: Vec<ProcessId> = self
            .cfg
            .acceptors()
            .iter()
            .filter(|a| !self.down.contains(a))
            .copied()
            .collect();
        if acceptors.is_empty() {
            return self.me;
        }
        let nearest = acceptors
            .iter()
            .enumerate()
            .min_by_key(|&(_, &a)| self.cfg.distance(a, self.me))
            .map_or(0, |(i, _)| i);
        acceptors[(nearest + self.repair_attempts as usize) % acceptors.len()]
    }
}
