//! The per-ring learner: collects decisions in instance order, repairs
//! gaps via acceptor retransmission, and releases a contiguous stream of
//! decided instances to the deterministic merge.

use crate::types::{ConsensusValue, InstanceId, RingId, Time};
use std::collections::BTreeMap;

/// A decided range released by the learner to the merge layer.
#[derive(Clone, PartialEq, Debug)]
pub struct ReleasedRange {
    /// First instance.
    pub first: InstanceId,
    /// Number of instances.
    pub count: u32,
    /// Decided value.
    pub value: ConsensusValue,
}

/// Outcome of ingesting a retransmission reply.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum RepairOutcome {
    /// Progress was (or may yet be) possible from acceptor logs.
    Repairing,
    /// The acceptors trimmed instances the learner still needs; only a
    /// checkpoint from a partition peer can help (replica recovery).
    NeedCheckpoint {
        /// Acceptor-side trim watermark.
        trimmed: InstanceId,
    },
}

/// Learner state for one ring.
#[derive(Debug)]
pub struct RingLearner {
    ring: RingId,
    /// Next instance to release to the merge (everything below is out).
    next_release: InstanceId,
    /// Highest instance known to be decided anywhere (from any decision
    /// seen, even out of order).
    highest_seen: InstanceId,
    /// Out-of-order decided ranges awaiting release, keyed by first
    /// instance.
    decided: BTreeMap<InstanceId, (u32, ConsensusValue)>,
    /// Values seen in Phase 2 messages, pending their decision (lets the
    /// ring strip values from decisions on the Phase 2 arc).
    phase2_cache: BTreeMap<InstanceId, (u32, ConsensusValue)>,
    /// When the current head-of-line gap was first observed.
    gap_since: Option<Time>,
    /// Suppresses gap repair while replica recovery decides on a
    /// checkpoint to install.
    hold_repair: bool,
}

impl RingLearner {
    /// Folds the learner's protocol state into a fingerprint (see
    /// [`crate::digest`]). `gap_since` is included: it decides whether
    /// the next gap-check timer requests a retransmission.
    pub(crate) fn digest_into(&self, h: &mut crate::digest::Fnv1a) {
        use crate::digest::DigestInto;
        self.ring.digest_into(h);
        self.next_release.digest_into(h);
        self.highest_seen.digest_into(h);
        self.decided.digest_into(h);
        self.phase2_cache.digest_into(h);
        self.gap_since.digest_into(h);
        self.hold_repair.digest_into(h);
    }

    /// A fresh learner starting at instance 1.
    pub fn new(ring: RingId) -> Self {
        Self {
            ring,
            next_release: InstanceId::new(1),
            highest_seen: InstanceId::ZERO,
            decided: BTreeMap::new(),
            phase2_cache: BTreeMap::new(),
            gap_since: None,
            hold_repair: false,
        }
    }

    /// The ring.
    pub fn ring(&self) -> RingId {
        self.ring
    }

    /// Next instance the merge expects from this ring.
    pub fn next_release(&self) -> InstanceId {
        self.next_release
    }

    /// Highest decided instance observed.
    pub fn highest_seen(&self) -> InstanceId {
        self.highest_seen
    }

    /// Pauses or resumes gap repair (used during replica recovery).
    pub fn hold_repair(&mut self, hold: bool) {
        self.hold_repair = hold;
        if hold {
            self.gap_since = None;
        }
    }

    /// Remembers the value of a Phase 2 message so a later value-less
    /// decision can be resolved locally.
    pub fn on_phase2_value(&mut self, first: InstanceId, count: u32, value: &ConsensusValue) {
        if first >= self.next_release {
            self.phase2_cache.insert(first, (count, value.clone()));
        }
    }

    /// Ingests a decision; `value` may be `None` if it was stripped on
    /// the Phase 2 arc, in which case the cached Phase 2 value is used.
    /// Returns the ranges that became releasable, in order.
    pub fn on_decision(
        &mut self,
        now: Time,
        first: InstanceId,
        count: u32,
        value: Option<ConsensusValue>,
    ) -> Vec<ReleasedRange> {
        let last = first.plus(u64::from(count) - 1);
        self.highest_seen = self.highest_seen.max(last);
        if last < self.next_release {
            return Vec::new(); // stale duplicate
        }
        let resolved = match value {
            Some(v) => Some(v),
            None => self.phase2_cache.get(&first).map(|(_, v)| v.clone()),
        };
        if let Some(v) = resolved {
            self.decided.entry(first).or_insert((count, v));
            self.phase2_cache.remove(&first);
        }
        // Value unknown: the gap-repair path will fetch it from an
        // acceptor; `highest_seen` already advanced.
        self.release(now)
    }

    fn release(&mut self, now: Time) -> Vec<ReleasedRange> {
        let mut out = Vec::new();
        // A range containing `next_release` may start at or before it.
        while let Some((&first, &(count, ref value))) =
            self.decided.range(..=self.next_release).next_back()
        {
            let last = first.plus(u64::from(count) - 1);
            if last < self.next_release {
                break;
            }
            let value = value.clone();
            self.decided.remove(&first);
            // Trim the part already released (can happen after recovery
            // fast-forward into the middle of a skip range).
            let effective_first = self.next_release;
            let effective_count = (last.value() - effective_first.value() + 1) as u32;
            out.push(ReleasedRange {
                first: effective_first,
                count: effective_count,
                value,
            });
            self.next_release = last.next();
        }
        // Track whether a head-of-line gap remains.
        if self.next_release <= self.highest_seen {
            if self.gap_since.is_none() {
                self.gap_since = Some(now);
            }
        } else {
            self.gap_since = None;
        }
        // Drop stale cache entries.
        while let Some((&first, &(count, _))) = self.phase2_cache.iter().next() {
            if first.plus(u64::from(count) - 1) < self.next_release {
                self.phase2_cache.remove(&first);
            } else {
                break;
            }
        }
        out
    }

    /// Whether a head-of-line gap exists (a later instance is decided
    /// while an earlier one is missing).
    pub fn has_gap(&self) -> bool {
        self.next_release <= self.highest_seen
            && self
                .decided
                .range(..=self.next_release)
                .next_back()
                .is_none_or(|(&f, &(c, _))| f.plus(u64::from(c) - 1) < self.next_release)
    }

    /// If the head-of-line gap has persisted for `timeout_us`, returns
    /// the missing range to request from an acceptor.
    pub fn repair_request(&self, now: Time, timeout_us: u64) -> Option<(InstanceId, InstanceId)> {
        if self.hold_repair || !self.has_gap() {
            return None;
        }
        let since = self.gap_since?;
        if now.since(since) < timeout_us {
            return None;
        }
        // Request up to the first out-of-order range we already hold.
        let to = self
            .decided
            .range(self.next_release..)
            .next()
            .map_or(self.highest_seen.value(), |(&f, _)| f.value() - 1);
        Some((self.next_release, InstanceId::new(to)))
    }

    /// Ingests a retransmission reply. Returns released ranges and the
    /// repair outcome.
    pub fn on_retransmit_reply(
        &mut self,
        now: Time,
        ranges: Vec<(InstanceId, u32, ConsensusValue)>,
        trimmed: InstanceId,
    ) -> (Vec<ReleasedRange>, RepairOutcome) {
        for (first, count, value) in ranges {
            let last = first.plus(u64::from(count) - 1);
            self.highest_seen = self.highest_seen.max(last);
            if last >= self.next_release {
                self.decided.entry(first).or_insert((count, value));
            }
        }
        let released = self.release(now);
        // Restart the gap clock: we made an attempt; give the next
        // request a fresh timeout.
        if self.has_gap() {
            self.gap_since = Some(now);
        }
        let outcome = if trimmed >= self.next_release {
            RepairOutcome::NeedCheckpoint { trimmed }
        } else {
            RepairOutcome::Repairing
        };
        (released, outcome)
    }

    /// Fast-forwards past everything up to and including `upto`
    /// (checkpoint installation during recovery).
    pub fn fast_forward(&mut self, upto: InstanceId) {
        if upto.next() <= self.next_release {
            return;
        }
        self.next_release = upto.next();
        self.highest_seen = self.highest_seen.max(upto);
        // Drop fully covered ranges; keep straddlers (release() clips).
        self.decided
            .retain(|&f, &mut (c, _)| f.plus(u64::from(c) - 1) >= self.next_release);
        self.phase2_cache
            .retain(|&f, &mut (c, _)| f.plus(u64::from(c) - 1) >= self.next_release);
        self.gap_since = None;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::{GroupId, ProcessId, Value, ValueId};

    fn i(n: u64) -> InstanceId {
        InstanceId::new(n)
    }

    fn val(n: u64) -> ConsensusValue {
        ConsensusValue::Values(vec![Value::new(
            ValueId::new(ProcessId::new(1), n),
            GroupId::new(0),
            vec![0u8; 4],
        )])
    }

    fn t(ms: u64) -> Time {
        Time::from_millis(ms)
    }

    #[test]
    fn in_order_decisions_release_immediately() {
        let mut l = RingLearner::new(RingId::new(0));
        let r1 = l.on_decision(t(0), i(1), 1, Some(val(1)));
        assert_eq!(r1.len(), 1);
        assert_eq!(r1[0].first, i(1));
        let r2 = l.on_decision(t(0), i(2), 1, Some(val(2)));
        assert_eq!(r2.len(), 1);
        assert_eq!(l.next_release(), i(3));
        assert!(!l.has_gap());
    }

    #[test]
    fn out_of_order_buffered_until_gap_fills() {
        let mut l = RingLearner::new(RingId::new(0));
        assert!(l.on_decision(t(0), i(2), 1, Some(val(2))).is_empty());
        assert!(l.has_gap());
        let r = l.on_decision(t(1), i(1), 1, Some(val(1)));
        assert_eq!(r.len(), 2);
        assert_eq!(r[0].first, i(1));
        assert_eq!(r[1].first, i(2));
        assert!(!l.has_gap());
    }

    #[test]
    fn stripped_decision_resolved_from_phase2_cache() {
        let mut l = RingLearner::new(RingId::new(0));
        l.on_phase2_value(i(1), 1, &val(1));
        let r = l.on_decision(t(0), i(1), 1, None);
        assert_eq!(r.len(), 1);
        assert_eq!(r[0].value, val(1));
    }

    #[test]
    fn stripped_decision_without_cache_leaves_gap() {
        let mut l = RingLearner::new(RingId::new(0));
        assert!(l.on_decision(t(0), i(1), 1, None).is_empty());
        assert!(l.has_gap());
        assert_eq!(l.highest_seen(), i(1));
    }

    #[test]
    fn repair_request_after_timeout() {
        let mut l = RingLearner::new(RingId::new(0));
        l.on_decision(t(0), i(5), 1, Some(val(5)));
        assert_eq!(l.repair_request(t(0), 10_000), None);
        assert_eq!(l.repair_request(t(20), 10_000), Some((i(1), i(4))));
        // Repair is suppressed while held.
        l.hold_repair(true);
        assert_eq!(l.repair_request(t(40), 10_000), None);
    }

    #[test]
    fn retransmit_reply_fills_gap() {
        let mut l = RingLearner::new(RingId::new(0));
        l.on_decision(t(0), i(4), 1, Some(val(4)));
        let (released, outcome) = l.on_retransmit_reply(
            t(5),
            vec![(i(1), 1, val(1)), (i(2), 2, ConsensusValue::Skip)],
            InstanceId::ZERO,
        );
        assert_eq!(outcome, RepairOutcome::Repairing);
        assert_eq!(released.len(), 3);
        assert_eq!(l.next_release(), i(5));
    }

    #[test]
    fn trimmed_reply_requires_checkpoint() {
        let mut l = RingLearner::new(RingId::new(0));
        l.on_decision(t(0), i(10), 1, Some(val(10)));
        let (_, outcome) = l.on_retransmit_reply(t(1), vec![], i(6));
        assert_eq!(outcome, RepairOutcome::NeedCheckpoint { trimmed: i(6) });
    }

    #[test]
    fn fast_forward_clips_straddling_ranges() {
        let mut l = RingLearner::new(RingId::new(0));
        // Skip range 1..=10 buffered out of order behind nothing; fast
        // forward to 5, the remainder 6..=10 must release.
        l.on_decision(t(0), i(1), 10, Some(ConsensusValue::Skip));
        // All released immediately since no gap: reset scenario instead.
        let mut l = RingLearner::new(RingId::new(0));
        l.fast_forward(i(5));
        assert_eq!(l.next_release(), i(6));
        let r = l.on_decision(t(0), i(1), 10, Some(ConsensusValue::Skip));
        assert_eq!(r.len(), 1);
        assert_eq!(r[0].first, i(6));
        assert_eq!(r[0].count, 5);
        assert_eq!(l.next_release(), i(11));
    }

    #[test]
    fn stale_duplicates_ignored() {
        let mut l = RingLearner::new(RingId::new(0));
        l.on_decision(t(0), i(1), 1, Some(val(1)));
        assert!(l.on_decision(t(0), i(1), 1, Some(val(1))).is_empty());
        assert_eq!(l.next_release(), i(2));
    }
}
