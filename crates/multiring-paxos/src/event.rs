//! The sans-io vocabulary: [`Message`]s exchanged between processes,
//! [`Event`]s fed *into* a state machine and [`Action`]s emitted *out* of
//! it.
//!
//! A runtime (the `mrp-sim` simulator or the `mrp-transport` TCP runtime)
//! owns the sockets, clocks, timers and disks. It drives a
//! [`Node`](crate::node::Node) or [`Replica`](crate::replica::Replica) by
//! translating I/O completions into events, calling
//! `on_event(now, event)`, and executing the returned actions.

use crate::recovery::CheckpointId;
use crate::types::{
    Ballot, ClientId, ConsensusValue, GroupId, InstanceId, ProcessId, RingId, Time, Value,
};
use bytes::Bytes;

/// A protocol message exchanged between processes.
///
/// The first block is the Ring Paxos data path (Section 4 and Figure 2 of
/// the paper); the second block is learner catch-up; the third is the
/// coordinated trim protocol and replica recovery (Section 5); the last is
/// the client request path used by services.
#[derive(Clone, PartialEq, Debug)]
pub enum Message {
    /// A proposer's values circulating along the ring toward the
    /// coordinator.
    Forward {
        /// Destination ring.
        ring: RingId,
        /// Values to order (each one a client multicast).
        values: Vec<Value>,
        /// Ring hops traversed so far; dropped after a full loop so
        /// proposals cannot circulate forever during coordinator changes.
        hops: u32,
    },
    /// Phase 1A: the coordinator asks acceptors to promise ballot `ballot`
    /// for every instance at or after `from` (Phase 1 is pre-executed for
    /// open-ended instance ranges).
    Phase1A {
        /// Ring.
        ring: RingId,
        /// Ballot to promise.
        ballot: Ballot,
        /// First instance covered by the promise.
        from: InstanceId,
    },
    /// Phase 1B: an acceptor's promise, carrying every value it has
    /// accepted at or after `from` so the coordinator can re-propose them.
    Phase1B {
        /// Ring.
        ring: RingId,
        /// The promised ballot (echo of the Phase 1A ballot).
        ballot: Ballot,
        /// First instance covered.
        from: InstanceId,
        /// Accepted values at or after `from`: `(instance, ballot,
        /// value)` triples.
        accepted: Vec<(InstanceId, Ballot, ConsensusValue)>,
        /// The acceptor's trim watermark: instances at or below it were
        /// deleted, so the new coordinator must allocate instances above
        /// it.
        trimmed: InstanceId,
    },
    /// Combined Phase 2A/2B message circulating from the coordinator to
    /// the last acceptor, accumulating votes.
    Phase2 {
        /// Ring.
        ring: RingId,
        /// Ballot the value is proposed at.
        ballot: Ballot,
        /// First instance of the proposed range.
        first: InstanceId,
        /// Number of consecutive instances the value covers (always 1 for
        /// client values; skip ranges may cover many).
        count: u32,
        /// The proposed value.
        value: ConsensusValue,
        /// Number of acceptor votes accumulated so far (the coordinator's
        /// own vote included).
        votes: u32,
    },
    /// A decision circulating around the ring from the last acceptor.
    ///
    /// `value` is `Some` while the decision travels the arc whose members
    /// have not seen the Phase 2 message, and is stripped to `None` on the
    /// arc that already has the value (Section 4: each link carries a
    /// value exactly once).
    Decision {
        /// Ring.
        ring: RingId,
        /// First instance of the decided range.
        first: InstanceId,
        /// Number of consecutive instances decided.
        count: u32,
        /// The decided value, if the next hop has not seen it yet.
        value: Option<ConsensusValue>,
        /// Links traversed so far; forwarding stops after `n - 1` hops.
        hops: u32,
    },
    /// A learner asks an acceptor to retransmit decided instances in
    /// `[from, to]` (gap repair and replica recovery).
    Retransmit {
        /// Ring.
        ring: RingId,
        /// First missing instance.
        from: InstanceId,
        /// Last missing instance (inclusive).
        to: InstanceId,
    },
    /// An acceptor's answer to [`Message::Retransmit`].
    RetransmitReply {
        /// Ring.
        ring: RingId,
        /// Decided ranges: `(first, count, value)`.
        decided: Vec<(InstanceId, u32, ConsensusValue)>,
        /// Instances up to and including this one have been trimmed and
        /// can only be obtained via a checkpoint.
        trimmed: InstanceId,
    },
    /// Trim protocol: the group coordinator asks a subscribed replica for
    /// the highest instance its durable checkpoint covers.
    TrimQuery {
        /// Group being trimmed.
        group: GroupId,
        /// Correlates replies with queries.
        seq: u64,
    },
    /// A replica's reply: instances of `group` up to `safe` are reflected
    /// in a durable checkpoint (`k[x]_p` in the paper).
    TrimReply {
        /// Group.
        group: GroupId,
        /// Echo of the query sequence number.
        seq: u64,
        /// Highest checkpoint-covered instance.
        safe: InstanceId,
    },
    /// The coordinator authorizes acceptors to delete log entries up to
    /// `upto` (`K[x]_T` in the paper, Predicate 2).
    TrimCommand {
        /// Ring.
        ring: RingId,
        /// Highest instance to delete (inclusive).
        upto: InstanceId,
    },
    /// A recovering replica asks a partition peer which checkpoint it
    /// holds.
    CheckpointQuery {
        /// Correlates replies.
        seq: u64,
    },
    /// A peer's answer: the id of its most recent durable checkpoint, or
    /// `None` if it has never checkpointed.
    CheckpointInfo {
        /// Echo of the query sequence number.
        seq: u64,
        /// Most recent durable checkpoint id.
        checkpoint: Option<CheckpointId>,
    },
    /// The recovering replica fetches the snapshot of checkpoint `id`.
    CheckpointFetch {
        /// Correlates replies.
        seq: u64,
        /// The checkpoint to transfer.
        id: CheckpointId,
    },
    /// Checkpoint state transfer; `snapshot` is `None` if the peer no
    /// longer holds the requested checkpoint.
    CheckpointData {
        /// Echo of the fetch sequence number.
        seq: u64,
        /// The checkpoint id.
        id: CheckpointId,
        /// Serialized application state.
        snapshot: Option<Bytes>,
    },
    /// A client submits a command to a proposer, addressed to a *set*
    /// of groups (the paper's `multicast(γ, m)`; a single-element set is
    /// the common single-group case). The proposer hands the set to its
    /// ordering engine, which either orders the message genuinely among
    /// the addressed groups (wbcast) or routes it through a group whose
    /// subscribers cover them all (Multi-Ring Paxos).
    Request {
        /// Requesting client session.
        client: ClientId,
        /// Client-local request number.
        request: u64,
        /// Destination group set γ (non-empty).
        groups: Vec<GroupId>,
        /// Service command payload.
        payload: Bytes,
    },
    /// A replica's reply to a client (the paper sends these over UDP,
    /// directly from replica to client).
    Response {
        /// The client session addressed.
        client: ClientId,
        /// Echo of the request number.
        request: u64,
        /// Service reply payload.
        payload: Bytes,
    },
    /// Several messages for the same destination packed into one frame
    /// (link-level batching).
    Batch(Vec<Message>),
    /// An opaque message belonging to an alternative atomic-multicast
    /// engine (see the `mrp-amcast` crate). `engine` namespaces the
    /// wire format; `payload` is encoded by that engine's own codec.
    /// Ring-Paxos nodes ignore these frames.
    Engine {
        /// Engine wire id (e.g. `mrp_amcast::wbcast::WBCAST_WIRE_ID`).
        engine: u8,
        /// Engine-encoded payload.
        payload: Bytes,
    },
}

impl Message {
    /// The ring this message belongs to, if it is ring traffic.
    pub fn ring(&self) -> Option<RingId> {
        match self {
            Message::Forward { ring, .. }
            | Message::Phase1A { ring, .. }
            | Message::Phase1B { ring, .. }
            | Message::Phase2 { ring, .. }
            | Message::Decision { ring, .. }
            | Message::Retransmit { ring, .. }
            | Message::RetransmitReply { ring, .. }
            | Message::TrimCommand { ring, .. } => Some(*ring),
            _ => None,
        }
    }
}

/// Timers a state machine may request; the runtime fires them back as
/// [`Event::Timer`].
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub enum TimerKind {
    /// Rate-leveling interval Δ elapsed for a ring (coordinator only).
    Delta(RingId),
    /// Flush pending link batches for a ring.
    FlushLinks(RingId),
    /// Check for instance gaps at a learner and request retransmission.
    GapCheck(RingId),
    /// Run the coordinated trim protocol for a ring (coordinator only).
    TrimTick(RingId),
    /// Resend unacknowledged proposals: the ring engine's proposer
    /// retransmissions, and the wbcast engine's initiator-side retries
    /// of unconfirmed `Submit`/`Final` rounds toward the ring's current
    /// sequencer.
    ProposalResend(RingId),
    /// Take a periodic application checkpoint (replica only).
    CheckpointTick,
    /// Retry a stalled recovery step (replica only).
    RecoveryRetry,
    /// Flush the submission-edge batcher's pending queues (engine
    /// wrapper only; see `mrp-amcast`'s batching layer).
    SubmitFlush,
}

/// Token correlating a [`Action::Persist`] request with its
/// [`Event::PersistDone`] completion.
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct PersistToken(pub u64);

/// What a state machine asks the runtime to persist.
#[derive(Clone, PartialEq, Debug)]
pub enum PersistRecord {
    /// An acceptor's promise (must be durable before the Phase 1B reply
    /// in sync mode).
    Promise {
        /// Ring.
        ring: RingId,
        /// Promised ballot.
        ballot: Ballot,
        /// First instance covered.
        from: InstanceId,
    },
    /// An acceptor's vote (must be durable before the Phase 2B vote is
    /// forwarded in sync mode).
    Vote {
        /// Ring.
        ring: RingId,
        /// Ballot voted at.
        ballot: Ballot,
        /// First instance of the voted range.
        first: InstanceId,
        /// Number of instances covered.
        count: u32,
        /// The accepted value.
        value: ConsensusValue,
    },
    /// A replica's application checkpoint.
    Checkpoint {
        /// Checkpoint id (per-group instance watermarks).
        id: CheckpointId,
        /// Serialized application state.
        snapshot: Bytes,
    },
    /// A decision marker written asynchronously by acceptors. The value
    /// is not repeated — at recovery it is resolved from the vote logged
    /// for the same instance — so the record stays tiny.
    Decision {
        /// Ring.
        ring: RingId,
        /// First instance of the decided range.
        first: InstanceId,
        /// Number of instances covered.
        count: u32,
    },
}

/// An input to a protocol state machine.
#[derive(Clone, PartialEq, Debug)]
pub enum Event {
    /// The process (re)starts; schedule initial timers.
    Start,
    /// A message arrived from `from`.
    Message {
        /// Sending process.
        from: ProcessId,
        /// The message.
        msg: Message,
    },
    /// A requested timer fired.
    Timer(TimerKind),
    /// A requested persist completed durably.
    PersistDone(PersistToken),
    /// The runtime (via the coordination service) designates a new
    /// coordinator for a ring. The named process starts Phase 1 with a
    /// ballot greater than `supersedes`; engines that derive other
    /// roles from the coordinator react too (the wbcast engine treats
    /// this as sequencer handover for the ring's groups and re-routes
    /// its in-flight submissions).
    CoordinatorChange {
        /// Ring affected.
        ring: RingId,
        /// New coordinator.
        coordinator: ProcessId,
        /// The highest ballot known to be in use.
        supersedes: Ballot,
    },
    /// The runtime (via the coordination service) reports which ring
    /// members are currently unreachable; the overlay routes around
    /// them. Ring positions and quorum sizes are unaffected (majorities
    /// stay over the full acceptor set).
    MembershipChange {
        /// Ring affected.
        ring: RingId,
        /// Members currently considered down.
        down: Vec<ProcessId>,
    },
}

/// An effect requested by a protocol state machine.
#[derive(Clone, PartialEq, Debug)]
pub enum Action {
    /// Send `msg` to `to` (reliable FIFO channel, e.g. TCP).
    Send {
        /// Destination process.
        to: ProcessId,
        /// The message.
        msg: Message,
    },
    /// Fire [`Event::Timer`] with `timer` after `after_us` microseconds.
    SetTimer {
        /// Delay in microseconds.
        after_us: u64,
        /// Timer identity.
        timer: TimerKind,
    },
    /// Durably store `record`; fire [`Event::PersistDone`] with `token`
    /// when complete. `sync` requests an immediate flush (no
    /// write-behind).
    Persist {
        /// What to store.
        record: PersistRecord,
        /// Whether the write must be flushed before completion.
        sync: bool,
        /// Completion token.
        token: PersistToken,
    },
    /// Delete acceptor log records of `ring` up to `upto` (inclusive).
    TrimStorage {
        /// Ring whose log to trim.
        ring: RingId,
        /// Highest instance to delete.
        upto: InstanceId,
    },
    /// Atomic multicast delivery: the deterministic merge released
    /// `value`, decided at `instance` of the ring serving `group`.
    Deliver {
        /// Group the value was multicast to.
        group: GroupId,
        /// Consensus instance that decided it.
        instance: InstanceId,
        /// The value.
        value: Value,
    },
    /// A service reply produced by the application, to be routed to the
    /// client session (UDP in the paper).
    Respond {
        /// Client session.
        client: ClientId,
        /// Request number echoed.
        request: u64,
        /// Reply payload.
        payload: Bytes,
    },
}

impl Action {
    /// Convenience accessor: the destination of a `Send` action.
    pub fn send_to(&self) -> Option<ProcessId> {
        match self {
            Action::Send { to, .. } => Some(*to),
            _ => None,
        }
    }
}

/// Ordered sink for actions; state machines push into it, runtimes drain
/// it. Newtype over `Vec` so the signature of protocol methods stays
/// stable if buffering becomes smarter.
#[derive(Default, Debug)]
pub struct Actions {
    items: Vec<Action>,
}

impl Actions {
    /// Creates an empty sink.
    pub fn new() -> Self {
        Self::default()
    }

    /// Pushes an action.
    pub fn push(&mut self, action: Action) {
        self.items.push(action);
    }

    /// Convenience: push a `Send`.
    pub fn send(&mut self, to: ProcessId, msg: Message) {
        self.push(Action::Send { to, msg });
    }

    /// Convenience: push a `SetTimer`.
    pub fn timer(&mut self, after_us: u64, timer: TimerKind) {
        self.push(Action::SetTimer { after_us, timer });
    }

    /// Drains the collected actions.
    pub fn take(&mut self) -> Vec<Action> {
        std::mem::take(&mut self.items)
    }

    /// Number of pending actions.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Whether no actions are pending.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Iterates without draining.
    pub fn iter(&self) -> impl Iterator<Item = &Action> {
        self.items.iter()
    }
}

impl Extend<Action> for Actions {
    fn extend<T: IntoIterator<Item = Action>>(&mut self, iter: T) {
        self.items.extend(iter);
    }
}

impl IntoIterator for Actions {
    type Item = Action;
    type IntoIter = std::vec::IntoIter<Action>;
    fn into_iter(self) -> Self::IntoIter {
        self.items.into_iter()
    }
}

/// The interface every hostable protocol state machine implements;
/// runtimes are generic over it ([`Node`](crate::node::Node) and
/// [`Replica`](crate::replica::Replica) both implement it).
pub trait StateMachine {
    /// Feeds one event; returns the actions it provoked.
    fn on_event(&mut self, now: Time, event: Event) -> Vec<Action>;

    /// The process this state machine embodies.
    fn process_id(&self) -> ProcessId;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn actions_sink_collects_in_order() {
        let mut a = Actions::new();
        assert!(a.is_empty());
        a.send(ProcessId::new(1), Message::Batch(vec![]));
        a.timer(5, TimerKind::Delta(RingId::new(0)));
        assert_eq!(a.len(), 2);
        let items = a.take();
        assert!(matches!(items[0], Action::Send { .. }));
        assert!(matches!(items[1], Action::SetTimer { after_us: 5, .. }));
        assert!(a.is_empty());
    }

    #[test]
    fn message_ring_accessor() {
        let m = Message::TrimCommand {
            ring: RingId::new(3),
            upto: InstanceId::new(9),
        };
        assert_eq!(m.ring(), Some(RingId::new(3)));
        let q = Message::CheckpointQuery { seq: 1 };
        assert_eq!(q.ring(), None);
    }

    #[test]
    fn send_to_accessor() {
        let a = Action::Send {
            to: ProcessId::new(4),
            msg: Message::Batch(vec![]),
        };
        assert_eq!(a.send_to(), Some(ProcessId::new(4)));
        let t = Action::SetTimer {
            after_us: 1,
            timer: TimerKind::CheckpointTick,
        };
        assert_eq!(t.send_to(), None);
    }
}
