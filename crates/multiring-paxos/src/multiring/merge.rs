//! The deterministic merge across subscribed rings.

use crate::recovery::CheckpointId;
use crate::types::{ConsensusValue, GroupId, InstanceId, ProcessId, SeqFilter, Value};
use std::collections::{BTreeMap, VecDeque};

/// One atomic-multicast delivery produced by the merge.
#[derive(Clone, PartialEq, Debug)]
pub struct MergeDelivery {
    /// Group the value was multicast to.
    pub group: GroupId,
    /// Consensus instance (of the group's ring) that decided it.
    pub instance: InstanceId,
    /// The value.
    pub value: Value,
}

#[derive(Debug)]
struct GroupQueue {
    group: GroupId,
    /// Decided ranges in instance order; contiguous from `next_expected`.
    ranges: VecDeque<(InstanceId, u32, ConsensusValue)>,
    /// Next instance the merge will consume from this group.
    next_expected: InstanceId,
}

/// Deterministic round-robin merge over the decision streams of the
/// subscribed groups (Section 4 of the paper).
///
/// Instances are consumed `m` at a time from each group, in group-id
/// order. The merge *blocks* on a group with no decided instance
/// available — that is what makes it deterministic — so rate leveling
/// must keep every subscribed ring moving.
#[derive(Debug)]
pub struct Merger {
    m: u32,
    queues: Vec<GroupQueue>,
    cursor_group: usize,
    cursor_used: u32,
    /// Exactly-once filter per (group, proposer): suppresses duplicate
    /// deliveries after coordinator failover re-proposals while still
    /// accepting old values that were overtaken by newer ones.
    delivered_seq: BTreeMap<(GroupId, ProcessId), SeqFilter>,
}

impl Merger {
    /// Folds the merge state into a fingerprint (see [`crate::digest`]):
    /// queued undelivered ranges, the round-robin cursor and the
    /// exactly-once filters.
    pub(crate) fn digest_into(&self, h: &mut crate::digest::Fnv1a) {
        use crate::digest::DigestInto;
        h.write_u64(u64::from(self.m));
        h.write_usize(self.queues.len());
        for q in &self.queues {
            q.group.digest_into(h);
            q.ranges.digest_into(h);
            q.next_expected.digest_into(h);
        }
        h.write_usize(self.cursor_group);
        h.write_u64(u64::from(self.cursor_used));
        self.delivered_seq.digest_into(h);
    }

    /// A merge over `groups` (sorted ascending internally) consuming `m`
    /// instances per group per turn.
    ///
    /// # Panics
    ///
    /// Panics if `m` is zero.
    pub fn new(mut groups: Vec<GroupId>, m: u32) -> Self {
        assert!(m >= 1, "merge window M must be at least 1");
        groups.sort_unstable();
        groups.dedup();
        Self {
            m,
            queues: groups
                .into_iter()
                .map(|group| GroupQueue {
                    group,
                    ranges: VecDeque::new(),
                    next_expected: InstanceId::new(1),
                })
                .collect(),
            cursor_group: 0,
            cursor_used: 0,
            delivered_seq: BTreeMap::new(),
        }
    }

    /// The groups being merged, in round-robin order.
    pub fn groups(&self) -> Vec<GroupId> {
        self.queues.iter().map(|q| q.group).collect()
    }

    /// The merge window `M`.
    pub fn merge_window(&self) -> u32 {
        self.m
    }

    /// Offers a decided range of `group`. Ranges must arrive in instance
    /// order and contiguously (the per-ring learner guarantees this);
    /// stale or duplicate ranges are ignored.
    pub fn push(&mut self, group: GroupId, first: InstanceId, count: u32, value: ConsensusValue) {
        let Some(q) = self.queues.iter_mut().find(|q| q.group == group) else {
            return;
        };
        let last = first.plus(u64::from(count) - 1);
        let expected_next = q
            .ranges
            .back()
            .map_or(q.next_expected, |&(f, c, _)| f.plus(u64::from(c)));
        if last < expected_next {
            return; // stale duplicate
        }
        debug_assert_eq!(
            first, expected_next,
            "merge input for {group} must be contiguous"
        );
        q.ranges.push_back((first, count, value));
    }

    /// Runs the merge as far as possible, returning deliveries in the
    /// deterministic order. Returns an empty vector when the merge is
    /// blocked waiting on its current group.
    pub fn poll(&mut self) -> Vec<MergeDelivery> {
        let mut out = Vec::new();
        if self.queues.is_empty() {
            return out;
        }
        loop {
            if self.cursor_used == self.m {
                self.cursor_used = 0;
                self.cursor_group = (self.cursor_group + 1) % self.queues.len();
            }
            let m = self.m;
            let q = &mut self.queues[self.cursor_group];
            let Some(front) = q.ranges.front_mut() else {
                break;
            };
            let (first, count, _) = *front;
            debug_assert_eq!(first, q.next_expected, "queue contiguity invariant");
            let _ = count;
            // Consume instances one at a time so the M-window accounting
            // stays exact even across skip ranges.
            match &mut front.2 {
                ConsensusValue::Values(_) => {
                    let (instance, _, value) = q.ranges.pop_front().expect("front exists");
                    q.next_expected = instance.next();
                    self.cursor_used += 1;
                    let group = q.group;
                    if let ConsensusValue::Values(values) = value {
                        for v in values {
                            let key = (group, v.id.proposer);
                            let fresh = self.delivered_seq.entry(key).or_default().insert(v.id.seq);
                            if fresh {
                                out.push(MergeDelivery {
                                    group,
                                    instance,
                                    value: v,
                                });
                            }
                        }
                    }
                }
                ConsensusValue::Skip => {
                    // Consume as many skip instances as the window allows
                    // in one step.
                    let take = u64::from(count).min(u64::from(m - self.cursor_used));
                    front.0 = front.0.plus(take);
                    front.1 -= take as u32;
                    q.next_expected = q.next_expected.plus(take);
                    self.cursor_used += take as u32;
                    if front.1 == 0 {
                        q.ranges.pop_front();
                    }
                }
            }
        }
        out
    }

    /// The merge position as a checkpoint id: per-group consumed
    /// watermarks plus the cursor.
    pub fn watermarks(&self) -> CheckpointId {
        CheckpointId {
            marks: self
                .queues
                .iter()
                .map(|q| (q.group, InstanceId::new(q.next_expected.value() - 1)))
                .collect(),
            cursor_group: self.cursor_group as u32,
            cursor_used: self.cursor_used,
        }
    }

    /// Repositions the merge at `ckpt` (checkpoint installation during
    /// replica recovery). Buffered ranges at or below the new watermarks
    /// are discarded; straddling skip ranges are clipped.
    pub fn install(&mut self, ckpt: &CheckpointId) {
        for q in &mut self.queues {
            let mark = ckpt.mark_of(q.group);
            if mark.next() <= q.next_expected {
                continue;
            }
            q.next_expected = mark.next();
            while let Some(&(first, count, _)) = q.ranges.front() {
                let last = first.plus(u64::from(count) - 1);
                if last < q.next_expected {
                    q.ranges.pop_front();
                } else if first < q.next_expected {
                    let front = q.ranges.front_mut().expect("front exists");
                    let skip = q.next_expected.value() - first.value();
                    front.0 = q.next_expected;
                    front.1 -= skip as u32;
                    break;
                } else {
                    break;
                }
            }
        }
        self.cursor_group = (ckpt.cursor_group as usize).min(self.queues.len().saturating_sub(1));
        self.cursor_used = ckpt.cursor_used.min(self.m);
    }

    /// Total instances consumed across groups (progress metric).
    pub fn total_consumed(&self) -> u64 {
        self.queues
            .iter()
            .map(|q| q.next_expected.value() - 1)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::ValueId;

    fn g(i: u16) -> GroupId {
        GroupId::new(i)
    }

    fn i(n: u64) -> InstanceId {
        InstanceId::new(n)
    }

    fn val(group: u16, proposer: u32, seq: u64) -> ConsensusValue {
        ConsensusValue::Values(vec![Value::new(
            ValueId::new(ProcessId::new(proposer), seq),
            g(group),
            vec![0u8; 4],
        )])
    }

    #[test]
    fn single_group_passthrough() {
        let mut m = Merger::new(vec![g(0)], 1);
        m.push(g(0), i(1), 1, val(0, 1, 1));
        m.push(g(0), i(2), 1, val(0, 1, 2));
        let out = m.poll();
        assert_eq!(out.len(), 2);
        assert_eq!(out[0].instance, i(1));
        assert_eq!(out[1].instance, i(2));
    }

    #[test]
    fn round_robin_across_groups() {
        let mut m = Merger::new(vec![g(1), g(0)], 1);
        assert_eq!(m.groups(), vec![g(0), g(1)]); // sorted
        m.push(g(0), i(1), 1, val(0, 1, 1));
        m.push(g(1), i(1), 1, val(1, 1, 1));
        m.push(g(0), i(2), 1, val(0, 1, 2));
        m.push(g(1), i(2), 1, val(1, 1, 2));
        let out = m.poll();
        let order: Vec<(u16, u64)> = out
            .iter()
            .map(|d| (d.group.value(), d.instance.value()))
            .collect();
        assert_eq!(order, vec![(0, 1), (1, 1), (0, 2), (1, 2)]);
    }

    #[test]
    fn merge_blocks_on_missing_group() {
        let mut m = Merger::new(vec![g(0), g(1)], 1);
        m.push(g(0), i(1), 1, val(0, 1, 1));
        m.push(g(0), i(2), 1, val(0, 1, 2));
        let out = m.poll();
        // Only g0's first instance: the merge then waits on g1.
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].group, g(0));
        // g1 unblocks the rest.
        m.push(g(1), i(1), 1, val(1, 1, 1));
        let out = m.poll();
        assert_eq!(out.len(), 2);
        assert_eq!(out[0].group, g(1));
        assert_eq!(out[1].group, g(0));
    }

    #[test]
    fn skips_consume_slots_silently() {
        let mut m = Merger::new(vec![g(0), g(1)], 1);
        m.push(g(0), i(1), 1, val(0, 1, 1));
        m.push(g(1), i(1), 5, ConsensusValue::Skip);
        m.push(g(0), i(2), 1, val(0, 1, 2));
        let out = m.poll();
        // g0#1, skip, g0#2, then stall on g1 (skips 2..=5 pending? no:
        // skip range of 5 instances: one consumed per turn).
        assert_eq!(out.len(), 2);
        assert_eq!(m.watermarks().mark_of(g(0)), i(2));
        assert_eq!(m.watermarks().mark_of(g(1)), i(2));
    }

    #[test]
    fn m_greater_than_one_consumes_in_windows() {
        let mut m = Merger::new(vec![g(0), g(1)], 2);
        for k in 1..=4 {
            m.push(g(0), i(k), 1, val(0, 1, k));
            m.push(g(1), i(k), 1, val(1, 1, k));
        }
        let out = m.poll();
        let order: Vec<(u16, u64)> = out
            .iter()
            .map(|d| (d.group.value(), d.instance.value()))
            .collect();
        assert_eq!(
            order,
            vec![
                (0, 1),
                (0, 2),
                (1, 1),
                (1, 2),
                (0, 3),
                (0, 4),
                (1, 3),
                (1, 4)
            ]
        );
    }

    #[test]
    fn skip_ranges_fast_forward_within_window() {
        let mut m = Merger::new(vec![g(0), g(1)], 3);
        m.push(g(0), i(1), 9, ConsensusValue::Skip);
        m.push(g(1), i(1), 3, ConsensusValue::Skip);
        m.poll();
        // g0 consumed 3 (one window), g1 consumed 3, g0 consumed 3 more,
        // then g1 stalls; g0 has 3 left pending.
        let w = m.watermarks();
        assert_eq!(w.mark_of(g(0)), i(6));
        assert_eq!(w.mark_of(g(1)), i(3));
    }

    #[test]
    fn duplicate_values_suppressed_by_sequence() {
        let mut m = Merger::new(vec![g(0)], 1);
        m.push(g(0), i(1), 1, val(0, 7, 1));
        // Failover re-proposal of the same value at a later instance.
        m.push(g(0), i(2), 1, val(0, 7, 1));
        m.push(g(0), i(3), 1, val(0, 7, 2));
        let out = m.poll();
        assert_eq!(out.len(), 2);
        assert_eq!(out[0].value.id.seq, 1);
        assert_eq!(out[1].value.id.seq, 2);
    }

    #[test]
    fn watermarks_roundtrip_through_install() {
        let mut m = Merger::new(vec![g(0), g(1)], 1);
        m.push(g(0), i(1), 1, val(0, 1, 1));
        m.push(g(1), i(1), 1, val(1, 1, 1));
        m.push(g(0), i(2), 1, val(0, 1, 2));
        m.poll();
        let w = m.watermarks();
        assert!(w.cursor_consistent(1));

        let mut fresh = Merger::new(vec![g(0), g(1)], 1);
        fresh.install(&w);
        assert_eq!(fresh.watermarks(), w);
        // Deliveries continue from the installed position.
        fresh.push(g(1), i(2), 1, val(1, 1, 2));
        let out = fresh.poll();
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].group, g(1));
        assert_eq!(out[0].instance, i(2));
    }

    #[test]
    fn install_clips_straddling_ranges() {
        let mut m = Merger::new(vec![g(0)], 1);
        m.push(g(0), i(1), 10, ConsensusValue::Skip);
        let ckpt = CheckpointId {
            marks: vec![(g(0), i(4))],
            cursor_group: 0,
            cursor_used: 0,
        };
        m.install(&ckpt);
        m.poll();
        assert_eq!(m.watermarks().mark_of(g(0)), i(10));
    }

    #[test]
    fn stale_pushes_ignored() {
        let mut m = Merger::new(vec![g(0)], 1);
        m.push(g(0), i(1), 1, val(0, 1, 1));
        m.poll();
        m.push(g(0), i(1), 1, val(0, 1, 1)); // duplicate
        assert!(m.poll().is_empty());
        assert_eq!(m.watermarks().mark_of(g(0)), i(1));
    }

    #[test]
    fn unknown_group_pushes_ignored() {
        let mut m = Merger::new(vec![g(0)], 1);
        m.push(g(9), i(1), 1, val(9, 1, 1));
        assert!(m.poll().is_empty());
    }

    #[test]
    fn two_mergers_agree_regardless_of_arrival_interleaving() {
        // The determinism property: same per-ring streams, different
        // arrival interleavings, identical output.
        let mut a = Merger::new(vec![g(0), g(1)], 2);
        let mut b = Merger::new(vec![g(0), g(1)], 2);
        let mut out_a = Vec::new();
        let mut out_b = Vec::new();
        // a: all of g0 first, then g1.
        for k in 1..=6 {
            a.push(g(0), i(k), 1, val(0, 1, k));
            out_a.extend(a.poll());
        }
        for k in 1..=6 {
            a.push(g(1), i(k), 1, val(1, 2, k));
            out_a.extend(a.poll());
        }
        // b: interleaved arrival.
        for k in 1..=6 {
            b.push(g(1), i(k), 1, val(1, 2, k));
            b.push(g(0), i(k), 1, val(0, 1, k));
            out_b.extend(b.poll());
        }
        let key = |d: &MergeDelivery| (d.group, d.instance, d.value.id);
        assert_eq!(
            out_a.iter().map(key).collect::<Vec<_>>(),
            out_b.iter().map(key).collect::<Vec<_>>()
        );
    }
}
