//! The Multi-Ring layer: deterministic merge of the per-ring decision
//! streams into a single atomic-multicast delivery order.
//!
//! A learner subscribed to several groups must deliver messages from all
//! of them in an order that every other learner with overlapping
//! subscriptions agrees with. Multi-Ring Paxos achieves this without any
//! cross-ring coordination: learners deliver decided consensus instances
//! from their subscribed rings *round-robin in group-id order*, `M`
//! instances at a time ([`Merger`]). Because the schedule is a pure
//! function of the per-ring decision sequences, any two learners
//! subscribed to the same groups produce the same interleaving.
//!
//! The price is that a round-robin consumer stalls on its slowest ring;
//! the *rate leveling* mechanism (skip instances proposed by coordinators
//! of underloaded rings, implemented in
//! [`crate::paxos::Coordinator::on_delta`]) keeps every ring flowing at a
//! configured rate λ so the stall is bounded by Δ.

pub mod merge;

pub use merge::{MergeDelivery, Merger};
