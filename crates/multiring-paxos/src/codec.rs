//! Binary wire encoding of protocol messages.
//!
//! A hand-written, length-stable codec on top of [`bytes`]: the TCP
//! transport uses it to frame messages, and the simulator uses
//! [`encoded_len`] to charge link bandwidth for exactly the bytes a real
//! deployment would move. Integers are little-endian; variable-size
//! fields carry `u32` length prefixes.

use crate::event::Message;
use crate::recovery::CheckpointId;
use crate::types::{
    Ballot, ClientId, ConsensusValue, GroupId, InstanceId, ProcessId, RingId, Value, ValueId,
};
use bytes::{Buf, BufMut, Bytes, BytesMut};
use std::fmt;

/// Errors produced while decoding a frame.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum CodecError {
    /// The buffer ended before the message was complete.
    Truncated,
    /// An unknown message or enum tag was encountered.
    BadTag(u8),
    /// A length prefix exceeded the remaining buffer or a sanity bound.
    BadLength(u64),
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodecError::Truncated => write!(f, "frame truncated"),
            CodecError::BadTag(t) => write!(f, "unknown tag {t}"),
            CodecError::BadLength(l) => write!(f, "implausible length {l}"),
        }
    }
}

impl std::error::Error for CodecError {}

/// Upper bound accepted for any single length prefix (1 GiB): protects
/// against corrupt frames allocating unbounded memory.
const MAX_LEN: u64 = 1 << 30;

const TAG_FORWARD: u8 = 1;
const TAG_PHASE1A: u8 = 2;
const TAG_PHASE1B: u8 = 3;
const TAG_PHASE2: u8 = 4;
const TAG_DECISION: u8 = 5;
const TAG_RETRANSMIT: u8 = 6;
const TAG_RETRANSMIT_REPLY: u8 = 7;
const TAG_TRIM_QUERY: u8 = 8;
const TAG_TRIM_REPLY: u8 = 9;
const TAG_TRIM_COMMAND: u8 = 10;
const TAG_CKPT_QUERY: u8 = 11;
const TAG_CKPT_INFO: u8 = 12;
const TAG_CKPT_FETCH: u8 = 13;
const TAG_CKPT_DATA: u8 = 14;
const TAG_REQUEST: u8 = 15;
const TAG_RESPONSE: u8 = 16;
const TAG_BATCH: u8 = 17;
const TAG_ENGINE: u8 = 18;

/// Encodes `msg` into `buf`.
pub fn encode(msg: &Message, buf: &mut BytesMut) {
    buf.reserve(encoded_len(msg));
    match msg {
        Message::Forward { ring, values, hops } => {
            buf.put_u8(TAG_FORWARD);
            buf.put_u16_le(ring.value());
            buf.put_u32_le(*hops);
            buf.put_u32_le(values.len() as u32);
            for v in values {
                put_value(buf, v);
            }
        }
        Message::Phase1A { ring, ballot, from } => {
            buf.put_u8(TAG_PHASE1A);
            buf.put_u16_le(ring.value());
            put_ballot(buf, *ballot);
            buf.put_u64_le(from.value());
        }
        Message::Phase1B {
            ring,
            ballot,
            from,
            accepted,
            trimmed,
        } => {
            buf.put_u8(TAG_PHASE1B);
            buf.put_u16_le(ring.value());
            put_ballot(buf, *ballot);
            buf.put_u64_le(from.value());
            buf.put_u64_le(trimmed.value());
            buf.put_u32_le(accepted.len() as u32);
            for (i, b, v) in accepted {
                buf.put_u64_le(i.value());
                put_ballot(buf, *b);
                put_cv(buf, v);
            }
        }
        Message::Phase2 {
            ring,
            ballot,
            first,
            count,
            value,
            votes,
        } => {
            buf.put_u8(TAG_PHASE2);
            buf.put_u16_le(ring.value());
            put_ballot(buf, *ballot);
            buf.put_u64_le(first.value());
            buf.put_u32_le(*count);
            buf.put_u32_le(*votes);
            put_cv(buf, value);
        }
        Message::Decision {
            ring,
            first,
            count,
            value,
            hops,
        } => {
            buf.put_u8(TAG_DECISION);
            buf.put_u16_le(ring.value());
            buf.put_u64_le(first.value());
            buf.put_u32_le(*count);
            buf.put_u32_le(*hops);
            match value {
                None => buf.put_u8(0),
                Some(v) => {
                    buf.put_u8(1);
                    put_cv(buf, v);
                }
            }
        }
        Message::Retransmit { ring, from, to } => {
            buf.put_u8(TAG_RETRANSMIT);
            buf.put_u16_le(ring.value());
            buf.put_u64_le(from.value());
            buf.put_u64_le(to.value());
        }
        Message::RetransmitReply {
            ring,
            decided,
            trimmed,
        } => {
            buf.put_u8(TAG_RETRANSMIT_REPLY);
            buf.put_u16_le(ring.value());
            buf.put_u64_le(trimmed.value());
            buf.put_u32_le(decided.len() as u32);
            for (i, c, v) in decided {
                buf.put_u64_le(i.value());
                buf.put_u32_le(*c);
                put_cv(buf, v);
            }
        }
        Message::TrimQuery { group, seq } => {
            buf.put_u8(TAG_TRIM_QUERY);
            buf.put_u16_le(group.value());
            buf.put_u64_le(*seq);
        }
        Message::TrimReply { group, seq, safe } => {
            buf.put_u8(TAG_TRIM_REPLY);
            buf.put_u16_le(group.value());
            buf.put_u64_le(*seq);
            buf.put_u64_le(safe.value());
        }
        Message::TrimCommand { ring, upto } => {
            buf.put_u8(TAG_TRIM_COMMAND);
            buf.put_u16_le(ring.value());
            buf.put_u64_le(upto.value());
        }
        Message::CheckpointQuery { seq } => {
            buf.put_u8(TAG_CKPT_QUERY);
            buf.put_u64_le(*seq);
        }
        Message::CheckpointInfo { seq, checkpoint } => {
            buf.put_u8(TAG_CKPT_INFO);
            buf.put_u64_le(*seq);
            match checkpoint {
                None => buf.put_u8(0),
                Some(c) => {
                    buf.put_u8(1);
                    put_ckpt(buf, c);
                }
            }
        }
        Message::CheckpointFetch { seq, id } => {
            buf.put_u8(TAG_CKPT_FETCH);
            buf.put_u64_le(*seq);
            put_ckpt(buf, id);
        }
        Message::CheckpointData { seq, id, snapshot } => {
            buf.put_u8(TAG_CKPT_DATA);
            buf.put_u64_le(*seq);
            put_ckpt(buf, id);
            match snapshot {
                None => buf.put_u8(0),
                Some(s) => {
                    buf.put_u8(1);
                    put_bytes(buf, s);
                }
            }
        }
        Message::Request {
            client,
            request,
            groups,
            payload,
        } => {
            buf.put_u8(TAG_REQUEST);
            buf.put_u64_le(client.value());
            buf.put_u64_le(*request);
            buf.put_u16_le(groups.len() as u16);
            for g in groups {
                buf.put_u16_le(g.value());
            }
            put_bytes(buf, payload);
        }
        Message::Response {
            client,
            request,
            payload,
        } => {
            buf.put_u8(TAG_RESPONSE);
            buf.put_u64_le(client.value());
            buf.put_u64_le(*request);
            put_bytes(buf, payload);
        }
        Message::Batch(msgs) => {
            buf.put_u8(TAG_BATCH);
            buf.put_u32_le(msgs.len() as u32);
            for m in msgs {
                encode(m, buf);
            }
        }
        Message::Engine { engine, payload } => {
            buf.put_u8(TAG_ENGINE);
            buf.put_u8(*engine);
            put_bytes(buf, payload);
        }
    }
}

/// Encodes `msg` into a fresh buffer.
pub fn encode_to_bytes(msg: &Message) -> Bytes {
    let mut buf = BytesMut::with_capacity(encoded_len(msg));
    encode(msg, &mut buf);
    buf.freeze()
}

/// The exact number of bytes [`encode`] produces for `msg`, without
/// allocating. The simulator uses this to charge link bandwidth.
pub fn encoded_len(msg: &Message) -> usize {
    match msg {
        Message::Forward { values, .. } => {
            1 + 2 + 4 + 4 + values.iter().map(value_len).sum::<usize>()
        }
        Message::Phase1A { .. } => 1 + 2 + 8 + 8,
        Message::Phase1B { accepted, .. } => {
            1 + 2
                + 8
                + 8
                + 8
                + 4
                + accepted
                    .iter()
                    .map(|(_, _, v)| 8 + 8 + cv_len(v))
                    .sum::<usize>()
        }
        Message::Phase2 { value, .. } => 1 + 2 + 8 + 8 + 4 + 4 + cv_len(value),
        Message::Decision { value, .. } => 1 + 2 + 8 + 4 + 4 + 1 + value.as_ref().map_or(0, cv_len),
        Message::Retransmit { .. } => 1 + 2 + 8 + 8,
        Message::RetransmitReply { decided, .. } => {
            1 + 2
                + 8
                + 4
                + decided
                    .iter()
                    .map(|(_, _, v)| 8 + 4 + cv_len(v))
                    .sum::<usize>()
        }
        Message::TrimQuery { .. } => 1 + 2 + 8,
        Message::TrimReply { .. } => 1 + 2 + 8 + 8,
        Message::TrimCommand { .. } => 1 + 2 + 8,
        Message::CheckpointQuery { .. } => 1 + 8,
        Message::CheckpointInfo { checkpoint, .. } => {
            1 + 8 + 1 + checkpoint.as_ref().map_or(0, ckpt_len)
        }
        Message::CheckpointFetch { id, .. } => 1 + 8 + ckpt_len(id),
        Message::CheckpointData { id, snapshot, .. } => {
            1 + 8 + ckpt_len(id) + 1 + snapshot.as_ref().map_or(0, |s| 4 + s.len())
        }
        Message::Request {
            groups, payload, ..
        } => 1 + 8 + 8 + 2 + 2 * groups.len() + 4 + payload.len(),
        Message::Response { payload, .. } => 1 + 8 + 8 + 4 + payload.len(),
        Message::Batch(msgs) => 1 + 4 + msgs.iter().map(encoded_len).sum::<usize>(),
        Message::Engine { payload, .. } => 1 + 1 + 4 + payload.len(),
    }
}

/// Decodes one message from `buf`.
///
/// # Errors
///
/// Returns [`CodecError`] if the buffer is truncated, a tag is unknown or
/// a length prefix is implausible.
pub fn decode(buf: &mut impl Buf) -> Result<Message, CodecError> {
    let tag = get_u8(buf)?;
    match tag {
        TAG_FORWARD => {
            let ring = RingId::new(get_u16(buf)?);
            let hops = get_u32(buf)?;
            let n = get_len(buf)?;
            let mut values = Vec::with_capacity(n.min(4096));
            for _ in 0..n {
                values.push(get_value(buf)?);
            }
            Ok(Message::Forward { ring, values, hops })
        }
        TAG_PHASE1A => Ok(Message::Phase1A {
            ring: RingId::new(get_u16(buf)?),
            ballot: get_ballot(buf)?,
            from: InstanceId::new(get_u64(buf)?),
        }),
        TAG_PHASE1B => {
            let ring = RingId::new(get_u16(buf)?);
            let ballot = get_ballot(buf)?;
            let from = InstanceId::new(get_u64(buf)?);
            let trimmed = InstanceId::new(get_u64(buf)?);
            let n = get_len(buf)?;
            let mut accepted = Vec::with_capacity(n.min(4096));
            for _ in 0..n {
                let i = InstanceId::new(get_u64(buf)?);
                let b = get_ballot(buf)?;
                let v = get_cv(buf)?;
                accepted.push((i, b, v));
            }
            Ok(Message::Phase1B {
                ring,
                ballot,
                from,
                accepted,
                trimmed,
            })
        }
        TAG_PHASE2 => Ok(Message::Phase2 {
            ring: RingId::new(get_u16(buf)?),
            ballot: get_ballot(buf)?,
            first: InstanceId::new(get_u64(buf)?),
            count: get_u32(buf)?,
            votes: get_u32(buf)?,
            value: get_cv(buf)?,
        }),
        TAG_DECISION => {
            let ring = RingId::new(get_u16(buf)?);
            let first = InstanceId::new(get_u64(buf)?);
            let count = get_u32(buf)?;
            let hops = get_u32(buf)?;
            let value = match get_u8(buf)? {
                0 => None,
                1 => Some(get_cv(buf)?),
                t => return Err(CodecError::BadTag(t)),
            };
            Ok(Message::Decision {
                ring,
                first,
                count,
                value,
                hops,
            })
        }
        TAG_RETRANSMIT => Ok(Message::Retransmit {
            ring: RingId::new(get_u16(buf)?),
            from: InstanceId::new(get_u64(buf)?),
            to: InstanceId::new(get_u64(buf)?),
        }),
        TAG_RETRANSMIT_REPLY => {
            let ring = RingId::new(get_u16(buf)?);
            let trimmed = InstanceId::new(get_u64(buf)?);
            let n = get_len(buf)?;
            let mut decided = Vec::with_capacity(n.min(4096));
            for _ in 0..n {
                let i = InstanceId::new(get_u64(buf)?);
                let c = get_u32(buf)?;
                let v = get_cv(buf)?;
                decided.push((i, c, v));
            }
            Ok(Message::RetransmitReply {
                ring,
                decided,
                trimmed,
            })
        }
        TAG_TRIM_QUERY => Ok(Message::TrimQuery {
            group: GroupId::new(get_u16(buf)?),
            seq: get_u64(buf)?,
        }),
        TAG_TRIM_REPLY => Ok(Message::TrimReply {
            group: GroupId::new(get_u16(buf)?),
            seq: get_u64(buf)?,
            safe: InstanceId::new(get_u64(buf)?),
        }),
        TAG_TRIM_COMMAND => Ok(Message::TrimCommand {
            ring: RingId::new(get_u16(buf)?),
            upto: InstanceId::new(get_u64(buf)?),
        }),
        TAG_CKPT_QUERY => Ok(Message::CheckpointQuery { seq: get_u64(buf)? }),
        TAG_CKPT_INFO => {
            let seq = get_u64(buf)?;
            let checkpoint = match get_u8(buf)? {
                0 => None,
                1 => Some(get_ckpt(buf)?),
                t => return Err(CodecError::BadTag(t)),
            };
            Ok(Message::CheckpointInfo { seq, checkpoint })
        }
        TAG_CKPT_FETCH => Ok(Message::CheckpointFetch {
            seq: get_u64(buf)?,
            id: get_ckpt(buf)?,
        }),
        TAG_CKPT_DATA => {
            let seq = get_u64(buf)?;
            let id = get_ckpt(buf)?;
            let snapshot = match get_u8(buf)? {
                0 => None,
                1 => Some(get_bytes(buf)?),
                t => return Err(CodecError::BadTag(t)),
            };
            Ok(Message::CheckpointData { seq, id, snapshot })
        }
        TAG_REQUEST => {
            let client = ClientId::new(get_u64(buf)?);
            let request = get_u64(buf)?;
            let n = get_u16(buf)? as usize;
            let mut groups = Vec::with_capacity(n.min(4096));
            for _ in 0..n {
                groups.push(GroupId::new(get_u16(buf)?));
            }
            Ok(Message::Request {
                client,
                request,
                groups,
                payload: get_bytes(buf)?,
            })
        }
        TAG_RESPONSE => Ok(Message::Response {
            client: ClientId::new(get_u64(buf)?),
            request: get_u64(buf)?,
            payload: get_bytes(buf)?,
        }),
        TAG_BATCH => {
            let n = get_len(buf)?;
            let mut msgs = Vec::with_capacity(n.min(4096));
            for _ in 0..n {
                msgs.push(decode(buf)?);
            }
            Ok(Message::Batch(msgs))
        }
        TAG_ENGINE => Ok(Message::Engine {
            engine: get_u8(buf)?,
            payload: get_bytes(buf)?,
        }),
        t => Err(CodecError::BadTag(t)),
    }
}

// ---- persist records (acceptor WAL / checkpoint files) ----------------

const TAG_REC_PROMISE: u8 = 40;
const TAG_REC_VOTE: u8 = 41;
const TAG_REC_CHECKPOINT: u8 = 42;
const TAG_REC_DECISION: u8 = 43;

/// Encodes a stable-storage record (acceptor WAL entry or checkpoint).
pub fn encode_record(record: &crate::event::PersistRecord, buf: &mut BytesMut) {
    use crate::event::PersistRecord;
    match record {
        PersistRecord::Promise { ring, ballot, from } => {
            buf.put_u8(TAG_REC_PROMISE);
            buf.put_u16_le(ring.value());
            put_ballot(buf, *ballot);
            buf.put_u64_le(from.value());
        }
        PersistRecord::Vote {
            ring,
            ballot,
            first,
            count,
            value,
        } => {
            buf.put_u8(TAG_REC_VOTE);
            buf.put_u16_le(ring.value());
            put_ballot(buf, *ballot);
            buf.put_u64_le(first.value());
            buf.put_u32_le(*count);
            put_cv(buf, value);
        }
        PersistRecord::Checkpoint { id, snapshot } => {
            buf.put_u8(TAG_REC_CHECKPOINT);
            put_ckpt(buf, id);
            put_bytes(buf, snapshot);
        }
        PersistRecord::Decision { ring, first, count } => {
            buf.put_u8(TAG_REC_DECISION);
            buf.put_u16_le(ring.value());
            buf.put_u64_le(first.value());
            buf.put_u32_le(*count);
        }
    }
}

/// The number of bytes [`encode_record`] produces (used by disk models to
/// charge write bandwidth).
pub fn record_len(record: &crate::event::PersistRecord) -> usize {
    use crate::event::PersistRecord;
    match record {
        PersistRecord::Promise { .. } => 1 + 2 + 8 + 8,
        PersistRecord::Vote { value, .. } => 1 + 2 + 8 + 8 + 4 + cv_len(value),
        PersistRecord::Checkpoint { id, snapshot } => 1 + ckpt_len(id) + 4 + snapshot.len(),
        PersistRecord::Decision { .. } => 1 + 2 + 8 + 4,
    }
}

/// Decodes a stable-storage record.
///
/// # Errors
///
/// Returns [`CodecError`] on truncation or unknown tags.
pub fn decode_record(buf: &mut impl Buf) -> Result<crate::event::PersistRecord, CodecError> {
    use crate::event::PersistRecord;
    match get_u8(buf)? {
        TAG_REC_PROMISE => Ok(PersistRecord::Promise {
            ring: RingId::new(get_u16(buf)?),
            ballot: get_ballot(buf)?,
            from: InstanceId::new(get_u64(buf)?),
        }),
        TAG_REC_VOTE => Ok(PersistRecord::Vote {
            ring: RingId::new(get_u16(buf)?),
            ballot: get_ballot(buf)?,
            first: InstanceId::new(get_u64(buf)?),
            count: get_u32(buf)?,
            value: get_cv(buf)?,
        }),
        TAG_REC_CHECKPOINT => Ok(PersistRecord::Checkpoint {
            id: get_ckpt(buf)?,
            snapshot: get_bytes(buf)?,
        }),
        TAG_REC_DECISION => Ok(PersistRecord::Decision {
            ring: RingId::new(get_u16(buf)?),
            first: InstanceId::new(get_u64(buf)?),
            count: get_u32(buf)?,
        }),
        t => Err(CodecError::BadTag(t)),
    }
}

// ---- field helpers ----------------------------------------------------

fn put_ballot(buf: &mut BytesMut, b: Ballot) {
    buf.put_u32_le(b.round());
    buf.put_u32_le(b.node().value());
}

fn get_ballot(buf: &mut impl Buf) -> Result<Ballot, CodecError> {
    let round = get_u32(buf)?;
    let node = ProcessId::new(get_u32(buf)?);
    Ok(Ballot::new(round, node))
}

fn put_value(buf: &mut BytesMut, v: &Value) {
    buf.put_u32_le(v.id.proposer.value());
    buf.put_u64_le(v.id.seq);
    buf.put_u16_le(v.group.value());
    put_bytes(buf, &v.payload);
}

fn value_len(v: &Value) -> usize {
    4 + 8 + 2 + 4 + v.payload.len()
}

fn get_value(buf: &mut impl Buf) -> Result<Value, CodecError> {
    let proposer = ProcessId::new(get_u32(buf)?);
    let seq = get_u64(buf)?;
    let group = GroupId::new(get_u16(buf)?);
    let payload = get_bytes(buf)?;
    Ok(Value::new(ValueId::new(proposer, seq), group, payload))
}

fn put_cv(buf: &mut BytesMut, cv: &ConsensusValue) {
    match cv {
        ConsensusValue::Skip => buf.put_u8(0),
        ConsensusValue::Values(vs) => {
            buf.put_u8(1);
            buf.put_u32_le(vs.len() as u32);
            for v in vs {
                put_value(buf, v);
            }
        }
    }
}

fn cv_len(cv: &ConsensusValue) -> usize {
    match cv {
        ConsensusValue::Skip => 1,
        ConsensusValue::Values(vs) => 1 + 4 + vs.iter().map(value_len).sum::<usize>(),
    }
}

fn get_cv(buf: &mut impl Buf) -> Result<ConsensusValue, CodecError> {
    match get_u8(buf)? {
        0 => Ok(ConsensusValue::Skip),
        1 => {
            let n = get_len(buf)?;
            let mut vs = Vec::with_capacity(n.min(4096));
            for _ in 0..n {
                vs.push(get_value(buf)?);
            }
            Ok(ConsensusValue::Values(vs))
        }
        t => Err(CodecError::BadTag(t)),
    }
}

fn put_ckpt(buf: &mut BytesMut, c: &CheckpointId) {
    buf.put_u32_le(c.marks.len() as u32);
    for (g, i) in &c.marks {
        buf.put_u16_le(g.value());
        buf.put_u64_le(i.value());
    }
    buf.put_u32_le(c.cursor_group);
    buf.put_u32_le(c.cursor_used);
}

fn ckpt_len(c: &CheckpointId) -> usize {
    4 + c.marks.len() * (2 + 8) + 4 + 4
}

fn get_ckpt(buf: &mut impl Buf) -> Result<CheckpointId, CodecError> {
    let n = get_len(buf)?;
    let mut marks = Vec::with_capacity(n.min(4096));
    for _ in 0..n {
        let g = GroupId::new(get_u16(buf)?);
        let i = InstanceId::new(get_u64(buf)?);
        marks.push((g, i));
    }
    let cursor_group = get_u32(buf)?;
    let cursor_used = get_u32(buf)?;
    Ok(CheckpointId {
        marks,
        cursor_group,
        cursor_used,
    })
}

fn put_bytes(buf: &mut BytesMut, b: &Bytes) {
    buf.put_u32_le(b.len() as u32);
    buf.put_slice(b);
}

fn get_bytes(buf: &mut impl Buf) -> Result<Bytes, CodecError> {
    let n = get_u32(buf)? as u64;
    if n > MAX_LEN {
        return Err(CodecError::BadLength(n));
    }
    if (buf.remaining() as u64) < n {
        return Err(CodecError::Truncated);
    }
    Ok(buf.copy_to_bytes(n as usize))
}

fn get_len(buf: &mut impl Buf) -> Result<usize, CodecError> {
    let n = get_u32(buf)? as u64;
    if n > MAX_LEN {
        return Err(CodecError::BadLength(n));
    }
    Ok(n as usize)
}

fn get_u8(buf: &mut impl Buf) -> Result<u8, CodecError> {
    if buf.remaining() < 1 {
        return Err(CodecError::Truncated);
    }
    Ok(buf.get_u8())
}

fn get_u16(buf: &mut impl Buf) -> Result<u16, CodecError> {
    if buf.remaining() < 2 {
        return Err(CodecError::Truncated);
    }
    Ok(buf.get_u16_le())
}

fn get_u32(buf: &mut impl Buf) -> Result<u32, CodecError> {
    if buf.remaining() < 4 {
        return Err(CodecError::Truncated);
    }
    Ok(buf.get_u32_le())
}

fn get_u64(buf: &mut impl Buf) -> Result<u64, CodecError> {
    if buf.remaining() < 8 {
        return Err(CodecError::Truncated);
    }
    Ok(buf.get_u64_le())
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn sample_messages() -> Vec<Message> {
        let value = Value::new(
            ValueId::new(ProcessId::new(3), 77),
            GroupId::new(2),
            vec![1u8, 2, 3, 4],
        );
        let cv = ConsensusValue::Values(vec![value.clone()]);
        let ckpt = CheckpointId {
            marks: vec![
                (GroupId::new(0), InstanceId::new(10)),
                (GroupId::new(1), InstanceId::new(9)),
            ],
            cursor_group: 1,
            cursor_used: 0,
        };
        vec![
            Message::Forward {
                ring: RingId::new(1),
                values: vec![value.clone()],
                hops: 2,
            },
            Message::Phase1A {
                ring: RingId::new(1),
                ballot: Ballot::new(4, ProcessId::new(2)),
                from: InstanceId::new(5),
            },
            Message::Phase1B {
                ring: RingId::new(1),
                ballot: Ballot::new(4, ProcessId::new(2)),
                from: InstanceId::new(5),
                accepted: vec![(
                    InstanceId::new(6),
                    Ballot::new(3, ProcessId::new(1)),
                    cv.clone(),
                )],
                trimmed: InstanceId::new(2),
            },
            Message::Phase2 {
                ring: RingId::new(1),
                ballot: Ballot::new(4, ProcessId::new(2)),
                first: InstanceId::new(7),
                count: 1,
                value: cv.clone(),
                votes: 2,
            },
            Message::Decision {
                ring: RingId::new(1),
                first: InstanceId::new(7),
                count: 3,
                value: Some(ConsensusValue::Skip),
                hops: 1,
            },
            Message::Decision {
                ring: RingId::new(1),
                first: InstanceId::new(9),
                count: 1,
                value: None,
                hops: 2,
            },
            Message::Retransmit {
                ring: RingId::new(0),
                from: InstanceId::new(1),
                to: InstanceId::new(4),
            },
            Message::RetransmitReply {
                ring: RingId::new(0),
                decided: vec![(InstanceId::new(1), 2, ConsensusValue::Skip)],
                trimmed: InstanceId::ZERO,
            },
            Message::TrimQuery {
                group: GroupId::new(3),
                seq: 9,
            },
            Message::TrimReply {
                group: GroupId::new(3),
                seq: 9,
                safe: InstanceId::new(100),
            },
            Message::TrimCommand {
                ring: RingId::new(2),
                upto: InstanceId::new(50),
            },
            Message::CheckpointQuery { seq: 1 },
            Message::CheckpointInfo {
                seq: 1,
                checkpoint: Some(ckpt.clone()),
            },
            Message::CheckpointInfo {
                seq: 2,
                checkpoint: None,
            },
            Message::CheckpointFetch {
                seq: 3,
                id: ckpt.clone(),
            },
            Message::CheckpointData {
                seq: 3,
                id: ckpt,
                snapshot: Some(Bytes::from_static(b"snapshot")),
            },
            Message::Request {
                client: ClientId::new(8),
                request: 55,
                groups: vec![GroupId::new(1)],
                payload: Bytes::from_static(b"cmd"),
            },
            Message::Request {
                client: ClientId::new(9),
                request: 56,
                groups: vec![GroupId::new(0), GroupId::new(2), GroupId::new(5)],
                payload: Bytes::from_static(b"scan"),
            },
            Message::Response {
                client: ClientId::new(8),
                request: 55,
                payload: Bytes::from_static(b"ok"),
            },
            Message::Batch(vec![
                Message::CheckpointQuery { seq: 4 },
                Message::TrimCommand {
                    ring: RingId::new(0),
                    upto: InstanceId::new(1),
                },
            ]),
            Message::Engine {
                engine: 1,
                payload: Bytes::from_static(b"engine-frame"),
            },
        ]
    }

    #[test]
    fn roundtrip_all_variants() {
        for msg in sample_messages() {
            let mut buf = BytesMut::new();
            encode(&msg, &mut buf);
            assert_eq!(
                buf.len(),
                encoded_len(&msg),
                "encoded_len mismatch for {msg:?}"
            );
            let mut frozen = buf.freeze();
            let back = decode(&mut frozen).expect("decode");
            assert_eq!(back, msg);
            assert_eq!(frozen.remaining(), 0, "trailing bytes for {msg:?}");
        }
    }

    #[test]
    fn truncated_frames_error() {
        for msg in sample_messages() {
            let full = encode_to_bytes(&msg);
            for cut in 0..full.len() {
                let mut partial = full.slice(..cut);
                assert!(
                    decode(&mut partial).is_err(),
                    "decode of {cut}/{} bytes should fail for {msg:?}",
                    full.len()
                );
            }
        }
    }

    #[test]
    fn unknown_tag_rejected() {
        let mut buf = Bytes::from_static(&[99u8, 0, 0, 0]);
        assert_eq!(decode(&mut buf), Err(CodecError::BadTag(99)));
    }

    #[test]
    fn implausible_length_rejected() {
        // A Request whose payload length prefix claims 2 GiB.
        let mut buf = BytesMut::new();
        buf.put_u8(TAG_REQUEST);
        buf.put_u64_le(1);
        buf.put_u64_le(1);
        buf.put_u16_le(1);
        buf.put_u16_le(0);
        buf.put_u32_le(u32::MAX);
        let mut frozen = buf.freeze();
        assert!(matches!(decode(&mut frozen), Err(CodecError::BadLength(_))));
    }

    proptest! {
        #[test]
        fn prop_request_roundtrip(client in any::<u64>(), request in any::<u64>(),
                                  groups in proptest::collection::vec(any::<u16>(), 1..6),
                                  payload in proptest::collection::vec(any::<u8>(), 0..512)) {
            let msg = Message::Request {
                client: ClientId::new(client),
                request,
                groups: groups.into_iter().map(GroupId::new).collect(),
                payload: Bytes::from(payload),
            };
            let mut buf = BytesMut::new();
            encode(&msg, &mut buf);
            prop_assert_eq!(buf.len(), encoded_len(&msg));
            let back = decode(&mut buf.freeze()).unwrap();
            prop_assert_eq!(back, msg);
        }

        #[test]
        fn prop_phase2_roundtrip(ring in any::<u16>(), round in any::<u32>(),
                                 node in any::<u32>(), first in 1u64..u64::MAX/2,
                                 count in 1u32..1000, votes in 0u32..100,
                                 payload in proptest::collection::vec(any::<u8>(), 0..256),
                                 skip in any::<bool>()) {
            let value = if skip {
                ConsensusValue::Skip
            } else {
                ConsensusValue::Values(vec![Value::new(
                    ValueId::new(ProcessId::new(node), first),
                    GroupId::new(ring),
                    payload,
                )])
            };
            let msg = Message::Phase2 {
                ring: RingId::new(ring),
                ballot: Ballot::new(round, ProcessId::new(node)),
                first: InstanceId::new(first),
                count,
                value,
                votes,
            };
            let mut buf = BytesMut::new();
            encode(&msg, &mut buf);
            prop_assert_eq!(buf.len(), encoded_len(&msg));
            let back = decode(&mut buf.freeze()).unwrap();
            prop_assert_eq!(back, msg);
        }

        #[test]
        fn prop_decode_arbitrary_bytes_never_panics(data in proptest::collection::vec(any::<u8>(), 0..256)) {
            let mut buf = Bytes::from(data);
            let _ = decode(&mut buf);
        }

        /// The zero-copy wire path: decoding from a frozen buffer must
        /// not copy payload bytes — the decoded payload is a slice of
        /// the input allocation (`copy_to_bytes` on `Bytes` shares the
        /// backing storage instead of allocating).
        #[test]
        fn prop_decoded_payload_aliases_the_input_buffer(
            client in any::<u64>(), request in any::<u64>(),
            payload in proptest::collection::vec(any::<u8>(), 1..512),
        ) {
            let msg = Message::Request {
                client: ClientId::new(client),
                request,
                groups: vec![GroupId::new(1), GroupId::new(2)],
                payload: Bytes::from(payload),
            };
            let mut buf = BytesMut::new();
            encode(&msg, &mut buf);
            let input = buf.freeze();
            let base = input.as_slice().as_ptr() as usize;
            let len = input.len();
            let back = decode(&mut input.clone()).unwrap();
            let Message::Request { payload: decoded, .. } = back else {
                panic!("request decodes as request");
            };
            let p = decoded.as_slice().as_ptr() as usize;
            prop_assert!(
                p >= base && p + decoded.len() <= base + len,
                "decoded payload must alias the input allocation \
                 (payload {:#x}+{} outside input {:#x}+{})",
                p, decoded.len(), base, len
            );
        }
    }
}
