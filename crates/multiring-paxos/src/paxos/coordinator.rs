//! The coordinator role: instance allocation, Phase 1 pre-execution,
//! pipelined Phase 2, duplicate suppression and rate leveling.

use crate::config::RingTuning;
use crate::paxos::acceptor::InstanceRange;
use crate::types::{Ballot, ConsensusValue, InstanceId, ProcessId, RingId, SeqFilter, Time, Value};
use std::collections::{BTreeMap, VecDeque};

/// Where the coordinator stands in the protocol.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum CoordinatorStatus {
    /// Phase 1 is in flight; values are queued until a promise quorum
    /// arrives.
    Preparing,
    /// Phase 1 completed; Phase 2 rounds are pipelined as values arrive.
    Steady,
}

#[derive(Clone, Debug)]
struct InFlight {
    count: u32,
    value: ConsensusValue,
    proposed_at: Time,
}

/// The coordinator of one ring.
///
/// A pure state machine: methods return the [`InstanceRange`]s to propose
/// as Phase 2 messages, and the ring layer handles routing, the local
/// acceptor vote and persistence.
#[derive(Debug)]
pub struct Coordinator {
    ring: RingId,
    me: ProcessId,
    majority: usize,
    tuning: RingTuning,
    ballot: Ballot,
    status: CoordinatorStatus,
    phase1_from: InstanceId,
    promises: Vec<ProcessId>,
    recovered: BTreeMap<InstanceId, (Ballot, ConsensusValue)>,
    recovered_trim_max: InstanceId,
    next_instance: InstanceId,
    pending: VecDeque<Value>,
    seen: BTreeMap<ProcessId, SeqFilter>,
    in_flight: BTreeMap<InstanceId, InFlight>,
    started_in_interval: u64,
    interval_started_at: Time,
}

impl Coordinator {
    /// Folds the coordinator's protocol state into a fingerprint (see
    /// [`crate::digest`]). Rate-leveling interval accounting is included:
    /// it gates when the next proposal round may start.
    pub(crate) fn digest_into(&self, h: &mut crate::digest::Fnv1a) {
        use crate::digest::DigestInto;
        self.ring.digest_into(h);
        self.me.digest_into(h);
        h.write_usize(self.majority);
        self.ballot.digest_into(h);
        h.write_u8(match self.status {
            CoordinatorStatus::Preparing => 1,
            CoordinatorStatus::Steady => 2,
        });
        self.phase1_from.digest_into(h);
        self.promises.digest_into(h);
        self.recovered.digest_into(h);
        self.recovered_trim_max.digest_into(h);
        self.next_instance.digest_into(h);
        self.pending.digest_into(h);
        self.seen.digest_into(h);
        h.write_usize(self.in_flight.len());
        for (i, inf) in &self.in_flight {
            i.digest_into(h);
            h.write_u64(u64::from(inf.count));
            inf.value.digest_into(h);
            inf.proposed_at.digest_into(h);
        }
        h.write_u64(self.started_in_interval);
        self.interval_started_at.digest_into(h);
    }

    /// Creates an idle coordinator for `ring` at process `me`; call
    /// [`Coordinator::start`] to run Phase 1 and take over.
    pub fn new(ring: RingId, me: ProcessId, majority: usize, tuning: RingTuning) -> Self {
        Self {
            ring,
            me,
            majority,
            tuning,
            ballot: Ballot::ZERO,
            status: CoordinatorStatus::Preparing,
            phase1_from: InstanceId::new(1),
            promises: Vec::new(),
            recovered: BTreeMap::new(),
            recovered_trim_max: InstanceId::ZERO,
            next_instance: InstanceId::new(1),
            pending: VecDeque::new(),
            seen: BTreeMap::new(),
            in_flight: BTreeMap::new(),
            started_in_interval: 0,
            interval_started_at: Time::ZERO,
        }
    }

    /// Begins Phase 1 with a ballot that supersedes `supersedes`
    /// (typically the highest ballot observed in the ring). Returns the
    /// `(ballot, from)` pair for the Phase 1A message; the ring layer
    /// sends it to every acceptor.
    pub fn start(&mut self, now: Time, supersedes: Ballot) -> (Ballot, InstanceId) {
        self.ballot = supersedes.bump(self.me);
        self.status = CoordinatorStatus::Preparing;
        self.promises.clear();
        self.recovered.clear();
        self.recovered_trim_max = InstanceId::ZERO;
        self.interval_started_at = now;
        self.started_in_interval = 0;
        (self.ballot, self.phase1_from)
    }

    /// The ring this coordinator serves.
    pub fn ring(&self) -> RingId {
        self.ring
    }

    /// The ballot this coordinator currently owns.
    pub fn ballot(&self) -> Ballot {
        self.ballot
    }

    /// Current protocol status.
    pub fn status(&self) -> CoordinatorStatus {
        self.status
    }

    /// Values queued but not yet proposed.
    pub fn pending_len(&self) -> usize {
        self.pending.len()
    }

    /// Proposed-but-undecided instances.
    pub fn in_flight_len(&self) -> usize {
        self.in_flight.len()
    }

    /// The next unused consensus instance.
    pub fn next_instance(&self) -> InstanceId {
        self.next_instance
    }

    /// Handles a Phase 1B promise. Once a majority of acceptors promised,
    /// returns the Phase 2 ranges to send: recovered values re-proposed
    /// at their original instances (Paxos safety), holes filled with
    /// `Skip`, and any queued client values after those.
    pub fn on_phase1b(
        &mut self,
        now: Time,
        from: ProcessId,
        ballot: Ballot,
        accepted: Vec<(InstanceId, Ballot, ConsensusValue)>,
        trimmed: InstanceId,
    ) -> Vec<InstanceRange> {
        if self.status != CoordinatorStatus::Preparing || ballot != self.ballot {
            return Vec::new();
        }
        if self.promises.contains(&from) {
            return Vec::new();
        }
        self.promises.push(from);
        self.recovered_trim_max = self.recovered_trim_max.max(trimmed);
        for (inst, b, v) in accepted {
            match self.recovered.get(&inst) {
                Some(&(prev, _)) if prev >= b => {}
                _ => {
                    self.recovered.insert(inst, (b, v));
                }
            }
        }
        if self.promises.len() < self.majority {
            return Vec::new();
        }

        // Quorum reached: compute the recovery proposals.
        self.status = CoordinatorStatus::Steady;
        let mut proposals = Vec::new();
        let max_recovered = self.recovered.keys().next_back().copied();
        let horizon = match max_recovered {
            Some(m) => m.max(self.recovered_trim_max),
            None => self.recovered_trim_max,
        };
        let mut i = self.phase1_from.max(self.recovered_trim_max.next());
        while i <= horizon {
            if let Some((_, v)) = self.recovered.remove(&i) {
                // Learn proposer sequence numbers embedded in recovered
                // values so duplicate-suppression survives failover.
                if let ConsensusValue::Values(vs) = &v {
                    for value in vs {
                        let fresh = self
                            .seen
                            .entry(value.id.proposer)
                            .or_default()
                            .insert(value.id.seq);
                        if !fresh {
                            // The proposer resent the value while Phase 1
                            // was in flight and it queued: drop the
                            // queued copy, or the re-proposal at the
                            // original instance plus the queued one at a
                            // fresh instance would decide it twice.
                            self.pending.retain(|p| p.id != value.id);
                        }
                    }
                }
                proposals.push(InstanceRange {
                    first: i,
                    count: 1,
                    value: v,
                });
                i = i.next();
            } else {
                // Fill the hole (and any contiguous holes) with one skip.
                let mut count = 1u32;
                let mut j = i.next();
                while j <= horizon && !self.recovered.contains_key(&j) {
                    count += 1;
                    j = j.next();
                }
                proposals.push(InstanceRange {
                    first: i,
                    count,
                    value: ConsensusValue::Skip,
                });
                i = j;
            }
        }
        self.next_instance = horizon.next().max(self.phase1_from);
        for p in &proposals {
            self.in_flight.insert(
                p.first,
                InFlight {
                    count: p.count,
                    value: p.value.clone(),
                    proposed_at: now,
                },
            );
        }
        self.started_in_interval += proposals.iter().map(|p| u64::from(p.count)).sum::<u64>();
        // Drain any values that queued up during Phase 1.
        proposals.extend(self.try_propose(now));
        proposals
    }

    /// Accepts values forwarded by proposers: suppresses duplicates
    /// (resends after a proposer timeout or coordinator change), queues
    /// the rest, and returns new Phase 2 ranges up to the pipelining
    /// window.
    pub fn submit(&mut self, now: Time, values: Vec<Value>) -> Vec<InstanceRange> {
        for v in values {
            let fresh = self.seen.entry(v.id.proposer).or_default().insert(v.id.seq);
            if fresh {
                self.pending.push_back(v);
            }
        }
        if self.status == CoordinatorStatus::Steady {
            self.try_propose(now)
        } else {
            Vec::new()
        }
    }

    fn try_propose(&mut self, now: Time) -> Vec<InstanceRange> {
        let mut out = Vec::new();
        while !self.pending.is_empty() && self.in_flight.len() < self.tuning.window as usize {
            let mut batch = Vec::new();
            let mut bytes = 0usize;
            while batch.len() < self.tuning.values_per_instance {
                let Some(v) = self.pending.front() else { break };
                if !batch.is_empty() && bytes + v.len() > self.tuning.bytes_per_instance {
                    break;
                }
                bytes += v.len();
                batch.push(self.pending.pop_front().expect("front exists"));
            }
            let range = InstanceRange {
                first: self.next_instance,
                count: 1,
                value: ConsensusValue::Values(batch),
            };
            self.next_instance = self.next_instance.next();
            self.in_flight.insert(
                range.first,
                InFlight {
                    count: 1,
                    value: range.value.clone(),
                    proposed_at: now,
                },
            );
            self.started_in_interval += 1;
            out.push(range);
        }
        out
    }

    /// Notes a decision observed on the ring, freeing pipeline slots.
    /// Returns newly admitted proposals.
    pub fn on_decided(&mut self, now: Time, first: InstanceId, _count: u32) -> Vec<InstanceRange> {
        self.in_flight.remove(&first);
        if self.status == CoordinatorStatus::Steady {
            self.try_propose(now)
        } else {
            Vec::new()
        }
    }

    /// Rate leveling (Section 4): called every Δ. Compares the number of
    /// instances started during the interval with the expected rate λ and
    /// returns a `Skip` range for the deficit, plus re-proposals of
    /// instances that have been in flight for more than four intervals.
    pub fn on_delta(&mut self, now: Time) -> Vec<InstanceRange> {
        let mut out = Vec::new();
        if self.status != CoordinatorStatus::Steady {
            return out;
        }
        let elapsed = now.since(self.interval_started_at);
        if elapsed >= self.tuning.delta_us {
            let target = self.tuning.lambda * elapsed / 1_000_000;
            if self.tuning.lambda > 0 && self.started_in_interval < target {
                let deficit = (target - self.started_in_interval) as u32;
                let range = InstanceRange {
                    first: self.next_instance,
                    count: deficit,
                    value: ConsensusValue::Skip,
                };
                self.next_instance = self.next_instance.plus(u64::from(deficit));
                self.in_flight.insert(
                    range.first,
                    InFlight {
                        count: deficit,
                        value: ConsensusValue::Skip,
                        proposed_at: now,
                    },
                );
                out.push(range);
            }
            self.started_in_interval = 0;
            self.interval_started_at = now;
        }
        // Re-propose stalled instances (lost Phase 2 or vote rejection).
        let resend_after = self.tuning.repropose_us.max(1);
        for (&first, inflight) in &mut self.in_flight {
            if now.since(inflight.proposed_at) >= resend_after {
                inflight.proposed_at = now;
                out.push(InstanceRange {
                    first,
                    count: inflight.count,
                    value: inflight.value.clone(),
                });
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::{GroupId, ValueId};

    fn mkval(proposer: u32, seq: u64) -> Value {
        Value::new(
            ValueId::new(ProcessId::new(proposer), seq),
            GroupId::new(0),
            vec![0u8; 8],
        )
    }

    fn quorum_start(c: &mut Coordinator) -> Vec<InstanceRange> {
        let now = Time::ZERO;
        c.start(now, Ballot::ZERO);
        let mut all = c.on_phase1b(now, ProcessId::new(0), c.ballot(), vec![], InstanceId::ZERO);
        all.extend(c.on_phase1b(now, ProcessId::new(1), c.ballot(), vec![], InstanceId::ZERO));
        all
    }

    fn coord() -> Coordinator {
        Coordinator::new(
            RingId::new(0),
            ProcessId::new(0),
            2,
            RingTuning {
                lambda: 0,
                ..RingTuning::default()
            },
        )
    }

    #[test]
    fn phase1_quorum_then_steady() {
        let mut c = coord();
        let props = quorum_start(&mut c);
        assert!(props.is_empty());
        assert_eq!(c.status(), CoordinatorStatus::Steady);
        assert_eq!(c.next_instance(), InstanceId::new(1));
    }

    #[test]
    fn duplicate_promises_ignored() {
        let mut c = coord();
        let now = Time::ZERO;
        c.start(now, Ballot::ZERO);
        c.on_phase1b(now, ProcessId::new(0), c.ballot(), vec![], InstanceId::ZERO);
        let r = c.on_phase1b(now, ProcessId::new(0), c.ballot(), vec![], InstanceId::ZERO);
        assert!(r.is_empty());
        assert_eq!(c.status(), CoordinatorStatus::Preparing);
    }

    #[test]
    fn values_queue_during_phase1() {
        let mut c = coord();
        let now = Time::ZERO;
        c.start(now, Ballot::ZERO);
        assert!(c.submit(now, vec![mkval(1, 1)]).is_empty());
        assert_eq!(c.pending_len(), 1);
        c.on_phase1b(now, ProcessId::new(0), c.ballot(), vec![], InstanceId::ZERO);
        let props = c.on_phase1b(now, ProcessId::new(1), c.ballot(), vec![], InstanceId::ZERO);
        assert_eq!(props.len(), 1);
        assert_eq!(props[0].first, InstanceId::new(1));
        assert!(matches!(&props[0].value, ConsensusValue::Values(v) if v.len() == 1));
    }

    #[test]
    fn recovery_reproposes_and_fills_holes() {
        let mut c = coord();
        let now = Time::ZERO;
        c.start(now, Ballot::ZERO);
        let old = Ballot::new(1, ProcessId::new(9));
        let v5 = ConsensusValue::Values(vec![mkval(7, 3)]);
        c.on_phase1b(
            now,
            ProcessId::new(0),
            c.ballot(),
            vec![(InstanceId::new(5), old, v5.clone())],
            InstanceId::ZERO,
        );
        let props = c.on_phase1b(now, ProcessId::new(1), c.ballot(), vec![], InstanceId::ZERO);
        // Holes 1..=4 skipped in one range, then instance 5 re-proposed.
        assert_eq!(props.len(), 2);
        assert_eq!(props[0].first, InstanceId::new(1));
        assert_eq!(props[0].count, 4);
        assert!(props[0].value.is_skip());
        assert_eq!(props[1].first, InstanceId::new(5));
        assert_eq!(props[1].value, v5);
        assert_eq!(c.next_instance(), InstanceId::new(6));
        // Sequence learned from the recovered value suppresses the resend.
        assert!(c.submit(now, vec![mkval(7, 3)]).is_empty());
        assert_eq!(c.pending_len(), 0);
    }

    /// A proposer resend that arrives while Phase 1 is still collecting
    /// promises queues the value; if Phase 1B then recovers the same
    /// value at its original instance, the queued copy must be dropped —
    /// otherwise the value is decided at two instances and delivered
    /// twice.
    #[test]
    fn resend_queued_during_phase1_is_purged_by_recovery() {
        let mut c = coord();
        let now = Time::ZERO;
        c.start(now, Ballot::ZERO);
        // The resend lands mid-Phase-1 and queues.
        assert!(c.submit(now, vec![mkval(7, 3)]).is_empty());
        assert_eq!(c.pending_len(), 1);
        // Recovery returns the same value, accepted at instance 2.
        let old = Ballot::new(1, ProcessId::new(9));
        let v2 = ConsensusValue::Values(vec![mkval(7, 3)]);
        c.on_phase1b(
            now,
            ProcessId::new(0),
            c.ballot(),
            vec![(InstanceId::new(2), old, v2.clone())],
            InstanceId::ZERO,
        );
        let props = c.on_phase1b(now, ProcessId::new(1), c.ballot(), vec![], InstanceId::ZERO);
        // Hole 1 skipped, instance 2 re-proposed — and nothing else: the
        // queued duplicate must not surface at a fresh instance.
        assert_eq!(props.len(), 2);
        assert_eq!(props[1].first, InstanceId::new(2));
        assert_eq!(props[1].value, v2);
        assert_eq!(c.pending_len(), 0, "queued duplicate purged");
        assert_eq!(c.in_flight_len(), 2);
    }

    #[test]
    fn trim_watermark_advances_next_instance() {
        let mut c = coord();
        let now = Time::ZERO;
        c.start(now, Ballot::ZERO);
        c.on_phase1b(
            now,
            ProcessId::new(0),
            c.ballot(),
            vec![],
            InstanceId::new(100),
        );
        let props = c.on_phase1b(now, ProcessId::new(1), c.ballot(), vec![], InstanceId::ZERO);
        assert!(props.is_empty());
        assert_eq!(c.next_instance(), InstanceId::new(101));
    }

    #[test]
    fn duplicate_values_suppressed() {
        let mut c = coord();
        let now = Time::ZERO;
        quorum_start(&mut c);
        let p1 = c.submit(now, vec![mkval(1, 1), mkval(1, 2)]);
        assert_eq!(p1.len(), 2);
        let p2 = c.submit(now, vec![mkval(1, 1), mkval(1, 2)]);
        assert!(p2.is_empty());
        let p3 = c.submit(now, vec![mkval(1, 3)]);
        assert_eq!(p3.len(), 1);
    }

    #[test]
    fn window_limits_pipeline() {
        let mut c = Coordinator::new(
            RingId::new(0),
            ProcessId::new(0),
            2,
            RingTuning {
                window: 2,
                lambda: 0,
                ..RingTuning::default()
            },
        );
        let now = Time::ZERO;
        quorum_start(&mut c);
        let vals: Vec<Value> = (1..=5).map(|s| mkval(1, s)).collect();
        let props = c.submit(now, vals);
        assert_eq!(props.len(), 2);
        assert_eq!(c.pending_len(), 3);
        assert_eq!(c.in_flight_len(), 2);
        // A decision frees a slot and admits the next value.
        let more = c.on_decided(now, InstanceId::new(1), 1);
        assert_eq!(more.len(), 1);
        assert_eq!(more[0].first, InstanceId::new(3));
    }

    #[test]
    fn proposal_batching_respects_caps() {
        let mut c = Coordinator::new(
            RingId::new(0),
            ProcessId::new(0),
            2,
            RingTuning {
                values_per_instance: 3,
                bytes_per_instance: 20,
                lambda: 0,
                ..RingTuning::default()
            },
        );
        let now = Time::ZERO;
        quorum_start(&mut c);
        // Each value is 8 bytes; the 20-byte cap allows 2 per instance.
        let props = c.submit(now, (1..=4).map(|s| mkval(1, s)).collect());
        assert_eq!(props.len(), 2);
        for p in &props {
            match &p.value {
                ConsensusValue::Values(vs) => assert_eq!(vs.len(), 2),
                other => panic!("unexpected {other:?}"),
            }
        }
    }

    #[test]
    fn rate_leveling_fills_deficit() {
        let mut c = Coordinator::new(
            RingId::new(0),
            ProcessId::new(0),
            2,
            RingTuning {
                delta_us: 1_000,
                lambda: 5_000, // 5 instances per 1 ms interval
                ..RingTuning::default()
            },
        );
        quorum_start(&mut c);
        let t1 = Time::from_micros(1_000);
        let skips = c.on_delta(t1);
        assert_eq!(skips.len(), 1);
        assert_eq!(skips[0].count, 5);
        assert!(skips[0].value.is_skip());
        assert_eq!(c.next_instance(), InstanceId::new(6));
        // With traffic meeting the rate, no skip is proposed.
        let vals: Vec<Value> = (1..=5).map(|s| mkval(1, s)).collect();
        c.on_decided(t1, InstanceId::new(1), 5);
        c.submit(t1, vals);
        let t2 = Time::from_micros(2_000);
        let skips2 = c.on_delta(t2);
        assert!(skips2.iter().all(|r| !r.value.is_skip() || r.count == 0));
    }

    #[test]
    fn stalled_instances_are_reproposed() {
        let mut c = Coordinator::new(
            RingId::new(0),
            ProcessId::new(0),
            2,
            RingTuning {
                delta_us: 1_000,
                lambda: 0,
                repropose_us: 4_000,
                ..RingTuning::default()
            },
        );
        quorum_start(&mut c);
        c.submit(Time::ZERO, vec![mkval(1, 1)]);
        // Not yet at 2 ms...
        assert!(c.on_delta(Time::from_micros(2_000)).is_empty());
        // ...re-proposed once the repropose timeout elapses.
        let props = c.on_delta(Time::from_micros(4_000));
        assert_eq!(props.len(), 1);
        assert_eq!(props[0].first, InstanceId::new(1));
    }
}
