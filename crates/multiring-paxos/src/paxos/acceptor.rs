//! The acceptor role: promises, votes, decisions and the trimmable log.

use crate::types::{Ballot, ConsensusValue, InstanceId, RingId};
use std::collections::BTreeMap;

/// A contiguous range of instances sharing one consensus value (client
/// values always span one instance; rate-leveling skips may span many).
#[derive(Clone, PartialEq, Debug)]
pub struct InstanceRange {
    /// First instance of the range.
    pub first: InstanceId,
    /// Number of instances covered (at least 1).
    pub count: u32,
    /// The value.
    pub value: ConsensusValue,
}

impl InstanceRange {
    /// Last instance of the range (inclusive).
    pub fn last(&self) -> InstanceId {
        self.first.plus(u64::from(self.count) - 1)
    }

    /// Whether the range contains `i`.
    pub fn contains(&self, i: InstanceId) -> bool {
        self.first <= i && i <= self.last()
    }
}

/// Outcome of processing a Phase 1A message.
#[derive(Clone, PartialEq, Debug)]
pub enum Phase1Outcome {
    /// The acceptor promises the ballot; reply with a Phase 1B carrying
    /// the accepted values at or after the requested instance.
    Promised {
        /// Accepted `(instance, ballot, value)` triples to report.
        accepted: Vec<(InstanceId, Ballot, ConsensusValue)>,
    },
    /// The ballot is stale; the acceptor stays on `promised`.
    Rejected {
        /// The ballot currently promised.
        promised: Ballot,
    },
}

/// Outcome of processing a Phase 2 message.
#[derive(Clone, PartialEq, Debug)]
pub enum Phase2Outcome {
    /// The acceptor votes for the value (the vote must be persisted
    /// according to the ring's storage mode before it is forwarded).
    Voted,
    /// The ballot is stale; the vote is withheld and the message is
    /// forwarded unchanged.
    Rejected {
        /// The ballot currently promised.
        promised: Ballot,
    },
}

/// State an acceptor reloads from its stable log after a crash.
#[derive(Clone, Default, Debug)]
pub struct AcceptorRecovery {
    /// Highest promised ballot found in the log.
    pub promised: Ballot,
    /// Accepted ranges: `(first, count, ballot, value)`.
    pub accepted: Vec<(InstanceId, u32, Ballot, ConsensusValue)>,
    /// Decision markers: `(first, count, value)`.
    pub decided: Vec<(InstanceId, u32, ConsensusValue)>,
    /// Trim watermark found in the log.
    pub trimmed: InstanceId,
}

/// The Paxos acceptor for one ring.
///
/// Pure state: persistence is orchestrated by the ring layer, which emits
/// [`crate::event::Action::Persist`] actions before forwarding votes when
/// the storage mode requires it.
#[derive(Debug)]
pub struct Acceptor {
    ring: RingId,
    promised: Ballot,
    accepted: BTreeMap<InstanceId, (u32, Ballot, ConsensusValue)>,
    decided: BTreeMap<InstanceId, (u32, ConsensusValue)>,
    trimmed: InstanceId,
}

impl Acceptor {
    /// Folds the acceptor's protocol state into a fingerprint (see
    /// [`crate::digest`]).
    pub(crate) fn digest_into(&self, h: &mut crate::digest::Fnv1a) {
        use crate::digest::DigestInto;
        self.ring.digest_into(h);
        self.promised.digest_into(h);
        self.accepted.digest_into(h);
        self.decided.digest_into(h);
        self.trimmed.digest_into(h);
    }

    /// A fresh acceptor for `ring`.
    pub fn new(ring: RingId) -> Self {
        Self {
            ring,
            promised: Ballot::ZERO,
            accepted: BTreeMap::new(),
            decided: BTreeMap::new(),
            trimmed: InstanceId::ZERO,
        }
    }

    /// Rebuilds an acceptor from the state recovered from its stable log.
    pub fn recover(ring: RingId, rec: AcceptorRecovery) -> Self {
        let mut a = Self::new(ring);
        a.promised = rec.promised;
        for (first, count, ballot, value) in rec.accepted {
            a.accepted.insert(first, (count, ballot, value));
        }
        for (first, count, value) in rec.decided {
            a.decided.insert(first, (count, value));
        }
        a.trimmed = rec.trimmed;
        a
    }

    /// The ring this acceptor serves.
    pub fn ring(&self) -> RingId {
        self.ring
    }

    /// The currently promised ballot.
    pub fn promised(&self) -> Ballot {
        self.promised
    }

    /// The trim watermark: instances at or below it have been deleted.
    pub fn trimmed(&self) -> InstanceId {
        self.trimmed
    }

    /// Handles Phase 1A: promise `ballot` for all instances at or after
    /// `from` if it is not stale.
    pub fn on_phase1a(&mut self, ballot: Ballot, from: InstanceId) -> Phase1Outcome {
        if ballot < self.promised {
            return Phase1Outcome::Rejected {
                promised: self.promised,
            };
        }
        self.promised = ballot;
        let accepted = self
            .accepted
            .iter()
            .filter(|&(&first, &(count, _, _))| first.plus(u64::from(count) - 1) >= from)
            .flat_map(|(&first, &(count, b, ref v))| {
                // Report per instance so the coordinator can re-propose
                // exactly the instances that need it.
                (0..u64::from(count)).map(move |k| (first.plus(k), b, v.clone()))
            })
            .filter(|&(i, _, _)| i >= from)
            .collect();
        Phase1Outcome::Promised { accepted }
    }

    /// Handles Phase 2A/2B: vote for `value` over `[first, first+count)`
    /// at `ballot` unless a higher ballot was promised.
    pub fn on_phase2(
        &mut self,
        ballot: Ballot,
        first: InstanceId,
        count: u32,
        value: &ConsensusValue,
    ) -> Phase2Outcome {
        if ballot < self.promised {
            return Phase2Outcome::Rejected {
                promised: self.promised,
            };
        }
        self.promised = ballot;
        self.accepted.insert(first, (count, ballot, value.clone()));
        Phase2Outcome::Voted
    }

    /// Records a decision observed on the ring (acceptors keep decisions
    /// to serve learner retransmission requests).
    pub fn on_decision(&mut self, first: InstanceId, count: u32, value: ConsensusValue) {
        if first > self.trimmed {
            self.decided.insert(first, (count, value));
        }
    }

    /// Records a decision whose value was stripped on the wire, falling
    /// back to the locally accepted value for the instance (an acceptor
    /// on the Phase 2 arc always voted before the decision came around).
    /// Returns the value if it could be resolved.
    pub fn on_decision_from_accepted(
        &mut self,
        first: InstanceId,
        count: u32,
    ) -> Option<ConsensusValue> {
        let (_, _, value) = self.accepted.get(&first)?;
        let value = value.clone();
        self.on_decision(first, count, value.clone());
        Some(value)
    }

    /// The decided value covering instance `i`, if known and not trimmed.
    pub fn decided_at(&self, i: InstanceId) -> Option<InstanceRange> {
        let (&first, &(count, ref value)) = self.decided.range(..=i).next_back()?;
        let r = InstanceRange {
            first,
            count,
            value: value.clone(),
        };
        r.contains(i).then_some(r)
    }

    /// Serves a retransmission request: every decided range intersecting
    /// `[from, to]`, plus the current trim watermark so the requester
    /// knows whether older instances require checkpoint recovery.
    pub fn serve_retransmit(
        &self,
        from: InstanceId,
        to: InstanceId,
    ) -> (Vec<(InstanceId, u32, ConsensusValue)>, InstanceId) {
        let mut out = Vec::new();
        // Start from the last range beginning at or before `from` (it may
        // straddle), then walk forward.
        let start = self
            .decided
            .range(..=from)
            .next_back()
            .map_or(from, |(&f, _)| f);
        for (&first, &(count, ref value)) in self.decided.range(start..) {
            if first > to {
                break;
            }
            let r = InstanceRange {
                first,
                count,
                value: value.clone(),
            };
            if r.last() < from {
                continue;
            }
            out.push((first, count, value.clone()));
        }
        (out, self.trimmed)
    }

    /// Deletes promise/vote/decision state for instances up to `upto`
    /// (inclusive). Ranges straddling the watermark are kept whole.
    pub fn trim(&mut self, upto: InstanceId) {
        if upto <= self.trimmed {
            return;
        }
        self.trimmed = upto;
        self.accepted
            .retain(|&first, &mut (count, _, _)| first.plus(u64::from(count) - 1) > upto);
        self.decided
            .retain(|&first, &mut (count, _)| first.plus(u64::from(count) - 1) > upto);
    }

    /// Number of decided ranges currently retained (for tests/metrics).
    pub fn decided_ranges(&self) -> usize {
        self.decided.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::{GroupId, ProcessId, Value, ValueId};

    fn b(round: u32) -> Ballot {
        Ballot::new(round, ProcessId::new(0))
    }

    fn i(n: u64) -> InstanceId {
        InstanceId::new(n)
    }

    fn val(n: u64) -> ConsensusValue {
        ConsensusValue::Values(vec![Value::new(
            ValueId::new(ProcessId::new(1), n),
            GroupId::new(0),
            vec![n as u8],
        )])
    }

    #[test]
    fn promise_then_reject_stale() {
        let mut a = Acceptor::new(RingId::new(0));
        assert!(matches!(
            a.on_phase1a(b(2), i(1)),
            Phase1Outcome::Promised { .. }
        ));
        assert!(matches!(
            a.on_phase1a(b(1), i(1)),
            Phase1Outcome::Rejected { promised } if promised == b(2)
        ));
        assert_eq!(a.promised(), b(2));
    }

    #[test]
    fn vote_requires_fresh_ballot() {
        let mut a = Acceptor::new(RingId::new(0));
        a.on_phase1a(b(2), i(1));
        assert_eq!(a.on_phase2(b(2), i(1), 1, &val(1)), Phase2Outcome::Voted);
        assert!(matches!(
            a.on_phase2(b(1), i(2), 1, &val(2)),
            Phase2Outcome::Rejected { .. }
        ));
        // A higher ballot bumps the promise implicitly.
        assert_eq!(a.on_phase2(b(3), i(2), 1, &val(2)), Phase2Outcome::Voted);
        assert_eq!(a.promised(), b(3));
    }

    #[test]
    fn phase1b_reports_accepted_at_or_after_from() {
        let mut a = Acceptor::new(RingId::new(0));
        a.on_phase1a(b(1), i(1));
        a.on_phase2(b(1), i(1), 1, &val(1));
        a.on_phase2(b(1), i(2), 3, &ConsensusValue::Skip);
        a.on_phase2(b(1), i(5), 1, &val(5));
        match a.on_phase1a(b(2), i(3)) {
            Phase1Outcome::Promised { accepted } => {
                let insts: Vec<u64> = accepted.iter().map(|&(x, _, _)| x.value()).collect();
                // Skip range 2..=4 contributes instances 3 and 4 only.
                assert_eq!(insts, vec![3, 4, 5]);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn decisions_serve_retransmissions() {
        let mut a = Acceptor::new(RingId::new(0));
        a.on_decision(i(1), 1, val(1));
        a.on_decision(i(2), 3, ConsensusValue::Skip);
        a.on_decision(i(5), 1, val(5));
        let (ranges, trimmed) = a.serve_retransmit(i(3), i(5));
        assert_eq!(trimmed, InstanceId::ZERO);
        // The straddling skip range and instance 5.
        assert_eq!(ranges.len(), 2);
        assert_eq!(ranges[0].0, i(2));
        assert_eq!(ranges[1].0, i(5));
        assert!(a.decided_at(i(4)).unwrap().value.is_skip());
        assert_eq!(a.decided_at(i(9)), None);
    }

    #[test]
    fn trim_drops_old_state() {
        let mut a = Acceptor::new(RingId::new(0));
        for n in 1..=10 {
            a.on_phase2(b(1), i(n), 1, &val(n));
            a.on_decision(i(n), 1, val(n));
        }
        a.trim(i(7));
        assert_eq!(a.trimmed(), i(7));
        assert_eq!(a.decided_at(i(7)), None);
        assert!(a.decided_at(i(8)).is_some());
        let (ranges, trimmed) = a.serve_retransmit(i(1), i(10));
        assert_eq!(trimmed, i(7));
        assert_eq!(ranges.first().unwrap().0, i(8));
        // Trimming backwards is a no-op.
        a.trim(i(3));
        assert_eq!(a.trimmed(), i(7));
    }

    #[test]
    fn straddling_range_survives_trim() {
        let mut a = Acceptor::new(RingId::new(0));
        a.on_decision(i(1), 10, ConsensusValue::Skip);
        a.trim(i(5));
        // The range 1..=10 straddles the watermark and is kept whole.
        assert!(a.decided_at(i(9)).is_some());
    }

    #[test]
    fn recovery_restores_log_state() {
        let rec = AcceptorRecovery {
            promised: b(4),
            accepted: vec![(i(1), 1, b(4), val(1))],
            decided: vec![(i(1), 1, val(1))],
            trimmed: InstanceId::ZERO,
        };
        let mut a = Acceptor::recover(RingId::new(0), rec);
        assert_eq!(a.promised(), b(4));
        assert!(a.decided_at(i(1)).is_some());
        assert!(matches!(
            a.on_phase1a(b(3), i(1)),
            Phase1Outcome::Rejected { .. }
        ));
    }
}
