//! Single-ring consensus roles.
//!
//! Ring Paxos (Marandi et al., DSN 2012) is an optimized Paxos in which
//! all communication follows a unidirectional ring. The role logic is
//! still classic Paxos:
//!
//! * the [`Acceptor`] promises ballots (Phase 1) and
//!   votes on values (Phase 2), persisting both before answering so it
//!   can serve retransmissions after a crash;
//! * the [`Coordinator`] — an elected acceptor —
//!   pre-executes Phase 1 for an open-ended instance range, assigns
//!   consensus instances to incoming values, pipelines Phase 2 rounds,
//!   and implements *rate leveling* by proposing `Skip` ranges when the
//!   ring runs below its configured rate λ.
//!
//! The ring-overlay routing (who forwards what to whom) lives in
//! [`crate::ring`]; the types here are pure consensus state.

pub mod acceptor;
pub mod coordinator;

pub use acceptor::{Acceptor, AcceptorRecovery, Phase1Outcome, Phase2Outcome};
pub use coordinator::{Coordinator, CoordinatorStatus};
