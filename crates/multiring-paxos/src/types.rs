//! Core identifiers and value types shared by every protocol module.
//!
//! All identifiers are newtypes ([C-NEWTYPE]) so that a `ProcessId` can
//! never be confused with a `RingId` at a call site. They are `Copy`,
//! ordered, hashable and displayable.
//!
//! [C-NEWTYPE]: https://rust-lang.github.io/api-guidelines/type-safety.html

use bytes::Bytes;
use std::fmt;

macro_rules! define_id {
    ($(#[$doc:meta])* $name:ident, $inner:ty) => {
        $(#[$doc])*
        #[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
        #[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
        pub struct $name($inner);

        impl $name {
            /// Creates an identifier from its numeric value.
            pub const fn new(value: $inner) -> Self {
                Self(value)
            }

            /// Returns the underlying numeric value.
            pub const fn value(self) -> $inner {
                self.0
            }
        }

        impl From<$inner> for $name {
            fn from(value: $inner) -> Self {
                Self(value)
            }
        }

        impl From<$name> for $inner {
            fn from(id: $name) -> $inner {
                id.0
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!(stringify!($name), "({})"), self.0)
            }
        }

        impl fmt::Debug for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!(stringify!($name), "({})"), self.0)
            }
        }
    };
}

define_id! {
    /// Identifies a process (node) in the system.
    ///
    /// A process may play several roles (proposer, acceptor, learner) in
    /// several rings at once; the id is global across the deployment.
    ProcessId, u32
}

define_id! {
    /// Identifies one Ring Paxos instance ("ring") in a Multi-Ring Paxos
    /// deployment.
    RingId, u16
}

define_id! {
    /// Identifies a multicast group.
    ///
    /// Each group is assigned to exactly one ring; learners subscribe to
    /// the groups they are interested in ("inverted" addressing, Section 3
    /// of the paper).
    GroupId, u16
}

define_id! {
    /// Identifies a client session (a logical closed-loop requester).
    ClientId, u64
}

/// Identifies one consensus instance within a ring.
///
/// Instances are numbered consecutively starting at 1; `InstanceId::ZERO`
/// means "nothing decided yet" and is used as the initial checkpoint
/// watermark.
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct InstanceId(u64);

impl InstanceId {
    /// The sentinel "no instance" value; real instances start at 1.
    pub const ZERO: InstanceId = InstanceId(0);

    /// Creates an instance id from its numeric value.
    pub const fn new(value: u64) -> Self {
        Self(value)
    }

    /// Returns the underlying numeric value.
    pub const fn value(self) -> u64 {
        self.0
    }

    /// Returns the instance `n` positions after this one.
    #[must_use]
    pub const fn plus(self, n: u64) -> Self {
        Self(self.0 + n)
    }

    /// Returns the immediately following instance.
    #[must_use]
    pub const fn next(self) -> Self {
        Self(self.0 + 1)
    }
}

impl From<u64> for InstanceId {
    fn from(value: u64) -> Self {
        Self(value)
    }
}

impl fmt::Display for InstanceId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "i{}", self.0)
    }
}

impl fmt::Debug for InstanceId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "i{}", self.0)
    }
}

/// A Paxos ballot: a round number qualified by the proposing coordinator,
/// so ballots from distinct coordinators never compare equal.
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Ballot {
    round: u32,
    node: ProcessId,
}

impl Ballot {
    /// The null ballot, smaller than every real ballot.
    pub const ZERO: Ballot = Ballot {
        round: 0,
        node: ProcessId::new(0),
    };

    /// Creates a ballot for round `round` owned by `node`.
    pub const fn new(round: u32, node: ProcessId) -> Self {
        Self { round, node }
    }

    /// The round number.
    pub const fn round(self) -> u32 {
        self.round
    }

    /// The coordinator that owns this ballot.
    pub const fn node(self) -> ProcessId {
        self.node
    }

    /// The smallest ballot owned by `node` that is strictly greater than
    /// `self`.
    #[must_use]
    pub const fn bump(self, node: ProcessId) -> Self {
        Self {
            round: self.round + 1,
            node,
        }
    }
}

impl fmt::Display for Ballot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b{}.{}", self.round, self.node.value())
    }
}

/// Virtual or wall-clock time, in microseconds since an arbitrary origin.
///
/// The protocol only ever compares times and adds durations, so a single
/// monotone `u64` is sufficient for both the simulator (virtual time) and
/// the TCP runtime (microseconds since process start).
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Time(u64);

impl Time {
    /// The origin of time.
    pub const ZERO: Time = Time(0);

    /// Creates a time from microseconds.
    pub const fn from_micros(us: u64) -> Self {
        Self(us)
    }

    /// Creates a time from milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        Self(ms * 1_000)
    }

    /// Creates a time from seconds.
    pub const fn from_secs(s: u64) -> Self {
        Self(s * 1_000_000)
    }

    /// This time expressed in microseconds.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// This time expressed in fractional milliseconds.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1_000.0
    }

    /// This time expressed in fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1_000_000.0
    }

    /// The time `us` microseconds after this one.
    #[must_use]
    pub const fn plus(self, us: u64) -> Self {
        Self(self.0 + us)
    }

    /// Microseconds elapsed from `earlier` to `self`, saturating at zero.
    pub const fn since(self, earlier: Time) -> u64 {
        self.0.saturating_sub(earlier.0)
    }
}

impl fmt::Display for Time {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}ms", self.0 as f64 / 1000.0)
    }
}

impl fmt::Debug for Time {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t={:.3}ms", self.0 as f64 / 1000.0)
    }
}

/// Uniquely identifies a multicast value across the whole deployment:
/// the proposing process plus a per-proposer sequence number.
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct ValueId {
    /// The process that first multicast this value.
    pub proposer: ProcessId,
    /// Sequence number local to `proposer`, starting at 1.
    pub seq: u64,
}

impl ValueId {
    /// Creates a value id.
    pub const fn new(proposer: ProcessId, seq: u64) -> Self {
        Self { proposer, seq }
    }
}

impl fmt::Display for ValueId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}.{}", self.proposer.value(), self.seq)
    }
}

/// A client value multicast to a group: an opaque payload tagged with the
/// globally unique [`ValueId`] of its original multicast.
#[derive(Clone, PartialEq, Eq, Debug)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Value {
    /// Unique id assigned at `multicast` time.
    pub id: ValueId,
    /// The group the value was multicast to.
    pub group: GroupId,
    /// Application payload (opaque to the protocol).
    pub payload: Bytes,
}

impl Value {
    /// Creates a value.
    pub fn new(id: ValueId, group: GroupId, payload: impl Into<Bytes>) -> Self {
        Self {
            id,
            group,
            payload: payload.into(),
        }
    }

    /// Payload length in bytes.
    pub fn len(&self) -> usize {
        self.payload.len()
    }

    /// Whether the payload is empty.
    pub fn is_empty(&self) -> bool {
        self.payload.is_empty()
    }
}

/// The value decided by one consensus instance of a ring.
///
/// Rate leveling (Section 4) lets coordinators decide `Skip` in instances
/// that would otherwise idle; learners consume the instance slot in the
/// deterministic merge without delivering anything.
#[derive(Clone, PartialEq, Eq, Debug)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum ConsensusValue {
    /// One or more client values batched into this instance.
    Values(Vec<Value>),
    /// A null instance proposed by rate leveling.
    Skip,
}

impl ConsensusValue {
    /// Total payload bytes carried by this consensus value.
    pub fn payload_bytes(&self) -> usize {
        match self {
            ConsensusValue::Values(vs) => vs.iter().map(Value::len).sum(),
            ConsensusValue::Skip => 0,
        }
    }

    /// Whether this is a skip (null) value.
    pub fn is_skip(&self) -> bool {
        matches!(self, ConsensusValue::Skip)
    }
}

/// An exactly-once filter over per-proposer sequence numbers: a low
/// watermark (every sequence at or below it was seen) plus the sparse
/// set of seen sequences above it.
///
/// A plain "maximum seen" is *not* sound here: after a coordinator
/// change, newly submitted values can overtake older ones that were in
/// flight to the crashed coordinator; when the old values are resent
/// they must still be accepted exactly once even though larger
/// sequences have already passed.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct SeqFilter {
    low: u64,
    seen: std::collections::BTreeSet<u64>,
}

impl SeqFilter {
    /// An empty filter (nothing seen).
    pub fn new() -> Self {
        Self::default()
    }

    /// Records `seq`; returns `true` if it was new (first sighting).
    pub fn insert(&mut self, seq: u64) -> bool {
        if seq <= self.low || !self.seen.insert(seq) {
            return false;
        }
        // Compact the contiguous prefix into the watermark.
        while self.seen.remove(&(self.low + 1)) {
            self.low += 1;
        }
        true
    }

    /// Whether `seq` was already recorded.
    pub fn contains(&self, seq: u64) -> bool {
        seq <= self.low || self.seen.contains(&seq)
    }

    /// The low watermark (all sequences ≤ it are recorded).
    pub fn watermark(&self) -> u64 {
        self.low
    }

    /// Sequences recorded above the watermark (bounded by in-flight
    /// reordering, for tests/metrics).
    pub fn sparse_len(&self) -> usize {
        self.seen.len()
    }

    /// Sequences recorded above the watermark, ascending (the sparse
    /// part of the filter; used by state fingerprinting).
    pub fn sparse(&self) -> impl Iterator<Item = u64> + '_ {
        self.seen.iter().copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seq_filter_exactly_once_under_reordering() {
        let mut f = SeqFilter::new();
        assert!(f.insert(1));
        assert!(f.insert(2));
        assert!(!f.insert(2), "duplicate rejected");
        // Out-of-order overtaking: 56 arrives before 51..55.
        assert!(f.insert(56));
        assert!(f.insert(51));
        assert!(!f.insert(51));
        for s in 52..=55 {
            assert!(f.insert(s), "late seq {s} still accepted once");
        }
        assert!(!f.insert(56));
        assert_eq!(f.watermark(), 2);
        assert!(f.contains(1));
        assert!(f.contains(55));
        assert!(!f.contains(57));
        // Filling 3..50 compacts everything into the watermark.
        for s in 3..=50 {
            assert!(f.insert(s));
        }
        assert_eq!(f.watermark(), 56);
        assert_eq!(f.sparse_len(), 0);
    }

    #[test]
    fn id_roundtrip_and_display() {
        let p = ProcessId::new(7);
        assert_eq!(p.value(), 7);
        assert_eq!(u32::from(p), 7);
        assert_eq!(ProcessId::from(7u32), p);
        assert_eq!(p.to_string(), "ProcessId(7)");
        assert_eq!(format!("{p:?}"), "ProcessId(7)");
    }

    #[test]
    fn instance_arithmetic() {
        let i = InstanceId::new(10);
        assert_eq!(i.next(), InstanceId::new(11));
        assert_eq!(i.plus(5), InstanceId::new(15));
        assert!(InstanceId::ZERO < i);
        assert_eq!(i.to_string(), "i10");
    }

    #[test]
    fn ballot_ordering_breaks_ties_by_node() {
        let a = Ballot::new(1, ProcessId::new(1));
        let b = Ballot::new(1, ProcessId::new(2));
        let c = Ballot::new(2, ProcessId::new(0));
        assert!(a < b);
        assert!(b < c);
        assert!(Ballot::ZERO < a);
        assert_eq!(a.bump(ProcessId::new(9)), Ballot::new(2, ProcessId::new(9)));
    }

    #[test]
    fn time_arithmetic() {
        let t = Time::from_millis(3);
        assert_eq!(t.as_micros(), 3_000);
        assert_eq!(t.plus(500).as_micros(), 3_500);
        assert_eq!(Time::from_secs(1).since(t), 997_000);
        assert_eq!(t.since(Time::from_secs(1)), 0);
        assert!((t.as_millis_f64() - 3.0).abs() < 1e-9);
        assert!((Time::from_secs(2).as_secs_f64() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn consensus_value_accounting() {
        let v1 = Value::new(
            ValueId::new(ProcessId::new(0), 1),
            GroupId::new(0),
            vec![0u8; 10],
        );
        let v2 = Value::new(
            ValueId::new(ProcessId::new(0), 2),
            GroupId::new(0),
            vec![0u8; 22],
        );
        let cv = ConsensusValue::Values(vec![v1, v2]);
        assert_eq!(cv.payload_bytes(), 32);
        assert!(!cv.is_skip());
        assert_eq!(ConsensusValue::Skip.payload_bytes(), 0);
        assert!(ConsensusValue::Skip.is_skip());
    }

    #[test]
    fn value_len() {
        let v = Value::new(
            ValueId::new(ProcessId::new(1), 1),
            GroupId::new(3),
            Bytes::new(),
        );
        assert!(v.is_empty());
        assert_eq!(v.len(), 0);
    }
}
