//! Cluster, ring and tuning configuration.
//!
//! A [`ClusterConfig`] fully describes a Multi-Ring Paxos deployment: the
//! rings with their ordered members and roles, the group-to-ring mapping,
//! learner subscriptions, and the protocol tuning parameters (`M`, `Δ`,
//! `λ`, batching, storage mode). Configurations are built with
//! [`ClusterConfig::builder`] and validated by [`ClusterConfigBuilder::build`].
//!
//! In a full deployment the configuration is stored in and distributed by
//! the coordination service (`mrp-coord`, the paper uses Zookeeper); the
//! protocol state machines only ever see an immutable snapshot of it.

use crate::types::{GroupId, ProcessId, RingId};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;
use std::sync::Arc;

/// Role flags of a ring member. A member may combine any subset of
/// proposer, acceptor and learner roles (processes in the paper's
/// evaluation frequently play all three).
#[derive(Copy, Clone, PartialEq, Eq, Hash, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Roles(u8);

impl Roles {
    /// No role (invalid for an actual member; useful as a zero element).
    pub const NONE: Roles = Roles(0);
    /// May submit values to the ring's coordinator.
    pub const PROPOSER: Roles = Roles(1);
    /// Votes in consensus instances and logs them to stable storage.
    pub const ACCEPTOR: Roles = Roles(2);
    /// Learns decisions, participates in the deterministic merge.
    pub const LEARNER: Roles = Roles(4);
    /// Proposer + acceptor + learner.
    pub const ALL: Roles = Roles(7);

    /// Whether every role in `other` is present in `self`.
    pub const fn contains(self, other: Roles) -> bool {
        self.0 & other.0 == other.0
    }

    /// Union of two role sets.
    #[must_use]
    pub const fn union(self, other: Roles) -> Roles {
        Roles(self.0 | other.0)
    }

    /// Whether this member proposes.
    pub const fn is_proposer(self) -> bool {
        self.contains(Roles::PROPOSER)
    }

    /// Whether this member accepts.
    pub const fn is_acceptor(self) -> bool {
        self.contains(Roles::ACCEPTOR)
    }

    /// Whether this member learns.
    pub const fn is_learner(self) -> bool {
        self.contains(Roles::LEARNER)
    }
}

impl std::ops::BitOr for Roles {
    type Output = Roles;
    fn bitor(self, rhs: Roles) -> Roles {
        self.union(rhs)
    }
}

impl fmt::Debug for Roles {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut parts = Vec::new();
        if self.is_proposer() {
            parts.push("P");
        }
        if self.is_acceptor() {
            parts.push("A");
        }
        if self.is_learner() {
            parts.push("L");
        }
        if parts.is_empty() {
            parts.push("-");
        }
        write!(f, "Roles({})", parts.join("+"))
    }
}

/// How acceptors persist consensus state (the five storage modes of the
/// paper's Figure 3 collapse to a mode plus a disk model chosen by the
/// runtime).
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum StorageMode {
    /// Keep acceptor state in memory only (pre-allocated buffers in the
    /// paper). Fastest; an acceptor that crashes loses its vote history.
    #[default]
    InMemory,
    /// Write to the log asynchronously: the acceptor votes without waiting
    /// for the disk.
    AsyncDisk,
    /// Write to the log synchronously: the acceptor only forwards its vote
    /// once the write is durable. Batching of writes is disabled in this
    /// mode, matching Section 8.2.
    SyncDisk,
}

/// Link-level batching of ring messages ("different types of messages for
/// several consensus instances are often grouped into bigger packets",
/// Section 4).
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct LinkBatching {
    /// Flush when this many bytes of messages are pending for a successor.
    pub max_bytes: usize,
    /// Flush at the latest after this many microseconds.
    pub max_delay_us: u64,
}

impl Default for LinkBatching {
    fn default() -> Self {
        Self {
            max_bytes: 32 * 1024,
            max_delay_us: 1_000,
        }
    }
}

/// Per-ring protocol tuning.
#[derive(Copy, Clone, PartialEq, Debug)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct RingTuning {
    /// Maximum number of undecided instances the coordinator keeps in
    /// flight (pipelining window).
    pub window: u32,
    /// Maximum client values batched into a single consensus instance.
    /// `1` disables proposal batching (Figure 3 setting).
    pub values_per_instance: usize,
    /// Maximum payload bytes batched into a single consensus instance.
    pub bytes_per_instance: usize,
    /// Rate-leveling interval Δ, in microseconds (paper: 5 ms within a
    /// datacenter, 20 ms across datacenters).
    pub delta_us: u64,
    /// Rate-leveling maximum expected rate λ, in consensus instances per
    /// second (paper: 9000 within a datacenter, 2000 across).
    pub lambda: u64,
    /// How acceptors persist consensus state.
    pub storage: StorageMode,
    /// Optional link-level batching of ring traffic.
    pub link_batching: Option<LinkBatching>,
    /// How long a learner waits on an instance gap before requesting a
    /// retransmission from an acceptor, in microseconds.
    pub gap_timeout_us: u64,
    /// How often a proposer resends values that have not been decided
    /// yet (lost messages, coordinator changes), in microseconds.
    pub proposal_resend_us: u64,
    /// How long the coordinator waits before re-proposing an undecided
    /// in-flight instance (lost Phase 2 or vote rejection), in
    /// microseconds. Must comfortably exceed a slow disk's sync write
    /// plus a ring round-trip.
    pub repropose_us: u64,
    /// How often the coordinator re-runs the trim protocol (Section 5.2),
    /// in microseconds. `0` disables coordinated trimming.
    pub trim_interval_us: u64,
    /// Phase 1 is pre-executed for this many instances at a time.
    pub phase1_chunk: u64,
}

impl Default for RingTuning {
    fn default() -> Self {
        Self {
            window: 128,
            values_per_instance: 1,
            bytes_per_instance: 32 * 1024,
            delta_us: 5_000,
            lambda: 9_000,
            storage: StorageMode::InMemory,
            link_batching: None,
            gap_timeout_us: 20_000,
            proposal_resend_us: 500_000,
            repropose_us: 1_000_000,
            trim_interval_us: 0,
            phase1_chunk: 1 << 20,
        }
    }
}

impl RingTuning {
    /// Tuning used by the paper for deployments within a datacenter:
    /// `M = 1`, `Δ = 5 ms`, `λ = 9000`.
    pub fn datacenter() -> Self {
        Self::default()
    }

    /// Tuning used by the paper for deployments across datacenters:
    /// `M = 1`, `Δ = 20 ms`, `λ = 2000` (`M` lives in [`ClusterConfig`]).
    pub fn wide_area() -> Self {
        Self {
            delta_us: 20_000,
            lambda: 2_000,
            ..Self::default()
        }
    }
}

/// One member of a ring: a process and the roles it plays there.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Member {
    /// The process.
    pub process: ProcessId,
    /// Roles played by `process` in this ring.
    pub roles: Roles,
}

/// Declarative description of one ring, fed to the
/// [`ClusterConfigBuilder`].
#[derive(Clone, Debug)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct RingSpec {
    id: RingId,
    members: Vec<Member>,
    coordinator: Option<ProcessId>,
    tuning: RingTuning,
}

impl RingSpec {
    /// Starts a ring description.
    pub fn new(id: RingId) -> Self {
        Self {
            id,
            members: Vec::new(),
            coordinator: None,
            tuning: RingTuning::default(),
        }
    }

    /// Appends a member; ring order is the insertion order.
    #[must_use]
    pub fn member(mut self, process: ProcessId, roles: Roles) -> Self {
        self.members.push(Member { process, roles });
        self
    }

    /// Pins the initial coordinator (must be an acceptor member). By
    /// default the first acceptor in ring order coordinates.
    #[must_use]
    pub fn coordinator(mut self, process: ProcessId) -> Self {
        self.coordinator = Some(process);
        self
    }

    /// Overrides the ring tuning.
    #[must_use]
    pub fn tuning(mut self, tuning: RingTuning) -> Self {
        self.tuning = tuning;
        self
    }
}

/// Validated, immutable configuration of one ring.
#[derive(Clone, Debug)]
pub struct RingConfig {
    id: RingId,
    members: Vec<Member>,
    acceptors: Vec<ProcessId>,
    coordinator: ProcessId,
    tuning: RingTuning,
    index_of: BTreeMap<ProcessId, usize>,
}

impl RingConfig {
    /// The ring id.
    pub fn id(&self) -> RingId {
        self.id
    }

    /// Members in ring order.
    pub fn members(&self) -> &[Member] {
        &self.members
    }

    /// Acceptors in ring order.
    pub fn acceptors(&self) -> &[ProcessId] {
        &self.acceptors
    }

    /// The configured (initial) coordinator.
    pub fn coordinator(&self) -> ProcessId {
        self.coordinator
    }

    /// Protocol tuning for this ring.
    pub fn tuning(&self) -> &RingTuning {
        &self.tuning
    }

    /// Number of members.
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// Whether the ring has no members (never true for a validated ring).
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    /// A majority of acceptors (quorum size).
    pub fn majority(&self) -> usize {
        self.acceptors.len() / 2 + 1
    }

    /// Whether `p` is a member.
    pub fn is_member(&self, p: ProcessId) -> bool {
        self.index_of.contains_key(&p)
    }

    /// Roles of `p` in this ring ([`Roles::NONE`] if not a member).
    pub fn roles_of(&self, p: ProcessId) -> Roles {
        self.index_of
            .get(&p)
            .map_or(Roles::NONE, |&i| self.members[i].roles)
    }

    /// Position of `p` in ring order.
    pub fn position(&self, p: ProcessId) -> Option<usize> {
        self.index_of.get(&p).copied()
    }

    /// The successor of `p` on the unidirectional ring.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not a member.
    pub fn successor(&self, p: ProcessId) -> ProcessId {
        let i = self.index_of[&p];
        self.members[(i + 1) % self.members.len()].process
    }

    /// Ring distance (number of hops) from `from` to `to`.
    ///
    /// # Panics
    ///
    /// Panics if either process is not a member.
    pub fn distance(&self, from: ProcessId, to: ProcessId) -> usize {
        let n = self.members.len();
        let i = self.index_of[&from];
        let j = self.index_of[&to];
        (j + n - i) % n
    }

    /// The acceptor farthest from the coordinator along the ring: the
    /// process that observes the majority vote and emits decisions
    /// ("last acceptor", Section 4).
    pub fn last_acceptor(&self) -> ProcessId {
        *self
            .acceptors
            .iter()
            .max_by_key(|&&a| self.distance(self.coordinator, a))
            .expect("validated ring has at least one acceptor")
    }

    /// Whether a process at ring distance `d` from the coordinator saw the
    /// Phase 2 message for an instance (the Phase 2 arc runs from the
    /// coordinator to the last acceptor, inclusive).
    pub fn on_phase2_arc(&self, p: ProcessId) -> bool {
        let d = self.distance(self.coordinator, p);
        d <= self.distance(self.coordinator, self.last_acceptor())
    }
}

/// Errors detected while validating a [`ClusterConfig`].
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum ConfigError {
    /// Two rings share the same id.
    DuplicateRing(RingId),
    /// A ring has no members.
    EmptyRing(RingId),
    /// The same process appears twice in one ring.
    DuplicateMember(RingId, ProcessId),
    /// A ring has no acceptor.
    NoAcceptor(RingId),
    /// The pinned coordinator is not an acceptor member of the ring.
    BadCoordinator(RingId, ProcessId),
    /// A group maps to an unknown ring.
    UnknownRing(GroupId, RingId),
    /// Two groups share the same id.
    DuplicateGroup(GroupId),
    /// A subscription names an unknown group.
    UnknownGroup(ProcessId, GroupId),
    /// A subscriber is not a learner member of the group's ring.
    NotALearner(ProcessId, GroupId, RingId),
    /// `M` (merge window) must be at least 1.
    BadMergeWindow,
    /// A ring was declared but no group maps to it.
    UnusedRing(RingId),
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConfigError::DuplicateRing(r) => write!(f, "duplicate ring {r}"),
            ConfigError::EmptyRing(r) => write!(f, "ring {r} has no members"),
            ConfigError::DuplicateMember(r, p) => {
                write!(f, "process {p} appears twice in ring {r}")
            }
            ConfigError::NoAcceptor(r) => write!(f, "ring {r} has no acceptor"),
            ConfigError::BadCoordinator(r, p) => {
                write!(f, "coordinator {p} of ring {r} is not an acceptor member")
            }
            ConfigError::UnknownRing(g, r) => {
                write!(f, "group {g} maps to unknown ring {r}")
            }
            ConfigError::DuplicateGroup(g) => write!(f, "duplicate group {g}"),
            ConfigError::UnknownGroup(p, g) => {
                write!(f, "process {p} subscribes to unknown group {g}")
            }
            ConfigError::NotALearner(p, g, r) => write!(
                f,
                "process {p} subscribes to group {g} but is not a learner member of ring {r}"
            ),
            ConfigError::BadMergeWindow => write!(f, "merge window M must be at least 1"),
            ConfigError::UnusedRing(r) => write!(f, "no group maps to ring {r}"),
        }
    }
}

impl std::error::Error for ConfigError {}

/// Validated, immutable configuration of a Multi-Ring Paxos deployment.
///
/// Cheaply cloneable (internally reference-counted): every node holds a
/// copy.
#[derive(Clone, Debug)]
pub struct ClusterConfig {
    inner: Arc<ConfigInner>,
}

#[derive(Debug)]
struct ConfigInner {
    rings: BTreeMap<RingId, RingConfig>,
    groups: BTreeMap<GroupId, RingId>,
    subscriptions: BTreeMap<ProcessId, BTreeSet<GroupId>>,
    merge_window: u32,
}

impl ClusterConfig {
    /// Starts building a configuration.
    pub fn builder() -> ClusterConfigBuilder {
        ClusterConfigBuilder::default()
    }

    /// All rings, keyed by id.
    pub fn rings(&self) -> &BTreeMap<RingId, RingConfig> {
        &self.inner.rings
    }

    /// The ring configuration for `id`.
    pub fn ring(&self, id: RingId) -> Option<&RingConfig> {
        self.inner.rings.get(&id)
    }

    /// The ring a group maps to.
    pub fn ring_of_group(&self, group: GroupId) -> Option<RingId> {
        self.inner.groups.get(&group).copied()
    }

    /// The group mapped to a ring (rings and groups are 1:1).
    pub fn group_of_ring(&self, ring: RingId) -> Option<GroupId> {
        self.inner
            .groups
            .iter()
            .find(|&(_, &r)| r == ring)
            .map(|(&g, _)| g)
    }

    /// All groups, keyed by id, with the ring each maps to.
    pub fn groups(&self) -> &BTreeMap<GroupId, RingId> {
        &self.inner.groups
    }

    /// The merge window `M`: how many consensus instances the
    /// deterministic merge consumes from each subscribed ring per turn.
    pub fn merge_window(&self) -> u32 {
        self.inner.merge_window
    }

    /// Groups subscribed to by `p`, in group-id order (the round-robin
    /// order of the deterministic merge).
    pub fn subscriptions_of(&self, p: ProcessId) -> Vec<GroupId> {
        self.inner
            .subscriptions
            .get(&p)
            .map(|s| s.iter().copied().collect())
            .unwrap_or_default()
    }

    /// All subscribing processes.
    pub fn subscribers(&self) -> impl Iterator<Item = ProcessId> + '_ {
        self.inner.subscriptions.keys().copied()
    }

    /// Processes that subscribe to `group`, in process-id order. These are
    /// the "replicas of `group`" for the trim protocol (quorum
    /// `Q_T`).
    pub fn subscribers_of(&self, group: GroupId) -> Vec<ProcessId> {
        self.inner
            .subscriptions
            .iter()
            .filter(|(_, subs)| subs.contains(&group))
            .map(|(&p, _)| p)
            .collect()
    }

    /// The *partition* of `p`: all processes with exactly the same
    /// subscription set (Section 5.2). Replicas in the same partition
    /// evolve through the same sequence of states, so a recovering replica
    /// may install checkpoints only from partition peers.
    pub fn partition_of(&self, p: ProcessId) -> Vec<ProcessId> {
        let Some(mine) = self.inner.subscriptions.get(&p) else {
            return Vec::new();
        };
        self.inner
            .subscriptions
            .iter()
            .filter(|(_, subs)| *subs == mine)
            .map(|(&q, _)| q)
            .collect()
    }

    /// Every process mentioned anywhere in the configuration.
    pub fn processes(&self) -> BTreeSet<ProcessId> {
        let mut out = BTreeSet::new();
        for ring in self.inner.rings.values() {
            out.extend(ring.members.iter().map(|m| m.process));
        }
        out.extend(self.inner.subscriptions.keys().copied());
        out
    }

    /// Rings in which `p` is a member, in ring-id order.
    pub fn rings_of(&self, p: ProcessId) -> Vec<RingId> {
        self.inner
            .rings
            .values()
            .filter(|r| r.is_member(p))
            .map(RingConfig::id)
            .collect()
    }
}

/// Builder for [`ClusterConfig`]; see [`ClusterConfig::builder`].
#[derive(Default, Debug)]
pub struct ClusterConfigBuilder {
    rings: Vec<RingSpec>,
    groups: Vec<(GroupId, RingId)>,
    subscriptions: Vec<(ProcessId, GroupId)>,
    merge_window: u32,
}

impl ClusterConfigBuilder {
    /// Adds a ring.
    #[must_use]
    pub fn ring(mut self, spec: RingSpec) -> Self {
        self.rings.push(spec);
        self
    }

    /// Maps a multicast group onto a ring.
    #[must_use]
    pub fn group(mut self, group: GroupId, ring: RingId) -> Self {
        self.groups.push((group, ring));
        self
    }

    /// Subscribes `process` to `group`. The process must be a learner
    /// member of the group's ring.
    #[must_use]
    pub fn subscribe(mut self, process: ProcessId, group: GroupId) -> Self {
        self.subscriptions.push((process, group));
        self
    }

    /// Sets the merge window `M` (default 1, the paper's setting).
    #[must_use]
    pub fn merge_window(mut self, m: u32) -> Self {
        self.merge_window = m;
        self
    }

    /// Validates and freezes the configuration.
    ///
    /// # Errors
    ///
    /// Returns a [`ConfigError`] describing the first inconsistency found
    /// (duplicate ids, rings without acceptors, subscriptions by
    /// non-learners, …).
    pub fn build(self) -> Result<ClusterConfig, ConfigError> {
        let merge_window = if self.merge_window == 0 {
            1
        } else {
            self.merge_window
        };
        if self.merge_window == 0 && !self.rings.is_empty() {
            // Default of 1 (M = 1 is the paper's configuration); an
            // explicit zero is rejected for clarity.
        }

        let mut rings = BTreeMap::new();
        for spec in self.rings {
            if spec.members.is_empty() {
                return Err(ConfigError::EmptyRing(spec.id));
            }
            let mut index_of = BTreeMap::new();
            for (i, m) in spec.members.iter().enumerate() {
                if index_of.insert(m.process, i).is_some() {
                    return Err(ConfigError::DuplicateMember(spec.id, m.process));
                }
            }
            let acceptors: Vec<ProcessId> = spec
                .members
                .iter()
                .filter(|m| m.roles.is_acceptor())
                .map(|m| m.process)
                .collect();
            if acceptors.is_empty() {
                return Err(ConfigError::NoAcceptor(spec.id));
            }
            let coordinator = match spec.coordinator {
                Some(c) => {
                    if !acceptors.contains(&c) {
                        return Err(ConfigError::BadCoordinator(spec.id, c));
                    }
                    c
                }
                None => acceptors[0],
            };
            let cfg = RingConfig {
                id: spec.id,
                members: spec.members,
                acceptors,
                coordinator,
                tuning: spec.tuning,
                index_of,
            };
            if rings.insert(spec.id, cfg).is_some() {
                return Err(ConfigError::DuplicateRing(spec.id));
            }
        }

        let mut groups = BTreeMap::new();
        for (g, r) in self.groups {
            if !rings.contains_key(&r) {
                return Err(ConfigError::UnknownRing(g, r));
            }
            if groups.insert(g, r).is_some() {
                return Err(ConfigError::DuplicateGroup(g));
            }
        }
        for &r in rings.keys() {
            if !groups.values().any(|&gr| gr == r) {
                return Err(ConfigError::UnusedRing(r));
            }
        }

        let mut subscriptions: BTreeMap<ProcessId, BTreeSet<GroupId>> = BTreeMap::new();
        for (p, g) in self.subscriptions {
            let Some(&r) = groups.get(&g) else {
                return Err(ConfigError::UnknownGroup(p, g));
            };
            let ring = &rings[&r];
            if !ring.roles_of(p).is_learner() {
                return Err(ConfigError::NotALearner(p, g, r));
            }
            subscriptions.entry(p).or_default().insert(g);
        }

        Ok(ClusterConfig {
            inner: Arc::new(ConfigInner {
                rings,
                groups,
                subscriptions,
                merge_window,
            }),
        })
    }
}

/// Convenience: builds the canonical test deployment used throughout the
/// paper's baseline experiment (Section 8.3.1): one ring of `n` processes,
/// all of them proposers, acceptors and learners, all subscribed to group
/// 0, first process coordinating.
pub fn single_ring(n: u32, tuning: RingTuning) -> ClusterConfig {
    let mut spec = RingSpec::new(RingId::new(0)).tuning(tuning);
    for p in 0..n {
        spec = spec.member(ProcessId::new(p), Roles::ALL);
    }
    let mut b = ClusterConfig::builder()
        .ring(spec)
        .group(GroupId::new(0), RingId::new(0));
    for p in 0..n {
        b = b.subscribe(ProcessId::new(p), GroupId::new(0));
    }
    b.build().expect("single-ring config is valid")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(i: u32) -> ProcessId {
        ProcessId::new(i)
    }

    #[test]
    fn roles_flags() {
        let r = Roles::PROPOSER | Roles::LEARNER;
        assert!(r.is_proposer());
        assert!(!r.is_acceptor());
        assert!(r.is_learner());
        assert!(Roles::ALL.contains(r));
        assert!(!r.contains(Roles::ALL));
        assert_eq!(format!("{r:?}"), "Roles(P+L)");
        assert_eq!(format!("{:?}", Roles::NONE), "Roles(-)");
    }

    #[test]
    fn single_ring_shape() {
        let c = single_ring(3, RingTuning::default());
        let ring = c.ring(RingId::new(0)).unwrap();
        assert_eq!(ring.len(), 3);
        assert_eq!(ring.majority(), 2);
        assert_eq!(ring.coordinator(), p(0));
        assert_eq!(ring.successor(p(2)), p(0));
        assert_eq!(ring.distance(p(1), p(0)), 2);
        assert_eq!(ring.last_acceptor(), p(2));
        assert_eq!(c.subscribers_of(GroupId::new(0)), vec![p(0), p(1), p(2)]);
        assert_eq!(c.partition_of(p(1)), vec![p(0), p(1), p(2)]);
        assert_eq!(c.merge_window(), 1);
    }

    #[test]
    fn phase2_arc() {
        // Ring order: 0(P) 1(A,coord) 2(A) 3(A) 4(L): phase-2 arc is 1..=3.
        let c = ClusterConfig::builder()
            .ring(
                RingSpec::new(RingId::new(0))
                    .member(p(0), Roles::PROPOSER)
                    .member(p(1), Roles::ACCEPTOR)
                    .member(p(2), Roles::ACCEPTOR)
                    .member(p(3), Roles::ACCEPTOR)
                    .member(p(4), Roles::LEARNER),
            )
            .group(GroupId::new(0), RingId::new(0))
            .subscribe(p(4), GroupId::new(0))
            .build()
            .unwrap();
        let ring = c.ring(RingId::new(0)).unwrap();
        assert_eq!(ring.coordinator(), p(1));
        assert_eq!(ring.last_acceptor(), p(3));
        assert!(ring.on_phase2_arc(p(1)));
        assert!(ring.on_phase2_arc(p(2)));
        assert!(ring.on_phase2_arc(p(3)));
        assert!(!ring.on_phase2_arc(p(4)));
        assert!(!ring.on_phase2_arc(p(0)));
    }

    #[test]
    fn rejects_empty_ring() {
        let err = ClusterConfig::builder()
            .ring(RingSpec::new(RingId::new(0)))
            .build()
            .unwrap_err();
        assert_eq!(err, ConfigError::EmptyRing(RingId::new(0)));
    }

    #[test]
    fn rejects_duplicate_member() {
        let err = ClusterConfig::builder()
            .ring(
                RingSpec::new(RingId::new(0))
                    .member(p(0), Roles::ALL)
                    .member(p(0), Roles::ALL),
            )
            .build()
            .unwrap_err();
        assert_eq!(err, ConfigError::DuplicateMember(RingId::new(0), p(0)));
    }

    #[test]
    fn rejects_ring_without_acceptor() {
        let err = ClusterConfig::builder()
            .ring(RingSpec::new(RingId::new(0)).member(p(0), Roles::PROPOSER))
            .build()
            .unwrap_err();
        assert_eq!(err, ConfigError::NoAcceptor(RingId::new(0)));
    }

    #[test]
    fn rejects_non_acceptor_coordinator() {
        let err = ClusterConfig::builder()
            .ring(
                RingSpec::new(RingId::new(0))
                    .member(p(0), Roles::PROPOSER)
                    .member(p(1), Roles::ACCEPTOR)
                    .coordinator(p(0)),
            )
            .build()
            .unwrap_err();
        assert_eq!(err, ConfigError::BadCoordinator(RingId::new(0), p(0)));
    }

    #[test]
    fn rejects_group_on_unknown_ring() {
        let err = ClusterConfig::builder()
            .ring(RingSpec::new(RingId::new(0)).member(p(0), Roles::ALL))
            .group(GroupId::new(0), RingId::new(9))
            .build()
            .unwrap_err();
        assert_eq!(
            err,
            ConfigError::UnknownRing(GroupId::new(0), RingId::new(9))
        );
    }

    #[test]
    fn rejects_subscription_by_non_learner() {
        let err = ClusterConfig::builder()
            .ring(
                RingSpec::new(RingId::new(0))
                    .member(p(0), Roles::ACCEPTOR)
                    .member(p(1), Roles::LEARNER),
            )
            .group(GroupId::new(0), RingId::new(0))
            .subscribe(p(0), GroupId::new(0))
            .build()
            .unwrap_err();
        assert_eq!(
            err,
            ConfigError::NotALearner(p(0), GroupId::new(0), RingId::new(0))
        );
    }

    #[test]
    fn rejects_unused_ring() {
        let err = ClusterConfig::builder()
            .ring(RingSpec::new(RingId::new(0)).member(p(0), Roles::ALL))
            .ring(RingSpec::new(RingId::new(1)).member(p(0), Roles::ALL))
            .group(GroupId::new(0), RingId::new(0))
            .build()
            .unwrap_err();
        assert_eq!(err, ConfigError::UnusedRing(RingId::new(1)));
    }

    #[test]
    fn partitions_by_subscription_set() {
        // p0,p1 subscribe to {g0,g1}; p2 subscribes to {g1} only (the
        // learner-L3 configuration of Figure 2c).
        let mut spec0 = RingSpec::new(RingId::new(0));
        let mut spec1 = RingSpec::new(RingId::new(1));
        for i in 0..3 {
            spec0 = spec0.member(p(i), Roles::ALL);
            spec1 = spec1.member(p(i), Roles::ALL);
        }
        let c = ClusterConfig::builder()
            .ring(spec0)
            .ring(spec1)
            .group(GroupId::new(0), RingId::new(0))
            .group(GroupId::new(1), RingId::new(1))
            .subscribe(p(0), GroupId::new(0))
            .subscribe(p(0), GroupId::new(1))
            .subscribe(p(1), GroupId::new(0))
            .subscribe(p(1), GroupId::new(1))
            .subscribe(p(2), GroupId::new(1))
            .build()
            .unwrap();
        assert_eq!(c.partition_of(p(0)), vec![p(0), p(1)]);
        assert_eq!(c.partition_of(p(2)), vec![p(2)]);
        assert_eq!(c.subscribers_of(GroupId::new(1)), vec![p(0), p(1), p(2)]);
        assert_eq!(
            c.subscriptions_of(p(0)),
            vec![GroupId::new(0), GroupId::new(1)]
        );
        assert_eq!(c.rings_of(p(2)), vec![RingId::new(0), RingId::new(1)]);
    }
}
