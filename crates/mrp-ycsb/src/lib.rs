//! # YCSB-style workload generation
//!
//! Self-contained reimplementation of the Yahoo! Cloud Serving Benchmark
//! core workloads (Cooper et al., SoCC 2010) used in the paper's
//! Figure 4: key distributions (uniform, zipfian, scrambled zipfian,
//! latest) and the standard A–F operation mixes.
//!
//! ```
//! use mrp_ycsb::{Workload, WorkloadKind, YcsbOp};
//!
//! let mut w = Workload::new(WorkloadKind::A, 1000, 64, 7);
//! match w.next_op() {
//!     YcsbOp::Read { key } | YcsbOp::Update { key, .. } => assert!(key.starts_with("user")),
//!     _ => {}
//! }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod generator;
pub mod workload;

pub use generator::{KeyChooser, SmallRng};
pub use workload::{Workload, WorkloadKind, YcsbOp};
