//! Key distributions: uniform, zipfian (Gray et al.'s incremental
//! algorithm, as in YCSB), scrambled zipfian and latest.

/// A small deterministic PRNG (SplitMix64), self-contained so the crate
/// has no dependencies.
#[derive(Clone, Debug)]
pub struct SmallRng {
    state: u64,
}

impl SmallRng {
    /// Seeds the generator.
    pub fn new(seed: u64) -> Self {
        Self {
            state: seed.wrapping_add(0x9E3779B97F4A7C15),
        }
    }

    /// Next raw value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, bound)`.
    pub fn below(&mut self, bound: u64) -> u64 {
        if bound == 0 {
            0
        } else {
            ((u128::from(self.next_u64()) * u128::from(bound)) >> 64) as u64
        }
    }

    /// Uniform in `[0, 1)`.
    pub fn f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

const ZIPF_THETA: f64 = 0.99;

fn zeta(n: u64, theta: f64) -> f64 {
    (1..=n).map(|i| 1.0 / (i as f64).powf(theta)).sum()
}

const FNV_OFFSET: u64 = 0xCBF29CE484222325;
const FNV_PRIME: u64 = 0x100000001B3;

fn fnv64(v: u64) -> u64 {
    let mut h = FNV_OFFSET;
    for i in 0..8 {
        h ^= (v >> (i * 8)) & 0xFF;
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// Chooses keys in `[0, items)` according to a distribution; supports a
/// growing item count for insert-heavy workloads.
#[derive(Clone, Debug)]
pub enum KeyChooser {
    /// Uniform over all items.
    Uniform {
        /// Item count.
        items: u64,
    },
    /// Zipfian favoring low indices (YCSB's `ZipfianGenerator`).
    Zipfian {
        /// Item count.
        items: u64,
        /// ζ(n, θ) for the current n.
        zetan: f64,
        /// Precomputed θ-derived constants.
        alpha: f64,
        /// Precomputed selection threshold.
        eta: f64,
        /// ζ(2, θ).
        zeta2: f64,
    },
    /// Zipfian with hashed (scattered) popular items (YCSB's
    /// `ScrambledZipfianGenerator`).
    Scrambled {
        /// The underlying zipfian over a fixed large space.
        inner: Box<KeyChooser>,
        /// Item count to fold into.
        items: u64,
    },
    /// Skewed towards the most recently inserted items (YCSB's
    /// `SkewedLatestGenerator`).
    Latest {
        /// The underlying zipfian over current items.
        inner: Box<KeyChooser>,
    },
}

impl KeyChooser {
    /// Uniform distribution over `items`.
    pub fn uniform(items: u64) -> Self {
        KeyChooser::Uniform { items }
    }

    /// Zipfian distribution over `items` with θ = 0.99.
    pub fn zipfian(items: u64) -> Self {
        let theta = ZIPF_THETA;
        let zetan = zeta(items, theta);
        let zeta2 = zeta(2, theta);
        let alpha = 1.0 / (1.0 - theta);
        let eta = (1.0 - (2.0 / items as f64).powf(1.0 - theta)) / (1.0 - zeta2 / zetan);
        KeyChooser::Zipfian {
            items,
            zetan,
            alpha,
            eta,
            zeta2,
        }
    }

    /// Scrambled zipfian over `items`.
    pub fn scrambled_zipfian(items: u64) -> Self {
        KeyChooser::Scrambled {
            inner: Box::new(Self::zipfian(items)),
            items,
        }
    }

    /// Latest distribution over `items`.
    pub fn latest(items: u64) -> Self {
        KeyChooser::Latest {
            inner: Box::new(Self::zipfian(items)),
        }
    }

    /// Current item count.
    pub fn items(&self) -> u64 {
        match self {
            KeyChooser::Uniform { items }
            | KeyChooser::Zipfian { items, .. }
            | KeyChooser::Scrambled { items, .. } => *items,
            KeyChooser::Latest { inner } => inner.items(),
        }
    }

    /// Notes that an item was inserted (distributions adapt).
    pub fn grow(&mut self) {
        match self {
            KeyChooser::Uniform { items } => *items += 1,
            KeyChooser::Zipfian {
                items,
                zetan,
                alpha,
                eta,
                zeta2,
            } => {
                // Incremental ζ update (YCSB does the same).
                *items += 1;
                *zetan += 1.0 / (*items as f64).powf(ZIPF_THETA);
                *eta =
                    (1.0 - (2.0 / *items as f64).powf(1.0 - ZIPF_THETA)) / (1.0 - *zeta2 / *zetan);
                *alpha = 1.0 / (1.0 - ZIPF_THETA);
            }
            KeyChooser::Scrambled { inner, items } => {
                *items += 1;
                let _ = inner; // the inner space is fixed in YCSB
            }
            KeyChooser::Latest { inner } => inner.grow(),
        }
    }

    /// Draws a key index in `[0, items)`.
    pub fn next(&self, rng: &mut SmallRng) -> u64 {
        match self {
            KeyChooser::Uniform { items } => rng.below(*items),
            KeyChooser::Zipfian {
                items,
                zetan,
                alpha,
                eta,
                ..
            } => {
                let u = rng.f64();
                let uz = u * zetan;
                if uz < 1.0 {
                    return 0;
                }
                if uz < 1.0 + 0.5f64.powf(ZIPF_THETA) {
                    return 1;
                }
                let n = *items as f64;
                ((n * (eta * u - eta + 1.0).powf(*alpha)) as u64).min(items - 1)
            }
            KeyChooser::Scrambled { inner, items } => fnv64(inner.next(rng)) % items,
            KeyChooser::Latest { inner } => {
                let items = inner.items();
                let back = inner.next(rng);
                items - 1 - back.min(items - 1)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_covers_space() {
        let c = KeyChooser::uniform(100);
        let mut rng = SmallRng::new(1);
        let mut seen = [false; 100];
        for _ in 0..5000 {
            seen[c.next(&mut rng) as usize] = true;
        }
        assert!(seen.iter().filter(|&&s| s).count() > 95);
    }

    #[test]
    fn zipfian_is_skewed_to_head() {
        let c = KeyChooser::zipfian(10_000);
        let mut rng = SmallRng::new(2);
        let mut head = 0;
        let n = 20_000;
        for _ in 0..n {
            if c.next(&mut rng) < 100 {
                head += 1;
            }
        }
        // With θ=0.99 the top 1% of keys draw roughly half the accesses.
        let frac = head as f64 / n as f64;
        assert!(frac > 0.3, "head fraction {frac}");
    }

    #[test]
    fn zipfian_within_bounds() {
        let c = KeyChooser::zipfian(1000);
        let mut rng = SmallRng::new(3);
        for _ in 0..10_000 {
            assert!(c.next(&mut rng) < 1000);
        }
    }

    #[test]
    fn scrambled_zipfian_spreads_head() {
        let c = KeyChooser::scrambled_zipfian(10_000);
        let mut rng = SmallRng::new(4);
        let mut first_bucket = 0;
        for _ in 0..10_000 {
            if c.next(&mut rng) < 100 {
                first_bucket += 1;
            }
        }
        // Hot keys are scattered: the first 1% of the key space no
        // longer dominates.
        assert!(first_bucket < 1000, "first bucket {first_bucket}");
    }

    #[test]
    fn latest_prefers_recent() {
        let mut c = KeyChooser::latest(1000);
        let mut rng = SmallRng::new(5);
        let mut recent = 0;
        for _ in 0..5000 {
            if c.next(&mut rng) >= 900 {
                recent += 1;
            }
        }
        assert!(recent as f64 / 5000.0 > 0.5, "recent fraction {recent}");
        // Growth shifts "latest".
        for _ in 0..1000 {
            c.grow();
        }
        assert_eq!(c.items(), 2000);
        let mut top = 0;
        for _ in 0..5000 {
            if c.next(&mut rng) >= 1900 {
                top += 1;
            }
        }
        assert!(top as f64 / 5000.0 > 0.5);
    }

    #[test]
    fn growth_keeps_zipfian_in_bounds() {
        let mut c = KeyChooser::zipfian(100);
        let mut rng = SmallRng::new(6);
        for _ in 0..500 {
            c.grow();
        }
        assert_eq!(c.items(), 600);
        for _ in 0..5000 {
            assert!(c.next(&mut rng) < 600);
        }
    }
}
