//! The YCSB core workloads A–F.

use crate::generator::{KeyChooser, SmallRng};

/// One generated operation.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum YcsbOp {
    /// Read one record.
    Read {
        /// Record key.
        key: String,
    },
    /// Update one record with a fresh value.
    Update {
        /// Record key.
        key: String,
        /// New field value.
        value: Vec<u8>,
    },
    /// Insert a new record.
    Insert {
        /// Record key.
        key: String,
        /// Field value.
        value: Vec<u8>,
    },
    /// Short range scan.
    Scan {
        /// Start key.
        key: String,
        /// Records to read.
        len: u32,
    },
    /// Read-modify-write one record.
    ReadModifyWrite {
        /// Record key.
        key: String,
        /// New field value.
        value: Vec<u8>,
    },
}

/// The six standard core workloads.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum WorkloadKind {
    /// 50% reads / 50% updates, zipfian ("update heavy").
    A,
    /// 95% reads / 5% updates, zipfian ("read mostly").
    B,
    /// 100% reads, zipfian ("read only").
    C,
    /// 95% reads / 5% inserts, latest ("read latest").
    D,
    /// 95% scans / 5% inserts, zipfian ("short ranges").
    E,
    /// 50% reads / 50% read-modify-writes, zipfian.
    F,
}

impl WorkloadKind {
    /// All six, in order.
    pub fn all() -> [WorkloadKind; 6] {
        [
            WorkloadKind::A,
            WorkloadKind::B,
            WorkloadKind::C,
            WorkloadKind::D,
            WorkloadKind::E,
            WorkloadKind::F,
        ]
    }

    /// The canonical letter.
    pub fn letter(self) -> char {
        match self {
            WorkloadKind::A => 'A',
            WorkloadKind::B => 'B',
            WorkloadKind::C => 'C',
            WorkloadKind::D => 'D',
            WorkloadKind::E => 'E',
            WorkloadKind::F => 'F',
        }
    }
}

/// Formats the canonical YCSB key for an index.
pub fn key_for(index: u64) -> String {
    format!("user{index:012}")
}

/// A running workload: draws operations according to the mix.
#[derive(Debug)]
pub struct Workload {
    kind: WorkloadKind,
    chooser: KeyChooser,
    rng: SmallRng,
    value_bytes: usize,
    inserted: u64,
    max_scan_len: u32,
}

impl Workload {
    /// Creates workload `kind` over `records` preloaded records with
    /// `value_bytes` values.
    pub fn new(kind: WorkloadKind, records: u64, value_bytes: usize, seed: u64) -> Self {
        let chooser = match kind {
            WorkloadKind::D => KeyChooser::latest(records),
            _ => KeyChooser::scrambled_zipfian(records),
        };
        Self {
            kind,
            chooser,
            rng: SmallRng::new(seed),
            value_bytes,
            inserted: records,
            max_scan_len: 100,
        }
    }

    /// The workload kind.
    pub fn kind(&self) -> WorkloadKind {
        self.kind
    }

    /// Keys that must be loaded before the run.
    pub fn preload_keys(&self) -> impl Iterator<Item = String> {
        (0..self.chooser.items()).map(key_for)
    }

    fn value(&mut self) -> Vec<u8> {
        let mut v = vec![0u8; self.value_bytes];
        for chunk in v.chunks_mut(8) {
            let r = self.rng.next_u64().to_le_bytes();
            chunk.copy_from_slice(&r[..chunk.len()]);
        }
        v
    }

    fn existing_key(&mut self) -> String {
        key_for(self.chooser.next(&mut self.rng))
    }

    fn insert_op(&mut self) -> YcsbOp {
        let key = key_for(self.inserted);
        self.inserted += 1;
        self.chooser.grow();
        let value = self.value();
        YcsbOp::Insert { key, value }
    }

    /// Draws the next operation.
    pub fn next_op(&mut self) -> YcsbOp {
        let roll = self.rng.below(100);
        match self.kind {
            WorkloadKind::A => {
                if roll < 50 {
                    YcsbOp::Read {
                        key: self.existing_key(),
                    }
                } else {
                    let key = self.existing_key();
                    let value = self.value();
                    YcsbOp::Update { key, value }
                }
            }
            WorkloadKind::B => {
                if roll < 95 {
                    YcsbOp::Read {
                        key: self.existing_key(),
                    }
                } else {
                    let key = self.existing_key();
                    let value = self.value();
                    YcsbOp::Update { key, value }
                }
            }
            WorkloadKind::C => YcsbOp::Read {
                key: self.existing_key(),
            },
            WorkloadKind::D => {
                if roll < 95 {
                    YcsbOp::Read {
                        key: self.existing_key(),
                    }
                } else {
                    self.insert_op()
                }
            }
            WorkloadKind::E => {
                if roll < 95 {
                    let key = self.existing_key();
                    let len = 1 + self.rng.below(u64::from(self.max_scan_len)) as u32;
                    YcsbOp::Scan { key, len }
                } else {
                    self.insert_op()
                }
            }
            WorkloadKind::F => {
                if roll < 50 {
                    YcsbOp::Read {
                        key: self.existing_key(),
                    }
                } else {
                    let key = self.existing_key();
                    let value = self.value();
                    YcsbOp::ReadModifyWrite { key, value }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mix(kind: WorkloadKind, n: usize) -> std::collections::BTreeMap<&'static str, usize> {
        let mut w = Workload::new(kind, 1000, 32, 42);
        let mut counts = std::collections::BTreeMap::new();
        for _ in 0..n {
            let tag = match w.next_op() {
                YcsbOp::Read { .. } => "read",
                YcsbOp::Update { .. } => "update",
                YcsbOp::Insert { .. } => "insert",
                YcsbOp::Scan { .. } => "scan",
                YcsbOp::ReadModifyWrite { .. } => "rmw",
            };
            *counts.entry(tag).or_insert(0) += 1;
        }
        counts
    }

    #[test]
    fn workload_a_mix() {
        let m = mix(WorkloadKind::A, 10_000);
        let reads = m["read"] as f64 / 10_000.0;
        assert!((reads - 0.5).abs() < 0.05, "reads {reads}");
        assert!(m.contains_key("update"));
        assert!(!m.contains_key("scan"));
    }

    #[test]
    fn workload_c_is_read_only() {
        let m = mix(WorkloadKind::C, 1000);
        assert_eq!(m.len(), 1);
        assert_eq!(m["read"], 1000);
    }

    #[test]
    fn workload_d_inserts_and_reads() {
        let m = mix(WorkloadKind::D, 10_000);
        let inserts = m["insert"] as f64 / 10_000.0;
        assert!((inserts - 0.05).abs() < 0.02, "inserts {inserts}");
    }

    #[test]
    fn workload_e_scans() {
        let m = mix(WorkloadKind::E, 10_000);
        let scans = m["scan"] as f64 / 10_000.0;
        assert!((scans - 0.95).abs() < 0.02, "scans {scans}");
        // Scan lengths bounded.
        let mut w = Workload::new(WorkloadKind::E, 1000, 32, 1);
        for _ in 0..1000 {
            if let YcsbOp::Scan { len, .. } = w.next_op() {
                assert!((1..=100).contains(&len));
            }
        }
    }

    #[test]
    fn workload_f_has_rmw() {
        let m = mix(WorkloadKind::F, 10_000);
        assert!(m.contains_key("rmw"));
        let rmw = m["rmw"] as f64 / 10_000.0;
        assert!((rmw - 0.5).abs() < 0.05);
    }

    #[test]
    fn inserts_use_fresh_increasing_keys() {
        let mut w = Workload::new(WorkloadKind::D, 100, 8, 3);
        let mut last = None;
        for _ in 0..500 {
            if let YcsbOp::Insert { key, .. } = w.next_op() {
                if let Some(prev) = &last {
                    assert!(key > *prev);
                }
                last = Some(key);
            }
        }
        assert!(last.is_some());
    }

    #[test]
    fn deterministic_given_seed() {
        let mut a = Workload::new(WorkloadKind::A, 1000, 16, 9);
        let mut b = Workload::new(WorkloadKind::A, 1000, 16, 9);
        for _ in 0..100 {
            assert_eq!(a.next_op(), b.next_op());
        }
    }

    #[test]
    fn canonical_key_format() {
        assert_eq!(key_for(42), "user000000000042");
    }
}
