//! End-to-end test of the TCP runtime: a three-process ring over
//! loopback TCP, a client port issuing requests, identical delivery
//! order at every learner, and durable acceptor state on disk.

use bytes::Bytes;
use mrp_transport::tcp::{ClientPort, RuntimeConfig, RuntimeEvent, TcpRuntime};
use multiring_paxos::config::{single_ring, RingTuning, StorageMode};
use multiring_paxos::node::Node;
use multiring_paxos::types::{ClientId, GroupId, ProcessId, ValueId};
use std::collections::BTreeMap;
use std::net::SocketAddr;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

fn free_addr() -> SocketAddr {
    let l = std::net::TcpListener::bind("127.0.0.1:0").expect("bind");
    l.local_addr().expect("addr")
}

#[test]
fn three_nodes_total_order_over_loopback_tcp() {
    let tuning = RingTuning {
        lambda: 0,
        ..RingTuning::default()
    };
    let config = single_ring(3, tuning);
    let addrs: Vec<SocketAddr> = (0..4).map(|_| free_addr()).collect();
    let mut peers: BTreeMap<ProcessId, SocketAddr> = BTreeMap::new();
    for (i, a) in addrs.iter().enumerate().take(3) {
        peers.insert(ProcessId::new(i as u32), *a);
    }
    let client_proc = ProcessId::new(50);
    peers.insert(client_proc, addrs[3]);

    // Node 0 runs with a periodic status probe (the telemetry-logging
    // hook): it must fire while the run makes progress and observe the
    // node's delivery counters advancing.
    let probe_runs = Arc::new(AtomicU64::new(0));
    let probe_delivered = Arc::new(AtomicU64::new(0));
    let mut handles = Vec::new();
    for i in 0..3u32 {
        let p = ProcessId::new(i);
        let mut rc = RuntimeConfig::new(p, addrs[i as usize]);
        rc.peers = peers.clone();
        rc.clients = BTreeMap::from([(ClientId::new(1), client_proc)]);
        let node = Node::new(p, config.clone());
        if i == 0 {
            rc.status_interval_us = 50_000;
            let runs = Arc::clone(&probe_runs);
            let delivered = Arc::clone(&probe_delivered);
            handles.push(
                TcpRuntime::spawn_with_status(
                    rc,
                    node,
                    Box::new(move |_, node: &Node| {
                        runs.fetch_add(1, Ordering::SeqCst);
                        delivered.fetch_max(node.stats().delivered, Ordering::SeqCst);
                    }),
                )
                .expect("spawn"),
            );
        } else {
            handles.push(TcpRuntime::spawn(rc, node).expect("spawn"));
        }
    }
    let client = ClientPort::bind(client_proc, addrs[3], peers.clone()).expect("client");

    // Send 20 requests to proposer p1.
    for r in 0..20u64 {
        client.request(
            ProcessId::new(1),
            ClientId::new(1),
            r,
            vec![GroupId::new(0)],
            Bytes::from(format!("req-{r}")),
        );
    }

    // Collect 20 deliveries from each node, in order.
    let deadline = Instant::now() + Duration::from_secs(20);
    let mut orders: Vec<Vec<ValueId>> = vec![Vec::new(); 3];
    while orders.iter().any(|o| o.len() < 20) && Instant::now() < deadline {
        for (i, h) in handles.iter().enumerate() {
            while let Ok(ev) = h.events().try_recv() {
                if let RuntimeEvent::Delivered { value, .. } = ev {
                    orders[i].push(value.id);
                }
            }
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    assert_eq!(orders[0].len(), 20, "node 0 delivered everything");
    assert_eq!(orders[0], orders[1], "identical order at node 1");
    assert_eq!(orders[0], orders[2], "identical order at node 2");
    // Give the probe at least one more firing window after the last
    // delivery, then check it both ran and saw the node's telemetry.
    std::thread::sleep(Duration::from_millis(200));
    assert!(
        probe_runs.load(Ordering::SeqCst) > 0,
        "status probe fired periodically"
    );
    assert_eq!(
        probe_delivered.load(Ordering::SeqCst),
        20,
        "status probe observed the node's delivery counter"
    );

    for h in handles {
        h.shutdown();
    }
}

#[test]
fn acceptor_state_is_durable_across_runtime_restart() {
    let dir = std::env::temp_dir().join(format!("mrp-tcp-durable-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    let tuning = RingTuning {
        lambda: 0,
        storage: StorageMode::SyncDisk,
        ..RingTuning::default()
    };
    // Singleton ring: one process is proposer, acceptor, learner.
    let config = single_ring(1, tuning);
    let addr = free_addr();
    let p = ProcessId::new(0);

    {
        let mut rc = RuntimeConfig::new(p, addr);
        rc.peers = BTreeMap::from([(p, addr)]);
        rc.storage_dir = Some(dir.clone());
        let node = Node::new(p, config.clone());
        let h = TcpRuntime::spawn(rc, node).expect("spawn");
        h.request(
            ClientId::new(9),
            1,
            vec![GroupId::new(0)],
            Bytes::from_static(b"durable"),
        );
        // Wait for the delivery (implies the sync write completed).
        let ev = h
            .events()
            .recv_timeout(Duration::from_secs(10))
            .expect("delivery");
        assert!(matches!(ev, RuntimeEvent::Delivered { .. }));
        h.shutdown();
    }

    // Reopen storage: the vote for instance 1 must be on disk.
    let store = mrp_storage::DirStorage::open(&dir).expect("reopen");
    let rec = store.state().acceptor_recovery();
    let ring0 = &rec[&multiring_paxos::types::RingId::new(0)];
    assert!(
        !ring0.accepted.is_empty(),
        "sync-mode vote must be durable across restart"
    );
    let _ = std::fs::remove_dir_all(&dir);
}
