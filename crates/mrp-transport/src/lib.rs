//! Real transports for Multi-Ring Paxos.
//!
//! The paper's implementation is a multi-threaded Java code base whose
//! threads communicate through queues, with all inter-process traffic on
//! TCP. This crate reproduces that runtime shape in Rust:
//!
//! * [`framing`] — length-prefixed frames carrying
//!   [`Message`](multiring_paxos::event::Message)s encoded with the
//!   shared binary codec;
//! * [`tcp`] — a thread-per-peer TCP runtime hosting any sans-io
//!   [`StateMachine`](multiring_paxos::event::StateMachine): reader
//!   threads decode frames into a crossbeam channel, a main loop drives
//!   the state machine (timers via `select` deadlines), writer threads
//!   drain per-peer outgoing queues, and stable storage goes through
//!   [`mrp_storage::DirStorage`] with real `fsync` on synchronous
//!   writes.
//!
//! The deterministic simulator (`mrp-sim`) is the preferred harness for
//! tests and benchmarks; this runtime is what a downstream deployment
//! uses, and the integration tests exercise it over loopback TCP.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod framing;
pub mod tcp;

pub use tcp::{RuntimeConfig, RuntimeEvent, RuntimeHandle, StatusProbe, TcpRuntime};
