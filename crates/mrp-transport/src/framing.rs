//! Length-prefixed message framing over byte streams.
//!
//! A frame is `u32` little-endian payload length followed by one encoded
//! [`Message`]. The first frame on every connection is a handshake frame
//! carrying the sender's process id.

use bytes::{Buf, BufMut, Bytes, BytesMut};
use multiring_paxos::codec::{self, CodecError};
use multiring_paxos::event::Message;
use multiring_paxos::types::ProcessId;
use std::io::{Read, Write};

/// Maximum accepted frame length (64 MiB): guards against corrupt
/// prefixes.
pub const MAX_FRAME: u32 = 64 * 1024 * 1024;

/// Writes one framed message to `w`.
///
/// # Errors
///
/// Propagates I/O errors from the writer.
pub fn write_frame(w: &mut impl Write, msg: &Message) -> std::io::Result<()> {
    let mut body = BytesMut::with_capacity(codec::encoded_len(msg) + 4);
    body.put_u32_le(0); // placeholder
    codec::encode(msg, &mut body);
    let len = (body.len() - 4) as u32;
    body[..4].copy_from_slice(&len.to_le_bytes());
    w.write_all(&body)
}

/// Reads one framed message from `r` (blocking).
///
/// # Errors
///
/// Returns I/O errors (including clean EOF as `UnexpectedEof`) and
/// decoding failures mapped to `InvalidData`.
pub fn read_frame(r: &mut impl Read) -> std::io::Result<Message> {
    let mut len_buf = [0u8; 4];
    r.read_exact(&mut len_buf)?;
    let len = u32::from_le_bytes(len_buf);
    if len > MAX_FRAME {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            format!("frame of {len} bytes exceeds limit"),
        ));
    }
    let mut body = vec![0u8; len as usize];
    r.read_exact(&mut body)?;
    let mut buf = Bytes::from(body);
    codec::decode(&mut buf).map_err(|e: CodecError| {
        std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string())
    })
}

/// The connection handshake: the dialer announces its process id so the
/// acceptor can attribute inbound frames.
pub fn write_hello(w: &mut impl Write, me: ProcessId) -> std::io::Result<()> {
    w.write_all(&me.value().to_le_bytes())
}

/// Reads the dialer's process id.
///
/// # Errors
///
/// Propagates I/O errors.
pub fn read_hello(r: &mut impl Read) -> std::io::Result<ProcessId> {
    let mut buf = [0u8; 4];
    r.read_exact(&mut buf)?;
    Ok(ProcessId::new(u32::from_le_bytes(buf)))
}

/// Incremental decoder for non-blocking byte accumulation (used by
/// tests; the threaded runtime reads blocking frames directly).
#[derive(Default, Debug)]
pub struct FrameAccumulator {
    buf: BytesMut,
}

impl FrameAccumulator {
    /// An empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Feeds raw bytes.
    pub fn extend(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Pops the next complete frame, if any.
    ///
    /// # Errors
    ///
    /// Returns decode failures as [`CodecError`].
    // Fallible and non-iterating, so deliberately not `Iterator::next`.
    #[allow(clippy::should_implement_trait)]
    pub fn next(&mut self) -> Result<Option<Message>, CodecError> {
        if self.buf.len() < 4 {
            return Ok(None);
        }
        let len = u32::from_le_bytes([self.buf[0], self.buf[1], self.buf[2], self.buf[3]]) as usize;
        if self.buf.len() < 4 + len {
            return Ok(None);
        }
        self.buf.advance(4);
        let mut frame = self.buf.split_to(len).freeze();
        codec::decode(&mut frame).map(Some)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use multiring_paxos::types::{GroupId, InstanceId, RingId};

    fn sample() -> Message {
        Message::TrimCommand {
            ring: RingId::new(3),
            upto: InstanceId::new(77),
        }
    }

    #[test]
    fn frame_roundtrip_via_cursor() {
        let mut buf = Vec::new();
        write_frame(&mut buf, &sample()).unwrap();
        let mut cursor = std::io::Cursor::new(buf);
        let back = read_frame(&mut cursor).unwrap();
        assert_eq!(back, sample());
    }

    #[test]
    fn hello_roundtrip() {
        let mut buf = Vec::new();
        write_hello(&mut buf, ProcessId::new(9)).unwrap();
        let mut cursor = std::io::Cursor::new(buf);
        assert_eq!(read_hello(&mut cursor).unwrap(), ProcessId::new(9));
    }

    #[test]
    fn oversized_frame_rejected() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&(MAX_FRAME + 1).to_le_bytes());
        let mut cursor = std::io::Cursor::new(buf);
        assert!(read_frame(&mut cursor).is_err());
    }

    #[test]
    fn accumulator_handles_partial_input() {
        let mut frame = Vec::new();
        write_frame(&mut frame, &sample()).unwrap();
        write_frame(
            &mut frame,
            &Message::TrimQuery {
                group: GroupId::new(1),
                seq: 4,
            },
        )
        .unwrap();

        let mut acc = FrameAccumulator::new();
        // Feed byte by byte: frames appear exactly when complete.
        let mut decoded = Vec::new();
        for b in frame {
            acc.extend(&[b]);
            while let Some(m) = acc.next().unwrap() {
                decoded.push(m);
            }
        }
        assert_eq!(decoded.len(), 2);
        assert_eq!(decoded[0], sample());
    }
}
