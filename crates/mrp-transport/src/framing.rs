//! Length-prefixed message framing over byte streams.
//!
//! A frame is `u32` little-endian payload length followed by one encoded
//! [`Message`]. The first frame on every connection is a handshake frame
//! carrying the sender's process id.

use bytes::{Buf, BufMut, Bytes, BytesMut};
use multiring_paxos::codec::{self, CodecError};
use multiring_paxos::event::Message;
use multiring_paxos::types::ProcessId;
use std::io::{Read, Write};

/// Maximum accepted frame length (64 MiB): guards against corrupt
/// prefixes.
pub const MAX_FRAME: u32 = 64 * 1024 * 1024;

/// Writes one framed message to `w`.
///
/// # Errors
///
/// Propagates I/O errors from the writer.
pub fn write_frame(w: &mut impl Write, msg: &Message) -> std::io::Result<()> {
    let mut scratch = BytesMut::with_capacity(codec::encoded_len(msg) + 4);
    write_frame_into(w, msg, &mut scratch)
}

/// Writes one framed message to `w`, encoding through a caller-owned
/// scratch buffer.
///
/// The buffer is cleared (capacity retained) and sized up front via
/// [`codec::encoded_len`], so a long-lived connection that passes the
/// same `scratch` for every frame stops allocating once the buffer has
/// grown to its steady-state frame size.
///
/// # Errors
///
/// Propagates I/O errors from the writer.
pub fn write_frame_into(
    w: &mut impl Write,
    msg: &Message,
    scratch: &mut BytesMut,
) -> std::io::Result<()> {
    scratch.clear();
    scratch.reserve(codec::encoded_len(msg) + 4);
    scratch.put_u32_le(0); // placeholder
    codec::encode(msg, scratch);
    let len = (scratch.len() - 4) as u32;
    scratch[..4].copy_from_slice(&len.to_le_bytes());
    w.write_all(scratch)
}

/// Reads one framed message from `r` (blocking).
///
/// # Errors
///
/// Returns I/O errors (including clean EOF as `UnexpectedEof`) and
/// decoding failures mapped to `InvalidData`.
pub fn read_frame(r: &mut impl Read) -> std::io::Result<Message> {
    let mut len_buf = [0u8; 4];
    r.read_exact(&mut len_buf)?;
    let len = u32::from_le_bytes(len_buf);
    if len > MAX_FRAME {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            format!("frame of {len} bytes exceeds limit"),
        ));
    }
    let mut body = vec![0u8; len as usize];
    r.read_exact(&mut body)?;
    let mut buf = Bytes::from(body);
    codec::decode(&mut buf).map_err(|e: CodecError| {
        std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string())
    })
}

/// The connection handshake: the dialer announces its process id so the
/// acceptor can attribute inbound frames.
pub fn write_hello(w: &mut impl Write, me: ProcessId) -> std::io::Result<()> {
    w.write_all(&me.value().to_le_bytes())
}

/// Reads the dialer's process id.
///
/// # Errors
///
/// Propagates I/O errors.
pub fn read_hello(r: &mut impl Read) -> std::io::Result<ProcessId> {
    let mut buf = [0u8; 4];
    r.read_exact(&mut buf)?;
    Ok(ProcessId::new(u32::from_le_bytes(buf)))
}

/// Incremental decoder for non-blocking byte accumulation (used by
/// tests; the threaded runtime reads blocking frames directly).
///
/// The buffered region is frozen into a shared [`Bytes`] once per
/// accumulation burst and complete frames are then served as zero-copy
/// sub-views ([`Bytes::split_to`]), so decoded payloads alias the
/// accumulator's storage instead of being copied out frame by frame.
/// At most one of the two internal buffers is non-empty at a time; a
/// partial trailing frame is folded back into the mutable side only
/// when more bytes arrive.
#[derive(Default, Debug)]
pub struct FrameAccumulator {
    /// Mutable accumulation buffer (bytes not yet frozen).
    buf: BytesMut,
    /// Frozen region complete frames are split from without copying.
    frozen: Bytes,
}

impl FrameAccumulator {
    /// An empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Feeds raw bytes.
    pub fn extend(&mut self, bytes: &[u8]) {
        if !self.frozen.is_empty() {
            // A partial frame is stranded in the frozen region; fold it
            // back so the new bytes extend it contiguously. This copies
            // at most one partial frame, not the whole history.
            self.buf.extend_from_slice(&self.frozen);
            self.frozen = Bytes::new();
        }
        self.buf.extend_from_slice(bytes);
    }

    /// Pops the next complete frame, if any.
    ///
    /// # Errors
    ///
    /// Returns decode failures as [`CodecError`].
    // Fallible and non-iterating, so deliberately not `Iterator::next`.
    #[allow(clippy::should_implement_trait)]
    pub fn next(&mut self) -> Result<Option<Message>, CodecError> {
        if self.frozen.is_empty() && !self.buf.is_empty() {
            self.frozen = std::mem::take(&mut self.buf).freeze();
        }
        if self.frozen.len() < 4 {
            return Ok(None);
        }
        let len = u32::from_le_bytes([
            self.frozen[0],
            self.frozen[1],
            self.frozen[2],
            self.frozen[3],
        ]) as usize;
        if self.frozen.len() < 4 + len {
            return Ok(None);
        }
        self.frozen.advance(4);
        let mut frame = self.frozen.split_to(len);
        codec::decode(&mut frame).map(Some)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use multiring_paxos::types::{GroupId, InstanceId, RingId};

    fn sample() -> Message {
        Message::TrimCommand {
            ring: RingId::new(3),
            upto: InstanceId::new(77),
        }
    }

    #[test]
    fn frame_roundtrip_via_cursor() {
        let mut buf = Vec::new();
        write_frame(&mut buf, &sample()).unwrap();
        let mut cursor = std::io::Cursor::new(buf);
        let back = read_frame(&mut cursor).unwrap();
        assert_eq!(back, sample());
    }

    #[test]
    fn hello_roundtrip() {
        let mut buf = Vec::new();
        write_hello(&mut buf, ProcessId::new(9)).unwrap();
        let mut cursor = std::io::Cursor::new(buf);
        assert_eq!(read_hello(&mut cursor).unwrap(), ProcessId::new(9));
    }

    #[test]
    fn oversized_frame_rejected() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&(MAX_FRAME + 1).to_le_bytes());
        let mut cursor = std::io::Cursor::new(buf);
        assert!(read_frame(&mut cursor).is_err());
    }

    #[test]
    fn write_frame_into_reuses_scratch_across_frames() {
        let other = Message::TrimQuery {
            group: GroupId::new(1),
            seq: 4,
        };
        let mut expected = Vec::new();
        write_frame(&mut expected, &sample()).unwrap();
        write_frame(&mut expected, &other).unwrap();

        let mut actual = Vec::new();
        let mut scratch = BytesMut::new();
        write_frame_into(&mut actual, &sample(), &mut scratch).unwrap();
        write_frame_into(&mut actual, &other, &mut scratch).unwrap();
        assert_eq!(actual, expected);
    }

    #[test]
    fn accumulator_folds_partial_tail_across_bursts() {
        // A complete frame plus a torn prefix of the next one arrive in
        // one burst; the remainder lands later. Both frames must decode.
        let mut a = Vec::new();
        write_frame(&mut a, &sample()).unwrap();
        let mut b = Vec::new();
        write_frame(
            &mut b,
            &Message::TrimQuery {
                group: GroupId::new(2),
                seq: 9,
            },
        )
        .unwrap();

        let mut acc = FrameAccumulator::new();
        let split = b.len() / 2;
        let mut first = a.clone();
        first.extend_from_slice(&b[..split]);
        acc.extend(&first);
        assert_eq!(acc.next().unwrap(), Some(sample()));
        assert_eq!(acc.next().unwrap(), None);
        acc.extend(&b[split..]);
        assert_eq!(
            acc.next().unwrap(),
            Some(Message::TrimQuery {
                group: GroupId::new(2),
                seq: 9,
            })
        );
        assert_eq!(acc.next().unwrap(), None);
    }

    #[test]
    fn accumulator_handles_partial_input() {
        let mut frame = Vec::new();
        write_frame(&mut frame, &sample()).unwrap();
        write_frame(
            &mut frame,
            &Message::TrimQuery {
                group: GroupId::new(1),
                seq: 4,
            },
        )
        .unwrap();

        let mut acc = FrameAccumulator::new();
        // Feed byte by byte: frames appear exactly when complete.
        let mut decoded = Vec::new();
        for b in frame {
            acc.extend(&[b]);
            while let Some(m) = acc.next().unwrap() {
                decoded.push(m);
            }
        }
        assert_eq!(decoded.len(), 2);
        assert_eq!(decoded[0], sample());
    }
}
