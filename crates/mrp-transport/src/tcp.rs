//! A thread-per-peer TCP runtime for sans-io state machines.
//!
//! Mirrors the paper's implementation architecture (Section 7.1): every
//! process is multi-threaded — reader threads per inbound connection,
//! writer threads per outbound peer, one protocol thread — and threads
//! communicate through queues (crossbeam channels). All inter-process
//! communication is TCP; stable storage is a real write-ahead log with
//! `fsync` on synchronous writes.

use crate::framing;
use crossbeam::channel::{unbounded, Receiver, RecvTimeoutError, Sender};
use mrp_storage::DirStorage;
use multiring_paxos::event::{Action, Event, Message, StateMachine, TimerKind};
use multiring_paxos::types::{ClientId, GroupId, InstanceId, ProcessId, Time, Value};
use parking_lot::Mutex;
use std::collections::{BTreeMap, BinaryHeap, HashMap, VecDeque};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

/// Static configuration of one runtime process.
#[derive(Clone, Debug)]
pub struct RuntimeConfig {
    /// This process.
    pub me: ProcessId,
    /// Address to listen on.
    pub listen: SocketAddr,
    /// Peer addresses (processes and client ports).
    pub peers: BTreeMap<ProcessId, SocketAddr>,
    /// Maps client sessions to the process (usually a
    /// [`ClientPort`]) their responses are sent to.
    pub clients: BTreeMap<ClientId, ProcessId>,
    /// Directory for the write-ahead log and checkpoints; `None` keeps
    /// stable state in memory (tests, in-memory storage mode).
    pub storage_dir: Option<PathBuf>,
    /// Maximum idle wait of the protocol loop, microseconds.
    pub tick_us: u64,
    /// Interval between status-probe invocations
    /// ([`TcpRuntime::spawn_with_status`]), microseconds; 0 disables
    /// the probe. Fires from the protocol loop, so the granularity is
    /// bounded below by `tick_us`.
    pub status_interval_us: u64,
}

impl RuntimeConfig {
    /// A minimal config for `me` listening on `listen`.
    pub fn new(me: ProcessId, listen: SocketAddr) -> Self {
        Self {
            me,
            listen,
            peers: BTreeMap::new(),
            clients: BTreeMap::new(),
            storage_dir: None,
            tick_us: 10_000,
            status_interval_us: 0,
        }
    }
}

/// A periodic observer of the hosted state machine, invoked from the
/// protocol thread between events (never concurrently with one): the
/// place to snapshot engine telemetry, run the health probe and log
/// both — the closure knows the concrete `S`, so the runtime stays
/// engine-agnostic.
pub type StatusProbe<S> = Box<dyn FnMut(Time, &S) + Send>;

/// Events surfaced by the runtime to its embedding application.
#[derive(Clone, PartialEq, Debug)]
pub enum RuntimeEvent {
    /// An atomic-multicast delivery (bare nodes).
    Delivered {
        /// Group.
        group: GroupId,
        /// Deciding instance.
        instance: InstanceId,
        /// The value.
        value: Value,
    },
    /// A client response produced locally whose session has no
    /// registered home (surfaced instead of sent).
    Response {
        /// Client session.
        client: ClientId,
        /// Request number.
        request: u64,
        /// Payload.
        payload: bytes::Bytes,
    },
}

enum Cmd {
    Inject(Event),
    Shutdown,
}

/// Everything the protocol thread receives, merged into one channel so
/// it can block on a single `recv_timeout` (std mpsc has no
/// multi-channel select).
enum Inbound {
    Net { from: ProcessId, msg: Message },
    Cmd(Cmd),
}

/// Handle to a running [`TcpRuntime`].
pub struct RuntimeHandle {
    cmd_tx: Sender<Inbound>,
    events_rx: Receiver<RuntimeEvent>,
    join: Option<thread::JoinHandle<()>>,
    shutdown: Arc<AtomicBool>,
}

impl std::fmt::Debug for RuntimeHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RuntimeHandle").finish_non_exhaustive()
    }
}

impl RuntimeHandle {
    /// Injects a client request as if it arrived from `client`'s
    /// session: the hosted node frames and multicasts it to the
    /// addressed group set.
    pub fn request(
        &self,
        client: ClientId,
        request: u64,
        groups: Vec<GroupId>,
        payload: bytes::Bytes,
    ) {
        let _ = self.cmd_tx.send(Inbound::Cmd(Cmd::Inject(Event::Message {
            from: ProcessId::new(u32::MAX),
            msg: Message::Request {
                client,
                request,
                groups,
                payload,
            },
        })));
    }

    /// Injects an arbitrary protocol event (tests, coordination
    /// service).
    pub fn inject(&self, event: Event) {
        let _ = self.cmd_tx.send(Inbound::Cmd(Cmd::Inject(event)));
    }

    /// The stream of surfaced events (deliveries, local responses).
    pub fn events(&self) -> &Receiver<RuntimeEvent> {
        &self.events_rx
    }

    /// Stops the runtime and joins its protocol thread.
    pub fn shutdown(mut self) {
        self.shutdown_inner();
    }

    fn shutdown_inner(&mut self) {
        self.shutdown.store(true, Ordering::SeqCst);
        let _ = self.cmd_tx.send(Inbound::Cmd(Cmd::Shutdown));
        if let Some(j) = self.join.take() {
            let _ = j.join();
        }
    }
}

impl Drop for RuntimeHandle {
    fn drop(&mut self) {
        self.shutdown_inner();
    }
}

/// The TCP runtime: hosts one state machine per process.
#[derive(Debug)]
pub struct TcpRuntime;

#[derive(PartialEq, Eq)]
struct Deadline(u64, TimerKind);

impl PartialOrd for Deadline {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Deadline {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        other.0.cmp(&self.0) // min-heap
    }
}

impl TcpRuntime {
    /// Spawns the runtime threads around `sm`.
    ///
    /// # Errors
    ///
    /// Fails if the listen socket cannot be bound or the storage
    /// directory cannot be opened.
    pub fn spawn<S: StateMachine + Send + 'static>(
        config: RuntimeConfig,
        sm: S,
    ) -> std::io::Result<RuntimeHandle> {
        Self::spawn_inner(config, sm, None)
    }

    /// Like [`TcpRuntime::spawn`], but additionally invokes `probe`
    /// every [`RuntimeConfig::status_interval_us`] microseconds with
    /// the current runtime time and a reference to the hosted state
    /// machine — periodic telemetry/health logging for long-running
    /// deployments.
    ///
    /// # Errors
    ///
    /// Fails if the listen socket cannot be bound or the storage
    /// directory cannot be opened.
    pub fn spawn_with_status<S: StateMachine + Send + 'static>(
        config: RuntimeConfig,
        sm: S,
        probe: StatusProbe<S>,
    ) -> std::io::Result<RuntimeHandle> {
        Self::spawn_inner(config, sm, Some(probe))
    }

    fn spawn_inner<S: StateMachine + Send + 'static>(
        config: RuntimeConfig,
        sm: S,
        probe: Option<StatusProbe<S>>,
    ) -> std::io::Result<RuntimeHandle> {
        let listener = TcpListener::bind(config.listen)?;
        listener.set_nonblocking(true)?;
        let storage = match &config.storage_dir {
            Some(dir) => {
                Some(DirStorage::open(dir).map_err(|e| std::io::Error::other(e.to_string()))?)
            }
            None => None,
        };
        let shutdown = Arc::new(AtomicBool::new(false));
        let (in_tx, in_rx) = unbounded::<Inbound>();
        let (events_tx, events_rx) = unbounded::<RuntimeEvent>();

        // Listener thread: accept + handshake + reader per connection.
        {
            let shutdown = Arc::clone(&shutdown);
            let net_tx = in_tx.clone();
            thread::spawn(move || {
                while !shutdown.load(Ordering::SeqCst) {
                    match listener.accept() {
                        Ok((stream, _)) => {
                            let net_tx = net_tx.clone();
                            let shutdown = Arc::clone(&shutdown);
                            thread::spawn(move || {
                                let mut stream = stream;
                                let Ok(peer) = framing::read_hello(&mut stream) else {
                                    return;
                                };
                                while !shutdown.load(Ordering::SeqCst) {
                                    match framing::read_frame(&mut stream) {
                                        Ok(msg) => {
                                            let inbound = Inbound::Net { from: peer, msg };
                                            if net_tx.send(inbound).is_err() {
                                                return;
                                            }
                                        }
                                        Err(_) => return,
                                    }
                                }
                            });
                        }
                        Err(ref e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                            thread::sleep(Duration::from_millis(10));
                        }
                        Err(_) => return,
                    }
                }
            });
        }

        let cfg = config.clone();
        let shutdown_main = Arc::clone(&shutdown);
        let join = thread::Builder::new()
            .name(format!("mrp-node-{}", config.me.value()))
            .spawn(move || {
                Self::protocol_loop(cfg, sm, storage, in_rx, events_tx, shutdown_main, probe);
            })?;

        Ok(RuntimeHandle {
            cmd_tx: in_tx,
            events_rx,
            join: Some(join),
            shutdown,
        })
    }

    #[allow(clippy::too_many_lines)]
    #[allow(clippy::too_many_arguments)]
    fn protocol_loop<S: StateMachine>(
        config: RuntimeConfig,
        mut sm: S,
        mut storage: Option<DirStorage>,
        in_rx: Receiver<Inbound>,
        events_tx: Sender<RuntimeEvent>,
        shutdown: Arc<AtomicBool>,
        mut probe: Option<StatusProbe<S>>,
    ) {
        let start = Instant::now();
        let now_us = || start.elapsed().as_micros() as u64;
        let mut timers: BinaryHeap<Deadline> = BinaryHeap::new();
        let mut writers: HashMap<ProcessId, Sender<Message>> = HashMap::new();
        let mut pending: VecDeque<Event> = VecDeque::new();
        let status_interval = if probe.is_some() {
            config.status_interval_us
        } else {
            0
        };
        let mut next_status_us = if status_interval > 0 {
            status_interval
        } else {
            u64::MAX
        };

        pending.push_back(Event::Start);
        'main: loop {
            // Drain pending protocol events first.
            while let Some(event) = pending.pop_front() {
                let now = Time::from_micros(now_us());
                let actions = sm.on_event(now, event);
                Self::run_actions(
                    &config,
                    actions,
                    &mut timers,
                    &mut writers,
                    &mut storage,
                    &mut pending,
                    &events_tx,
                    &shutdown,
                    now_us(),
                );
            }
            if shutdown.load(Ordering::SeqCst) {
                break;
            }
            // Wait for the next input or timer deadline.
            let timeout_us = timers
                .peek()
                .map_or(config.tick_us, |d| d.0.saturating_sub(now_us()))
                .min(config.tick_us)
                .max(100);
            // Block until the next input or the timer deadline: all
            // producers feed the single merged channel.
            match in_rx.recv_timeout(Duration::from_micros(timeout_us)) {
                Ok(Inbound::Net { from, msg }) => {
                    pending.push_back(Event::Message { from, msg });
                }
                Ok(Inbound::Cmd(Cmd::Inject(ev))) => pending.push_back(ev),
                Ok(Inbound::Cmd(Cmd::Shutdown)) | Err(RecvTimeoutError::Disconnected) => {
                    break 'main;
                }
                Err(RecvTimeoutError::Timeout) => {}
            }
            // Fire due timers.
            let t = now_us();
            while timers.peek().is_some_and(|d| d.0 <= t) {
                let Deadline(_, kind) = timers.pop().expect("peeked");
                pending.push_back(Event::Timer(kind));
            }
            // Periodic status probe: between events on the protocol
            // thread, so it reads a quiescent state machine.
            if t >= next_status_us {
                if let Some(probe) = probe.as_mut() {
                    probe(Time::from_micros(t), &sm);
                }
                next_status_us = t + status_interval;
            }
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn run_actions(
        config: &RuntimeConfig,
        actions: Vec<Action>,
        timers: &mut BinaryHeap<Deadline>,
        writers: &mut HashMap<ProcessId, Sender<Message>>,
        storage: &mut Option<DirStorage>,
        pending: &mut VecDeque<Event>,
        events_tx: &Sender<RuntimeEvent>,
        shutdown: &Arc<AtomicBool>,
        now_us: u64,
    ) {
        for action in actions {
            match action {
                Action::Send { to, msg } => {
                    Self::send_to(config, writers, shutdown, to, msg);
                }
                Action::SetTimer { after_us, timer } => {
                    timers.push(Deadline(now_us + after_us, timer));
                }
                Action::Persist {
                    record,
                    sync,
                    token,
                } => {
                    if let Some(store) = storage.as_mut() {
                        // Real durability; an I/O failure here is fatal
                        // for the acceptor's safety guarantees.
                        store
                            .persist(&record, sync)
                            .expect("stable storage write failed");
                    }
                    pending.push_back(Event::PersistDone(token));
                }
                Action::TrimStorage { ring, upto } => {
                    if let Some(store) = storage.as_mut() {
                        let _ = store.trim(ring, upto);
                    }
                }
                Action::Deliver {
                    group,
                    instance,
                    value,
                } => {
                    let _ = events_tx.send(RuntimeEvent::Delivered {
                        group,
                        instance,
                        value,
                    });
                }
                Action::Respond {
                    client,
                    request,
                    payload,
                } => {
                    if let Some(&home) = config.clients.get(&client) {
                        Self::send_to(
                            config,
                            writers,
                            shutdown,
                            home,
                            Message::Response {
                                client,
                                request,
                                payload,
                            },
                        );
                    } else {
                        let _ = events_tx.send(RuntimeEvent::Response {
                            client,
                            request,
                            payload,
                        });
                    }
                }
            }
        }
    }

    fn send_to(
        config: &RuntimeConfig,
        writers: &mut HashMap<ProcessId, Sender<Message>>,
        shutdown: &Arc<AtomicBool>,
        to: ProcessId,
        msg: Message,
    ) {
        let tx = writers.entry(to).or_insert_with(|| {
            let (tx, rx) = unbounded::<Message>();
            let addr = config.peers.get(&to).copied();
            let me = config.me;
            let shutdown = Arc::clone(shutdown);
            thread::spawn(move || {
                let Some(addr) = addr else { return };
                Self::writer_loop(me, addr, rx, shutdown);
            });
            tx
        });
        let _ = tx.send(msg);
    }

    fn writer_loop(
        me: ProcessId,
        addr: SocketAddr,
        rx: Receiver<Message>,
        shutdown: Arc<AtomicBool>,
    ) {
        let mut conn: Option<TcpStream> = None;
        let mut carry: Option<Message> = None;
        // One encode buffer per connection: frames reuse its capacity
        // instead of allocating per message.
        let mut scratch = bytes::BytesMut::new();
        while !shutdown.load(Ordering::SeqCst) {
            let msg = match carry.take() {
                Some(m) => m,
                None => match rx.recv_timeout(Duration::from_millis(100)) {
                    Ok(m) => m,
                    Err(RecvTimeoutError::Timeout) => continue,
                    Err(RecvTimeoutError::Disconnected) => return,
                },
            };
            loop {
                if conn.is_none() {
                    match TcpStream::connect(addr) {
                        Ok(mut s) => {
                            let _ = s.set_nodelay(true);
                            if framing::write_hello(&mut s, me).is_ok() {
                                conn = Some(s);
                            }
                        }
                        Err(_) => {
                            thread::sleep(Duration::from_millis(50));
                            if shutdown.load(Ordering::SeqCst) {
                                return;
                            }
                            continue;
                        }
                    }
                }
                if let Some(s) = conn.as_mut() {
                    match framing::write_frame_into(s, &msg, &mut scratch) {
                        Ok(()) => break,
                        Err(_) => {
                            conn = None; // reconnect and retry this frame
                        }
                    }
                }
                if shutdown.load(Ordering::SeqCst) {
                    return;
                }
            }
        }
    }
}

/// A lightweight client endpoint: binds a socket, receives
/// [`Message::Response`] frames addressed to its sessions, and sends
/// [`Message::Request`]s to runtime processes. This is the paper's
/// "client connects to proposers, replicas answer over the network"
/// shape.
pub struct ClientPort {
    me: ProcessId,
    peers: BTreeMap<ProcessId, SocketAddr>,
    responses_rx: Receiver<(ClientId, u64, bytes::Bytes)>,
    writers: Mutex<HashMap<ProcessId, Sender<Message>>>,
    shutdown: Arc<AtomicBool>,
}

impl std::fmt::Debug for ClientPort {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ClientPort").field("me", &self.me).finish()
    }
}

impl ClientPort {
    /// Binds a client port as pseudo-process `me` on `listen`.
    ///
    /// # Errors
    ///
    /// Fails if the socket cannot be bound.
    pub fn bind(
        me: ProcessId,
        listen: SocketAddr,
        peers: BTreeMap<ProcessId, SocketAddr>,
    ) -> std::io::Result<Self> {
        let listener = TcpListener::bind(listen)?;
        listener.set_nonblocking(true)?;
        let (tx, rx) = unbounded();
        let shutdown = Arc::new(AtomicBool::new(false));
        {
            let shutdown = Arc::clone(&shutdown);
            thread::spawn(move || {
                while !shutdown.load(Ordering::SeqCst) {
                    match listener.accept() {
                        Ok((mut stream, _)) => {
                            let tx = tx.clone();
                            let shutdown = Arc::clone(&shutdown);
                            thread::spawn(move || {
                                if framing::read_hello(&mut stream).is_err() {
                                    return;
                                }
                                while !shutdown.load(Ordering::SeqCst) {
                                    match framing::read_frame(&mut stream) {
                                        Ok(Message::Response {
                                            client,
                                            request,
                                            payload,
                                        }) => {
                                            if tx.send((client, request, payload)).is_err() {
                                                return;
                                            }
                                        }
                                        Ok(_) => {}
                                        Err(_) => return,
                                    }
                                }
                            });
                        }
                        Err(ref e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                            thread::sleep(Duration::from_millis(5));
                        }
                        Err(_) => return,
                    }
                }
            });
        }
        Ok(Self {
            me,
            peers,
            responses_rx: rx,
            writers: Mutex::new(HashMap::new()),
            shutdown,
        })
    }

    /// Sends a request addressed to the group set `groups` to process
    /// `to`.
    pub fn request(
        &self,
        to: ProcessId,
        client: ClientId,
        request: u64,
        groups: Vec<GroupId>,
        payload: bytes::Bytes,
    ) {
        let msg = Message::Request {
            client,
            request,
            groups,
            payload,
        };
        let mut writers = self.writers.lock();
        let tx = writers.entry(to).or_insert_with(|| {
            let (tx, rx) = unbounded::<Message>();
            let addr = self.peers.get(&to).copied();
            let me = self.me;
            let shutdown = Arc::clone(&self.shutdown);
            thread::spawn(move || {
                let Some(addr) = addr else { return };
                TcpRuntime::writer_loop(me, addr, rx, shutdown);
            });
            tx
        });
        let _ = tx.send(msg);
    }

    /// The stream of responses: `(client, request, payload)`.
    pub fn responses(&self) -> &Receiver<(ClientId, u64, bytes::Bytes)> {
        &self.responses_rx
    }
}

impl Drop for ClientPort {
    fn drop(&mut self) {
        self.shutdown.store(true, Ordering::SeqCst);
    }
}
