//! Coordination service for Multi-Ring Paxos deployments.
//!
//! The paper delegates ring configuration, coordinator election and the
//! partitioning schema to Zookeeper (Sections 4 and 7). Zookeeper is an
//! *oracle* here — it is never on the ordering data path — so any
//! registry with the same small API preserves the system's behaviour.
//! This crate provides that registry:
//!
//! * [`FailureDetector`] — heartbeat bookkeeping with a configurable
//!   timeout;
//! * [`elect`] — the deterministic election rule (lowest-id live
//!   acceptor of the ring);
//! * [`Registry`] — a process-shared registry of ring coordinators,
//!   down-sets and the service partition map, with watch channels so
//!   runtimes learn about changes;
//! * [`PartitionMap`] — the hash/range partitioning schema MRP-Store
//!   clients read (Section 6.1).
//!
//! In a multi-machine deployment the registry itself would be replicated
//! (the paper runs a Zookeeper ensemble); embedding it in-process keeps
//! the reproduction self-contained without changing any protocol
//! behaviour.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod detector;
pub mod partition;
pub mod registry;

pub use detector::FailureDetector;
pub use partition::{PartitionMap, Partitioning};
pub use registry::{elect, CoordEvent, Registry};
