//! The partitioning schema of a partitioned service (Section 6.1): how
//! keys map to multicast groups. Stored in the coordination service and
//! read by clients ("clients must know the partitioning scheme").

use multiring_paxos::types::GroupId;

/// How the key space is split across partitions.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Partitioning {
    /// Keys are hashed onto `n` partitions (FNV-1a).
    Hash {
        /// Number of partitions.
        partitions: u16,
    },
    /// Keys are range-partitioned by the given split points: partition
    /// `i` holds keys in `[splits[i-1], splits[i])` (lexicographic),
    /// partition `0` everything below `splits[0]`, the last partition
    /// everything at or above the last split.
    Range {
        /// Sorted split points.
        splits: Vec<Vec<u8>>,
    },
}

/// Maps keys to groups according to a [`Partitioning`] and a base group
/// id (partition `i` ↔ group `base + i`).
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct PartitionMap {
    scheme: Partitioning,
    base_group: u16,
}

fn fnv1a(key: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for &b in key {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

impl PartitionMap {
    /// Hash partitioning over `partitions` groups starting at
    /// `base_group`.
    pub fn hash(partitions: u16, base_group: u16) -> Self {
        assert!(partitions > 0, "at least one partition");
        Self {
            scheme: Partitioning::Hash { partitions },
            base_group,
        }
    }

    /// Range partitioning with the given split points.
    ///
    /// # Panics
    ///
    /// Panics if the splits are not strictly ascending.
    pub fn range(splits: Vec<Vec<u8>>, base_group: u16) -> Self {
        assert!(
            splits.windows(2).all(|w| w[0] < w[1]),
            "splits must be strictly ascending"
        );
        Self {
            scheme: Partitioning::Range { splits },
            base_group,
        }
    }

    /// Number of partitions.
    pub fn partitions(&self) -> u16 {
        match &self.scheme {
            Partitioning::Hash { partitions } => *partitions,
            Partitioning::Range { splits } => splits.len() as u16 + 1,
        }
    }

    /// The partitioning scheme.
    pub fn scheme(&self) -> &Partitioning {
        &self.scheme
    }

    /// The group owning `key`.
    pub fn group_of(&self, key: &[u8]) -> GroupId {
        let idx = match &self.scheme {
            Partitioning::Hash { partitions } => (fnv1a(key) % u64::from(*partitions)) as u16,
            Partitioning::Range { splits } => {
                splits.partition_point(|s| s.as_slice() <= key) as u16
            }
        };
        GroupId::new(self.base_group + idx)
    }

    /// The groups a range scan `[from, to]` must be multicast to: the
    /// covering partitions under range partitioning, or *all* partitions
    /// under hash partitioning (Section 6.1).
    pub fn groups_for_range(&self, from: &[u8], to: &[u8]) -> Vec<GroupId> {
        match &self.scheme {
            Partitioning::Hash { partitions } => (0..*partitions)
                .map(|i| GroupId::new(self.base_group + i))
                .collect(),
            Partitioning::Range { splits } => {
                let lo = splits.partition_point(|s| s.as_slice() <= from) as u16;
                let hi = splits.partition_point(|s| s.as_slice() <= to) as u16;
                (lo..=hi)
                    .map(|i| GroupId::new(self.base_group + i))
                    .collect()
            }
        }
    }

    /// All groups of the service.
    pub fn all_groups(&self) -> Vec<GroupId> {
        (0..self.partitions())
            .map(|i| GroupId::new(self.base_group + i))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hash_spreads_keys() {
        let m = PartitionMap::hash(3, 0);
        let mut seen = [0u32; 3];
        for i in 0..3000 {
            let key = format!("user{i}");
            let g = m.group_of(key.as_bytes());
            seen[g.value() as usize] += 1;
        }
        for &c in &seen {
            assert!(c > 700, "distribution too skewed: {seen:?}");
        }
        // Deterministic.
        assert_eq!(m.group_of(b"alpha"), m.group_of(b"alpha"));
    }

    #[test]
    fn hash_scan_hits_all_partitions() {
        let m = PartitionMap::hash(4, 2);
        let gs = m.groups_for_range(b"a", b"b");
        assert_eq!(gs.len(), 4);
        assert_eq!(gs[0], GroupId::new(2));
        assert_eq!(m.all_groups(), gs);
    }

    #[test]
    fn range_partitioning_routes_by_split() {
        let m = PartitionMap::range(vec![b"g".to_vec(), b"p".to_vec()], 0);
        assert_eq!(m.partitions(), 3);
        assert_eq!(m.group_of(b"apple"), GroupId::new(0));
        assert_eq!(m.group_of(b"grape"), GroupId::new(1));
        assert_eq!(m.group_of(b"melon"), GroupId::new(1));
        assert_eq!(m.group_of(b"zebra"), GroupId::new(2));
        // Split boundary belongs to the right partition.
        assert_eq!(m.group_of(b"g"), GroupId::new(1));
    }

    #[test]
    fn range_scan_covers_only_needed_partitions() {
        let m = PartitionMap::range(vec![b"g".to_vec(), b"p".to_vec()], 0);
        assert_eq!(
            m.groups_for_range(b"a", b"f"),
            vec![GroupId::new(0)],
            "scan inside one partition"
        );
        assert_eq!(
            m.groups_for_range(b"e", b"k"),
            vec![GroupId::new(0), GroupId::new(1)]
        );
        assert_eq!(m.groups_for_range(b"a", b"z").len(), 3);
    }

    #[test]
    #[should_panic(expected = "ascending")]
    fn unsorted_splits_rejected() {
        let _ = PartitionMap::range(vec![b"p".to_vec(), b"g".to_vec()], 0);
    }
}
