//! Heartbeat-based failure detection.

use multiring_paxos::types::{ProcessId, Time};
use std::collections::BTreeMap;

/// Tracks heartbeats and reports processes whose last heartbeat is older
/// than the timeout. This is the ◇P-style detector the coordination
/// service runs; the protocol itself only needs its output eventually
/// (safety never depends on it).
#[derive(Debug)]
pub struct FailureDetector {
    timeout_us: u64,
    last_seen: BTreeMap<ProcessId, Time>,
}

impl FailureDetector {
    /// A detector declaring processes down after `timeout_us` of
    /// silence.
    pub fn new(timeout_us: u64) -> Self {
        Self {
            timeout_us,
            last_seen: BTreeMap::new(),
        }
    }

    /// Registers a process (counts as a heartbeat at `now`).
    pub fn register(&mut self, p: ProcessId, now: Time) {
        self.last_seen.insert(p, now);
    }

    /// Removes a process from monitoring.
    pub fn deregister(&mut self, p: ProcessId) {
        self.last_seen.remove(&p);
    }

    /// Records a heartbeat.
    pub fn heartbeat(&mut self, p: ProcessId, now: Time) {
        self.last_seen.insert(p, now);
    }

    /// Whether `p` is considered up at `now`.
    pub fn is_up(&self, p: ProcessId, now: Time) -> bool {
        self.last_seen
            .get(&p)
            .is_some_and(|&t| now.since(t) < self.timeout_us)
    }

    /// All monitored processes considered down at `now`.
    pub fn down(&self, now: Time) -> Vec<ProcessId> {
        self.last_seen
            .iter()
            .filter(|&(_, &t)| now.since(t) >= self.timeout_us)
            .map(|(&p, _)| p)
            .collect()
    }

    /// All monitored processes considered up at `now`.
    pub fn up(&self, now: Time) -> Vec<ProcessId> {
        self.last_seen
            .iter()
            .filter(|&(_, &t)| now.since(t) < self.timeout_us)
            .map(|(&p, _)| p)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(i: u32) -> ProcessId {
        ProcessId::new(i)
    }

    #[test]
    fn detects_silence() {
        let mut d = FailureDetector::new(1000);
        d.register(p(0), Time::ZERO);
        d.register(p(1), Time::ZERO);
        d.heartbeat(p(0), Time::from_micros(900));
        assert!(d.is_up(p(0), Time::from_micros(1500)));
        assert!(!d.is_up(p(1), Time::from_micros(1500)));
        assert_eq!(d.down(Time::from_micros(1500)), vec![p(1)]);
        assert_eq!(d.up(Time::from_micros(1500)), vec![p(0)]);
    }

    #[test]
    fn deregister_stops_monitoring() {
        let mut d = FailureDetector::new(10);
        d.register(p(0), Time::ZERO);
        d.deregister(p(0));
        assert!(d.down(Time::from_secs(1)).is_empty());
        assert!(!d.is_up(p(0), Time::ZERO));
    }

    #[test]
    fn unknown_process_is_down() {
        let d = FailureDetector::new(10);
        assert!(!d.is_up(p(9), Time::ZERO));
    }
}
