//! The shared configuration registry (Zookeeper substitute): ring
//! coordinators, down-sets and the partition map, with watch channels.

use crate::detector::FailureDetector;
use crate::partition::PartitionMap;
use multiring_paxos::config::{ClusterConfig, RingConfig};
use multiring_paxos::types::{ProcessId, RingId, Time};
use parking_lot::Mutex;
use std::collections::BTreeMap;
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::Arc;

/// The deterministic election rule: the lowest-id acceptor of the ring
/// that is currently up.
pub fn elect(ring: &RingConfig, is_up: impl Fn(ProcessId) -> bool) -> Option<ProcessId> {
    ring.acceptors().iter().copied().find(|&a| is_up(a))
}

/// Events published to watchers.
#[derive(Clone, PartialEq, Debug)]
pub enum CoordEvent {
    /// A ring's coordinator changed.
    Coordinator {
        /// Ring.
        ring: RingId,
        /// The elected coordinator.
        coordinator: ProcessId,
    },
    /// A ring's down-set changed.
    Membership {
        /// Ring.
        ring: RingId,
        /// Members currently down.
        down: Vec<ProcessId>,
    },
}

#[derive(Debug)]
struct Inner {
    config: ClusterConfig,
    detector: FailureDetector,
    coordinators: BTreeMap<RingId, ProcessId>,
    down: BTreeMap<RingId, Vec<ProcessId>>,
    partition_map: Option<PartitionMap>,
    watchers: Vec<Sender<CoordEvent>>,
}

/// A process-shared coordination registry. Clone handles freely; all
/// clones see the same state.
#[derive(Clone, Debug)]
pub struct Registry {
    inner: Arc<Mutex<Inner>>,
}

impl Registry {
    /// Creates a registry for `config`, with every member initially up
    /// and configured coordinators in place.
    pub fn new(config: ClusterConfig, detector_timeout_us: u64) -> Self {
        let mut detector = FailureDetector::new(detector_timeout_us);
        for p in config.processes() {
            detector.register(p, Time::ZERO);
        }
        let coordinators = config
            .rings()
            .iter()
            .map(|(&r, rc)| (r, rc.coordinator()))
            .collect();
        Self {
            inner: Arc::new(Mutex::new(Inner {
                config,
                detector,
                coordinators,
                down: BTreeMap::new(),
                partition_map: None,
                watchers: Vec::new(),
            })),
        }
    }

    /// Subscribes to coordination events.
    pub fn watch(&self) -> Receiver<CoordEvent> {
        let (tx, rx) = channel();
        self.inner.lock().watchers.push(tx);
        rx
    }

    /// Publishes the service partition map.
    pub fn set_partition_map(&self, map: PartitionMap) {
        self.inner.lock().partition_map = Some(map);
    }

    /// Reads the service partition map.
    pub fn partition_map(&self) -> Option<PartitionMap> {
        self.inner.lock().partition_map.clone()
    }

    /// The current coordinator of `ring`.
    pub fn coordinator(&self, ring: RingId) -> Option<ProcessId> {
        self.inner.lock().coordinators.get(&ring).copied()
    }

    /// The current down-set of `ring`.
    pub fn down(&self, ring: RingId) -> Vec<ProcessId> {
        self.inner
            .lock()
            .down
            .get(&ring)
            .cloned()
            .unwrap_or_default()
    }

    /// Records a heartbeat and runs detection: any ring whose down-set
    /// or coordinator changes publishes events to watchers.
    pub fn heartbeat(&self, p: ProcessId, now: Time) {
        let mut inner = self.inner.lock();
        inner.detector.heartbeat(p, now);
        Self::reevaluate(&mut inner, now);
    }

    /// Runs detection without a heartbeat (periodic sweep).
    pub fn tick(&self, now: Time) {
        let mut inner = self.inner.lock();
        Self::reevaluate(&mut inner, now);
    }

    fn reevaluate(inner: &mut Inner, now: Time) {
        let mut events = Vec::new();
        let rings: Vec<RingId> = inner.config.rings().keys().copied().collect();
        for ring_id in rings {
            let ring = inner.config.ring(ring_id).expect("known ring").clone();
            let down: Vec<ProcessId> = ring
                .members()
                .iter()
                .map(|m| m.process)
                .filter(|&p| !inner.detector.is_up(p, now))
                .collect();
            if inner.down.get(&ring_id).map(Vec::as_slice) != Some(down.as_slice()) {
                inner.down.insert(ring_id, down.clone());
                events.push(CoordEvent::Membership {
                    ring: ring_id,
                    down: down.clone(),
                });
            }
            let current = inner.coordinators.get(&ring_id).copied();
            let current_down = current.is_none_or(|c| down.contains(&c));
            if current_down {
                if let Some(new) = elect(&ring, |p| !down.contains(&p)) {
                    if Some(new) != current {
                        inner.coordinators.insert(ring_id, new);
                        events.push(CoordEvent::Coordinator {
                            ring: ring_id,
                            coordinator: new,
                        });
                    }
                }
            }
        }
        inner
            .watchers
            .retain(|w| events.iter().all(|e| w.send(e.clone()).is_ok()));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use multiring_paxos::config::{single_ring, RingTuning};

    fn p(i: u32) -> ProcessId {
        ProcessId::new(i)
    }

    #[test]
    fn elect_picks_lowest_live_acceptor() {
        let cfg = single_ring(3, RingTuning::default());
        let ring = cfg.ring(RingId::new(0)).unwrap();
        assert_eq!(elect(ring, |_| true), Some(p(0)));
        assert_eq!(elect(ring, |q| q != p(0)), Some(p(1)));
        assert_eq!(elect(ring, |_| false), None);
    }

    #[test]
    fn silence_triggers_membership_and_election_events() {
        let cfg = single_ring(3, RingTuning::default());
        let reg = Registry::new(cfg, 1_000);
        let rx = reg.watch();
        // Keep p1, p2 alive; let p0 (the coordinator) go silent.
        reg.heartbeat(p(1), Time::from_micros(1_500));
        reg.heartbeat(p(2), Time::from_micros(1_500));
        let mut events = Vec::new();
        while let Ok(e) = rx.try_recv() {
            events.push(e);
        }
        assert!(events.contains(&CoordEvent::Membership {
            ring: RingId::new(0),
            down: vec![p(0)],
        }));
        assert!(events.contains(&CoordEvent::Coordinator {
            ring: RingId::new(0),
            coordinator: p(1),
        }));
        assert_eq!(reg.coordinator(RingId::new(0)), Some(p(1)));
        assert_eq!(reg.down(RingId::new(0)), vec![p(0)]);
    }

    #[test]
    fn recovery_restores_membership() {
        let cfg = single_ring(3, RingTuning::default());
        let reg = Registry::new(cfg, 1_000);
        reg.heartbeat(p(1), Time::from_micros(1_500));
        reg.heartbeat(p(2), Time::from_micros(1_500));
        assert_eq!(reg.down(RingId::new(0)), vec![p(0)]);
        // p0 comes back; coordinator stays with p1 (no flapping).
        let rx = reg.watch();
        reg.heartbeat(p(0), Time::from_micros(1_600));
        reg.heartbeat(p(1), Time::from_micros(1_600));
        reg.heartbeat(p(2), Time::from_micros(1_600));
        assert_eq!(reg.down(RingId::new(0)), Vec::<ProcessId>::new());
        assert_eq!(reg.coordinator(RingId::new(0)), Some(p(1)));
        let events: Vec<CoordEvent> = rx.try_iter().collect();
        assert!(events.iter().any(|e| matches!(
            e,
            CoordEvent::Membership { down, .. } if down.is_empty()
        )));
    }

    #[test]
    fn partition_map_roundtrip() {
        let cfg = single_ring(1, RingTuning::default());
        let reg = Registry::new(cfg, 1_000);
        assert!(reg.partition_map().is_none());
        reg.set_partition_map(PartitionMap::hash(3, 0));
        assert_eq!(reg.partition_map().unwrap().partitions(), 3);
    }
}
