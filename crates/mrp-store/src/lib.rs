//! # MRP-Store: a strongly consistent partitioned key-value store
//!
//! The key-value service of Section 6.1 of the paper, built on
//! Multi-Ring Paxos atomic multicast and state-machine replication:
//!
//! * keys are strings (byte strings here), values arbitrary byte arrays;
//! * the database is split into `l` partitions, hash- or
//!   range-partitioned ([`mrp_coord::PartitionMap`]); each partition is
//!   replicated with state-machine replication on its own ring;
//! * single-key operations (`read`, `update`, `insert`, `delete`) are
//!   multicast to the partition owning the key; `scan` operations are
//!   multicast to the *global* group subscribed by every replica, which
//!   orders them against all single-partition operations (this is what
//!   makes multi-partition executions serializable — Section 6.1);
//! * a configuration without the global ring ("independent rings" in
//!   Figure 4) trades cross-partition ordering for throughput;
//! * clients send commands to a proposer of the relevant ring and wait
//!   for the first replica response (one response per partition for
//!   scans); small commands may be batched per partition up to 32 KB.
//!
//! The service guarantees sequential consistency: one serialization of
//! all operations consistent with each client's program order.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod app;
pub mod client;
pub mod command;
pub mod kv;
pub mod setup;

pub use app::StoreApp;
pub use client::{StoreClient, StoreClientStats};
pub use command::{StoreCommand, StoreResponse};
pub use kv::KvStore;
pub use setup::{StoreDeployment, StoreTopology};
