//! Deployment helper: builds the Multi-Ring Paxos configuration for an
//! MRP-Store cluster (partition rings plus optional global ring) the way
//! the paper's evaluation deploys it.

use crate::app::StoreApp;
use mrp_amcast::EngineKind;
use mrp_coord::PartitionMap;
use mrp_sim::cluster::Cluster;
use multiring_paxos::config::{ClusterConfig, RingSpec, RingTuning, Roles};
use multiring_paxos::replica::CheckpointPolicy;
use multiring_paxos::types::{GroupId, ProcessId, RingId};
use std::collections::BTreeMap;

/// Shape of an MRP-Store deployment.
#[derive(Clone, Debug)]
pub struct StoreTopology {
    /// Number of partitions `l`.
    pub partitions: u16,
    /// Replicas per partition (ring size).
    pub replicas_per_partition: u32,
    /// Whether replicas also subscribe to a common global ring that
    /// orders cross-partition operations (Figure 4 compares with and
    /// without it).
    pub global_ring: bool,
    /// Ring tuning applied to partition rings.
    pub tuning: RingTuning,
    /// Ring tuning applied to the global ring (usually identical).
    pub global_tuning: RingTuning,
    /// Which atomic-multicast engine orders the store's commands.
    pub engine: EngineKind,
}

impl StoreTopology {
    /// The paper's local setup: `partitions` rings of 3 replicas with a
    /// global ring. The engine defaults to the `MRP_ENGINE` environment
    /// variable (Multi-Ring Paxos when unset), so benches and examples
    /// switch engines without recompiling; [`engine`](Self::engine)
    /// overrides it.
    pub fn local(partitions: u16, tuning: RingTuning) -> Self {
        Self {
            partitions,
            replicas_per_partition: 3,
            global_ring: true,
            tuning,
            global_tuning: tuning,
            engine: EngineKind::from_env(),
        }
    }

    /// Selects the ordering engine.
    #[must_use]
    pub fn engine(mut self, engine: EngineKind) -> Self {
        self.engine = engine;
        self
    }

    /// The "independent rings" configuration of Figure 4 (no global
    /// ring; no cross-partition ordering).
    pub fn independent(partitions: u16, tuning: RingTuning) -> Self {
        Self {
            global_ring: false,
            ..Self::local(partitions, tuning)
        }
    }
}

/// A fully resolved deployment: configuration plus routing tables.
#[derive(Clone, Debug)]
pub struct StoreDeployment {
    /// The validated cluster configuration.
    pub config: ClusterConfig,
    /// Key → group mapping (hash partitioning over the partition
    /// groups).
    pub partition_map: PartitionMap,
    /// The global group, if the topology has one.
    pub global_group: Option<GroupId>,
    /// Replica processes per partition, in ring order.
    pub replicas: BTreeMap<u16, Vec<ProcessId>>,
    /// A proposer to contact per group (the first ring member).
    pub proposer_of: BTreeMap<GroupId, ProcessId>,
    /// The ordering engine the deployment runs.
    pub engine: EngineKind,
}

impl StoreDeployment {
    /// Builds the deployment: partition `i` is served by ring/group `i`
    /// with processes `i * r .. i * r + r`; the optional global ring is
    /// group `l` and includes every replica.
    ///
    /// # Panics
    ///
    /// Panics if the topology is degenerate (zero partitions/replicas).
    pub fn build(topology: &StoreTopology) -> Self {
        assert!(topology.partitions > 0 && topology.replicas_per_partition > 0);
        let l = topology.partitions;
        let r = topology.replicas_per_partition;
        let mut builder = ClusterConfig::builder();
        let mut replicas: BTreeMap<u16, Vec<ProcessId>> = BTreeMap::new();
        let mut proposer_of = BTreeMap::new();

        for part in 0..l {
            let ring_id = RingId::new(part);
            let group = GroupId::new(part);
            let mut spec = RingSpec::new(ring_id).tuning(topology.tuning);
            let mut members = Vec::new();
            for j in 0..r {
                let p = ProcessId::new(u32::from(part) * r + j);
                spec = spec.member(p, Roles::ALL);
                members.push(p);
            }
            proposer_of.insert(group, members[0]);
            replicas.insert(part, members);
            builder = builder.ring(spec).group(group, ring_id);
        }

        let global_group = topology.global_ring.then(|| GroupId::new(l));
        if let Some(g) = global_group {
            let ring_id = RingId::new(l);
            let mut spec = RingSpec::new(ring_id).tuning(topology.global_tuning);
            for members in replicas.values() {
                for &p in members {
                    spec = spec.member(p, Roles::ALL);
                }
            }
            let first = replicas[&0][0];
            proposer_of.insert(g, first);
            builder = builder.ring(spec).group(g, ring_id);
        }

        for (&part, members) in &replicas {
            for &p in members {
                builder = builder.subscribe(p, GroupId::new(part));
                if let Some(g) = global_group {
                    builder = builder.subscribe(p, g);
                }
            }
        }

        let config = builder.build().expect("store deployment config is valid");
        Self {
            config,
            partition_map: PartitionMap::hash(l, 0),
            global_group,
            replicas,
            proposer_of,
            engine: topology.engine,
        }
    }

    /// Spawns one replica actor per process on `cluster`, hosted by the
    /// deployment's ordering engine: the full trim/peer-recovery-capable
    /// [`Replica`](multiring_paxos::replica::Replica) for Multi-Ring
    /// Paxos, the engine-generic [`EngineReplica`](mrp_amcast::EngineReplica)
    /// otherwise — both checkpointing per `policy`. Every replica also
    /// gets a restart factory, so `cluster.schedule_crash` /
    /// `schedule_restart` recover it from its stable storage (latest
    /// durable checkpoint + acceptor logs). `mk_app` builds (and may
    /// preload) a replica's application from its partition number; it
    /// runs again on every restart to rebuild the pre-checkpoint state.
    pub fn spawn_replicas(
        &self,
        cluster: &mut Cluster,
        policy: CheckpointPolicy,
        mk_app: impl Fn(u16) -> StoreApp + Clone + 'static,
    ) {
        cluster.set_protocol(self.config.clone());
        for (p, partition) in self.all_replicas() {
            let mk = mk_app.clone();
            cluster.add_recoverable_replica_actor(
                self.engine,
                p,
                self.config.clone(),
                policy,
                move || mk(partition),
            );
        }
    }

    /// Every replica process with its partition.
    pub fn all_replicas(&self) -> Vec<(ProcessId, u16)> {
        self.replicas
            .iter()
            .flat_map(|(&part, ms)| ms.iter().map(move |&p| (p, part)))
            .collect()
    }

    /// The group set γ a command must be multicast to: the owning
    /// partition group for single-key commands; for scans (the
    /// multi-partition commands), exactly the covering partition groups
    /// when the engine orders multi-group messages genuinely, otherwise
    /// the global group if present, otherwise every covering partition
    /// group as independent (unordered) per-group requests.
    pub fn route(&self, cmd: &crate::command::StoreCommand) -> Vec<GroupId> {
        use crate::command::StoreCommand as C;
        match cmd {
            C::Read { key } | C::Update { key, .. } | C::Insert { key, .. } | C::Delete { key } => {
                vec![self.partition_map.group_of(key)]
            }
            C::Scan { from, to, .. } => {
                if self.engine.genuine() {
                    self.partition_map.groups_for_range(from, to)
                } else {
                    match self.global_group {
                        Some(g) => vec![g],
                        None => self.partition_map.groups_for_range(from, to),
                    }
                }
            }
            C::Batch(cmds) => {
                // A batch is routed by its first command; the client
                // builder only groups commands of one partition.
                cmds.first().map(|c| self.route(c)).unwrap_or_default()
            }
        }
    }

    /// Whether [`route`](Self::route)'s group set travels as *one*
    /// atomic multicast (the engine orders it as a single message
    /// across the set) instead of one independent request per group.
    /// Single-group sets are trivially atomic; larger sets require a
    /// genuine engine — with the ring engine a deployment expresses
    /// cross-partition ordering through its global ring, which `route`
    /// already collapsed to a single group.
    pub fn atomic_multicast(&self, groups: &[GroupId]) -> bool {
        groups.len() <= 1 || self.engine.genuine()
    }

    /// How many distinct partition responses a command needs before the
    /// client can complete it.
    pub fn responses_needed(&self, cmd: &crate::command::StoreCommand) -> usize {
        use crate::command::StoreCommand as C;
        match cmd {
            C::Scan { from, to, .. } => {
                if self.engine.genuine() || self.global_group.is_none() {
                    self.partition_map.groups_for_range(from, to).len()
                } else {
                    // Ordered through the global ring: every partition's
                    // replicas deliver and answer.
                    usize::from(self.partition_map.partitions())
                }
            }
            _ => 1,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::command::StoreCommand;
    use bytes::Bytes;

    fn quiet() -> RingTuning {
        RingTuning {
            lambda: 0,
            ..RingTuning::default()
        }
    }

    #[test]
    fn builds_rings_and_global_ring() {
        let d = StoreDeployment::build(&StoreTopology::local(3, quiet()));
        assert_eq!(d.config.rings().len(), 4);
        assert_eq!(d.global_group, Some(GroupId::new(3)));
        // 9 replicas, each subscribing to its partition and the global
        // group.
        assert_eq!(d.all_replicas().len(), 9);
        let p0 = ProcessId::new(0);
        assert_eq!(
            d.config.subscriptions_of(p0),
            vec![GroupId::new(0), GroupId::new(3)]
        );
        // Partitions are separate partitions-in-the-recovery-sense too.
        assert_eq!(d.config.partition_of(p0).len(), 3);
    }

    #[test]
    fn independent_rings_have_no_global_group() {
        let d = StoreDeployment::build(&StoreTopology::independent(3, quiet()));
        assert_eq!(d.config.rings().len(), 3);
        assert_eq!(d.global_group, None);
    }

    #[test]
    fn routing_single_key_and_scan() {
        // Pin the engine so the assertions hold regardless of MRP_ENGINE.
        let d =
            StoreDeployment::build(&StoreTopology::local(3, quiet()).engine(EngineKind::MultiRing));
        let read = StoreCommand::Read {
            key: Bytes::from_static(b"alpha"),
        };
        let groups = d.route(&read);
        assert_eq!(groups.len(), 1);
        assert!(groups[0].value() < 3);
        assert_eq!(d.responses_needed(&read), 1);

        let scan = StoreCommand::Scan {
            from: Bytes::from_static(b"a"),
            to: Bytes::from_static(b"z"),
            limit: 10,
        };
        assert_eq!(d.route(&scan), vec![GroupId::new(3)]);
        assert_eq!(d.responses_needed(&scan), 3);
        assert!(d.atomic_multicast(&d.route(&scan)));

        let indep = StoreDeployment::build(
            &StoreTopology::independent(3, quiet()).engine(EngineKind::MultiRing),
        );
        assert_eq!(indep.route(&scan).len(), 3);
        assert_eq!(indep.responses_needed(&scan), 3);
        // Ring engine without a global ring: independent per-group
        // requests, no cross-partition ordering.
        assert!(!indep.atomic_multicast(&indep.route(&scan)));
    }

    /// With a genuine engine, scans address exactly the involved
    /// partition groups as one atomic multicast — no global ring needed.
    #[test]
    fn genuine_engine_routes_scans_to_involved_partitions() {
        let topo = StoreTopology::independent(3, quiet()).engine(EngineKind::Wbcast);
        let d = StoreDeployment::build(&topo);
        assert_eq!(d.global_group, None);
        let scan = StoreCommand::Scan {
            from: Bytes::from_static(b"a"),
            to: Bytes::from_static(b"z"),
            limit: 10,
        };
        let groups = d.route(&scan);
        assert_eq!(groups.len(), 3, "every covering partition is addressed");
        assert!(d.atomic_multicast(&groups), "one multicast, not a fan-out");
        assert_eq!(d.responses_needed(&scan), 3);

        // Even with a global ring configured, the genuine engine
        // bypasses it and addresses the involved partitions directly.
        let topo = StoreTopology::local(3, quiet()).engine(EngineKind::Wbcast);
        let d = StoreDeployment::build(&topo);
        let groups = d.route(&scan);
        assert_eq!(groups.len(), 3);
        assert!(!groups.contains(&d.global_group.unwrap()));
        assert!(d.atomic_multicast(&groups));
    }
}
