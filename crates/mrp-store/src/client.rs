//! The MRP-Store client: closed-loop sessions ("client threads" in the
//! paper), command routing via the partition map, per-partition batching
//! up to 32 KB, scan fan-in (one response per partition), and
//! read-modify-write chaining for YCSB workload F.

use crate::app::StoreApp;
use crate::command::StoreCommand;
use crate::setup::StoreDeployment;
use bytes::Bytes;
use mrp_sim::actor::{Actor, ActorCtx, ActorEvent, Outbox};
use mrp_sim::rng::Rng;
use multiring_paxos::event::Message;
use multiring_paxos::types::{ClientId, GroupId, ProcessId, Time};
use std::any::Any;
use std::collections::{BTreeMap, BTreeSet};

/// One logical operation issued by a session.
#[derive(Clone, Debug)]
pub enum ClientOp {
    /// A single store command, tagged for metrics (`"read"`,
    /// `"update"`, `"scan"`, …).
    Single {
        /// The command.
        cmd: StoreCommand,
        /// Metrics tag.
        tag: &'static str,
    },
    /// YCSB workload F's read-modify-write: read `key`, then update it
    /// with `value`; latencies are recorded for the update part and the
    /// composite.
    ReadModifyWrite {
        /// Key.
        key: Bytes,
        /// New value written after the read.
        value: Bytes,
    },
}

/// Generates the next operation of a session.
pub trait OpSource: 'static {
    /// Produces the next operation.
    fn next_op(&mut self, rng: &mut Rng) -> ClientOp;
}

impl<F: FnMut(&mut Rng) -> ClientOp + 'static> OpSource for F {
    fn next_op(&mut self, rng: &mut Rng) -> ClientOp {
        self(rng)
    }
}

/// Client-side batching configuration (Section 7.2: batches per
/// partition up to 32 KB).
#[derive(Copy, Clone, Debug)]
pub struct ClientBatching {
    /// Flush a partition's batch at this many encoded bytes.
    pub max_bytes: usize,
    /// Flush at the latest after this many microseconds.
    pub linger_us: u64,
}

impl Default for ClientBatching {
    fn default() -> Self {
        Self {
            max_bytes: 32 * 1024,
            linger_us: 1_000,
        }
    }
}

/// Configuration of a [`StoreClient`].
#[derive(Clone, Debug)]
pub struct StoreClientConfig {
    /// This client's session id space.
    pub client: ClientId,
    /// Number of closed-loop sessions (the paper's "client threads").
    pub sessions: u32,
    /// Optional per-group proposer override (e.g. the region-local
    /// proposer in the geo experiment).
    pub proposer_override: BTreeMap<GroupId, ProcessId>,
    /// Optional batching.
    pub batch: Option<ClientBatching>,
    /// Samples before this instant are not recorded (warm-up).
    pub warmup_until: Time,
    /// Metrics name prefix.
    pub metric_prefix: String,
}

impl StoreClientConfig {
    /// A reasonable default configuration for `client` with `sessions`
    /// closed-loop sessions.
    pub fn new(client: ClientId, sessions: u32) -> Self {
        Self {
            client,
            sessions,
            proposer_override: BTreeMap::new(),
            batch: None,
            warmup_until: Time::ZERO,
            metric_prefix: "store".to_string(),
        }
    }
}

/// Aggregated client counters (also available through the shared
/// metrics registry).
#[derive(Clone, Copy, Default, Debug)]
pub struct StoreClientStats {
    /// Operations completed (after warm-up).
    pub ops: u64,
    /// Operations completed including warm-up.
    pub ops_total: u64,
}

#[derive(Clone, Debug)]
enum RmwStage {
    /// The read half completed next; the update must follow.
    AfterRead {
        key: Bytes,
        value: Bytes,
        started: Time,
    },
    /// This is the final (update) half; record the composite latency
    /// from `started`.
    Final { started: Time },
}

#[derive(Debug)]
struct BatchItem {
    session: u32,
    tag: &'static str,
    issued_at: Time,
    rmw: Option<RmwStage>,
}

#[derive(Debug)]
enum Outstanding {
    Op {
        session: u32,
        tag: &'static str,
        issued_at: Time,
        need: usize,
        parts: BTreeSet<u16>,
        rmw: Option<RmwStage>,
    },
    Batch {
        items: Vec<BatchItem>,
    },
}

#[derive(Default, Debug)]
struct PendingBatch {
    cmds: Vec<StoreCommand>,
    items: Vec<BatchItem>,
    bytes: usize,
    linger_armed: bool,
}

/// The closed-loop MRP-Store client actor for the simulator.
pub struct StoreClient {
    cfg: StoreClientConfig,
    deployment: StoreDeployment,
    source: Box<dyn OpSource>,
    next_request: u64,
    outstanding: BTreeMap<u64, Outstanding>,
    batches: BTreeMap<GroupId, PendingBatch>,
    stats: StoreClientStats,
}

impl std::fmt::Debug for StoreClient {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("StoreClient")
            .field("client", &self.cfg.client)
            .field("sessions", &self.cfg.sessions)
            .field("outstanding", &self.outstanding.len())
            .finish_non_exhaustive()
    }
}

impl StoreClient {
    /// Creates a client over `deployment` issuing ops from `source`.
    pub fn new(cfg: StoreClientConfig, deployment: StoreDeployment, source: impl OpSource) -> Self {
        Self {
            cfg,
            deployment,
            source: Box::new(source),
            next_request: 0,
            outstanding: BTreeMap::new(),
            batches: BTreeMap::new(),
            stats: StoreClientStats::default(),
        }
    }

    /// Aggregated counters.
    pub fn stats(&self) -> StoreClientStats {
        self.stats
    }

    fn proposer_for(&self, group: GroupId) -> Option<ProcessId> {
        self.cfg
            .proposer_override
            .get(&group)
            .or_else(|| self.deployment.proposer_of.get(&group))
            .copied()
    }

    fn issue_next(&mut self, session: u32, now: Time, out: &mut Outbox, rng: &mut Rng) {
        let op = self.source.next_op(rng);
        match op {
            ClientOp::Single { cmd, tag } => self.dispatch(session, cmd, tag, None, now, out),
            ClientOp::ReadModifyWrite { key, value } => {
                let cmd = StoreCommand::Read { key: key.clone() };
                self.dispatch(
                    session,
                    cmd,
                    "rmw_read",
                    Some(RmwStage::AfterRead {
                        key,
                        value,
                        started: now,
                    }),
                    now,
                    out,
                );
            }
        }
    }

    fn dispatch(
        &mut self,
        session: u32,
        cmd: StoreCommand,
        tag: &'static str,
        rmw: Option<RmwStage>,
        now: Time,
        out: &mut Outbox,
    ) {
        let is_scan = matches!(cmd, StoreCommand::Scan { .. });
        if let (Some(batch), false) = (self.cfg.batch, is_scan) {
            let groups = self.deployment.route(&cmd);
            let group = groups[0];
            let entry = self.batches.entry(group).or_default();
            entry.bytes += cmd.encoded_len();
            entry.cmds.push(cmd);
            entry.items.push(BatchItem {
                session,
                tag,
                issued_at: now,
                rmw,
            });
            if entry.bytes >= batch.max_bytes {
                self.flush_batch(group, out);
            } else if !entry.linger_armed {
                entry.linger_armed = true;
                out.wakeup(batch.linger_us, u64::from(group.value()));
            }
            return;
        }
        let groups = self.deployment.route(&cmd);
        let need = self.deployment.responses_needed(&cmd);
        self.next_request += 1;
        let request = self.next_request;
        self.outstanding.insert(
            request,
            Outstanding::Op {
                session,
                tag,
                issued_at: now,
                need,
                parts: BTreeSet::new(),
                rmw,
            },
        );
        let payload = cmd.encode();
        if self.deployment.atomic_multicast(&groups) {
            // One multicast addressed to the whole group set: the
            // engine orders the command consistently across every
            // involved partition (genuinely, or via the global ring
            // `route` collapsed the set to).
            if let Some(proposer) = groups.first().and_then(|&g| self.proposer_for(g)) {
                out.send(
                    proposer,
                    Message::Request {
                        client: self.cfg.client,
                        request,
                        groups,
                        payload,
                    },
                );
            }
        } else {
            // Independent rings without cross-partition ordering
            // (Figure 4's "independent" configuration): one unordered
            // request per covering partition.
            for g in groups {
                if let Some(proposer) = self.proposer_for(g) {
                    out.send(
                        proposer,
                        Message::Request {
                            client: self.cfg.client,
                            request,
                            groups: vec![g],
                            payload: payload.clone(),
                        },
                    );
                }
            }
        }
    }

    fn flush_batch(&mut self, group: GroupId, out: &mut Outbox) {
        let Some(mut batch) = self.batches.remove(&group) else {
            return;
        };
        if batch.cmds.is_empty() {
            return;
        }
        batch.linger_armed = false;
        self.next_request += 1;
        let request = self.next_request;
        let cmd = if batch.cmds.len() == 1 {
            batch.cmds.pop().expect("len checked")
        } else {
            StoreCommand::Batch(std::mem::take(&mut batch.cmds))
        };
        let single = batch.items.len() == 1;
        if single {
            let item = batch.items.pop().expect("len checked");
            self.outstanding.insert(
                request,
                Outstanding::Op {
                    session: item.session,
                    tag: item.tag,
                    issued_at: item.issued_at,
                    need: 1,
                    parts: BTreeSet::new(),
                    rmw: item.rmw,
                },
            );
        } else {
            self.outstanding
                .insert(request, Outstanding::Batch { items: batch.items });
        }
        if let Some(proposer) = self.proposer_for(group) {
            out.send(
                proposer,
                Message::Request {
                    client: self.cfg.client,
                    request,
                    groups: vec![group],
                    payload: cmd.encode(),
                },
            );
        }
    }

    fn record(
        &mut self,
        tag: &'static str,
        issued_at: Time,
        now: Time,
        metrics: &mut mrp_sim::metrics::Metrics,
    ) {
        self.stats.ops_total += 1;
        if now < self.cfg.warmup_until {
            return;
        }
        self.stats.ops += 1;
        let latency = now.since(issued_at);
        let prefix = &self.cfg.metric_prefix;
        metrics.record(&format!("{prefix}/latency_us"), latency);
        metrics.record(&format!("{prefix}/latency_us/{tag}"), latency);
        metrics.incr(&format!("{prefix}/ops"), 1);
        metrics.series_add(&format!("{prefix}/ops"), now, 1.0);
    }

    /// Completes one logical item; returns the follow-up dispatch if it
    /// was the read half of a read-modify-write.
    #[allow(clippy::too_many_arguments)]
    fn complete_item(
        &mut self,
        session: u32,
        tag: &'static str,
        issued_at: Time,
        rmw: Option<RmwStage>,
        now: Time,
        out: &mut Outbox,
        ctx: &mut ActorCtx<'_>,
    ) {
        match rmw {
            Some(RmwStage::AfterRead {
                key,
                value,
                started,
            }) => {
                // Read half done: chain the update, which records both
                // the update and the composite latencies.
                self.dispatch(
                    session,
                    StoreCommand::Update { key, value },
                    "update",
                    Some(RmwStage::Final { started }),
                    now,
                    out,
                );
            }
            Some(RmwStage::Final { started }) => {
                self.record(tag, issued_at, now, ctx.metrics);
                self.record("rmw", started, now, ctx.metrics);
                self.issue_next(session, now, out, ctx.rng);
            }
            None => {
                self.record(tag, issued_at, now, ctx.metrics);
                self.issue_next(session, now, out, ctx.rng);
            }
        }
    }

    fn on_response(
        &mut self,
        request: u64,
        payload: &Bytes,
        now: Time,
        out: &mut Outbox,
        ctx: &mut ActorCtx<'_>,
    ) {
        let Some((partition, _response)) = StoreApp::unframe_response(payload) else {
            return;
        };
        let Some(outstanding) = self.outstanding.get_mut(&request) else {
            return; // duplicate replica response
        };
        match outstanding {
            Outstanding::Op { need, parts, .. } => {
                parts.insert(partition);
                if parts.len() < *need {
                    return;
                }
                let Some(Outstanding::Op {
                    session,
                    tag,
                    issued_at,
                    rmw,
                    ..
                }) = self.outstanding.remove(&request)
                else {
                    unreachable!("matched above");
                };
                self.complete_item(session, tag, issued_at, rmw, now, out, ctx);
            }
            Outstanding::Batch { .. } => {
                let Some(Outstanding::Batch { items }) = self.outstanding.remove(&request) else {
                    unreachable!("matched above");
                };
                for item in items {
                    self.complete_item(
                        item.session,
                        item.tag,
                        item.issued_at,
                        item.rmw,
                        now,
                        out,
                        ctx,
                    );
                }
            }
        }
    }
}

impl Actor for StoreClient {
    fn on_event(&mut self, now: Time, event: ActorEvent, out: &mut Outbox, ctx: &mut ActorCtx<'_>) {
        match event {
            ActorEvent::Start => {
                for session in 0..self.cfg.sessions {
                    self.issue_next(session, now, out, ctx.rng);
                }
            }
            ActorEvent::Message {
                msg: Message::Response {
                    request, payload, ..
                },
                ..
            } => {
                self.on_response(request, &payload, now, out, ctx);
            }
            ActorEvent::Wakeup(token) => {
                let group = GroupId::new(token as u16);
                if let Some(b) = self.batches.get_mut(&group) {
                    b.linger_armed = false;
                }
                self.flush_batch(group, out);
            }
            _ => {}
        }
    }

    fn as_any(&mut self) -> &mut dyn Any {
        self
    }
}
