//! The replicated application: executes delivered commands against the
//! in-memory tree and answers clients.

use crate::command::StoreCommand;
use crate::kv::KvStore;
use bytes::{BufMut, Bytes, BytesMut};
use multiring_paxos::app::{decode_command, Application, Delivery, Reply};

/// The MRP-Store state machine hosted by a
/// [`Replica`](multiring_paxos::replica::Replica).
///
/// Replies are tagged with the replica's partition id so clients can
/// collect "at least one response from every partition" for scans
/// (Section 7.2).
#[derive(Debug)]
pub struct StoreApp {
    partition: u16,
    kv: KvStore,
    executed: u64,
}

impl StoreApp {
    /// An empty store app for `partition`.
    pub fn new(partition: u16) -> Self {
        Self {
            partition,
            kv: KvStore::new(),
            executed: 0,
        }
    }

    /// Pre-loads an entry (database initialization before the run).
    pub fn load(&mut self, key: Bytes, value: Bytes) {
        self.kv.load(key, value);
    }

    /// The partition this replica serves.
    pub fn partition(&self) -> u16 {
        self.partition
    }

    /// Entries currently stored.
    pub fn len(&self) -> usize {
        self.kv.len()
    }

    /// Whether the store is empty.
    pub fn is_empty(&self) -> bool {
        self.kv.is_empty()
    }

    /// Commands executed.
    pub fn executed(&self) -> u64 {
        self.executed
    }

    /// Frames a reply payload: partition tag + encoded response.
    pub fn frame_response(partition: u16, response: &crate::command::StoreResponse) -> Bytes {
        let encoded = response.encode();
        let mut buf = BytesMut::with_capacity(2 + encoded.len());
        buf.put_u16_le(partition);
        buf.put_slice(&encoded);
        buf.freeze()
    }

    /// Splits a reply payload into partition tag + response.
    pub fn unframe_response(payload: &Bytes) -> Option<(u16, crate::command::StoreResponse)> {
        if payload.len() < 2 {
            return None;
        }
        let partition = u16::from_le_bytes([payload[0], payload[1]]);
        let mut rest = payload.slice(2..);
        let response = crate::command::StoreResponse::decode(&mut rest)?;
        Some((partition, response))
    }
}

impl Application for StoreApp {
    fn execute(&mut self, delivery: &Delivery) -> Vec<Reply> {
        let Some((client, request, cmd_bytes)) = decode_command(delivery.value.payload.clone())
        else {
            return Vec::new();
        };
        let mut buf = cmd_bytes;
        let Some(cmd) = StoreCommand::decode(&mut buf) else {
            return Vec::new();
        };
        self.executed += 1;
        let response = self.kv.apply(&cmd);
        vec![Reply {
            client,
            request,
            payload: Self::frame_response(self.partition, &response),
        }]
    }

    fn snapshot(&self) -> Bytes {
        self.kv.snapshot()
    }

    fn restore(&mut self, snapshot: &Bytes) {
        self.kv.restore(snapshot);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::command::StoreResponse;
    use multiring_paxos::app::encode_command;
    use multiring_paxos::types::{ClientId, GroupId, InstanceId, ProcessId, Value, ValueId};

    fn delivery(cmd: &StoreCommand) -> Delivery {
        let framed = encode_command(ClientId::new(5), 3, &cmd.encode());
        Delivery {
            group: GroupId::new(0),
            instance: InstanceId::new(1),
            value: Value::new(ValueId::new(ProcessId::new(1), 1), GroupId::new(0), framed),
        }
    }

    #[test]
    fn executes_and_tags_partition() {
        let mut app = StoreApp::new(2);
        let replies = app.execute(&delivery(&StoreCommand::Insert {
            key: Bytes::from_static(b"k"),
            value: Bytes::from_static(b"v"),
        }));
        assert_eq!(replies.len(), 1);
        assert_eq!(replies[0].client, ClientId::new(5));
        assert_eq!(replies[0].request, 3);
        let (partition, response) = StoreApp::unframe_response(&replies[0].payload).unwrap();
        assert_eq!(partition, 2);
        assert_eq!(response, StoreResponse::Ok);
        assert_eq!(app.executed(), 1);
        assert_eq!(app.len(), 1);
    }

    #[test]
    fn snapshot_restore_preserves_state() {
        let mut app = StoreApp::new(0);
        app.load(Bytes::from_static(b"a"), Bytes::from_static(b"1"));
        let snap = app.snapshot();
        let mut fresh = StoreApp::new(0);
        fresh.restore(&snap);
        let replies = fresh.execute(&delivery(&StoreCommand::Read {
            key: Bytes::from_static(b"a"),
        }));
        let (_, response) = StoreApp::unframe_response(&replies[0].payload).unwrap();
        assert_eq!(
            response,
            StoreResponse::Value(Some(Bytes::from_static(b"1")))
        );
    }

    #[test]
    fn garbage_payload_ignored() {
        let mut app = StoreApp::new(0);
        let d = Delivery {
            group: GroupId::new(0),
            instance: InstanceId::new(1),
            value: Value::new(
                ValueId::new(ProcessId::new(1), 1),
                GroupId::new(0),
                Bytes::from_static(b"junk"),
            ),
        };
        assert!(app.execute(&d).is_empty());
    }
}
