//! The in-memory tree every replica keeps (Section 7.2: "database
//! entries are stored in an in-memory tree at every replica").

use crate::command::{StoreCommand, StoreResponse};
use bytes::{Buf, BufMut, Bytes, BytesMut};
use std::collections::BTreeMap;

/// A deterministic, snapshot-able key-value tree.
#[derive(Clone, Default, Debug)]
pub struct KvStore {
    entries: BTreeMap<Bytes, Bytes>,
}

impl KvStore {
    /// An empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the store is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Direct insert (used for bulk loading).
    pub fn load(&mut self, key: Bytes, value: Bytes) {
        self.entries.insert(key, value);
    }

    /// Executes one command deterministically.
    pub fn apply(&mut self, cmd: &StoreCommand) -> StoreResponse {
        match cmd {
            StoreCommand::Read { key } => StoreResponse::Value(self.entries.get(key).cloned()),
            StoreCommand::Scan { from, to, limit } => {
                let mut out = Vec::new();
                for (k, v) in self.entries.range(from.clone()..=to.clone()) {
                    if *limit > 0 && out.len() as u32 >= *limit {
                        break;
                    }
                    out.push((k.clone(), v.clone()));
                }
                StoreResponse::Entries(out)
            }
            StoreCommand::Update { key, value } => {
                if let Some(v) = self.entries.get_mut(key) {
                    *v = value.clone();
                    StoreResponse::Ok
                } else {
                    StoreResponse::Miss
                }
            }
            StoreCommand::Insert { key, value } => {
                self.entries.insert(key.clone(), value.clone());
                StoreResponse::Ok
            }
            StoreCommand::Delete { key } => {
                if self.entries.remove(key).is_some() {
                    StoreResponse::Ok
                } else {
                    StoreResponse::Miss
                }
            }
            StoreCommand::Batch(cmds) => {
                StoreResponse::Batch(cmds.iter().map(|c| self.apply(c)).collect())
            }
        }
    }

    /// Serializes the whole tree (checkpointing).
    pub fn snapshot(&self) -> Bytes {
        let mut buf = BytesMut::new();
        buf.put_u64_le(self.entries.len() as u64);
        for (k, v) in &self.entries {
            buf.put_u32_le(k.len() as u32);
            buf.put_slice(k);
            buf.put_u32_le(v.len() as u32);
            buf.put_slice(v);
        }
        buf.freeze()
    }

    /// Replaces the tree from a snapshot; silently ignores a malformed
    /// tail (snapshots are always produced by [`KvStore::snapshot`]).
    pub fn restore(&mut self, snapshot: &Bytes) {
        self.entries.clear();
        let mut buf = snapshot.clone();
        if buf.remaining() < 8 {
            return;
        }
        let n = buf.get_u64_le();
        for _ in 0..n {
            if buf.remaining() < 4 {
                return;
            }
            let kl = buf.get_u32_le() as usize;
            if buf.remaining() < kl {
                return;
            }
            let k = buf.copy_to_bytes(kl);
            if buf.remaining() < 4 {
                return;
            }
            let vl = buf.get_u32_le() as usize;
            if buf.remaining() < vl {
                return;
            }
            let v = buf.copy_to_bytes(vl);
            self.entries.insert(k, v);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn b(s: &str) -> Bytes {
        Bytes::from(s.to_string())
    }

    #[test]
    fn crud_semantics() {
        let mut kv = KvStore::new();
        assert_eq!(
            kv.apply(&StoreCommand::Read { key: b("x") }),
            StoreResponse::Value(None)
        );
        assert_eq!(
            kv.apply(&StoreCommand::Update {
                key: b("x"),
                value: b("1")
            }),
            StoreResponse::Miss,
            "update requires existence"
        );
        assert_eq!(
            kv.apply(&StoreCommand::Insert {
                key: b("x"),
                value: b("1")
            }),
            StoreResponse::Ok
        );
        assert_eq!(
            kv.apply(&StoreCommand::Update {
                key: b("x"),
                value: b("2")
            }),
            StoreResponse::Ok
        );
        assert_eq!(
            kv.apply(&StoreCommand::Read { key: b("x") }),
            StoreResponse::Value(Some(b("2")))
        );
        assert_eq!(
            kv.apply(&StoreCommand::Delete { key: b("x") }),
            StoreResponse::Ok
        );
        assert_eq!(
            kv.apply(&StoreCommand::Delete { key: b("x") }),
            StoreResponse::Miss
        );
    }

    #[test]
    fn scan_respects_range_and_limit() {
        let mut kv = KvStore::new();
        for k in ["a", "b", "c", "d", "e"] {
            kv.load(b(k), b(&format!("v{k}")));
        }
        let r = kv.apply(&StoreCommand::Scan {
            from: b("b"),
            to: b("d"),
            limit: 0,
        });
        match r {
            StoreResponse::Entries(es) => {
                let keys: Vec<&[u8]> = es.iter().map(|(k, _)| k.as_ref()).collect();
                assert_eq!(keys, vec![b"b", b"c", b"d"]);
            }
            other => panic!("unexpected {other:?}"),
        }
        let r = kv.apply(&StoreCommand::Scan {
            from: b("a"),
            to: b("z"),
            limit: 2,
        });
        assert!(matches!(r, StoreResponse::Entries(es) if es.len() == 2));
    }

    #[test]
    fn batch_executes_in_order() {
        let mut kv = KvStore::new();
        let r = kv.apply(&StoreCommand::Batch(vec![
            StoreCommand::Insert {
                key: b("k"),
                value: b("1"),
            },
            StoreCommand::Read { key: b("k") },
            StoreCommand::Delete { key: b("k") },
            StoreCommand::Read { key: b("k") },
        ]));
        assert_eq!(
            r,
            StoreResponse::Batch(vec![
                StoreResponse::Ok,
                StoreResponse::Value(Some(b("1"))),
                StoreResponse::Ok,
                StoreResponse::Value(None),
            ])
        );
    }

    #[test]
    fn snapshot_restore_roundtrip() {
        let mut kv = KvStore::new();
        for i in 0..100 {
            kv.load(b(&format!("key{i:03}")), b(&format!("val{i}")));
        }
        let snap = kv.snapshot();
        let mut fresh = KvStore::new();
        fresh.restore(&snap);
        assert_eq!(fresh.len(), 100);
        assert_eq!(
            fresh.apply(&StoreCommand::Read { key: b("key042") }),
            StoreResponse::Value(Some(b("val42")))
        );
    }

    #[test]
    fn restore_replaces_existing_state() {
        let mut a = KvStore::new();
        a.load(b("old"), b("x"));
        let mut b2 = KvStore::new();
        b2.load(b("new"), b("y"));
        a.restore(&b2.snapshot());
        assert_eq!(a.len(), 1);
        assert_eq!(
            a.apply(&StoreCommand::Read { key: b("old") }),
            StoreResponse::Value(None)
        );
    }
}
