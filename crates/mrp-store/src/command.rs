//! The MRP-Store command set (Table 1 of the paper) and its wire
//! encoding.

use bytes::{Buf, BufMut, Bytes, BytesMut};

/// One store operation (Table 1), plus client-side batches ("clients may
/// batch small commands, grouped by partition, up to 32 Kbytes").
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum StoreCommand {
    /// `read(k)`: return the value of entry `k`, if existent.
    Read {
        /// Key.
        key: Bytes,
    },
    /// `scan(k, k')`: return up to `limit` entries within `k..=k'`.
    Scan {
        /// Range start (inclusive).
        from: Bytes,
        /// Range end (inclusive).
        to: Bytes,
        /// Maximum entries returned per partition (0 = unlimited).
        limit: u32,
    },
    /// `update(k, v)`: update entry `k` with value `v`, if existent.
    Update {
        /// Key.
        key: Bytes,
        /// New value.
        value: Bytes,
    },
    /// `insert(k, v)`: insert `(k, v)` into the database.
    Insert {
        /// Key.
        key: Bytes,
        /// Value.
        value: Bytes,
    },
    /// `delete(k)`: delete entry `k`.
    Delete {
        /// Key.
        key: Bytes,
    },
    /// Several commands executed in order within one multicast.
    Batch(Vec<StoreCommand>),
}

/// The response to a [`StoreCommand`].
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum StoreResponse {
    /// Result of a read: the value, if present.
    Value(Option<Bytes>),
    /// Result of a scan over one partition.
    Entries(Vec<(Bytes, Bytes)>),
    /// The operation succeeded.
    Ok,
    /// `update` on a missing key or `insert` on an existing key.
    Miss,
    /// Responses of a batch, in command order.
    Batch(Vec<StoreResponse>),
}

const C_READ: u8 = 1;
const C_SCAN: u8 = 2;
const C_UPDATE: u8 = 3;
const C_INSERT: u8 = 4;
const C_DELETE: u8 = 5;
const C_BATCH: u8 = 6;

const R_VALUE_NONE: u8 = 1;
const R_VALUE_SOME: u8 = 2;
const R_ENTRIES: u8 = 3;
const R_OK: u8 = 4;
const R_MISS: u8 = 5;
const R_BATCH: u8 = 6;

fn put_bytes(buf: &mut BytesMut, b: &Bytes) {
    buf.put_u32_le(b.len() as u32);
    buf.put_slice(b);
}

fn get_bytes(buf: &mut Bytes) -> Option<Bytes> {
    if buf.remaining() < 4 {
        return None;
    }
    let n = buf.get_u32_le() as usize;
    (buf.remaining() >= n).then(|| buf.copy_to_bytes(n))
}

impl StoreCommand {
    /// Encodes the command.
    pub fn encode(&self) -> Bytes {
        let mut buf = BytesMut::with_capacity(self.encoded_len());
        self.encode_into(&mut buf);
        buf.freeze()
    }

    fn encode_into(&self, buf: &mut BytesMut) {
        match self {
            StoreCommand::Read { key } => {
                buf.put_u8(C_READ);
                put_bytes(buf, key);
            }
            StoreCommand::Scan { from, to, limit } => {
                buf.put_u8(C_SCAN);
                put_bytes(buf, from);
                put_bytes(buf, to);
                buf.put_u32_le(*limit);
            }
            StoreCommand::Update { key, value } => {
                buf.put_u8(C_UPDATE);
                put_bytes(buf, key);
                put_bytes(buf, value);
            }
            StoreCommand::Insert { key, value } => {
                buf.put_u8(C_INSERT);
                put_bytes(buf, key);
                put_bytes(buf, value);
            }
            StoreCommand::Delete { key } => {
                buf.put_u8(C_DELETE);
                put_bytes(buf, key);
            }
            StoreCommand::Batch(cmds) => {
                buf.put_u8(C_BATCH);
                buf.put_u32_le(cmds.len() as u32);
                for c in cmds {
                    c.encode_into(buf);
                }
            }
        }
    }

    /// Size of the encoding (used for the client's 32 KB batch cap).
    pub fn encoded_len(&self) -> usize {
        match self {
            StoreCommand::Read { key } | StoreCommand::Delete { key } => 1 + 4 + key.len(),
            StoreCommand::Scan { from, to, .. } => 1 + 4 + from.len() + 4 + to.len() + 4,
            StoreCommand::Update { key, value } | StoreCommand::Insert { key, value } => {
                1 + 4 + key.len() + 4 + value.len()
            }
            StoreCommand::Batch(cmds) => {
                1 + 4 + cmds.iter().map(StoreCommand::encoded_len).sum::<usize>()
            }
        }
    }

    /// Decodes a command; `None` on malformed input.
    pub fn decode(buf: &mut Bytes) -> Option<StoreCommand> {
        if buf.remaining() < 1 {
            return None;
        }
        match buf.get_u8() {
            C_READ => Some(StoreCommand::Read {
                key: get_bytes(buf)?,
            }),
            C_SCAN => {
                let from = get_bytes(buf)?;
                let to = get_bytes(buf)?;
                if buf.remaining() < 4 {
                    return None;
                }
                let limit = buf.get_u32_le();
                Some(StoreCommand::Scan { from, to, limit })
            }
            C_UPDATE => Some(StoreCommand::Update {
                key: get_bytes(buf)?,
                value: get_bytes(buf)?,
            }),
            C_INSERT => Some(StoreCommand::Insert {
                key: get_bytes(buf)?,
                value: get_bytes(buf)?,
            }),
            C_DELETE => Some(StoreCommand::Delete {
                key: get_bytes(buf)?,
            }),
            C_BATCH => {
                if buf.remaining() < 4 {
                    return None;
                }
                let n = buf.get_u32_le() as usize;
                let mut cmds = Vec::with_capacity(n.min(4096));
                for _ in 0..n {
                    cmds.push(StoreCommand::decode(buf)?);
                }
                Some(StoreCommand::Batch(cmds))
            }
            _ => None,
        }
    }
}

impl StoreResponse {
    /// Encodes the response.
    pub fn encode(&self) -> Bytes {
        let mut buf = BytesMut::new();
        self.encode_into(&mut buf);
        buf.freeze()
    }

    fn encode_into(&self, buf: &mut BytesMut) {
        match self {
            StoreResponse::Value(None) => buf.put_u8(R_VALUE_NONE),
            StoreResponse::Value(Some(v)) => {
                buf.put_u8(R_VALUE_SOME);
                put_bytes(buf, v);
            }
            StoreResponse::Entries(entries) => {
                buf.put_u8(R_ENTRIES);
                buf.put_u32_le(entries.len() as u32);
                for (k, v) in entries {
                    put_bytes(buf, k);
                    put_bytes(buf, v);
                }
            }
            StoreResponse::Ok => buf.put_u8(R_OK),
            StoreResponse::Miss => buf.put_u8(R_MISS),
            StoreResponse::Batch(rs) => {
                buf.put_u8(R_BATCH);
                buf.put_u32_le(rs.len() as u32);
                for r in rs {
                    r.encode_into(buf);
                }
            }
        }
    }

    /// Decodes a response; `None` on malformed input.
    pub fn decode(buf: &mut Bytes) -> Option<StoreResponse> {
        if buf.remaining() < 1 {
            return None;
        }
        match buf.get_u8() {
            R_VALUE_NONE => Some(StoreResponse::Value(None)),
            R_VALUE_SOME => Some(StoreResponse::Value(Some(get_bytes(buf)?))),
            R_ENTRIES => {
                if buf.remaining() < 4 {
                    return None;
                }
                let n = buf.get_u32_le() as usize;
                let mut entries = Vec::with_capacity(n.min(4096));
                for _ in 0..n {
                    let k = get_bytes(buf)?;
                    let v = get_bytes(buf)?;
                    entries.push((k, v));
                }
                Some(StoreResponse::Entries(entries))
            }
            R_OK => Some(StoreResponse::Ok),
            R_MISS => Some(StoreResponse::Miss),
            R_BATCH => {
                if buf.remaining() < 4 {
                    return None;
                }
                let n = buf.get_u32_le() as usize;
                let mut rs = Vec::with_capacity(n.min(4096));
                for _ in 0..n {
                    rs.push(StoreResponse::decode(buf)?);
                }
                Some(StoreResponse::Batch(rs))
            }
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip_cmd(cmd: StoreCommand) {
        let mut encoded = cmd.encode();
        assert_eq!(encoded.len(), cmd.encoded_len());
        let back = StoreCommand::decode(&mut encoded).unwrap();
        assert_eq!(back, cmd);
        assert_eq!(encoded.remaining(), 0);
    }

    #[test]
    fn command_roundtrips() {
        roundtrip_cmd(StoreCommand::Read {
            key: Bytes::from_static(b"k1"),
        });
        roundtrip_cmd(StoreCommand::Scan {
            from: Bytes::from_static(b"a"),
            to: Bytes::from_static(b"z"),
            limit: 10,
        });
        roundtrip_cmd(StoreCommand::Update {
            key: Bytes::from_static(b"k"),
            value: Bytes::from_static(b"v"),
        });
        roundtrip_cmd(StoreCommand::Insert {
            key: Bytes::from_static(b"k"),
            value: Bytes::from(vec![0u8; 1024]),
        });
        roundtrip_cmd(StoreCommand::Delete {
            key: Bytes::from_static(b"k"),
        });
        roundtrip_cmd(StoreCommand::Batch(vec![
            StoreCommand::Read {
                key: Bytes::from_static(b"a"),
            },
            StoreCommand::Delete {
                key: Bytes::from_static(b"b"),
            },
        ]));
    }

    #[test]
    fn response_roundtrips() {
        for r in [
            StoreResponse::Value(None),
            StoreResponse::Value(Some(Bytes::from_static(b"v"))),
            StoreResponse::Entries(vec![(Bytes::from_static(b"k"), Bytes::from_static(b"v"))]),
            StoreResponse::Ok,
            StoreResponse::Miss,
            StoreResponse::Batch(vec![StoreResponse::Ok, StoreResponse::Miss]),
        ] {
            let mut encoded = r.encode();
            assert_eq!(StoreResponse::decode(&mut encoded).unwrap(), r);
        }
    }

    #[test]
    fn malformed_input_rejected() {
        let mut empty = Bytes::new();
        assert!(StoreCommand::decode(&mut empty).is_none());
        let mut bad_tag = Bytes::from_static(&[99]);
        assert!(StoreCommand::decode(&mut bad_tag).is_none());
        let mut truncated = Bytes::from_static(&[C_READ, 10, 0, 0, 0, 1]);
        assert!(StoreCommand::decode(&mut truncated).is_none());
    }
}
