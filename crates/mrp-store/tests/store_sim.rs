//! End-to-end MRP-Store tests on the deterministic simulator.

use bytes::Bytes;
use mrp_sim::actor::Hosted;
use mrp_sim::cluster::{Cluster, SimConfig};
use mrp_sim::net::Topology;
use mrp_sim::rng::Rng;
use mrp_store::client::{ClientOp, StoreClient, StoreClientConfig};
use mrp_store::command::StoreCommand;
use mrp_store::{StoreApp, StoreDeployment, StoreTopology};
use multiring_paxos::app::Application;
use multiring_paxos::config::RingTuning;
use multiring_paxos::replica::{CheckpointPolicy, Replica};
use multiring_paxos::types::{ClientId, ProcessId, Time};

fn tuning() -> RingTuning {
    RingTuning {
        lambda: 2_000,
        delta_us: 5_000,
        ..RingTuning::default()
    }
}

fn spawn_store(cluster: &mut Cluster, deployment: &StoreDeployment, preload: u32) {
    let map = deployment.partition_map.clone();
    deployment.spawn_replicas(
        cluster,
        CheckpointPolicy {
            interval_us: 0,
            sync: true,
        },
        move |partition| {
            let mut app = StoreApp::new(partition);
            for i in 0..preload {
                let key = format!("user{i:06}");
                if map.group_of(key.as_bytes()).value() == partition {
                    app.load(Bytes::from(key), Bytes::from(vec![7u8; 64]));
                }
            }
            app
        },
    );
}

#[test]
fn mixed_workload_completes_operations() {
    let deployment = StoreDeployment::build(
        &StoreTopology::local(3, tuning()).engine(mrp_amcast::EngineKind::MultiRing),
    );
    let mut cluster = Cluster::new(
        SimConfig {
            seed: 11,
            ..SimConfig::default()
        },
        Topology::lan(16),
    );
    spawn_store(&mut cluster, &deployment, 200);

    let client_proc = ProcessId::new(900);
    let client_id = ClientId::new(1);
    let mut op_rng = Rng::new(99);
    let gen = move |_r: &mut Rng| {
        let k = op_rng.below(200);
        let key = Bytes::from(format!("user{k:06}"));
        match op_rng.below(5) {
            0 => ClientOp::Single {
                cmd: StoreCommand::Read { key },
                tag: "read",
            },
            1 => ClientOp::Single {
                cmd: StoreCommand::Update {
                    key,
                    value: Bytes::from(vec![1u8; 64]),
                },
                tag: "update",
            },
            2 => ClientOp::Single {
                cmd: StoreCommand::Insert {
                    key,
                    value: Bytes::from(vec![2u8; 64]),
                },
                tag: "insert",
            },
            3 => ClientOp::Single {
                cmd: StoreCommand::Scan {
                    from: key.clone(),
                    to: Bytes::from(format!("user{:06}", k + 20)),
                    limit: 20,
                },
                tag: "scan",
            },
            _ => ClientOp::ReadModifyWrite {
                key,
                value: Bytes::from(vec![3u8; 64]),
            },
        }
    };
    let client = StoreClient::new(
        StoreClientConfig::new(client_id, 8),
        deployment.clone(),
        gen,
    );
    cluster.add_actor(client_proc, Box::new(client));
    cluster.register_client(client_id, client_proc);
    cluster.start();
    cluster.run_until(Time::from_secs(10));

    let ops = cluster.metrics().counter("store/ops");
    assert!(ops > 100, "expected progress, got {ops} ops");
    // Scans and RMWs completed too.
    assert!(cluster
        .metrics()
        .histogram("store/latency_us/scan")
        .is_some_and(|h| h.count() > 0));
    assert!(cluster
        .metrics()
        .histogram("store/latency_us/rmw")
        .is_some_and(|h| h.count() > 0));
}

#[test]
fn replicas_of_a_partition_converge() {
    type StoreReplica = Hosted<Replica<StoreApp>>;
    let deployment = StoreDeployment::build(
        &StoreTopology::local(2, tuning()).engine(mrp_amcast::EngineKind::MultiRing),
    );
    let mut cluster = Cluster::new(
        SimConfig {
            seed: 5,
            ..SimConfig::default()
        },
        Topology::lan(16),
    );
    spawn_store(&mut cluster, &deployment, 0);

    let client_proc = ProcessId::new(900);
    let client_id = ClientId::new(1);
    let mut n = 0u64;
    let gen = move |_r: &mut Rng| {
        n += 1;
        ClientOp::Single {
            cmd: StoreCommand::Insert {
                key: Bytes::from(format!("key{:04}", n % 50)),
                value: Bytes::from(format!("v{n}")),
            },
            tag: "insert",
        }
    };
    let client = StoreClient::new(
        StoreClientConfig::new(client_id, 4),
        deployment.clone(),
        gen,
    );
    cluster.add_actor(client_proc, Box::new(client));
    cluster.register_client(client_id, client_proc);
    cluster.start();
    cluster.run_until(Time::from_secs(5));

    // Every replica of each partition holds the same entries.
    for (&partition, members) in &deployment.replicas.clone() {
        let mut snapshots = Vec::new();
        for &p in members {
            let replica = cluster
                .actor_as::<StoreReplica>(p)
                .expect("replica present");
            assert_eq!(replica.inner().app().partition(), partition);
            snapshots.push(replica.inner().app().snapshot());
        }
        for pair in snapshots.windows(2) {
            assert_eq!(
                pair[0], pair[1],
                "replicas of partition {partition} diverge"
            );
        }
    }
    assert!(cluster.metrics().counter("store/ops") > 50);
}

#[test]
fn batching_reduces_requests_but_completes_all_ops() {
    let deployment = StoreDeployment::build(
        &StoreTopology::local(2, tuning()).engine(mrp_amcast::EngineKind::MultiRing),
    );
    let mut cluster = Cluster::new(
        SimConfig {
            seed: 8,
            ..SimConfig::default()
        },
        Topology::lan(16),
    );
    spawn_store(&mut cluster, &deployment, 100);

    let client_proc = ProcessId::new(900);
    let client_id = ClientId::new(1);
    let mut k = 0u64;
    let gen = move |_r: &mut Rng| {
        k += 1;
        ClientOp::Single {
            cmd: StoreCommand::Update {
                key: Bytes::from(format!("user{:06}", k % 100)),
                value: Bytes::from(vec![9u8; 256]),
            },
            tag: "update",
        }
    };
    let mut cfg = StoreClientConfig::new(client_id, 32);
    cfg.batch = Some(mrp_store::client::ClientBatching {
        max_bytes: 4096,
        linger_us: 500,
    });
    let client = StoreClient::new(cfg, deployment.clone(), gen);
    cluster.add_actor(client_proc, Box::new(client));
    cluster.register_client(client_id, client_proc);
    cluster.start();
    cluster.run_until(Time::from_secs(5));
    let ops = cluster.metrics().counter("store/ops");
    assert!(ops > 200, "batched updates progressed: {ops}");
}

#[test]
fn wbcast_engine_serves_store_and_replicas_converge() {
    type WbReplica = Hosted<mrp_amcast::EngineReplica<StoreApp>>;
    // The identical insert workload, ordered by the timestamp-based
    // engine selected purely from deployment configuration.
    let deployment = StoreDeployment::build(
        &StoreTopology::local(2, tuning()).engine(mrp_amcast::EngineKind::Wbcast),
    );
    let mut cluster = Cluster::new(
        SimConfig {
            seed: 6,
            ..SimConfig::default()
        },
        Topology::lan(16),
    );
    spawn_store(&mut cluster, &deployment, 0);

    let client_proc = ProcessId::new(900);
    let client_id = ClientId::new(1);
    let mut n = 0u64;
    let gen = move |_r: &mut Rng| {
        n += 1;
        ClientOp::Single {
            cmd: StoreCommand::Insert {
                key: Bytes::from(format!("key{:04}", n % 50)),
                value: Bytes::from(format!("v{n}")),
            },
            tag: "insert",
        }
    };
    let client = StoreClient::new(
        StoreClientConfig::new(client_id, 4),
        deployment.clone(),
        gen,
    );
    cluster.add_actor(client_proc, Box::new(client));
    cluster.register_client(client_id, client_proc);
    cluster.start();
    // Stop the workload at 5 s, then let in-flight commands drain:
    // wbcast subscribers may trail each other by up to one heartbeat
    // interval, so state is only comparable at quiescence.
    cluster.schedule_crash(Time::from_secs(5), client_proc);
    cluster.run_until(Time::from_secs(6));

    // Every replica of each partition holds the same entries.
    for (&partition, members) in &deployment.replicas.clone() {
        let mut snapshots = Vec::new();
        for &p in members {
            let replica = cluster
                .actor_as::<WbReplica>(p)
                .expect("wbcast replica present");
            assert_eq!(replica.inner().app().partition(), partition);
            snapshots.push(replica.inner().app().snapshot());
        }
        for pair in snapshots.windows(2) {
            assert_eq!(
                pair[0], pair[1],
                "wbcast replicas of partition {partition} diverge"
            );
        }
    }
    assert!(cluster.metrics().counter("store/ops") > 50);
}

#[test]
fn wbcast_scans_need_no_global_ring() {
    type WbReplica = Hosted<mrp_amcast::EngineReplica<StoreApp>>;
    // The acceptance shape of genuine multi-group multicast: a store
    // with *no* global ring, ordered by the white-box engine. Scans —
    // the multi-partition commands — are multicast once to exactly the
    // covering partition groups and still complete with one response
    // per involved partition, consistently ordered against writes.
    let deployment = StoreDeployment::build(
        &StoreTopology::independent(3, tuning()).engine(mrp_amcast::EngineKind::Wbcast),
    );
    assert_eq!(deployment.global_group, None);
    let mut cluster = Cluster::new(
        SimConfig {
            seed: 13,
            ..SimConfig::default()
        },
        Topology::lan(16),
    );
    spawn_store(&mut cluster, &deployment, 200);

    let client_proc = ProcessId::new(900);
    let client_id = ClientId::new(1);
    let mut op_rng = Rng::new(4242);
    let gen = move |_r: &mut Rng| {
        let k = op_rng.below(200);
        let key = Bytes::from(format!("user{k:06}"));
        match op_rng.below(3) {
            0 => ClientOp::Single {
                cmd: StoreCommand::Scan {
                    from: key.clone(),
                    to: Bytes::from(format!("user{:06}", k + 30)),
                    limit: 30,
                },
                tag: "scan",
            },
            1 => ClientOp::Single {
                cmd: StoreCommand::Update {
                    key,
                    value: Bytes::from(vec![5u8; 64]),
                },
                tag: "update",
            },
            _ => ClientOp::Single {
                cmd: StoreCommand::Read { key },
                tag: "read",
            },
        }
    };
    let client = StoreClient::new(
        StoreClientConfig::new(client_id, 8),
        deployment.clone(),
        gen,
    );
    cluster.add_actor(client_proc, Box::new(client));
    cluster.register_client(client_id, client_proc);
    cluster.start();
    cluster.schedule_crash(Time::from_secs(8), client_proc);
    cluster.run_until(Time::from_secs(9));

    let scans = cluster
        .metrics()
        .histogram("store/latency_us/scan")
        .map_or(0, mrp_sim::Histogram::count);
    assert!(scans > 10, "cross-partition scans completed: {scans}");

    // Replicas of each partition converge despite the interleaved
    // multi-group scans (which every involved partition must order
    // identically against its writes).
    for (&partition, members) in &deployment.replicas.clone() {
        let mut snapshots = Vec::new();
        for &p in members {
            let replica = cluster
                .actor_as::<WbReplica>(p)
                .expect("wbcast replica present");
            snapshots.push(replica.inner().app().snapshot());
        }
        for pair in snapshots.windows(2) {
            assert_eq!(
                pair[0], pair[1],
                "wbcast replicas of partition {partition} diverge"
            );
        }
    }
}
