//! Stable storage for Multi-Ring Paxos processes.
//!
//! The paper's implementation persists acceptor state in Berkeley DB JE
//! and replica checkpoints as files. This crate provides the equivalent
//! substrate:
//!
//! * [`NodeStorage`] — the *logical* stable state of one process:
//!   per-ring acceptor logs (promises, votes, decisions, trim marks) and
//!   the latest replica checkpoint. It applies
//!   [`PersistRecord`](multiring_paxos::event::PersistRecord)s and
//!   reconstructs the [`AcceptorRecovery`](multiring_paxos::paxos::AcceptorRecovery)
//!   image a restarting process needs. The simulator keeps `NodeStorage`
//!   in memory (disk *timing* is simulated separately); the TCP runtime
//!   couples it with the write-ahead log below.
//! * [`Wal`] — a real, file-backed, segmented write-ahead log with
//!   optional `fsync` per append and prefix truncation, plus a
//!   [`DirStorage`] layer that persists `NodeStorage` contents across
//!   process restarts.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod node_storage;
pub mod wal;

pub use node_storage::{AcceptorLog, NodeStorage};
pub use wal::{DirStorage, Wal, WalError};
