//! The logical stable state of one process.

use bytes::Bytes;
use multiring_paxos::event::PersistRecord;
use multiring_paxos::paxos::AcceptorRecovery;
use multiring_paxos::recovery::CheckpointId;
use multiring_paxos::types::{Ballot, ConsensusValue, InstanceId, RingId};
use std::collections::BTreeMap;

/// Durable acceptor state for one ring: everything an acceptor must
/// reload to participate safely after a crash (Section 5.1: "before
/// responding ... an acceptor must log its response onto stable
/// storage").
#[derive(Clone, Default, Debug)]
pub struct AcceptorLog {
    promised: Ballot,
    promised_from: InstanceId,
    /// Votes keyed by first instance: `(count, ballot, value)`.
    votes: BTreeMap<InstanceId, (u32, Ballot, ConsensusValue)>,
    /// Decision markers observed on the ring.
    decided: BTreeMap<InstanceId, (u32, ConsensusValue)>,
    /// Decision markers whose value must be resolved from `votes` at
    /// recovery time (written by the tiny async `Decision` record).
    markers: BTreeMap<InstanceId, u32>,
    trimmed: InstanceId,
}

impl AcceptorLog {
    /// A fresh, empty log.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records a promise.
    pub fn promise(&mut self, ballot: Ballot, from: InstanceId) {
        if ballot > self.promised {
            self.promised = ballot;
            self.promised_from = from;
        }
    }

    /// Records a vote.
    pub fn vote(&mut self, ballot: Ballot, first: InstanceId, count: u32, value: ConsensusValue) {
        if ballot > self.promised {
            self.promised = ballot;
        }
        self.votes.insert(first, (count, ballot, value));
    }

    /// Records a decision (used to serve retransmissions after restart).
    pub fn decision(&mut self, first: InstanceId, count: u32, value: ConsensusValue) {
        if first > self.trimmed {
            self.decided.insert(first, (count, value));
        }
    }

    /// Records a value-less decision marker; the value is resolved from
    /// the logged vote at recovery time.
    pub fn decision_marker(&mut self, first: InstanceId, count: u32) {
        if first > self.trimmed {
            self.markers.insert(first, count);
        }
    }

    /// Deletes state up to `upto` (inclusive); ranges straddling the
    /// watermark are kept whole.
    pub fn trim(&mut self, upto: InstanceId) {
        if upto <= self.trimmed {
            return;
        }
        self.trimmed = upto;
        self.votes
            .retain(|&f, &mut (c, _, _)| f.plus(u64::from(c) - 1) > upto);
        self.decided
            .retain(|&f, &mut (c, _)| f.plus(u64::from(c) - 1) > upto);
        self.markers
            .retain(|&f, &mut c| f.plus(u64::from(c) - 1) > upto);
    }

    /// The trim watermark.
    pub fn trimmed(&self) -> InstanceId {
        self.trimmed
    }

    /// Number of vote records retained.
    pub fn vote_records(&self) -> usize {
        self.votes.len()
    }

    /// Approximate bytes retained (payloads only), for metrics.
    pub fn payload_bytes(&self) -> usize {
        self.votes
            .values()
            .map(|(_, _, v)| v.payload_bytes())
            .sum::<usize>()
            + self
                .decided
                .values()
                .map(|(_, v)| v.payload_bytes())
                .sum::<usize>()
    }

    /// Builds the recovery image for a restarting acceptor. Decision
    /// markers are resolved against the logged votes; markers whose vote
    /// was superseded or lost are dropped (the live ring will re-decide
    /// or retransmission falls back to another acceptor).
    pub fn recovery(&self) -> AcceptorRecovery {
        let mut decided: BTreeMap<InstanceId, (u32, ConsensusValue)> = self.decided.clone();
        for (&first, &count) in &self.markers {
            if let Some((vcount, _, value)) = self.votes.get(&first) {
                if *vcount == count {
                    decided.entry(first).or_insert((count, value.clone()));
                }
            }
        }
        AcceptorRecovery {
            promised: self.promised,
            accepted: self
                .votes
                .iter()
                .map(|(&f, &(c, b, ref v))| (f, c, b, v.clone()))
                .collect(),
            decided: decided.into_iter().map(|(f, (c, v))| (f, c, v)).collect(),
            trimmed: self.trimmed,
        }
    }
}

/// The complete stable state of one process: acceptor logs per ring plus
/// the most recent replica checkpoint.
///
/// The simulator keeps one `NodeStorage` per process across simulated
/// crashes; the TCP runtime persists it via [`crate::DirStorage`].
#[derive(Clone, Default, Debug)]
pub struct NodeStorage {
    logs: BTreeMap<RingId, AcceptorLog>,
    checkpoint: Option<(CheckpointId, Bytes)>,
}

impl NodeStorage {
    /// Empty storage (first boot).
    pub fn new() -> Self {
        Self::default()
    }

    /// Applies a persist record (called when the write becomes durable).
    pub fn apply(&mut self, record: &PersistRecord) {
        match record {
            PersistRecord::Promise { ring, ballot, from } => {
                self.logs.entry(*ring).or_default().promise(*ballot, *from);
            }
            PersistRecord::Vote {
                ring,
                ballot,
                first,
                count,
                value,
            } => {
                self.logs
                    .entry(*ring)
                    .or_default()
                    .vote(*ballot, *first, *count, value.clone());
            }
            PersistRecord::Checkpoint { id, snapshot } => {
                self.checkpoint = Some((id.clone(), snapshot.clone()));
            }
            PersistRecord::Decision { ring, first, count } => {
                self.logs
                    .entry(*ring)
                    .or_default()
                    .decision_marker(*first, *count);
            }
        }
    }

    /// Records a decision marker (cheap, written asynchronously by
    /// acceptors so restarts can serve retransmissions).
    pub fn decision(&mut self, ring: RingId, first: InstanceId, count: u32, value: ConsensusValue) {
        self.logs
            .entry(ring)
            .or_default()
            .decision(first, count, value);
    }

    /// Trims the acceptor log of `ring`.
    pub fn trim(&mut self, ring: RingId, upto: InstanceId) {
        if let Some(log) = self.logs.get_mut(&ring) {
            log.trim(upto);
        }
    }

    /// The acceptor log of `ring`, if any writes happened.
    pub fn log(&self, ring: RingId) -> Option<&AcceptorLog> {
        self.logs.get(&ring)
    }

    /// Builds the acceptor recovery images for every ring with a log.
    pub fn acceptor_recovery(&self) -> BTreeMap<RingId, AcceptorRecovery> {
        self.logs
            .iter()
            .map(|(&ring, log)| (ring, log.recovery()))
            .collect()
    }

    /// The latest durable checkpoint.
    pub fn checkpoint(&self) -> Option<&(CheckpointId, Bytes)> {
        self.checkpoint.as_ref()
    }

    /// Takes the latest durable checkpoint (cloning).
    pub fn checkpoint_cloned(&self) -> Option<(CheckpointId, Bytes)> {
        self.checkpoint.clone()
    }

    /// Wipes everything (simulates disk loss).
    pub fn wipe(&mut self) {
        self.logs.clear();
        self.checkpoint = None;
    }

    /// Total payload bytes retained across rings (metrics/trim tests).
    pub fn payload_bytes(&self) -> usize {
        self.logs.values().map(AcceptorLog::payload_bytes).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use multiring_paxos::types::{GroupId, ProcessId, Value, ValueId};

    fn b(n: u32) -> Ballot {
        Ballot::new(n, ProcessId::new(0))
    }

    fn i(n: u64) -> InstanceId {
        InstanceId::new(n)
    }

    fn cv(n: u64) -> ConsensusValue {
        ConsensusValue::Values(vec![Value::new(
            ValueId::new(ProcessId::new(1), n),
            GroupId::new(0),
            vec![0u8; 16],
        )])
    }

    #[test]
    fn apply_and_recover_roundtrip() {
        let mut s = NodeStorage::new();
        let ring = RingId::new(0);
        s.apply(&PersistRecord::Promise {
            ring,
            ballot: b(1),
            from: i(1),
        });
        s.apply(&PersistRecord::Vote {
            ring,
            ballot: b(1),
            first: i(1),
            count: 1,
            value: cv(1),
        });
        s.decision(ring, i(1), 1, cv(1));
        let rec = s.acceptor_recovery();
        let log = &rec[&ring];
        assert_eq!(log.promised, b(1));
        assert_eq!(log.accepted.len(), 1);
        assert_eq!(log.decided.len(), 1);
        assert_eq!(log.trimmed, InstanceId::ZERO);
    }

    #[test]
    fn checkpoint_replaces_previous() {
        let mut s = NodeStorage::new();
        let id1 = CheckpointId {
            marks: vec![(GroupId::new(0), i(1))],
            cursor_group: 0,
            cursor_used: 0,
        };
        let id2 = CheckpointId {
            marks: vec![(GroupId::new(0), i(5))],
            cursor_group: 0,
            cursor_used: 0,
        };
        s.apply(&PersistRecord::Checkpoint {
            id: id1,
            snapshot: Bytes::from_static(b"a"),
        });
        s.apply(&PersistRecord::Checkpoint {
            id: id2.clone(),
            snapshot: Bytes::from_static(b"b"),
        });
        let (id, snap) = s.checkpoint().unwrap();
        assert_eq!(*id, id2);
        assert_eq!(&snap[..], b"b");
    }

    #[test]
    fn trim_reclaims_space() {
        let mut s = NodeStorage::new();
        let ring = RingId::new(0);
        for n in 1..=10 {
            s.apply(&PersistRecord::Vote {
                ring,
                ballot: b(1),
                first: i(n),
                count: 1,
                value: cv(n),
            });
            s.decision(ring, i(n), 1, cv(n));
        }
        let before = s.payload_bytes();
        s.trim(ring, i(8));
        assert!(s.payload_bytes() < before / 2);
        let rec = s.acceptor_recovery();
        assert_eq!(rec[&ring].trimmed, i(8));
        assert_eq!(rec[&ring].accepted.len(), 2);
    }

    #[test]
    fn promise_keeps_highest_ballot() {
        let mut log = AcceptorLog::new();
        log.promise(b(5), i(1));
        log.promise(b(3), i(1));
        assert_eq!(log.recovery().promised, b(5));
        // A higher vote ballot also raises the promise.
        log.vote(b(7), i(1), 1, cv(1));
        assert_eq!(log.recovery().promised, b(7));
    }

    #[test]
    fn wipe_clears_everything() {
        let mut s = NodeStorage::new();
        s.apply(&PersistRecord::Vote {
            ring: RingId::new(0),
            ballot: b(1),
            first: i(1),
            count: 1,
            value: cv(1),
        });
        s.wipe();
        assert!(s.acceptor_recovery().is_empty());
        assert!(s.checkpoint().is_none());
    }
}
