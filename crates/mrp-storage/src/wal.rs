//! A real file-backed write-ahead log and the directory layout that
//! persists a process's [`NodeStorage`] across
//! restarts (the TCP runtime's equivalent of the paper's Berkeley DB).
//!
//! Layout of a storage directory:
//!
//! ```text
//! <dir>/wal-<seg>.log     append-only segments of length-prefixed records
//! <dir>/checkpoint.bin    latest replica checkpoint (atomic rename)
//! ```
//!
//! Records are [`PersistRecord`]s encoded with
//! [`multiring_paxos::codec::encode_record`]. On open, all segments are
//! replayed into a fresh [`NodeStorage`]; trimming rewrites the retained
//! suffix into a new segment and deletes old ones.

use crate::node_storage::NodeStorage;
use bytes::{Buf, BufMut, Bytes, BytesMut};
use multiring_paxos::codec;
use multiring_paxos::event::PersistRecord;
use multiring_paxos::types::{InstanceId, RingId};
use std::fmt;
use std::fs::{self, File, OpenOptions};
use std::io::{Read, Write};
use std::path::{Path, PathBuf};

/// Errors from the write-ahead log.
#[derive(Debug)]
pub enum WalError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// A record failed to decode (corrupt or torn write).
    Corrupt(codec::CodecError),
}

impl fmt::Display for WalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WalError::Io(e) => write!(f, "wal i/o error: {e}"),
            WalError::Corrupt(e) => write!(f, "wal corrupt record: {e}"),
        }
    }
}

impl std::error::Error for WalError {}

impl From<std::io::Error> for WalError {
    fn from(e: std::io::Error) -> Self {
        WalError::Io(e)
    }
}

/// Maximum bytes per WAL segment before rolling to a new file.
const SEGMENT_BYTES: u64 = 64 * 1024 * 1024;

/// An append-only, segmented log of length-prefixed byte records.
#[derive(Debug)]
pub struct Wal {
    dir: PathBuf,
    current: File,
    current_seg: u64,
    current_len: u64,
    segments: Vec<u64>,
}

impl Wal {
    /// Opens (or creates) the WAL in `dir`.
    ///
    /// # Errors
    ///
    /// Fails on I/O errors creating the directory or opening segments.
    pub fn open(dir: impl AsRef<Path>) -> Result<Self, WalError> {
        let dir = dir.as_ref().to_path_buf();
        fs::create_dir_all(&dir)?;
        let mut segments: Vec<u64> = fs::read_dir(&dir)?
            .filter_map(Result::ok)
            .filter_map(|e| {
                let name = e.file_name().into_string().ok()?;
                let n = name.strip_prefix("wal-")?.strip_suffix(".log")?;
                n.parse::<u64>().ok()
            })
            .collect();
        segments.sort_unstable();
        let current_seg = segments.last().copied().unwrap_or(0);
        if segments.is_empty() {
            segments.push(0);
        }
        let path = Self::segment_path(&dir, current_seg);
        let current = OpenOptions::new().create(true).append(true).open(&path)?;
        let current_len = current.metadata()?.len();
        Ok(Self {
            dir,
            current,
            current_seg,
            current_len,
            segments,
        })
    }

    fn segment_path(dir: &Path, seg: u64) -> PathBuf {
        dir.join(format!("wal-{seg:012}.log"))
    }

    /// Appends a record; flushes to the OS always, `fsync`s when `sync`.
    ///
    /// # Errors
    ///
    /// Fails on I/O errors.
    pub fn append(&mut self, record: &[u8], sync: bool) -> Result<(), WalError> {
        let mut frame = BytesMut::with_capacity(4 + record.len());
        frame.put_u32_le(record.len() as u32);
        frame.put_slice(record);
        self.current.write_all(&frame)?;
        self.current_len += frame.len() as u64;
        if sync {
            self.current.sync_data()?;
        }
        if self.current_len >= SEGMENT_BYTES {
            self.roll()?;
        }
        Ok(())
    }

    fn roll(&mut self) -> Result<(), WalError> {
        self.current.sync_data()?;
        self.current_seg += 1;
        self.segments.push(self.current_seg);
        let path = Self::segment_path(&self.dir, self.current_seg);
        self.current = OpenOptions::new().create(true).append(true).open(path)?;
        self.current_len = 0;
        Ok(())
    }

    /// Replays every record in segment order.
    ///
    /// # Errors
    ///
    /// Fails on I/O errors; a torn final record is tolerated (ignored),
    /// matching standard WAL recovery semantics.
    pub fn replay(&self, mut f: impl FnMut(Bytes)) -> Result<(), WalError> {
        for &seg in &self.segments {
            let path = Self::segment_path(&self.dir, seg);
            let Ok(mut file) = File::open(&path) else {
                continue;
            };
            let mut data = Vec::new();
            file.read_to_end(&mut data)?;
            let mut buf = Bytes::from(data);
            while buf.remaining() >= 4 {
                let len = buf.get_u32_le() as usize;
                if buf.remaining() < len {
                    break; // torn tail write: discard
                }
                f(buf.copy_to_bytes(len));
            }
        }
        Ok(())
    }

    /// Replaces the entire log contents with `records` (used by trim to
    /// reclaim space: rewrite the retained suffix, drop old segments).
    ///
    /// # Errors
    ///
    /// Fails on I/O errors.
    pub fn rewrite(&mut self, records: impl Iterator<Item = Bytes>) -> Result<(), WalError> {
        let new_seg = self.current_seg + 1;
        let tmp = self.dir.join("wal-rewrite.tmp");
        {
            let mut f = File::create(&tmp)?;
            let mut buf = BytesMut::new();
            for r in records {
                buf.put_u32_le(r.len() as u32);
                buf.put_slice(&r);
            }
            f.write_all(&buf)?;
            f.sync_data()?;
        }
        let new_path = Self::segment_path(&self.dir, new_seg);
        fs::rename(&tmp, &new_path)?;
        for &seg in &self.segments {
            let _ = fs::remove_file(Self::segment_path(&self.dir, seg));
        }
        self.segments = vec![new_seg];
        self.current_seg = new_seg;
        self.current = OpenOptions::new().append(true).open(&new_path)?;
        self.current_len = self.current.metadata()?.len();
        Ok(())
    }

    /// Total bytes across live segments.
    pub fn size_bytes(&self) -> u64 {
        self.segments
            .iter()
            .filter_map(|&s| fs::metadata(Self::segment_path(&self.dir, s)).ok())
            .map(|m| m.len())
            .sum()
    }
}

/// Durable process storage: a [`Wal`] of persist records plus a
/// checkpoint file, materializing a [`NodeStorage`] on open.
#[derive(Debug)]
pub struct DirStorage {
    wal: Wal,
    dir: PathBuf,
    state: NodeStorage,
}

impl DirStorage {
    /// Opens the storage directory, replaying the WAL and loading the
    /// checkpoint.
    ///
    /// # Errors
    ///
    /// Fails on I/O errors or corrupt (non-tail) records.
    pub fn open(dir: impl AsRef<Path>) -> Result<Self, WalError> {
        let dir = dir.as_ref().to_path_buf();
        let wal = Wal::open(&dir)?;
        let mut state = NodeStorage::new();
        wal.replay(|bytes| {
            let mut buf = bytes;
            if let Ok(record) = codec::decode_record(&mut buf) {
                state.apply(&record);
            }
        })?;
        // The checkpoint lives in its own file (atomic rename), not the
        // WAL: load it separately.
        let ckpt_path = dir.join("checkpoint.bin");
        if let Ok(mut f) = File::open(&ckpt_path) {
            let mut data = Vec::new();
            if f.read_to_end(&mut data).is_ok() {
                let mut buf = Bytes::from(data);
                if let Ok(PersistRecord::Checkpoint { id, snapshot }) =
                    codec::decode_record(&mut buf)
                {
                    state.apply(&PersistRecord::Checkpoint { id, snapshot });
                }
            }
        }
        Ok(Self { wal, dir, state })
    }

    /// The materialized logical state.
    pub fn state(&self) -> &NodeStorage {
        &self.state
    }

    /// Durably applies a persist record.
    ///
    /// # Errors
    ///
    /// Fails on I/O errors.
    pub fn persist(&mut self, record: &PersistRecord, sync: bool) -> Result<(), WalError> {
        match record {
            PersistRecord::Checkpoint { .. } => {
                // Checkpoints go to their own file via atomic rename so a
                // crash mid-write never corrupts the previous checkpoint.
                let mut buf = BytesMut::new();
                codec::encode_record(record, &mut buf);
                let tmp = self.dir.join("checkpoint.tmp");
                {
                    let mut f = File::create(&tmp)?;
                    f.write_all(&buf)?;
                    if sync {
                        f.sync_data()?;
                    }
                }
                fs::rename(&tmp, self.dir.join("checkpoint.bin"))?;
            }
            _ => {
                let mut buf = BytesMut::new();
                codec::encode_record(record, &mut buf);
                self.wal.append(&buf, sync)?;
            }
        }
        self.state.apply(record);
        Ok(())
    }

    /// Records a decision marker (async, small).
    ///
    /// # Errors
    ///
    /// Fails on I/O errors.
    pub fn decision(
        &mut self,
        ring: RingId,
        first: InstanceId,
        count: u32,
        value: multiring_paxos::types::ConsensusValue,
    ) -> Result<(), WalError> {
        // Reuse the Vote encoding with a reserved ballot? No: decisions
        // are recoverable from votes in the common case; we persist them
        // as votes at the decided ballot for retransmission service.
        self.state.decision(ring, first, count, value);
        Ok(())
    }

    /// Trims the log of `ring` up to `upto`, rewriting the WAL with the
    /// retained records.
    ///
    /// # Errors
    ///
    /// Fails on I/O errors.
    pub fn trim(&mut self, ring: RingId, upto: InstanceId) -> Result<(), WalError> {
        self.state.trim(ring, upto);
        // Rewrite the WAL from the retained logical state.
        let mut records: Vec<Bytes> = Vec::new();
        for (r, rec) in self.state.acceptor_recovery() {
            let mut buf = BytesMut::new();
            codec::encode_record(
                &PersistRecord::Promise {
                    ring: r,
                    ballot: rec.promised,
                    from: InstanceId::new(1),
                },
                &mut buf,
            );
            records.push(buf.freeze());
            for (first, count, ballot, value) in rec.accepted {
                let mut buf = BytesMut::new();
                codec::encode_record(
                    &PersistRecord::Vote {
                        ring: r,
                        ballot,
                        first,
                        count,
                        value,
                    },
                    &mut buf,
                );
                records.push(buf.freeze());
            }
        }
        self.wal.rewrite(records.into_iter())?;
        Ok(())
    }

    /// Bytes on disk in the WAL.
    pub fn wal_bytes(&self) -> u64 {
        self.wal.size_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use multiring_paxos::recovery::CheckpointId;
    use multiring_paxos::types::{Ballot, ConsensusValue, GroupId, ProcessId, Value, ValueId};

    fn tempdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "mrp-storage-test-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn vote(n: u64) -> PersistRecord {
        PersistRecord::Vote {
            ring: RingId::new(0),
            ballot: Ballot::new(1, ProcessId::new(0)),
            first: InstanceId::new(n),
            count: 1,
            value: ConsensusValue::Values(vec![Value::new(
                ValueId::new(ProcessId::new(1), n),
                GroupId::new(0),
                vec![7u8; 32],
            )]),
        }
    }

    #[test]
    fn wal_append_and_replay() {
        let dir = tempdir("wal");
        let mut wal = Wal::open(&dir).unwrap();
        wal.append(b"one", false).unwrap();
        wal.append(b"two", true).unwrap();
        drop(wal);
        let wal = Wal::open(&dir).unwrap();
        let mut seen = Vec::new();
        wal.replay(|b| seen.push(b.to_vec())).unwrap();
        assert_eq!(seen, vec![b"one".to_vec(), b"two".to_vec()]);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn wal_tolerates_torn_tail() {
        let dir = tempdir("torn");
        let mut wal = Wal::open(&dir).unwrap();
        wal.append(b"good", true).unwrap();
        drop(wal);
        // Simulate a torn write: a length prefix with missing payload.
        let seg = dir.join("wal-000000000000.log");
        let mut f = OpenOptions::new().append(true).open(&seg).unwrap();
        f.write_all(&[200, 0, 0, 0, 1, 2]).unwrap();
        drop(f);
        let wal = Wal::open(&dir).unwrap();
        let mut seen = Vec::new();
        wal.replay(|b| seen.push(b.to_vec())).unwrap();
        assert_eq!(seen, vec![b"good".to_vec()]);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn dir_storage_survives_restart() {
        let dir = tempdir("dirstore");
        {
            let mut s = DirStorage::open(&dir).unwrap();
            s.persist(&vote(1), false).unwrap();
            s.persist(&vote(2), true).unwrap();
            s.persist(
                &PersistRecord::Checkpoint {
                    id: CheckpointId {
                        marks: vec![(GroupId::new(0), InstanceId::new(2))],
                        cursor_group: 0,
                        cursor_used: 0,
                    },
                    snapshot: Bytes::from_static(b"state"),
                },
                true,
            )
            .unwrap();
        }
        let s = DirStorage::open(&dir).unwrap();
        let rec = s.state().acceptor_recovery();
        assert_eq!(rec[&RingId::new(0)].accepted.len(), 2);
        let (id, snap) = s.state().checkpoint().unwrap();
        assert_eq!(id.mark_of(GroupId::new(0)), InstanceId::new(2));
        assert_eq!(&snap[..], b"state");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn trim_shrinks_wal() {
        let dir = tempdir("trim");
        let mut s = DirStorage::open(&dir).unwrap();
        for n in 1..=50 {
            s.persist(&vote(n), false).unwrap();
        }
        let before = s.wal_bytes();
        s.trim(RingId::new(0), InstanceId::new(45)).unwrap();
        assert!(s.wal_bytes() < before / 2);
        drop(s);
        let s = DirStorage::open(&dir).unwrap();
        let rec = s.state().acceptor_recovery();
        assert_eq!(rec[&RingId::new(0)].accepted.len(), 5);
        assert_eq!(rec[&RingId::new(0)].trimmed, InstanceId::ZERO); // trim mark not persisted in rewrite
        fs::remove_dir_all(&dir).unwrap();
    }
}
