//! End-to-end dLog tests on the deterministic simulator.

use mrp_dlog::{DLogApp, DLogClient, DLogClientConfig, DLogDeployment, DLogTopology};
use mrp_sim::actor::Hosted;
use mrp_sim::cluster::{Cluster, SimConfig};
use mrp_sim::net::Topology;
use multiring_paxos::app::Application;
use multiring_paxos::config::RingTuning;
use multiring_paxos::replica::{CheckpointPolicy, Replica};
use multiring_paxos::types::{ClientId, ProcessId, Time};

fn tuning() -> RingTuning {
    RingTuning {
        lambda: 2_000,
        delta_us: 5_000,
        ..RingTuning::default()
    }
}

fn spawn_dlog(cluster: &mut Cluster, deployment: &DLogDeployment) {
    deployment.spawn_servers(
        cluster,
        CheckpointPolicy {
            interval_us: 0,
            sync: true,
        },
        200 * 1024 * 1024,
    );
}

#[test]
fn appends_and_multi_appends_complete_and_servers_agree() {
    type Server = Hosted<Replica<DLogApp>>;
    let deployment = DLogDeployment::build(
        &DLogTopology::new(2, tuning()).engine(mrp_amcast::EngineKind::MultiRing),
    );
    let mut cluster = Cluster::new(
        SimConfig {
            seed: 21,
            ..SimConfig::default()
        },
        Topology::lan(8),
    );
    spawn_dlog(&mut cluster, &deployment);

    let client_proc = ProcessId::new(900);
    let client_id = ClientId::new(1);
    let mut cfg = DLogClientConfig::new(client_id, 8);
    cfg.append_bytes = 512;
    cfg.multi_append_per_mille = 100; // 10% multi-appends
    let client = DLogClient::new(cfg, deployment.clone());
    cluster.add_actor(client_proc, Box::new(client));
    cluster.register_client(client_id, client_proc);
    cluster.start();
    cluster.run_until(Time::from_secs(10));

    let ops = cluster.metrics().counter("dlog/ops");
    assert!(ops > 100, "appends progressed: {ops}");

    // All three servers hold identical log states.
    let mut snaps = Vec::new();
    for &s in &deployment.servers.clone() {
        let server = cluster.actor_as::<Server>(s).expect("server");
        assert!(server.inner().app().appended() > 0);
        snaps.push(server.inner().app().snapshot());
    }
    assert_eq!(snaps[0], snaps[1]);
    assert_eq!(snaps[1], snaps[2]);
}

#[test]
fn wbcast_engine_serves_dlog_and_servers_agree() {
    type WbServer = Hosted<mrp_amcast::EngineReplica<DLogApp>>;
    // The identical workload, ordered by the timestamp-based engine
    // selected purely from deployment configuration.
    let deployment = DLogDeployment::build(
        &DLogTopology::new(2, tuning()).engine(mrp_amcast::EngineKind::Wbcast),
    );
    let mut cluster = Cluster::new(
        SimConfig {
            seed: 22,
            ..SimConfig::default()
        },
        Topology::lan(8),
    );
    spawn_dlog(&mut cluster, &deployment);

    let client_proc = ProcessId::new(900);
    let client_id = ClientId::new(1);
    let mut cfg = DLogClientConfig::new(client_id, 8);
    cfg.append_bytes = 512;
    cfg.multi_append_per_mille = 100;
    let client = DLogClient::new(cfg, deployment.clone());
    cluster.add_actor(client_proc, Box::new(client));
    cluster.register_client(client_id, client_proc);
    cluster.start();
    // Stop the workload at 10 s, then let in-flight commands drain:
    // wbcast subscribers may trail each other by up to one heartbeat
    // interval, so state is only comparable at quiescence.
    cluster.schedule_crash(Time::from_secs(10), client_proc);
    cluster.run_until(Time::from_secs(11));

    let ops = cluster.metrics().counter("dlog/ops");
    assert!(ops > 100, "appends progressed under wbcast: {ops}");

    let mut snaps = Vec::new();
    for &s in &deployment.servers.clone() {
        let server = cluster.actor_as::<WbServer>(s).expect("wbcast server");
        assert!(server.inner().app().appended() > 0);
        snaps.push(server.inner().app().snapshot());
    }
    assert_eq!(snaps[0], snaps[1]);
    assert_eq!(snaps[1], snaps[2]);
}

#[test]
fn wbcast_multi_appends_need_no_common_ring() {
    type WbServer = Hosted<mrp_amcast::EngineReplica<DLogApp>>;
    // Genuine multi-group multicast: multi-appends address exactly the
    // destination logs' groups, so the common ring is not deployed at
    // all.
    let mut topology = DLogTopology::new(3, tuning()).engine(mrp_amcast::EngineKind::Wbcast);
    topology.common_ring = false;
    let deployment = DLogDeployment::build(&topology);
    assert_eq!(deployment.common_group, None);
    let mut cluster = Cluster::new(
        SimConfig {
            seed: 29,
            ..SimConfig::default()
        },
        Topology::lan(8),
    );
    spawn_dlog(&mut cluster, &deployment);

    let client_proc = ProcessId::new(900);
    let client_id = ClientId::new(1);
    let mut cfg = DLogClientConfig::new(client_id, 8);
    cfg.append_bytes = 512;
    cfg.multi_append_per_mille = 200; // 20% multi-appends
    let client = DLogClient::new(cfg, deployment.clone());
    cluster.add_actor(client_proc, Box::new(client));
    cluster.register_client(client_id, client_proc);
    cluster.start();
    cluster.schedule_crash(Time::from_secs(10), client_proc);
    cluster.run_until(Time::from_secs(11));

    let ops = cluster.metrics().counter("dlog/ops");
    assert!(ops > 100, "appends progressed without a common ring: {ops}");

    let mut snaps = Vec::new();
    for &s in &deployment.servers.clone() {
        let server = cluster.actor_as::<WbServer>(s).expect("wbcast server");
        assert!(server.inner().app().appended() > 0);
        snaps.push(server.inner().app().snapshot());
    }
    assert_eq!(snaps[0], snaps[1]);
    assert_eq!(snaps[1], snaps[2]);
}
