//! The dLog command set (Table 2 of the paper) and its wire encoding.

use bytes::{Buf, BufMut, Bytes, BytesMut};

/// Identifies one log.
pub type LogId = u16;

/// One dLog operation (Table 2).
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum DLogCommand {
    /// `append(l, v)`: append `v` to log `l`; returns the position.
    Append {
        /// Target log.
        log: LogId,
        /// Data.
        data: Bytes,
    },
    /// `multi-append(L, v)`: append `v` to every log in `L` atomically;
    /// returns one position per log.
    MultiAppend {
        /// Target logs.
        logs: Vec<LogId>,
        /// Data.
        data: Bytes,
    },
    /// `read(l, p)`: return the value at position `p` of log `l`.
    Read {
        /// Log.
        log: LogId,
        /// Position.
        pos: u64,
    },
    /// `trim(l, p)`: trim log `l` up to position `p`.
    Trim {
        /// Log.
        log: LogId,
        /// Position (entries strictly below are dropped).
        pos: u64,
    },
}

/// The response to a [`DLogCommand`].
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum DLogResponse {
    /// Position assigned by an append.
    Pos(u64),
    /// Positions assigned by a multi-append, in log order.
    MultiPos(Vec<(LogId, u64)>),
    /// Value returned by a read (`None` if unknown position or trimmed
    /// out of the cache).
    Value(Option<Bytes>),
    /// Trim acknowledged.
    Ok,
}

const C_APPEND: u8 = 1;
const C_MULTI: u8 = 2;
const C_READ: u8 = 3;
const C_TRIM: u8 = 4;

const R_POS: u8 = 1;
const R_MULTI: u8 = 2;
const R_VALUE_NONE: u8 = 3;
const R_VALUE_SOME: u8 = 4;
const R_OK: u8 = 5;

impl DLogCommand {
    /// Encodes the command.
    pub fn encode(&self) -> Bytes {
        let mut buf = BytesMut::new();
        match self {
            DLogCommand::Append { log, data } => {
                buf.put_u8(C_APPEND);
                buf.put_u16_le(*log);
                buf.put_u32_le(data.len() as u32);
                buf.put_slice(data);
            }
            DLogCommand::MultiAppend { logs, data } => {
                buf.put_u8(C_MULTI);
                buf.put_u16_le(logs.len() as u16);
                for l in logs {
                    buf.put_u16_le(*l);
                }
                buf.put_u32_le(data.len() as u32);
                buf.put_slice(data);
            }
            DLogCommand::Read { log, pos } => {
                buf.put_u8(C_READ);
                buf.put_u16_le(*log);
                buf.put_u64_le(*pos);
            }
            DLogCommand::Trim { log, pos } => {
                buf.put_u8(C_TRIM);
                buf.put_u16_le(*log);
                buf.put_u64_le(*pos);
            }
        }
        buf.freeze()
    }

    /// Decodes a command; `None` on malformed input.
    pub fn decode(buf: &mut Bytes) -> Option<DLogCommand> {
        if buf.remaining() < 1 {
            return None;
        }
        match buf.get_u8() {
            C_APPEND => {
                if buf.remaining() < 6 {
                    return None;
                }
                let log = buf.get_u16_le();
                let n = buf.get_u32_le() as usize;
                (buf.remaining() >= n).then(|| DLogCommand::Append {
                    log,
                    data: buf.copy_to_bytes(n),
                })
            }
            C_MULTI => {
                if buf.remaining() < 2 {
                    return None;
                }
                let k = buf.get_u16_le() as usize;
                if buf.remaining() < k * 2 + 4 {
                    return None;
                }
                let logs = (0..k).map(|_| buf.get_u16_le()).collect();
                let n = buf.get_u32_le() as usize;
                (buf.remaining() >= n).then(|| DLogCommand::MultiAppend {
                    logs,
                    data: buf.copy_to_bytes(n),
                })
            }
            C_READ => {
                if buf.remaining() < 10 {
                    return None;
                }
                Some(DLogCommand::Read {
                    log: buf.get_u16_le(),
                    pos: buf.get_u64_le(),
                })
            }
            C_TRIM => {
                if buf.remaining() < 10 {
                    return None;
                }
                Some(DLogCommand::Trim {
                    log: buf.get_u16_le(),
                    pos: buf.get_u64_le(),
                })
            }
            _ => None,
        }
    }
}

impl DLogResponse {
    /// Encodes the response.
    pub fn encode(&self) -> Bytes {
        let mut buf = BytesMut::new();
        match self {
            DLogResponse::Pos(p) => {
                buf.put_u8(R_POS);
                buf.put_u64_le(*p);
            }
            DLogResponse::MultiPos(ps) => {
                buf.put_u8(R_MULTI);
                buf.put_u16_le(ps.len() as u16);
                for (l, p) in ps {
                    buf.put_u16_le(*l);
                    buf.put_u64_le(*p);
                }
            }
            DLogResponse::Value(None) => buf.put_u8(R_VALUE_NONE),
            DLogResponse::Value(Some(v)) => {
                buf.put_u8(R_VALUE_SOME);
                buf.put_u32_le(v.len() as u32);
                buf.put_slice(v);
            }
            DLogResponse::Ok => buf.put_u8(R_OK),
        }
        buf.freeze()
    }

    /// Decodes a response; `None` on malformed input.
    pub fn decode(buf: &mut Bytes) -> Option<DLogResponse> {
        if buf.remaining() < 1 {
            return None;
        }
        match buf.get_u8() {
            R_POS => (buf.remaining() >= 8).then(|| DLogResponse::Pos(buf.get_u64_le())),
            R_MULTI => {
                if buf.remaining() < 2 {
                    return None;
                }
                let k = buf.get_u16_le() as usize;
                if buf.remaining() < k * 10 {
                    return None;
                }
                Some(DLogResponse::MultiPos(
                    (0..k)
                        .map(|_| (buf.get_u16_le(), buf.get_u64_le()))
                        .collect(),
                ))
            }
            R_VALUE_NONE => Some(DLogResponse::Value(None)),
            R_VALUE_SOME => {
                if buf.remaining() < 4 {
                    return None;
                }
                let n = buf.get_u32_le() as usize;
                (buf.remaining() >= n).then(|| DLogResponse::Value(Some(buf.copy_to_bytes(n))))
            }
            R_OK => Some(DLogResponse::Ok),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn command_roundtrips() {
        for cmd in [
            DLogCommand::Append {
                log: 3,
                data: Bytes::from_static(b"entry"),
            },
            DLogCommand::MultiAppend {
                logs: vec![0, 2, 5],
                data: Bytes::from_static(b"multi"),
            },
            DLogCommand::Read { log: 1, pos: 42 },
            DLogCommand::Trim { log: 1, pos: 40 },
        ] {
            let mut enc = cmd.encode();
            assert_eq!(DLogCommand::decode(&mut enc).unwrap(), cmd);
            assert_eq!(enc.remaining(), 0);
        }
    }

    #[test]
    fn response_roundtrips() {
        for r in [
            DLogResponse::Pos(9),
            DLogResponse::MultiPos(vec![(0, 1), (1, 7)]),
            DLogResponse::Value(None),
            DLogResponse::Value(Some(Bytes::from_static(b"v"))),
            DLogResponse::Ok,
        ] {
            let mut enc = r.encode();
            assert_eq!(DLogResponse::decode(&mut enc).unwrap(), r);
        }
    }

    #[test]
    fn malformed_rejected() {
        let mut bad = Bytes::from_static(&[C_APPEND, 0]);
        assert!(DLogCommand::decode(&mut bad).is_none());
        let mut empty = Bytes::new();
        assert!(DLogResponse::decode(&mut empty).is_none());
    }
}
