//! # dLog: a distributed shared log on atomic multicast
//!
//! The distributed log service of Section 6.2 of the paper: multiple
//! concurrent writers append data to one or several logs *atomically*.
//!
//! * every log is assigned to one multicast group (ring); `append`,
//!   `read` and `trim` commands are multicast to the log's group;
//! * `multi-append` appends one value to several logs atomically: it is
//!   multicast to the *common* group every server subscribes to, so the
//!   deterministic merge orders it consistently against all
//!   single-log appends;
//! * positions are assigned deterministically at execution, so every
//!   replica agrees on them and `append` can return "the position of the
//!   log at which the data was stored" (Table 2);
//! * servers hold recent appends in an in-memory cache (200 MB in the
//!   paper) and rely on the ring's acceptor logs for durability; `trim`
//!   flushes the cache up to a position.
//!
//! Unlike sequencer-based logs (CORFU), append load scales by adding
//! rings — there is no central sequencer to saturate (Section 9).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod app;
pub mod client;
pub mod command;
pub mod setup;

pub use app::DLogApp;
pub use client::{DLogClient, DLogClientConfig};
pub use command::{DLogCommand, DLogResponse, LogId};
pub use setup::{DLogDeployment, DLogTopology};
