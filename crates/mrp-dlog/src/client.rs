//! The dLog append client: closed-loop sessions issuing appends (and
//! optionally multi-appends) across the configured logs.

use crate::command::{DLogCommand, LogId};
use crate::setup::DLogDeployment;
use bytes::Bytes;
use mrp_sim::actor::{Actor, ActorCtx, ActorEvent, Outbox};
use multiring_paxos::event::Message;
use multiring_paxos::types::{ClientId, GroupId, ProcessId, Time};
use std::any::Any;
use std::collections::BTreeMap;

/// Configuration of a [`DLogClient`].
#[derive(Clone, Debug)]
pub struct DLogClientConfig {
    /// Client session space.
    pub client: ClientId,
    /// Closed-loop sessions (the paper's client threads).
    pub sessions: u32,
    /// Append payload size in bytes (1 KB in the paper's Figures 5/6).
    pub append_bytes: usize,
    /// Out of 1000 operations, how many are multi-appends to all logs
    /// (0 disables them).
    pub multi_append_per_mille: u32,
    /// Proposer override per group.
    pub proposer_override: BTreeMap<GroupId, ProcessId>,
    /// Samples before this instant are not recorded.
    pub warmup_until: Time,
    /// Metrics prefix.
    pub metric_prefix: String,
}

impl DLogClientConfig {
    /// Defaults: 1 KB appends, no multi-appends.
    pub fn new(client: ClientId, sessions: u32) -> Self {
        Self {
            client,
            sessions,
            append_bytes: 1024,
            multi_append_per_mille: 0,
            proposer_override: BTreeMap::new(),
            warmup_until: Time::ZERO,
            metric_prefix: "dlog".to_string(),
        }
    }
}

#[derive(Debug)]
struct Outstanding {
    session: u32,
    issued_at: Time,
    log: Option<LogId>,
}

/// Closed-loop dLog append workload actor for the simulator.
pub struct DLogClient {
    cfg: DLogClientConfig,
    deployment: DLogDeployment,
    next_request: u64,
    round_robin: u64,
    outstanding: BTreeMap<u64, Outstanding>,
    payload: Bytes,
}

impl std::fmt::Debug for DLogClient {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DLogClient")
            .field("client", &self.cfg.client)
            .field("sessions", &self.cfg.sessions)
            .finish_non_exhaustive()
    }
}

impl DLogClient {
    /// Creates the client.
    pub fn new(cfg: DLogClientConfig, deployment: DLogDeployment) -> Self {
        let payload = Bytes::from(vec![0xA5u8; cfg.append_bytes]);
        Self {
            cfg,
            deployment,
            next_request: 0,
            round_robin: 0,
            outstanding: BTreeMap::new(),
            payload,
        }
    }

    fn issue(&mut self, session: u32, now: Time, out: &mut Outbox, rng: &mut mrp_sim::rng::Rng) {
        let logs: Vec<LogId> = self.deployment.group_of_log.keys().copied().collect();
        // A genuine engine addresses the destination logs directly; the
        // ring engine needs the common ring for multi-appends.
        let multi_possible =
            self.deployment.engine.genuine() || self.deployment.common_group.is_some();
        let multi = self.cfg.multi_append_per_mille > 0
            && rng.below(1000) < u64::from(self.cfg.multi_append_per_mille)
            && multi_possible;
        let (cmd, log) = if multi {
            (
                DLogCommand::MultiAppend {
                    logs: logs.clone(),
                    data: self.payload.clone(),
                },
                None,
            )
        } else {
            self.round_robin += 1;
            let log = logs[(self.round_robin % logs.len() as u64) as usize];
            (
                DLogCommand::Append {
                    log,
                    data: self.payload.clone(),
                },
                Some(log),
            )
        };
        let Some(groups) = self.deployment.route(&cmd) else {
            return;
        };
        let Some(&first) = groups.first() else { return };
        let proposer = self
            .cfg
            .proposer_override
            .get(&first)
            .or_else(|| self.deployment.proposer_of.get(&first))
            .copied();
        let Some(proposer) = proposer else { return };
        self.next_request += 1;
        self.outstanding.insert(
            self.next_request,
            Outstanding {
                session,
                issued_at: now,
                log,
            },
        );
        out.send(
            proposer,
            Message::Request {
                client: self.cfg.client,
                request: self.next_request,
                groups,
                payload: cmd.encode(),
            },
        );
    }
}

impl Actor for DLogClient {
    fn on_event(&mut self, now: Time, event: ActorEvent, out: &mut Outbox, ctx: &mut ActorCtx<'_>) {
        match event {
            ActorEvent::Start => {
                for s in 0..self.cfg.sessions {
                    self.issue(s, now, out, ctx.rng);
                }
            }
            ActorEvent::Message {
                msg: Message::Response { request, .. },
                ..
            } => {
                let Some(o) = self.outstanding.remove(&request) else {
                    return; // duplicate replica response
                };
                if now >= self.cfg.warmup_until {
                    let prefix = &self.cfg.metric_prefix;
                    let latency = now.since(o.issued_at);
                    ctx.metrics.record(&format!("{prefix}/latency_us"), latency);
                    ctx.metrics.incr(&format!("{prefix}/ops"), 1);
                    ctx.metrics.series_add(&format!("{prefix}/ops"), now, 1.0);
                    if let Some(log) = o.log {
                        ctx.metrics.incr(&format!("{prefix}/ops/log{log}"), 1);
                    }
                }
                self.issue(o.session, now, out, ctx.rng);
            }
            _ => {}
        }
    }

    fn as_any(&mut self) -> &mut dyn Any {
        self
    }
}
