//! Deployment helper for dLog clusters: `k` log rings plus a common
//! ring, hosted by a fixed set of server processes (the paper's vertical
//! scalability setup, Section 8.4.1).

use crate::app::DLogApp;
use crate::command::LogId;
use mrp_amcast::EngineKind;
use mrp_sim::cluster::Cluster;
use multiring_paxos::config::{ClusterConfig, RingSpec, RingTuning, Roles};
use multiring_paxos::replica::CheckpointPolicy;
use multiring_paxos::types::{GroupId, ProcessId, RingId};
use std::collections::BTreeMap;

/// Shape of a dLog deployment.
#[derive(Clone, Debug)]
pub struct DLogTopology {
    /// Number of logs (= log rings).
    pub logs: u16,
    /// Number of server processes (each hosts every log; the paper uses
    /// 3).
    pub servers: u32,
    /// Whether the common ring for multi-appends exists.
    pub common_ring: bool,
    /// Ring tuning.
    pub tuning: RingTuning,
    /// Which atomic-multicast engine orders appends.
    pub engine: EngineKind,
}

impl DLogTopology {
    /// The paper's setup: `logs` rings over 3 servers with a common
    /// ring. The engine defaults to the `MRP_ENGINE` environment
    /// variable (Multi-Ring Paxos when unset);
    /// [`engine`](Self::engine) overrides it.
    pub fn new(logs: u16, tuning: RingTuning) -> Self {
        Self {
            logs,
            servers: 3,
            common_ring: true,
            tuning,
            engine: EngineKind::from_env(),
        }
    }

    /// Selects the ordering engine.
    #[must_use]
    pub fn engine(mut self, engine: EngineKind) -> Self {
        self.engine = engine;
        self
    }
}

/// A resolved dLog deployment.
#[derive(Clone, Debug)]
pub struct DLogDeployment {
    /// The validated cluster configuration.
    pub config: ClusterConfig,
    /// Server processes.
    pub servers: Vec<ProcessId>,
    /// The group of each log.
    pub group_of_log: BTreeMap<LogId, GroupId>,
    /// The common group for multi-appends, if configured.
    pub common_group: Option<GroupId>,
    /// A proposer per group.
    pub proposer_of: BTreeMap<GroupId, ProcessId>,
    /// The ordering engine the deployment runs.
    pub engine: EngineKind,
}

impl DLogDeployment {
    /// Builds the deployment: log `i` ↔ ring/group `i`; the common ring
    /// is group `logs`. Every server is a member of every ring with all
    /// roles and subscribes to every group.
    ///
    /// # Panics
    ///
    /// Panics on a degenerate topology.
    pub fn build(topology: &DLogTopology) -> Self {
        assert!(topology.logs > 0 && topology.servers > 0);
        let servers: Vec<ProcessId> = (0..topology.servers).map(ProcessId::new).collect();
        let mut builder = ClusterConfig::builder();
        let mut group_of_log = BTreeMap::new();
        let mut proposer_of = BTreeMap::new();
        let mut groups = Vec::new();

        // Ring membership is rotated per ring so coordination load (the
        // first acceptor coordinates) spreads across the servers — the
        // paper's vertical-scalability experiment depends on rings not
        // sharing one coordinator.
        let rotated = |k: usize| -> Vec<ProcessId> {
            (0..servers.len())
                .map(|j| servers[(k + j) % servers.len()])
                .collect()
        };
        for log in 0..topology.logs {
            let ring_id = RingId::new(log);
            let group = GroupId::new(log);
            group_of_log.insert(log, group);
            groups.push(group);
            let mut spec = RingSpec::new(ring_id).tuning(topology.tuning);
            let members = rotated(usize::from(log));
            for &s in &members {
                spec = spec.member(s, Roles::ALL);
            }
            proposer_of.insert(group, members[0]);
            builder = builder.ring(spec).group(group, ring_id);
        }
        let common_group = topology.common_ring.then(|| GroupId::new(topology.logs));
        if let Some(g) = common_group {
            let ring_id = RingId::new(topology.logs);
            let mut spec = RingSpec::new(ring_id).tuning(topology.tuning);
            let members = rotated(usize::from(topology.logs));
            for &s in &members {
                spec = spec.member(s, Roles::ALL);
            }
            proposer_of.insert(g, members[0]);
            groups.push(g);
            builder = builder.ring(spec).group(g, ring_id);
        }
        for &s in &servers {
            for &g in &groups {
                builder = builder.subscribe(s, g);
            }
        }
        let config = builder.build().expect("dlog deployment config is valid");
        Self {
            config,
            servers,
            group_of_log,
            common_group,
            proposer_of,
            engine: topology.engine,
        }
    }

    /// Spawns one server actor per process on `cluster`, hosted by the
    /// deployment's ordering engine (the full trim/peer-recovery-capable
    /// [`Replica`](multiring_paxos::replica::Replica) for Multi-Ring
    /// Paxos, [`EngineReplica`](mrp_amcast::EngineReplica) otherwise —
    /// both checkpointing per `policy`), with a restart factory so
    /// crashed servers recover from their latest durable checkpoint.
    /// Each server hosts every log with `wal_capacity` bytes of
    /// in-memory log budget.
    pub fn spawn_servers(
        &self,
        cluster: &mut Cluster,
        policy: CheckpointPolicy,
        wal_capacity: usize,
    ) {
        cluster.set_protocol(self.config.clone());
        let logs: Vec<LogId> = self.group_of_log.keys().copied().collect();
        for &s in &self.servers {
            let logs = logs.clone();
            cluster.add_recoverable_replica_actor(
                self.engine,
                s,
                self.config.clone(),
                policy,
                move || DLogApp::new(logs.clone(), wal_capacity),
            );
        }
    }

    /// The group set γ a command must be multicast to. Single-log
    /// commands address their log's group. Multi-appends address
    /// exactly the destination logs' groups when the engine orders
    /// multi-group messages genuinely; the ring engine routes them
    /// through the common ring instead (`None` without one).
    pub fn route(&self, cmd: &crate::command::DLogCommand) -> Option<Vec<GroupId>> {
        use crate::command::DLogCommand as C;
        match cmd {
            C::Append { log, .. } | C::Read { log, .. } | C::Trim { log, .. } => {
                self.group_of_log.get(log).map(|&g| vec![g])
            }
            C::MultiAppend { logs, .. } => {
                if self.engine.genuine() {
                    logs.iter()
                        .map(|l| self.group_of_log.get(l).copied())
                        .collect()
                } else {
                    self.common_group.map(|g| vec![g])
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::command::DLogCommand;
    use bytes::Bytes;

    fn quiet() -> RingTuning {
        RingTuning {
            lambda: 0,
            ..RingTuning::default()
        }
    }

    #[test]
    fn builds_log_rings_plus_common() {
        let d = DLogDeployment::build(&DLogTopology::new(5, quiet()));
        assert_eq!(d.config.rings().len(), 6);
        assert_eq!(d.servers.len(), 3);
        // Each server subscribes to 6 groups.
        assert_eq!(d.config.subscriptions_of(d.servers[0]).len(), 6);
        assert_eq!(d.common_group, Some(GroupId::new(5)));
        // All servers form one recovery partition.
        assert_eq!(d.config.partition_of(d.servers[0]).len(), 3);
    }

    #[test]
    fn routes_by_log_and_common() {
        let d = DLogDeployment::build(&DLogTopology::new(3, quiet()).engine(EngineKind::MultiRing));
        assert_eq!(
            d.route(&DLogCommand::Append {
                log: 2,
                data: Bytes::new()
            }),
            Some(vec![GroupId::new(2)])
        );
        assert_eq!(
            d.route(&DLogCommand::MultiAppend {
                logs: vec![0, 2],
                data: Bytes::new()
            }),
            Some(vec![GroupId::new(3)])
        );
        assert_eq!(
            d.route(&DLogCommand::Append {
                log: 9,
                data: Bytes::new()
            }),
            None
        );
    }

    /// A genuine engine addresses multi-appends to exactly the
    /// destination logs' groups — the common ring is not involved.
    #[test]
    fn genuine_engine_routes_multi_append_to_destination_logs() {
        let d = DLogDeployment::build(&DLogTopology::new(3, quiet()).engine(EngineKind::Wbcast));
        assert_eq!(
            d.route(&DLogCommand::MultiAppend {
                logs: vec![0, 2],
                data: Bytes::new()
            }),
            Some(vec![GroupId::new(0), GroupId::new(2)])
        );
        assert_eq!(
            d.route(&DLogCommand::MultiAppend {
                logs: vec![0, 9],
                data: Bytes::new()
            }),
            None,
            "unknown destination log"
        );
    }
}
