//! The dLog replicated state machine: deterministic position assignment,
//! in-memory cache, trim.

use crate::command::{DLogCommand, DLogResponse, LogId};
use bytes::{Buf, BufMut, Bytes, BytesMut};
use multiring_paxos::app::{decode_command, Application, Delivery, Reply};
use std::collections::BTreeMap;

/// Per-log state.
#[derive(Clone, Default, Debug)]
struct LogState {
    /// Next position to assign.
    next_pos: u64,
    /// Entries strictly below this position were trimmed.
    trimmed_to: u64,
    /// Cached entries by position.
    entries: BTreeMap<u64, Bytes>,
    /// Cached bytes.
    cached_bytes: usize,
}

/// The dLog server state machine: hosts a set of logs (the paper's
/// servers subscribe to `k` log rings plus the common ring and hold all
/// `k` logs).
#[derive(Debug)]
pub struct DLogApp {
    logs: BTreeMap<LogId, LogState>,
    /// Cache cap in bytes per log (the paper uses a 200 MB cache per
    /// server); oldest entries are evicted beyond it.
    cache_limit: usize,
    appended: u64,
}

impl DLogApp {
    /// A server hosting `logs`, with the given per-log cache cap.
    pub fn new(logs: impl IntoIterator<Item = LogId>, cache_limit: usize) -> Self {
        Self {
            logs: logs.into_iter().map(|l| (l, LogState::default())).collect(),
            cache_limit,
            appended: 0,
        }
    }

    /// Entries appended since start.
    pub fn appended(&self) -> u64 {
        self.appended
    }

    /// The next position of `log` (= its current length including
    /// trimmed entries).
    pub fn len_of(&self, log: LogId) -> Option<u64> {
        self.logs.get(&log).map(|l| l.next_pos)
    }

    /// Cached bytes across logs.
    pub fn cached_bytes(&self) -> usize {
        self.logs.values().map(|l| l.cached_bytes).sum()
    }

    fn append_one(&mut self, log: LogId, data: &Bytes) -> Option<u64> {
        let cache_limit = self.cache_limit;
        let state = self.logs.get_mut(&log)?;
        let pos = state.next_pos;
        state.next_pos += 1;
        state.cached_bytes += data.len();
        state.entries.insert(pos, data.clone());
        // Evict oldest beyond the cache cap (they remain recoverable
        // from the ring's acceptor logs / checkpoints).
        while state.cached_bytes > cache_limit && state.entries.len() > 1 {
            if let Some((&old, _)) = state.entries.iter().next() {
                if let Some(v) = state.entries.remove(&old) {
                    state.cached_bytes -= v.len();
                }
            }
        }
        self.appended += 1;
        Some(pos)
    }

    /// Executes one command.
    pub fn apply(&mut self, cmd: &DLogCommand) -> DLogResponse {
        match cmd {
            DLogCommand::Append { log, data } => match self.append_one(*log, data) {
                Some(pos) => DLogResponse::Pos(pos),
                None => DLogResponse::Value(None),
            },
            DLogCommand::MultiAppend { logs, data } => {
                let mut out = Vec::with_capacity(logs.len());
                for &l in logs {
                    if let Some(pos) = self.append_one(l, data) {
                        out.push((l, pos));
                    }
                }
                DLogResponse::MultiPos(out)
            }
            DLogCommand::Read { log, pos } => {
                DLogResponse::Value(self.logs.get(log).and_then(|l| l.entries.get(pos)).cloned())
            }
            DLogCommand::Trim { log, pos } => {
                if let Some(state) = self.logs.get_mut(log) {
                    state.trimmed_to = state.trimmed_to.max(*pos);
                    let dropped: Vec<u64> = state.entries.range(..*pos).map(|(&p, _)| p).collect();
                    for p in dropped {
                        if let Some(v) = state.entries.remove(&p) {
                            state.cached_bytes -= v.len();
                        }
                    }
                }
                DLogResponse::Ok
            }
        }
    }
}

impl Application for DLogApp {
    fn execute(&mut self, delivery: &Delivery) -> Vec<Reply> {
        let Some((client, request, cmd_bytes)) = decode_command(delivery.value.payload.clone())
        else {
            return Vec::new();
        };
        let mut buf = cmd_bytes;
        let Some(cmd) = DLogCommand::decode(&mut buf) else {
            return Vec::new();
        };
        let response = self.apply(&cmd);
        vec![Reply {
            client,
            request,
            payload: response.encode(),
        }]
    }

    fn snapshot(&self) -> Bytes {
        let mut buf = BytesMut::new();
        buf.put_u16_le(self.logs.len() as u16);
        for (&id, state) in &self.logs {
            buf.put_u16_le(id);
            buf.put_u64_le(state.next_pos);
            buf.put_u64_le(state.trimmed_to);
            buf.put_u32_le(state.entries.len() as u32);
            for (&pos, data) in &state.entries {
                buf.put_u64_le(pos);
                buf.put_u32_le(data.len() as u32);
                buf.put_slice(data);
            }
        }
        buf.freeze()
    }

    fn restore(&mut self, snapshot: &Bytes) {
        let mut buf = snapshot.clone();
        if buf.remaining() < 2 {
            return;
        }
        self.logs.clear();
        let n = buf.get_u16_le();
        for _ in 0..n {
            if buf.remaining() < 2 + 8 + 8 + 4 {
                return;
            }
            let id = buf.get_u16_le();
            let mut state = LogState {
                next_pos: buf.get_u64_le(),
                trimmed_to: buf.get_u64_le(),
                ..LogState::default()
            };
            let entries = buf.get_u32_le();
            for _ in 0..entries {
                if buf.remaining() < 12 {
                    return;
                }
                let pos = buf.get_u64_le();
                let len = buf.get_u32_le() as usize;
                if buf.remaining() < len {
                    return;
                }
                let data = buf.copy_to_bytes(len);
                state.cached_bytes += data.len();
                state.entries.insert(pos, data);
            }
            self.logs.insert(id, state);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn b(s: &str) -> Bytes {
        Bytes::from(s.to_string())
    }

    #[test]
    fn append_assigns_consecutive_positions() {
        let mut app = DLogApp::new([0, 1], 1 << 20);
        assert_eq!(
            app.apply(&DLogCommand::Append {
                log: 0,
                data: b("a")
            }),
            DLogResponse::Pos(0)
        );
        assert_eq!(
            app.apply(&DLogCommand::Append {
                log: 0,
                data: b("b")
            }),
            DLogResponse::Pos(1)
        );
        assert_eq!(
            app.apply(&DLogCommand::Append {
                log: 1,
                data: b("c")
            }),
            DLogResponse::Pos(0)
        );
        assert_eq!(app.appended(), 3);
    }

    #[test]
    fn multi_append_is_atomic_across_logs() {
        let mut app = DLogApp::new([0, 1, 2], 1 << 20);
        app.apply(&DLogCommand::Append {
            log: 1,
            data: b("x"),
        });
        let r = app.apply(&DLogCommand::MultiAppend {
            logs: vec![0, 1, 2],
            data: b("m"),
        });
        assert_eq!(r, DLogResponse::MultiPos(vec![(0, 0), (1, 1), (2, 0)]));
        // The value is readable at each assigned position.
        assert_eq!(
            app.apply(&DLogCommand::Read { log: 1, pos: 1 }),
            DLogResponse::Value(Some(b("m")))
        );
    }

    #[test]
    fn read_and_trim() {
        let mut app = DLogApp::new([0], 1 << 20);
        for i in 0..5 {
            app.apply(&DLogCommand::Append {
                log: 0,
                data: b(&format!("e{i}")),
            });
        }
        assert_eq!(
            app.apply(&DLogCommand::Read { log: 0, pos: 3 }),
            DLogResponse::Value(Some(b("e3")))
        );
        assert_eq!(
            app.apply(&DLogCommand::Trim { log: 0, pos: 3 }),
            DLogResponse::Ok
        );
        assert_eq!(
            app.apply(&DLogCommand::Read { log: 0, pos: 2 }),
            DLogResponse::Value(None),
            "trimmed entries are gone"
        );
        assert_eq!(
            app.apply(&DLogCommand::Read { log: 0, pos: 3 }),
            DLogResponse::Value(Some(b("e3")))
        );
        // Positions keep growing after a trim.
        assert_eq!(
            app.apply(&DLogCommand::Append {
                log: 0,
                data: b("e5")
            }),
            DLogResponse::Pos(5)
        );
    }

    #[test]
    fn unknown_log_is_rejected_gracefully() {
        let mut app = DLogApp::new([0], 1 << 20);
        assert_eq!(
            app.apply(&DLogCommand::Append {
                log: 9,
                data: b("x")
            }),
            DLogResponse::Value(None)
        );
    }

    #[test]
    fn cache_evicts_oldest() {
        let mut app = DLogApp::new([0], 10);
        for i in 0..5 {
            app.apply(&DLogCommand::Append {
                log: 0,
                data: Bytes::from(vec![i as u8; 4]),
            });
        }
        assert!(
            app.cached_bytes() <= 12,
            "cache bounded: {}",
            app.cached_bytes()
        );
        // Oldest entries evicted, newest readable.
        assert_eq!(
            app.apply(&DLogCommand::Read { log: 0, pos: 0 }),
            DLogResponse::Value(None)
        );
        assert!(matches!(
            app.apply(&DLogCommand::Read { log: 0, pos: 4 }),
            DLogResponse::Value(Some(_))
        ));
    }

    #[test]
    fn snapshot_restore_roundtrip() {
        let mut app = DLogApp::new([0, 1], 1 << 20);
        for i in 0..10 {
            app.apply(&DLogCommand::Append {
                log: i % 2,
                data: b(&format!("e{i}")),
            });
        }
        let snap = app.snapshot();
        let mut fresh = DLogApp::new([], 1 << 20);
        fresh.restore(&snap);
        assert_eq!(fresh.len_of(0), Some(5));
        assert_eq!(fresh.len_of(1), Some(5));
        assert_eq!(
            fresh.apply(&DLogCommand::Read { log: 1, pos: 4 }),
            DLogResponse::Value(Some(b("e9")))
        );
    }
}
