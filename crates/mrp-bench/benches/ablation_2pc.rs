//! Section 3 ablation: conflicting cross-partition transactions under
//! no-wait two-phase commit vs atomic-multicast ordering.

use mrp_bench::table::{fmt_f, Table};
use mrp_bench::{figures, Scale};

fn main() {
    let scale = Scale::from_env();
    let rows = figures::ablation_2pc(scale);
    let mut t = Table::new(
        "Ablation — 2PC aborts vs atomic multicast (32 concurrent cross-partition txns)",
        &[
            "hot_keys",
            "2pc_commits_per_s",
            "2pc_abort_pct",
            "multicast_txn_per_s",
        ],
    );
    for r in &rows {
        t.row(&[
            r.hot_keys.to_string(),
            fmt_f(r.twopc_commits_per_sec),
            format!("{}%", fmt_f(r.twopc_abort_pct)),
            fmt_f(r.multicast_txn_per_sec),
        ]);
    }
    t.print();
}
