//! Figure 4: YCSB A–F across the four systems, plus the workload-F
//! latency breakdown.

use mrp_bench::table::{fmt_f, Table};
use mrp_bench::{figures, Scale};
use mrp_ycsb::WorkloadKind;

fn main() {
    let scale = Scale::from_env();
    let rows = figures::fig4(scale, &WorkloadKind::all());
    let mut t = Table::new(
        "Figure 4 (top) — YCSB throughput, ops/s (100 client threads)",
        &[
            "workload",
            "cassandra-like",
            "mrp-store (indep.)",
            "mrp-store",
            "mysql-like",
        ],
    );
    for kind in WorkloadKind::all() {
        let get = |sys: &str| {
            rows.iter()
                .find(|r| r.workload == kind.letter() && r.system == sys)
                .map(|r| fmt_f(r.ops_per_sec))
                .unwrap_or_default()
        };
        t.row(&[
            kind.letter().to_string(),
            get("cassandra-like"),
            get("mrp-store (indep. rings)"),
            get("mrp-store"),
            get("mysql-like"),
        ]);
    }
    t.print();

    let mut f = Table::new(
        "Figure 4 (bottom) — workload F latency breakdown, ms",
        &["system", "read", "update", "read-modify-write"],
    );
    for r in rows.iter().filter(|r| r.workload == 'F') {
        if let Some((read, update, rmw)) = r.f_latency_ms {
            f.row(&[r.system.to_string(), fmt_f(read), fmt_f(update), fmt_f(rmw)]);
        }
    }
    f.print();
}
