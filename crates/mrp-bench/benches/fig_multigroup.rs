//! Multi-group multicast comparison (extension figure): the fraction of
//! multi-group messages on the x-axis, both atomic-multicast engines on
//! the identical mixed workload — genuine max-timestamp ordering
//! (wbcast) vs covering-group routing (Multi-Ring Paxos).
//!
//! Prints the table and writes the rows as `BENCH_multigroup.json` for
//! downstream tooling.

use mrp_bench::figures::MultigroupRow;
use mrp_bench::table::{fmt_f, Table};
use mrp_bench::{figures, Scale};

/// Hand-rolled JSON (the workspace is offline-hermetic: no serde).
fn to_json(rows: &[MultigroupRow]) -> String {
    let mut out = String::from("[\n");
    for (i, r) in rows.iter().enumerate() {
        out.push_str(&format!(
            "  {{\"engine\": \"{}\", \"batch\": \"{}\", \"multi_per_mille\": {}, \
             \"crash_ms\": {}, \"ops_per_sec\": {:.1}, \
             \"latency_ms\": {:.3}, \"single_ms\": {:.3}, \"multi_ms\": {:.3}, \"p99_ms\": {:.3}}}{}\n",
            r.engine,
            r.batch,
            r.multi_per_mille,
            r.crash_ms,
            r.ops_per_sec,
            r.latency_ms,
            r.single_ms,
            r.multi_ms,
            r.p99_ms,
            if i + 1 < rows.len() { "," } else { "" }
        ));
    }
    out.push(']');
    out
}

fn main() {
    let scale = Scale::from_env();
    let rows = figures::fig_multigroup(scale);
    let mut t = Table::new(
        "Multi-group multicast — genuine (wbcast) vs covering group (multiring); \
         3 groups x 3 processes, 24 sessions, 512 B requests, submission batching \
         off vs on (MRP_MULTIGROUP_CRASH_MS=<period> adds initiator churn)",
        &[
            "engine",
            "batch",
            "multi_permille",
            "crash_ms",
            "ops_per_sec",
            "latency_ms",
            "single_ms",
            "multi_ms",
            "p99_ms",
        ],
    );
    for r in &rows {
        t.row(&[
            r.engine.to_string(),
            r.batch.to_string(),
            r.multi_per_mille.to_string(),
            r.crash_ms.to_string(),
            fmt_f(r.ops_per_sec),
            fmt_f(r.latency_ms),
            fmt_f(r.single_ms),
            fmt_f(r.multi_ms),
            fmt_f(r.p99_ms),
        ]);
    }
    t.print();
    let json = to_json(&rows);
    let path = "BENCH_multigroup.json";
    match std::fs::write(path, &json) {
        Ok(()) => println!("wrote {path} ({} rows)", rows.len()),
        Err(e) => eprintln!("could not write {path}: {e}"),
    }
}
