//! Figure 6: dLog vertical scalability — aggregate throughput and
//! latency CDF as rings (and disks) are added.

use mrp_bench::table::{fmt_f, Table};
use mrp_bench::{figures, Scale};

fn main() {
    let scale = Scale::from_env();
    let rows = figures::fig6(scale);
    let mut t = Table::new(
        "Figure 6 — dLog vertical scalability (async disk, one disk per ring)",
        &["rings", "aggregate_ops_per_sec(1KB)", "pct_of_linear"],
    );
    for r in &rows {
        t.row(&[
            r.rings.to_string(),
            fmt_f(r.ops_per_sec),
            format!("{}%", fmt_f(r.pct_linear)),
        ]);
    }
    t.print();

    let mut cdf = Table::new(
        "Figure 6 (bottom) — latency CDF",
        &["rings", "p50_ms", "p90_ms", "p99_ms"],
    );
    for r in &rows {
        let q = |p: f64| {
            r.cdf
                .iter()
                .find(|&&(_, f)| f >= p)
                .map_or(0.0, |&(v, _)| v as f64 / 1000.0)
        };
        cdf.row(&[
            r.rings.to_string(),
            fmt_f(q(0.5)),
            fmt_f(q(0.9)),
            fmt_f(q(0.99)),
        ]);
    }
    cdf.print();
}
