//! Figure 9 (extension): atomic-multicast engine comparison —
//! Multi-Ring Paxos vs the timestamp-based Skeen/white-box engine on
//! the identical closed-loop workload as groups scale.

use mrp_bench::table::{fmt_f, Table};
use mrp_bench::{figures, Scale};

fn main() {
    let scale = Scale::from_env();
    let rows = figures::fig9(scale);
    let mut t = Table::new(
        "Figure 9 — engine comparison (3 processes, 8 sessions/group, 512 B requests)",
        &[
            "engine",
            "groups",
            "ops_per_sec",
            "latency_ms",
            "p50_ms",
            "p99_ms",
        ],
    );
    for r in &rows {
        t.row(&[
            r.engine.to_string(),
            r.groups.to_string(),
            fmt_f(r.ops_per_sec),
            fmt_f(r.latency_ms),
            fmt_f(r.p50_ms),
            fmt_f(r.p99_ms),
        ]);
    }
    t.print();
}
