//! Figure 9 (extension): atomic-multicast engine comparison —
//! Multi-Ring Paxos vs the timestamp-based Skeen/white-box engine on
//! the identical closed-loop workload as groups scale.
//!
//! Prints the table and writes `BENCH_fig9.json` — the client-side rows
//! plus an `engine_telemetry` section carrying the engines' own
//! phase-level counters, merged latency histograms and health verdicts
//! (schema documented in the `mrp-bench` crate docs).

use mrp_bench::figures::Fig9Row;
use mrp_bench::table::{fmt_f, Table};
use mrp_bench::{figures, Scale};
use std::fmt::Write as _;

/// Hand-rolled JSON (the workspace is offline-hermetic: no serde). The
/// metric names are dotted identifiers, so no string escaping is
/// needed.
fn to_json(rows: &[Fig9Row]) -> String {
    let mut out = String::from("{\n  \"rows\": [\n");
    for (i, r) in rows.iter().enumerate() {
        let _ = writeln!(
            out,
            "    {{\"engine\": \"{}\", \"groups\": {}, \"ops_per_sec\": {:.1}, \
             \"latency_ms\": {:.3}, \"p50_ms\": {:.3}, \"p99_ms\": {:.3}}}{}",
            r.engine,
            r.groups,
            r.ops_per_sec,
            r.latency_ms,
            r.p50_ms,
            r.p99_ms,
            if i + 1 < rows.len() { "," } else { "" }
        );
    }
    out.push_str("  ],\n  \"engine_telemetry\": [\n");
    for (i, r) in rows.iter().enumerate() {
        let t = &r.telemetry;
        let _ = write!(
            out,
            "    {{\"engine\": \"{}\", \"groups\": {}, \"nodes\": {}, \"healthy\": {},\n     \"counters\": {{",
            r.engine, r.groups, t.nodes, t.healthy
        );
        for (j, (name, v)) in t.counters.iter().enumerate() {
            let _ = write!(
                out,
                "\"{name}\": {v}{}",
                if j + 1 < t.counters.len() { ", " } else { "" }
            );
        }
        out.push_str("},\n     \"histograms\": {");
        for (j, (name, h)) in t.histograms.iter().enumerate() {
            let _ = write!(
                out,
                "\"{name}\": {{\"count\": {}, \"p50_us\": {}, \"p99_us\": {}, \"max_us\": {}}}{}",
                h.count(),
                h.quantile(0.5),
                h.quantile(0.99),
                h.max(),
                if j + 1 < t.histograms.len() { ", " } else { "" }
            );
        }
        let _ = writeln!(out, "}}}}{}", if i + 1 < rows.len() { "," } else { "" });
    }
    out.push_str("  ]\n}");
    out
}

fn main() {
    let scale = Scale::from_env();
    let rows = figures::fig9(scale);
    let mut t = Table::new(
        "Figure 9 — engine comparison (3 processes, 8 sessions/group, 512 B requests)",
        &[
            "engine",
            "groups",
            "ops_per_sec",
            "latency_ms",
            "p50_ms",
            "p99_ms",
            "healthy",
        ],
    );
    for r in &rows {
        t.row(&[
            r.engine.to_string(),
            r.groups.to_string(),
            fmt_f(r.ops_per_sec),
            fmt_f(r.latency_ms),
            fmt_f(r.p50_ms),
            fmt_f(r.p99_ms),
            r.telemetry.healthy.to_string(),
        ]);
    }
    t.print();
    let json = to_json(&rows);
    let path = "BENCH_fig9.json";
    match std::fs::write(path, &json) {
        Ok(()) => println!("wrote {path} ({} rows)", rows.len()),
        Err(e) => eprintln!("could not write {path}: {e}"),
    }
}
