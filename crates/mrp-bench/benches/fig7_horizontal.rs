//! Figure 7: MRP-Store horizontal scalability across EC2 regions —
//! aggregate throughput and the us-west-2 latency CDF.

use mrp_bench::table::{fmt_f, Table};
use mrp_bench::{figures, Scale};

fn main() {
    let scale = Scale::from_env();
    let rows = figures::fig7(scale);
    let mut t = Table::new(
        "Figure 7 — MRP-Store across EC2 regions (1 KB updates in 32 KB batches)",
        &["regions", "aggregate_ops_per_sec", "pct_of_linear"],
    );
    for r in &rows {
        t.row(&[
            r.regions.to_string(),
            fmt_f(r.ops_per_sec),
            format!("{}%", fmt_f(r.pct_linear)),
        ]);
    }
    t.print();

    let mut cdf = Table::new(
        "Figure 7 (bottom) — latency CDF at the us-west-2 client",
        &["regions", "p50_ms", "p90_ms", "p99_ms"],
    );
    for r in &rows {
        let q = |p: f64| {
            r.cdf
                .iter()
                .find(|&&(_, f)| f >= p)
                .map_or(0.0, |&(v, _)| v as f64 / 1000.0)
        };
        cdf.row(&[
            r.regions.to_string(),
            fmt_f(q(0.5)),
            fmt_f(q(0.9)),
            fmt_f(q(0.99)),
        ]);
    }
    cdf.print();
}
