//! Figure 5: dLog vs a Bookkeeper-like quorum log — throughput and
//! latency vs number of client threads (1 KB synchronous appends).

use mrp_bench::table::{fmt_f, Table};
use mrp_bench::{figures, Scale};

fn main() {
    let scale = Scale::from_env();
    let rows = figures::fig5(scale);
    let mut t = Table::new(
        "Figure 5 — dLog vs Bookkeeper-like (1 KB appends, sync writes)",
        &["clients", "system", "ops_per_sec", "latency_ms"],
    );
    for r in &rows {
        t.row(&[
            r.clients.to_string(),
            r.system.to_string(),
            fmt_f(r.ops_per_sec),
            fmt_f(r.latency_ms),
        ]);
    }
    t.print();
}
