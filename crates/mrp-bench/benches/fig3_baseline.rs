//! Figure 3: Multi-Ring Paxos baseline — throughput, latency,
//! coordinator CPU and latency CDF under five storage modes and four
//! request sizes.

use mrp_bench::table::{fmt_f, Table};
use mrp_bench::{figures, Scale};

fn main() {
    let scale = Scale::from_env();
    let rows = figures::fig3(scale);
    let mut t = Table::new(
        "Figure 3 — Multi-Ring Paxos baseline (1 ring x 3 processes, 10 proposer threads)",
        &[
            "mode",
            "size",
            "throughput_mbps",
            "latency_ms",
            "cpu_pct@coord",
        ],
    );
    for r in &rows {
        t.row(&[
            r.mode.to_string(),
            r.size.to_string(),
            fmt_f(r.mbps),
            fmt_f(r.latency_ms),
            fmt_f(r.cpu_pct),
        ]);
    }
    t.print();

    let mut cdf = Table::new(
        "Figure 3 (bottom-right) — latency CDF at 32 KB",
        &["mode", "p50_ms", "p90_ms", "p99_ms"],
    );
    for r in rows.iter().filter(|r| r.size == 32 * 1024) {
        let q = |p: f64| {
            r.cdf
                .iter()
                .find(|&&(_, f)| f >= p)
                .map_or(0.0, |&(v, _)| v as f64 / 1000.0)
        };
        cdf.row(&[
            r.mode.to_string(),
            fmt_f(q(0.5)),
            fmt_f(q(0.9)),
            fmt_f(q(0.99)),
        ]);
    }
    cdf.print();
}
