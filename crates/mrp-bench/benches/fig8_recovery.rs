//! Figure 8: impact of recovery on performance — throughput and latency
//! over a 300 s run with a replica kill at 20 s and restart at 240 s.

use mrp_bench::table::{fmt_f, Table};
use mrp_bench::{figures, Scale};

fn main() {
    let scale = Scale::from_env();
    let result = figures::fig8(scale);
    let mut t = Table::new(
        "Figure 8 — recovery timeline (replica killed / restarted)",
        &["t_s", "ops_per_sec", "latency_ms"],
    );
    for p in &result.timeline {
        t.row(&[p.t_s.to_string(), fmt_f(p.ops_per_sec), fmt_f(p.latency_ms)]);
    }
    t.print();
    println!("\nevents:");
    for (t_s, what) in &result.events {
        println!("  t={t_s:>4}s  {what}");
    }
    println!(
        "  checkpoints taken: {}   acceptor log trims: {}",
        result.checkpoints, result.trims
    );
}
