//! Figure 8: impact of recovery on performance — throughput and latency
//! over a 300 s run with a replica kill at 20 s and restart at 240 s,
//! swept over **both** atomic-multicast engines (the ring engine
//! recovers via checkpoint + acceptor-log retransmission, the white-box
//! engine via checkpoint + sequencer stream resync).
//!
//! Prints one table per engine and writes the runs as
//! `BENCH_fig8.json` for downstream tooling (see the bench-artifact
//! schema in the `mrp-bench` crate docs).

use mrp_amcast::EngineKind;
use mrp_bench::figures::Fig8Result;
use mrp_bench::table::{fmt_f, Table};
use mrp_bench::{figures, Scale};

/// Hand-rolled JSON (the workspace is offline-hermetic: no serde).
fn to_json(results: &[Fig8Result]) -> String {
    let mut out = String::from("[\n");
    for (i, r) in results.iter().enumerate() {
        out.push_str(&format!(
            "  {{\"engine\": \"{}\", \"checkpoints\": {}, \"trims\": {}, \"events\": [",
            r.engine, r.checkpoints, r.trims
        ));
        for (j, (t_s, what)) in r.events.iter().enumerate() {
            out.push_str(&format!(
                "{{\"t_s\": {t_s}, \"what\": \"{what}\"}}{}",
                if j + 1 < r.events.len() { ", " } else { "" }
            ));
        }
        out.push_str("], \"timeline\": [");
        for (j, p) in r.timeline.iter().enumerate() {
            out.push_str(&format!(
                "{{\"t_s\": {}, \"ops_per_sec\": {:.1}, \"latency_ms\": {:.3}}}{}",
                p.t_s,
                p.ops_per_sec,
                p.latency_ms,
                if j + 1 < r.timeline.len() { ", " } else { "" }
            ));
        }
        out.push_str(&format!(
            "]}}{}\n",
            if i + 1 < results.len() { "," } else { "" }
        ));
    }
    out.push(']');
    out
}

fn main() {
    let scale = Scale::from_env();
    let mut results = Vec::new();
    for kind in EngineKind::ALL {
        let result = figures::fig8(scale, kind);
        let mut t = Table::new(
            format!("Figure 8 — recovery timeline, {kind} engine (replica killed / restarted)"),
            &["t_s", "ops_per_sec", "latency_ms"],
        );
        for p in &result.timeline {
            t.row(&[p.t_s.to_string(), fmt_f(p.ops_per_sec), fmt_f(p.latency_ms)]);
        }
        t.print();
        println!("\nevents:");
        for (t_s, what) in &result.events {
            println!("  t={t_s:>4}s  {what}");
        }
        println!(
            "  checkpoints taken: {}   acceptor log trims: {}\n",
            result.checkpoints, result.trims
        );
        results.push(result);
    }
    let json = to_json(&results);
    let path = "BENCH_fig8.json";
    match std::fs::write(path, &json) {
        Ok(()) => println!("wrote {path} ({} runs)", results.len()),
        Err(e) => eprintln!("could not write {path}: {e}"),
    }
}
