//! Micro-benchmarks of the hot paths.
//!
//! Two kinds of benchmark live here:
//!
//! * Criterion-style per-iteration timings of the wire codec,
//!   deterministic merge, acceptor voting and YCSB key generation
//!   (printed as `bench <name> <ns>/iter`).
//! * Hand-timed throughput benchmarks of the submission path (batched
//!   vs unbatched, both engines, through a 3-process virtual-clock
//!   pump that routes every `Action::Send` through the real wire
//!   codec) and of burst decoding (per-frame copy-out vs the
//!   zero-copy [`FrameAccumulator`] path). These write
//!   `BENCH_micro.json` next to the other committed bench artifacts.
//!
//! Regression gate: set `MRP_MICRO_BASELINE=<path to a committed
//! BENCH_micro.json>` and the run exits non-zero if the fresh batched
//! submission throughput of either engine falls below the committed
//! *unbatched* baseline — batching must never be slower than the
//! un-batched path it replaced.

use std::collections::{BTreeMap, VecDeque};
use std::time::Instant;

use bytes::{Bytes, BytesMut};
use criterion::{criterion_group, BatchSize, Criterion, Throughput};
use mrp_amcast::{AmcastEngine, AnyEngine, BatchConfig, EngineKind};
use mrp_bench::Scale;
use mrp_transport::framing::{write_frame_into, FrameAccumulator};
use mrp_ycsb::{KeyChooser, SmallRng};
use multiring_paxos::codec;
use multiring_paxos::config::{single_ring, RingTuning};
use multiring_paxos::event::{Action, Event, Message, PersistToken, StateMachine, TimerKind};
use multiring_paxos::multiring::Merger;
use multiring_paxos::paxos::Acceptor;
use multiring_paxos::types::{
    Ballot, ConsensusValue, GroupId, InstanceId, ProcessId, RingId, Time, Value, ValueId,
};

fn phase2_msg(size: usize) -> Message {
    Message::Phase2 {
        ring: RingId::new(0),
        ballot: Ballot::new(1, ProcessId::new(0)),
        first: InstanceId::new(42),
        count: 1,
        value: ConsensusValue::Values(vec![Value::new(
            ValueId::new(ProcessId::new(1), 7),
            GroupId::new(0),
            vec![0xABu8; size],
        )]),
        votes: 2,
    }
}

fn bench_codec(c: &mut Criterion) {
    let mut group = c.benchmark_group("codec");
    for size in [512usize, 32 * 1024] {
        let msg = phase2_msg(size);
        group.throughput(Throughput::Bytes(codec::encoded_len(&msg) as u64));
        group.bench_function(format!("encode_{size}"), |b| {
            b.iter(|| {
                let mut buf = BytesMut::with_capacity(codec::encoded_len(&msg));
                codec::encode(&msg, &mut buf);
                buf
            });
        });
        let encoded = codec::encode_to_bytes(&msg);
        group.bench_function(format!("decode_{size}"), |b| {
            b.iter(|| {
                let mut buf = encoded.clone();
                codec::decode(&mut buf).expect("valid frame")
            });
        });
    }
    group.finish();
}

fn bench_merge(c: &mut Criterion) {
    c.bench_function("merge_poll_2rings_1000", |b| {
        b.iter_batched(
            || {
                let mut m = Merger::new(vec![GroupId::new(0), GroupId::new(1)], 1);
                for i in 1..=1000u64 {
                    for g in 0..2u16 {
                        m.push(
                            GroupId::new(g),
                            InstanceId::new(i),
                            1,
                            ConsensusValue::Values(vec![Value::new(
                                ValueId::new(ProcessId::new(u32::from(g)), i),
                                GroupId::new(g),
                                vec![0u8; 64],
                            )]),
                        );
                    }
                }
                m
            },
            |mut m| m.poll(),
            BatchSize::SmallInput,
        );
    });
}

fn bench_acceptor(c: &mut Criterion) {
    c.bench_function("acceptor_phase2_vote_x100", |b| {
        b.iter_batched(
            || {
                let mut a = Acceptor::new(RingId::new(0));
                a.on_phase1a(Ballot::new(1, ProcessId::new(0)), InstanceId::new(1));
                let v = ConsensusValue::Values(vec![Value::new(
                    ValueId::new(ProcessId::new(1), 1),
                    GroupId::new(0),
                    vec![0u8; 512],
                )]);
                (a, v)
            },
            |(mut a, v)| {
                for i in 1..=100u64 {
                    a.on_phase2(Ballot::new(1, ProcessId::new(0)), InstanceId::new(i), 1, &v);
                }
                a
            },
            BatchSize::SmallInput,
        );
    });
}

fn bench_ycsb(c: &mut Criterion) {
    c.bench_function("zipfian_next_x1000", |b| {
        let chooser = KeyChooser::zipfian(1_000_000);
        let mut rng = SmallRng::new(1);
        b.iter(|| {
            let mut acc = 0u64;
            for _ in 0..1000 {
                acc = acc.wrapping_add(chooser.next(&mut rng));
            }
            acc
        });
    });
}

criterion_group!(
    criterion_benches,
    bench_codec,
    bench_merge,
    bench_acceptor,
    bench_ycsb
);

// ---------------------------------------------------------------------
// Hand-timed throughput benchmarks (the criterion shim cannot export
// its timings, so these measure wall time themselves).
// ---------------------------------------------------------------------

const PAYLOAD: usize = 64;
const CHUNK: usize = 64;

/// A 3-process deployment driven to completion on a virtual clock.
///
/// Every [`Action::Send`] is encoded with the real wire codec and
/// decoded again at the destination, so the measured cost includes the
/// per-frame serialization that batching amortizes. Persists complete
/// immediately (in-memory durability); timers fire only when no
/// message is in flight, exactly like an idle network.
struct Pump {
    engines: Vec<AnyEngine>,
    inbox: VecDeque<(ProcessId, ProcessId, Bytes)>,
    persists: VecDeque<(ProcessId, PersistToken)>,
    timers: BTreeMap<(u64, u64), (ProcessId, TimerKind)>,
    now_us: u64,
    seq: u64,
    submitter: ProcessId,
    delivered: u64,
    wire_frames: u64,
    wire_bytes: u64,
}

impl Pump {
    fn new(kind: EngineKind, batched: bool) -> Pump {
        let tuning = RingTuning {
            // Batched deployments let one consensus instance carry a
            // whole submission batch; unbatched is the Figure 3
            // one-value-per-instance setting.
            values_per_instance: if batched { CHUNK } else { 1 },
            ..RingTuning::default()
        };
        let config = single_ring(3, tuning);
        let mut pump = Pump {
            engines: (0..3)
                .map(|p| kind.build(ProcessId::new(p), config.clone()))
                .collect(),
            inbox: VecDeque::new(),
            persists: VecDeque::new(),
            timers: BTreeMap::new(),
            now_us: 0,
            seq: 0,
            submitter: ProcessId::new(1),
            delivered: 0,
            wire_frames: 0,
            wire_bytes: 0,
        };
        for p in 0..3usize {
            if batched {
                let acts = pump.engines[p].set_batching(Time::ZERO, Some(BatchConfig::enabled()));
                assert!(acts.is_empty(), "no queued values at startup");
            }
            let acts = pump.engines[p].on_event(Time::ZERO, Event::Start);
            pump.absorb(ProcessId::new(p as u32), acts);
        }
        pump
    }

    fn absorb(&mut self, at: ProcessId, actions: Vec<Action>) {
        for a in actions {
            match a {
                Action::Send { to, msg } => {
                    let mut buf = BytesMut::with_capacity(codec::encoded_len(&msg));
                    codec::encode(&msg, &mut buf);
                    let frame = buf.freeze();
                    self.wire_frames += 1;
                    self.wire_bytes += frame.len() as u64;
                    self.inbox.push_back((at, to, frame));
                }
                Action::SetTimer { after_us, timer } => {
                    self.seq += 1;
                    self.timers
                        .insert((self.now_us + after_us, self.seq), (at, timer));
                }
                Action::Persist { token, .. } => self.persists.push_back((at, token)),
                Action::Deliver { .. } => {
                    if at == self.submitter {
                        self.delivered += 1;
                    }
                }
                Action::TrimStorage { .. } | Action::Respond { .. } => {}
            }
        }
    }

    fn step(&mut self) {
        if let Some((at, token)) = self.persists.pop_front() {
            let now = Time::from_micros(self.now_us);
            let acts = self.engines[at.value() as usize].on_event(now, Event::PersistDone(token));
            self.absorb(at, acts);
        } else if let Some((from, to, frame)) = self.inbox.pop_front() {
            let msg = codec::decode(&mut frame.clone()).expect("pump frames are valid");
            let now = Time::from_micros(self.now_us);
            let acts =
                self.engines[to.value() as usize].on_event(now, Event::Message { from, msg });
            self.absorb(to, acts);
        } else if let Some((&key, _)) = self.timers.iter().next() {
            let (at, timer) = self.timers.remove(&key).expect("just observed");
            self.now_us = self.now_us.max(key.0);
            let now = Time::from_micros(self.now_us);
            let acts = self.engines[at.value() as usize].on_event(now, Event::Timer(timer));
            self.absorb(at, acts);
        } else {
            panic!(
                "pump wedged with {} values delivered and nothing runnable",
                self.delivered
            );
        }
    }

    fn run_until_delivered(&mut self, target: u64) {
        let mut budget = 200_000_000u64;
        while self.delivered < target {
            self.step();
            budget -= 1;
            assert!(budget > 0, "pump exceeded its event budget");
        }
    }
}

struct SubmitRow {
    engine: &'static str,
    mode: &'static str,
    values: u64,
    elapsed_ns: u128,
    values_per_sec: f64,
    wire_frames: u64,
    wire_bytes: u64,
}

/// One measured submission run: `values` 64-byte payloads submitted at
/// a non-coordinator process, pumped until every one is delivered
/// locally. Batched mode submits in [`CHUNK`]-value batches through
/// [`AmcastEngine::multicast_batch`]; unbatched loops `multicast`.
fn run_submit(kind: EngineKind, batched: bool, values: u64) -> SubmitRow {
    let mut pump = Pump::new(kind, batched);
    let groups = [GroupId::new(0)];
    let submitter = pump.submitter;
    let start = Instant::now();
    if batched {
        let mut left = values;
        while left > 0 {
            let n = left.min(CHUNK as u64);
            let payloads: Vec<Bytes> = (0..n).map(|_| Bytes::from(vec![0xA5u8; PAYLOAD])).collect();
            let now = Time::from_micros(pump.now_us);
            let (_ids, acts) = pump.engines[submitter.value() as usize]
                .multicast_batch(now, &groups, payloads)
                .expect("submitter may propose to group 0");
            pump.absorb(submitter, acts);
            left -= n;
        }
    } else {
        for _ in 0..values {
            let now = Time::from_micros(pump.now_us);
            let (_id, acts) = pump.engines[submitter.value() as usize]
                .multicast(now, &groups, Bytes::from(vec![0xA5u8; PAYLOAD]))
                .expect("submitter may propose to group 0");
            pump.absorb(submitter, acts);
        }
    }
    pump.run_until_delivered(values);
    let elapsed = start.elapsed();
    SubmitRow {
        engine: kind.name(),
        mode: if batched { "batched" } else { "unbatched" },
        values,
        elapsed_ns: elapsed.as_nanos(),
        values_per_sec: values as f64 / elapsed.as_secs_f64(),
        wire_frames: pump.wire_frames,
        wire_bytes: pump.wire_bytes,
    }
}

/// Best-of-`reps` submission throughput (first rep doubles as warmup).
fn bench_submit(kind: EngineKind, batched: bool, values: u64, reps: u32) -> SubmitRow {
    let mut best: Option<SubmitRow> = None;
    for _ in 0..reps {
        let row = run_submit(kind, batched, values);
        if best
            .as_ref()
            .is_none_or(|b| row.values_per_sec > b.values_per_sec)
        {
            best = Some(row);
        }
    }
    best.expect("at least one rep")
}

struct DecodeRow {
    name: &'static str,
    frames: u64,
    bytes: u64,
    elapsed_ns: u128,
    mb_per_sec: f64,
}

/// A burst of length-prefixed 32 KiB frames, as one TCP read delivers.
fn burst(frames: usize) -> Vec<u8> {
    let msg = phase2_msg(32 * 1024);
    let mut wire = Vec::new();
    let mut scratch = BytesMut::new();
    for _ in 0..frames {
        write_frame_into(&mut wire, &msg, &mut scratch).expect("Vec writes never fail");
    }
    wire
}

/// Decodes `reps` bursts the way the accumulator worked before the
/// zero-copy shim: append the read into a `Vec<u8>`, copy each frame
/// body out into a fresh allocation, decode the copy, then shift the
/// consumed prefix out of the buffer.
fn decode_copying(wire: &[u8], reps: u32) -> DecodeRow {
    let mut frames = 0u64;
    let mut buf: Vec<u8> = Vec::new();
    let start = Instant::now();
    for _ in 0..reps {
        buf.extend_from_slice(wire);
        let mut off = 0usize;
        while buf.len() - off >= 4 {
            let len = u32::from_le_bytes(buf[off..off + 4].try_into().expect("4 bytes")) as usize;
            if buf.len() - off < 4 + len {
                break;
            }
            let body: Vec<u8> = buf[off + 4..off + 4 + len].to_vec();
            let mut frame = Bytes::from(body);
            let msg = codec::decode(&mut frame).expect("valid frame");
            assert!(matches!(msg, Message::Phase2 { .. }));
            frames += 1;
            off += 4 + len;
        }
        buf.drain(..off);
    }
    let elapsed = start.elapsed();
    let bytes = wire.len() as u64 * u64::from(reps);
    DecodeRow {
        name: "copying_32k",
        frames,
        bytes,
        elapsed_ns: elapsed.as_nanos(),
        mb_per_sec: bytes as f64 / elapsed.as_secs_f64() / (1024.0 * 1024.0),
    }
}

/// Decodes `reps` bursts through [`FrameAccumulator`]: one
/// freeze per burst, every payload a zero-copy slice of it.
fn decode_zero_copy(wire: &[u8], reps: u32) -> DecodeRow {
    let mut frames = 0u64;
    let mut acc = FrameAccumulator::new();
    let start = Instant::now();
    for _ in 0..reps {
        acc.extend(wire);
        while let Some(msg) = acc.next().expect("valid frames") {
            assert!(matches!(msg, Message::Phase2 { .. }));
            frames += 1;
        }
    }
    let elapsed = start.elapsed();
    let bytes = wire.len() as u64 * u64::from(reps);
    DecodeRow {
        name: "zero_copy_32k",
        frames,
        bytes,
        elapsed_ns: elapsed.as_nanos(),
        mb_per_sec: bytes as f64 / elapsed.as_secs_f64() / (1024.0 * 1024.0),
    }
}

/// Hand-rolled JSON (the workspace is offline-hermetic: no serde).
fn to_json(scale: Scale, submit: &[SubmitRow], decode: &[DecodeRow]) -> String {
    let vps = |engine: &str, mode: &str| {
        submit
            .iter()
            .find(|r| r.engine == engine && r.mode == mode)
            .map_or(0.0, |r| r.values_per_sec)
    };
    let mut out = String::from("{\n");
    out.push_str(&format!(
        "  \"scale\": \"{}\",\n",
        match scale {
            Scale::Full => "full",
            Scale::Smoke => "smoke",
        }
    ));
    out.push_str("  \"submit\": [\n");
    for (i, r) in submit.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"engine\": \"{}\", \"mode\": \"{}\", \"values\": {}, \
             \"elapsed_ns\": {}, \"values_per_sec\": {:.1}, \
             \"wire_frames\": {}, \"wire_bytes\": {}}}{}\n",
            r.engine,
            r.mode,
            r.values,
            r.elapsed_ns,
            r.values_per_sec,
            r.wire_frames,
            r.wire_bytes,
            if i + 1 < submit.len() { "," } else { "" }
        ));
    }
    out.push_str("  ],\n  \"decode\": [\n");
    for (i, r) in decode.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"name\": \"{}\", \"frames\": {}, \"bytes\": {}, \
             \"elapsed_ns\": {}, \"mb_per_sec\": {:.1}}}{}\n",
            r.name,
            r.frames,
            r.bytes,
            r.elapsed_ns,
            r.mb_per_sec,
            if i + 1 < decode.len() { "," } else { "" }
        ));
    }
    let decode_speedup = match (decode.first(), decode.last()) {
        (Some(copying), Some(zero)) if copying.mb_per_sec > 0.0 => {
            zero.mb_per_sec / copying.mb_per_sec
        }
        _ => 0.0,
    };
    out.push_str(&format!(
        "  ],\n  \"speedup\": {{\"submit_multiring\": {:.2}, \"submit_wbcast\": {:.2}, \
         \"decode_32k\": {:.2}}}\n}}",
        vps("multiring", "batched") / vps("multiring", "unbatched").max(1e-9),
        vps("wbcast", "batched") / vps("wbcast", "unbatched").max(1e-9),
        decode_speedup
    ));
    out
}

/// `MRP_MICRO_BASELINE=<path>`: fail the run if batched submission
/// throughput regressed below the unbatched baseline.
///
/// Two checks per run:
///
/// * Same machine (hardware-independent): each engine's fresh batched
///   run must stay within 10% of its fresh unbatched run — batching
///   must never lose to the path it replaces.
/// * Against the committed artifact: fresh batched multiring must beat
///   the committed *unbatched* multiring baseline outright. The
///   multiring gap is >4x, so the check holds across the hardware
///   differences between the committing machine and CI; the wbcast gap
///   (frame coalescing only — the virtual pump does not price
///   syscalls) is too thin to compare across machines.
fn check_baseline(submit: &[SubmitRow], baseline: Option<(String, String)>) -> Result<(), String> {
    let Some((path, text)) = baseline else {
        return Ok(());
    };
    let fresh = |engine: &str, mode: &str| {
        submit
            .iter()
            .find(|r| r.engine == engine && r.mode == mode)
            .map(|r| r.values_per_sec)
            .ok_or_else(|| format!("fresh run has no {mode} {engine} row"))
    };
    for engine in ["multiring", "wbcast"] {
        let unbatched = fresh(engine, "unbatched")?;
        let batched = fresh(engine, "batched")?;
        if batched < unbatched * 0.9 {
            return Err(format!(
                "batched {engine} submission lost to unbatched on the same machine: \
                 {batched:.0} < 0.9 x {unbatched:.0} values/s"
            ));
        }
        println!(
            "baseline gate: {engine} batched {batched:.0} vs unbatched {unbatched:.0} values/s"
        );
    }
    let doc = mrp_bench::json::parse(&text).map_err(|e| format!("parse {path}: {e}"))?;
    let committed = doc
        .get("submit")
        .and_then(|v| v.as_array())
        .ok_or_else(|| format!("{path}: no submit array"))?
        .iter()
        .find(|r| {
            r.get("engine").and_then(|v| v.as_str()) == Some("multiring")
                && r.get("mode").and_then(|v| v.as_str()) == Some("unbatched")
        })
        .and_then(|r| r.get("values_per_sec"))
        .and_then(mrp_bench::json::Value::as_f64)
        .ok_or_else(|| format!("{path}: no unbatched multiring baseline row"))?;
    let batched = fresh("multiring", "batched")?;
    if batched < committed {
        return Err(format!(
            "batched multiring submission regressed below the committed unbatched \
             baseline: {batched:.0} < {committed:.0} values/s"
        ));
    }
    println!(
        "baseline gate: batched multiring {batched:.0} values/s >= \
         committed unbatched baseline {committed:.0} values/s"
    );
    Ok(())
}

fn main() {
    criterion_benches();

    // Snapshot the committed baseline before this run overwrites the
    // artifact in place (CI points MRP_MICRO_BASELINE at the same
    // path the run writes).
    let baseline = std::env::var("MRP_MICRO_BASELINE").ok().map(|path| {
        let text = std::fs::read_to_string(&path).unwrap_or_else(|e| {
            eprintln!("MICRO BASELINE GATE FAILED: read {path}: {e}");
            std::process::exit(1);
        });
        (path, text)
    });

    let scale = Scale::from_env();
    let values = scale.pick(65_536u64, 8_192u64);
    let reps = scale.pick(5u32, 3u32);

    let mut submit = Vec::new();
    for kind in EngineKind::ALL {
        for batched in [false, true] {
            let row = bench_submit(kind, batched, values, reps);
            println!(
                "submit {}/{}: {:.0} values/s ({} values, {} wire frames, {} wire bytes)",
                row.engine,
                row.mode,
                row.values_per_sec,
                row.values,
                row.wire_frames,
                row.wire_bytes
            );
            submit.push(row);
        }
    }

    let wire = burst(scale.pick(64, 16));
    let decode_reps = scale.pick(200u32, 50u32);
    // Warmup, then measure.
    decode_copying(&wire, 2);
    decode_zero_copy(&wire, 2);
    let decode = vec![
        decode_copying(&wire, decode_reps),
        decode_zero_copy(&wire, decode_reps),
    ];
    for r in &decode {
        println!(
            "decode {}: {:.0} MB/s ({} frames, {} bytes)",
            r.name, r.mb_per_sec, r.frames, r.bytes
        );
    }

    let json = to_json(scale, &submit, &decode);
    let path = "BENCH_micro.json";
    match std::fs::write(path, &json) {
        Ok(()) => println!("wrote {path}"),
        Err(e) => eprintln!("could not write {path}: {e}"),
    }

    if let Err(e) = check_baseline(&submit, baseline) {
        eprintln!("MICRO BASELINE GATE FAILED: {e}");
        std::process::exit(1);
    }
}
