//! Criterion micro-benchmarks of the hot paths: wire codec,
//! deterministic merge, acceptor voting and YCSB key generation.

use bytes::BytesMut;
use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use mrp_ycsb::{KeyChooser, SmallRng};
use multiring_paxos::codec;
use multiring_paxos::event::Message;
use multiring_paxos::multiring::Merger;
use multiring_paxos::paxos::Acceptor;
use multiring_paxos::types::{
    Ballot, ConsensusValue, GroupId, InstanceId, ProcessId, RingId, Value, ValueId,
};

fn phase2_msg(size: usize) -> Message {
    Message::Phase2 {
        ring: RingId::new(0),
        ballot: Ballot::new(1, ProcessId::new(0)),
        first: InstanceId::new(42),
        count: 1,
        value: ConsensusValue::Values(vec![Value::new(
            ValueId::new(ProcessId::new(1), 7),
            GroupId::new(0),
            vec![0xABu8; size],
        )]),
        votes: 2,
    }
}

fn bench_codec(c: &mut Criterion) {
    let mut group = c.benchmark_group("codec");
    for size in [512usize, 32 * 1024] {
        let msg = phase2_msg(size);
        group.throughput(Throughput::Bytes(codec::encoded_len(&msg) as u64));
        group.bench_function(format!("encode_{size}"), |b| {
            b.iter(|| {
                let mut buf = BytesMut::with_capacity(codec::encoded_len(&msg));
                codec::encode(&msg, &mut buf);
                buf
            })
        });
        let encoded = codec::encode_to_bytes(&msg);
        group.bench_function(format!("decode_{size}"), |b| {
            b.iter(|| {
                let mut buf = encoded.clone();
                codec::decode(&mut buf).expect("valid frame")
            })
        });
    }
    group.finish();
}

fn bench_merge(c: &mut Criterion) {
    c.bench_function("merge_poll_2rings_1000", |b| {
        b.iter_batched(
            || {
                let mut m = Merger::new(vec![GroupId::new(0), GroupId::new(1)], 1);
                for i in 1..=1000u64 {
                    for g in 0..2u16 {
                        m.push(
                            GroupId::new(g),
                            InstanceId::new(i),
                            1,
                            ConsensusValue::Values(vec![Value::new(
                                ValueId::new(ProcessId::new(u32::from(g)), i),
                                GroupId::new(g),
                                vec![0u8; 64],
                            )]),
                        );
                    }
                }
                m
            },
            |mut m| m.poll(),
            BatchSize::SmallInput,
        )
    });
}

fn bench_acceptor(c: &mut Criterion) {
    c.bench_function("acceptor_phase2_vote_x100", |b| {
        b.iter_batched(
            || {
                let mut a = Acceptor::new(RingId::new(0));
                a.on_phase1a(Ballot::new(1, ProcessId::new(0)), InstanceId::new(1));
                let v = ConsensusValue::Values(vec![Value::new(
                    ValueId::new(ProcessId::new(1), 1),
                    GroupId::new(0),
                    vec![0u8; 512],
                )]);
                (a, v)
            },
            |(mut a, v)| {
                for i in 1..=100u64 {
                    a.on_phase2(Ballot::new(1, ProcessId::new(0)), InstanceId::new(i), 1, &v);
                }
                a
            },
            BatchSize::SmallInput,
        )
    });
}

fn bench_ycsb(c: &mut Criterion) {
    c.bench_function("zipfian_next_x1000", |b| {
        let chooser = KeyChooser::zipfian(1_000_000);
        let mut rng = SmallRng::new(1);
        b.iter(|| {
            let mut acc = 0u64;
            for _ in 0..1000 {
                acc = acc.wrapping_add(chooser.next(&mut rng));
            }
            acc
        })
    });
}

criterion_group!(
    benches,
    bench_codec,
    bench_merge,
    bench_acceptor,
    bench_ycsb
);
criterion_main!(benches);
