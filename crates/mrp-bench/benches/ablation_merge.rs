//! Section 4 ablation: deterministic-merge sensitivity to rate leveling
//! (λ, Δ) when one subscribed ring idles.

use mrp_bench::table::{fmt_f, Table};
use mrp_bench::{figures, Scale};

fn main() {
    let scale = Scale::from_env();
    let rows = figures::ablation_merge(scale);
    let mut t = Table::new(
        "Ablation — rate leveling: busy ring + idle ring at one learner",
        &["lambda", "delta_ms", "busy_latency_ms", "busy_ops_per_s"],
    );
    for r in &rows {
        t.row(&[
            r.lambda.to_string(),
            r.delta_ms.to_string(),
            if r.latency_ms.is_finite() {
                fmt_f(r.latency_ms)
            } else {
                "stalled".to_string()
            },
            fmt_f(r.ops_per_sec),
        ]);
    }
    t.print();
}
