//! Plain-text tables for bench reports (stdout + CSV).

use std::fmt::Write as _;

/// A simple column-aligned table.
#[derive(Debug)]
pub struct Table {
    title: String,
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// A table titled `title` with the given columns.
    pub fn new(title: impl Into<String>, header: &[&str]) -> Self {
        Self {
            title: title.into(),
            header: header.iter().map(ToString::to_string).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (stringifies every cell).
    pub fn row(&mut self, cells: &[String]) {
        self.rows.push(cells.to_vec());
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the aligned table.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                if i < widths.len() {
                    widths[i] = widths[i].max(c.len());
                } else {
                    widths.push(c.len());
                }
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "\n== {} ==", self.title);
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            cells
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{:>w$}", c, w = widths.get(i).copied().unwrap_or(c.len())))
                .collect::<Vec<_>>()
                .join("  ")
        };
        let _ = writeln!(out, "{}", fmt_row(&self.header, &widths));
        let _ = writeln!(
            out,
            "{}",
            "-".repeat(widths.iter().sum::<usize>() + 2 * widths.len())
        );
        for row in &self.rows {
            let _ = writeln!(out, "{}", fmt_row(row, &widths));
        }
        out
    }

    /// Renders machine-readable CSV.
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "{}", self.header.join(","));
        for row in &self.rows {
            let _ = writeln!(out, "{}", row.join(","));
        }
        out
    }

    /// Prints the table to stdout.
    pub fn print(&self) {
        print!("{}", self.render());
    }
}

/// Formats a float with sensible precision for reports.
pub fn fmt_f(v: f64) -> String {
    if v >= 1000.0 {
        format!("{v:.0}")
    } else if v >= 10.0 {
        format!("{v:.1}")
    } else {
        format!("{v:.2}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_and_csv() {
        let mut t = Table::new("demo", &["name", "value"]);
        t.row(&["alpha".into(), "1".into()]);
        t.row(&["b".into(), "22222".into()]);
        let r = t.render();
        assert!(r.contains("== demo =="));
        assert!(r.contains("alpha"));
        let csv = t.to_csv();
        assert_eq!(csv.lines().count(), 3);
        assert_eq!(csv.lines().next().unwrap(), "name,value");
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    fn float_formatting() {
        assert_eq!(fmt_f(12345.6), "12346");
        assert_eq!(fmt_f(99.94), "99.9");
        assert_eq!(fmt_f(1.234), "1.23");
    }
}
