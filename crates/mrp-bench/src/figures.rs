//! Parameterized runners for every figure of the paper's evaluation.
//!
//! Each `figN` function builds the deployment the paper describes,
//! drives it on the deterministic simulator, and returns structured
//! results; the bench targets print them as tables/series. Absolute
//! numbers depend on the calibrated CPU/disk/network models — the
//! *shape* (who wins, scaling factors, crossovers) is the reproduction
//! target (see the repository `README.md`).

use crate::harness::{EchoApp, OpenLoopClient, PingClient, Scale};
use bytes::Bytes;
use mrp_baselines::eventual::{BaselineClient, EventualServer};
use mrp_baselines::quorumlog::{Bookie, JournalPolicy, QuorumLogClient};
use mrp_baselines::single::SingleServer;
use mrp_baselines::twopc::{TwoPcClient, TxnParticipant};
use mrp_coord::PartitionMap;
use mrp_dlog::{DLogApp, DLogClient, DLogClientConfig, DLogDeployment, DLogTopology};
use mrp_sim::actor::Hosted;
use mrp_sim::cluster::{Cluster, SimConfig};
use mrp_sim::cpu::CpuModel;
use mrp_sim::disk::DiskModel;
use mrp_sim::net::{Region, Topology};
use mrp_store::client::{ClientOp, StoreClient, StoreClientConfig};
use mrp_store::command::StoreCommand;
use mrp_store::{StoreApp, StoreDeployment, StoreTopology};
use mrp_ycsb::{Workload, WorkloadKind, YcsbOp};
use multiring_paxos::config::{ClusterConfig, RingSpec, RingTuning, Roles, StorageMode};
use multiring_paxos::replica::{CheckpointPolicy, Replica};
use multiring_paxos::types::{ClientId, GroupId, ProcessId, RingId, Time};
use std::collections::BTreeMap;

/// CPU model used for every server process in the service-level
/// comparisons (calibrated so absolute throughputs land in the same
/// order of magnitude as the paper's testbed).
fn server_cpu() -> CpuModel {
    CpuModel::new(60, 2)
}

/// CPU model for the protocol baseline of Figure 3 (faster per event:
/// the dummy service does no work).
fn proto_cpu() -> CpuModel {
    CpuModel::new(8, 4)
}

// ---------------------------------------------------------------- fig 3

/// One row of Figure 3.
#[derive(Clone, Debug)]
pub struct Fig3Row {
    /// Storage mode name.
    pub mode: &'static str,
    /// Request size in bytes.
    pub size: usize,
    /// Delivered throughput in megabits per second.
    pub mbps: f64,
    /// Mean client latency in milliseconds.
    pub latency_ms: f64,
    /// Coordinator CPU utilization in percent.
    pub cpu_pct: f64,
    /// Latency CDF points `(us, fraction)` (kept for the 32 KB plot).
    pub cdf: Vec<(u64, f64)>,
}

/// A Figure 3 storage mode: name, acceptor mode, disk model factory.
type StorageModeRow = (&'static str, StorageMode, Option<fn() -> DiskModel>);

/// Figure 3: one ring, three processes (proposer+acceptor+learner), ten
/// closed-loop proposer threads, five storage modes × request sizes.
pub fn fig3(scale: Scale) -> Vec<Fig3Row> {
    let sizes: &[usize] = &[512, 2048, 8192, 32 * 1024];
    let modes: &[StorageModeRow] = &[
        ("in-memory", StorageMode::InMemory, None),
        ("async-disk", StorageMode::AsyncDisk, Some(DiskModel::hdd)),
        ("async-ssd", StorageMode::AsyncDisk, Some(DiskModel::ssd)),
        ("sync-disk", StorageMode::SyncDisk, Some(DiskModel::hdd)),
        ("sync-ssd", StorageMode::SyncDisk, Some(DiskModel::ssd)),
    ];
    let warmup_s = scale.pick(2, 1);
    let run_s = scale.pick(12, 2);
    let mut rows = Vec::new();
    for &(mode, storage, disk) in modes {
        for &size in sizes {
            let tuning = RingTuning {
                storage,
                lambda: 0,
                ..RingTuning::default()
            };
            let config = multiring_paxos::config::single_ring(3, tuning);
            let mut cluster = Cluster::new(
                SimConfig {
                    seed: 3,
                    ..SimConfig::default()
                },
                Topology::lan(8),
            );
            cluster.set_protocol(config.clone());
            for i in 0..3 {
                let p = ProcessId::new(i);
                let replica = Replica::new(
                    p,
                    config.clone(),
                    EchoApp::new(),
                    CheckpointPolicy {
                        interval_us: 0,
                        sync: false,
                    },
                );
                cluster.add_actor(p, Hosted::new(replica).boxed());
                cluster.set_cpu(p, proto_cpu());
                if let Some(mk) = disk {
                    cluster.add_disk(p, mk());
                }
            }
            let client_proc = ProcessId::new(50);
            let client_id = ClientId::new(1);
            let client = PingClient::new(
                client_id,
                10,
                ProcessId::new(0),
                GroupId::new(0),
                size,
                "fig3",
            )
            .warmup_until(Time::from_secs(warmup_s));
            cluster.add_actor(client_proc, Box::new(client));
            cluster.register_client(client_id, client_proc);
            cluster.start();
            cluster.run_until(Time::from_secs(warmup_s + run_s));

            let ops = cluster.metrics().counter("fig3/ops");
            let bytes = cluster.metrics().counter("fig3/bytes");
            let h = cluster.metrics().histogram("fig3/latency_us");
            let window_s = run_s as f64;
            let mbps = bytes as f64 * 8.0 / window_s / 1e6;
            let latency_ms = h.map_or(0.0, |h| h.mean() / 1000.0);
            let cdf = h.map(mrp_sim::metrics::Histogram::cdf).unwrap_or_default();
            let elapsed = cluster.now().as_micros();
            let cpu_pct = cluster
                .cpu(ProcessId::new(0))
                .map_or(0.0, |c| c.utilization(elapsed) * 100.0);
            let _ = ops;
            rows.push(Fig3Row {
                mode,
                size,
                mbps,
                latency_ms,
                cpu_pct,
                cdf,
            });
        }
    }
    rows
}

// ---------------------------------------------------------------- fig 4

/// One cell of Figure 4.
#[derive(Clone, Debug)]
pub struct Fig4Row {
    /// System name.
    pub system: &'static str,
    /// YCSB workload letter.
    pub workload: char,
    /// Completed operations per second.
    pub ops_per_sec: f64,
    /// Workload-F latency breakdown (read / update / rmw) in
    /// milliseconds, only for workload F.
    pub f_latency_ms: Option<(f64, f64, f64)>,
}

const YCSB_RECORDS: u64 = 10_000;
const YCSB_VALUE: usize = 256;

fn ycsb_to_store_op(op: YcsbOp) -> ClientOp {
    match op {
        YcsbOp::Read { key } => ClientOp::Single {
            cmd: StoreCommand::Read {
                key: Bytes::from(key),
            },
            tag: "read",
        },
        YcsbOp::Update { key, value } => ClientOp::Single {
            cmd: StoreCommand::Update {
                key: Bytes::from(key),
                value: Bytes::from(value),
            },
            tag: "update",
        },
        YcsbOp::Insert { key, value } => ClientOp::Single {
            cmd: StoreCommand::Insert {
                key: Bytes::from(key),
                value: Bytes::from(value),
            },
            tag: "insert",
        },
        YcsbOp::Scan { key, len } => ClientOp::Single {
            cmd: StoreCommand::Scan {
                from: Bytes::from(key),
                to: Bytes::from_static(b"user\xff"),
                limit: len,
            },
            tag: "scan",
        },
        YcsbOp::ReadModifyWrite { key, value } => ClientOp::ReadModifyWrite {
            key: Bytes::from(key),
            value: Bytes::from(value),
        },
    }
}

fn ycsb_to_cmd(op: YcsbOp) -> (StoreCommand, &'static str) {
    match ycsb_to_store_op(op) {
        ClientOp::Single { cmd, tag } => (cmd, tag),
        // Baselines execute RMW as one update round-trip (their servers
        // have no read-then-write protocol; this only favors them).
        ClientOp::ReadModifyWrite { key, value } => (StoreCommand::Update { key, value }, "rmw"),
    }
}

fn run_mrp_ycsb(
    kind: WorkloadKind,
    scale: Scale,
    independent: bool,
) -> (f64, Option<(f64, f64, f64)>) {
    // The paper's local configuration: M=1, Delta=5ms, lambda=9000 —
    // lambda must sit above the per-ring delivery rate or the merge
    // throttles every partition to the global ring's skip rate.
    let tuning = RingTuning {
        lambda: 9_000,
        ..RingTuning::default()
    };
    // Pinned to the paper's engine: these rows are labeled as
    // Multi-Ring Paxos results, so MRP_ENGINE must not flip them.
    let topo = if independent {
        StoreTopology::independent(3, tuning)
    } else {
        StoreTopology::local(3, tuning)
    }
    .engine(mrp_amcast::EngineKind::MultiRing);
    let deployment = StoreDeployment::build(&topo);
    let mut cluster = Cluster::new(
        SimConfig {
            seed: 4,
            ..SimConfig::default()
        },
        Topology::lan(16),
    );
    cluster.set_protocol(deployment.config.clone());
    for (p, partition) in deployment.all_replicas() {
        let mut app = StoreApp::new(partition);
        for i in 0..YCSB_RECORDS {
            let key = mrp_ycsb::workload::key_for(i);
            if deployment.partition_map.group_of(key.as_bytes()).value() == partition {
                app.load(Bytes::from(key), Bytes::from(vec![1u8; YCSB_VALUE]));
            }
        }
        let replica = Replica::new(
            p,
            deployment.config.clone(),
            app,
            CheckpointPolicy {
                interval_us: 0,
                sync: false,
            },
        );
        cluster.add_actor(p, Hosted::new(replica).boxed());
        cluster.set_cpu(p, server_cpu());
    }
    let warmup_s = scale.pick(2, 1);
    let run_s = scale.pick(8, 2);
    let client_proc = ProcessId::new(900);
    let client_id = ClientId::new(1);
    let mut workload = Workload::new(kind, YCSB_RECORDS, YCSB_VALUE, 7);
    let gen = move |_r: &mut mrp_sim::rng::Rng| ycsb_to_store_op(workload.next_op());
    let mut cfg = StoreClientConfig::new(client_id, 100);
    cfg.warmup_until = Time::from_secs(warmup_s);
    let client = StoreClient::new(cfg, deployment.clone(), gen);
    cluster.add_actor(client_proc, Box::new(client));
    cluster.register_client(client_id, client_proc);
    cluster.start();
    cluster.run_until(Time::from_secs(warmup_s + run_s));
    let ops = cluster.metrics().counter("store/ops") as f64 / run_s as f64;
    let breakdown = (kind == WorkloadKind::F).then(|| {
        let g = |tag: &str| {
            cluster
                .metrics()
                .histogram(&format!("store/latency_us/{tag}"))
                .map_or(0.0, |h| h.mean() / 1000.0)
        };
        (g("read"), g("update"), g("rmw"))
    });
    (ops, breakdown)
}

fn run_eventual_ycsb(kind: WorkloadKind, scale: Scale) -> (f64, Option<(f64, f64, f64)>) {
    let mut cluster = Cluster::new(
        SimConfig {
            seed: 4,
            ..SimConfig::default()
        },
        Topology::lan(8),
    );
    let servers: Vec<ProcessId> = (0..3).map(ProcessId::new).collect();
    let map = PartitionMap::hash(3, 0);
    for (i, &s) in servers.iter().enumerate() {
        let replicas: Vec<ProcessId> = servers.iter().copied().filter(|&q| q != s).collect();
        let mut server = EventualServer::new(i as u16, replicas);
        for r in 0..YCSB_RECORDS {
            let key = mrp_ycsb::workload::key_for(r);
            if map.group_of(key.as_bytes()).value() == i as u16 {
                server.load(Bytes::from(key), Bytes::from(vec![1u8; YCSB_VALUE]));
            }
        }
        cluster.add_actor(s, Box::new(server));
        cluster.set_cpu(s, server_cpu());
    }
    let owners: BTreeMap<u16, ProcessId> = (0..3u16).map(|i| (i, servers[i as usize])).collect();
    let warmup_s = scale.pick(2, 1);
    let run_s = scale.pick(8, 2);
    let client_proc = ProcessId::new(900);
    let client_id = ClientId::new(1);
    let mut workload = Workload::new(kind, YCSB_RECORDS, YCSB_VALUE, 7);
    let client = BaselineClient::new(client_id, 100, map, owners, "cassandra", move |_rng| {
        ycsb_to_cmd(workload.next_op())
    })
    .warmup_until(Time::from_secs(warmup_s));
    cluster.add_actor(client_proc, Box::new(client));
    cluster.register_client(client_id, client_proc);
    cluster.start();
    cluster.run_until(Time::from_secs(warmup_s + run_s));
    let ops = cluster.metrics().counter("cassandra/ops") as f64 / run_s as f64;
    let breakdown = (kind == WorkloadKind::F).then(|| {
        let g = |tag: &str| {
            cluster
                .metrics()
                .histogram(&format!("cassandra/latency_us/{tag}"))
                .map_or(0.0, |h| h.mean() / 1000.0)
        };
        (g("read"), g("rmw"), g("rmw"))
    });
    (ops, breakdown)
}

fn run_single_ycsb(kind: WorkloadKind, scale: Scale) -> (f64, Option<(f64, f64, f64)>) {
    let mut cluster = Cluster::new(
        SimConfig {
            seed: 4,
            ..SimConfig::default()
        },
        Topology::lan(4),
    );
    let server = ProcessId::new(0);
    let mut s = SingleServer::new();
    for r in 0..YCSB_RECORDS {
        s.load(
            Bytes::from(mrp_ycsb::workload::key_for(r)),
            Bytes::from(vec![1u8; YCSB_VALUE]),
        );
    }
    cluster.add_actor(server, Box::new(s));
    cluster.set_cpu(server, server_cpu());
    let warmup_s = scale.pick(2, 1);
    let run_s = scale.pick(8, 2);
    let client_proc = ProcessId::new(900);
    let client_id = ClientId::new(1);
    let mut workload = Workload::new(kind, YCSB_RECORDS, YCSB_VALUE, 7);
    let client = BaselineClient::new(
        client_id,
        100,
        PartitionMap::hash(1, 0),
        BTreeMap::from([(0u16, server)]),
        "mysql",
        move |_rng| ycsb_to_cmd(workload.next_op()),
    )
    .warmup_until(Time::from_secs(warmup_s));
    cluster.add_actor(client_proc, Box::new(client));
    cluster.register_client(client_id, client_proc);
    cluster.start();
    cluster.run_until(Time::from_secs(warmup_s + run_s));
    let ops = cluster.metrics().counter("mysql/ops") as f64 / run_s as f64;
    let breakdown = (kind == WorkloadKind::F).then(|| {
        let g = |tag: &str| {
            cluster
                .metrics()
                .histogram(&format!("mysql/latency_us/{tag}"))
                .map_or(0.0, |h| h.mean() / 1000.0)
        };
        (g("read"), g("rmw"), g("rmw"))
    });
    (ops, breakdown)
}

/// Figure 4: YCSB A–F over the four systems.
pub fn fig4(scale: Scale, workloads: &[WorkloadKind]) -> Vec<Fig4Row> {
    let mut rows = Vec::new();
    for &kind in workloads {
        let (ops, f) = run_eventual_ycsb(kind, scale);
        rows.push(Fig4Row {
            system: "cassandra-like",
            workload: kind.letter(),
            ops_per_sec: ops,
            f_latency_ms: f,
        });
        let (ops, f) = run_mrp_ycsb(kind, scale, true);
        rows.push(Fig4Row {
            system: "mrp-store (indep. rings)",
            workload: kind.letter(),
            ops_per_sec: ops,
            f_latency_ms: f,
        });
        let (ops, f) = run_mrp_ycsb(kind, scale, false);
        rows.push(Fig4Row {
            system: "mrp-store",
            workload: kind.letter(),
            ops_per_sec: ops,
            f_latency_ms: f,
        });
        let (ops, f) = run_single_ycsb(kind, scale);
        rows.push(Fig4Row {
            system: "mysql-like",
            workload: kind.letter(),
            ops_per_sec: ops,
            f_latency_ms: f,
        });
    }
    rows
}

// ---------------------------------------------------------------- fig 5

/// One point of Figure 5.
#[derive(Clone, Debug)]
pub struct Fig5Row {
    /// System name.
    pub system: &'static str,
    /// Client threads.
    pub clients: u32,
    /// Appends per second.
    pub ops_per_sec: f64,
    /// Mean latency in milliseconds.
    pub latency_ms: f64,
}

/// The journal disk of the log comparison: a disk with a write cache
/// (sync writes ~350 µs, 200 MB/s streaming).
fn journal_disk() -> DiskModel {
    DiskModel::custom("journal", 350, 200)
}

/// Figure 5: dLog (2 rings × 3 servers, synchronous writes) vs a
/// Bookkeeper-like quorum log over the same 3 servers/disks; 1 KB
/// appends, 1–200 client threads.
pub fn fig5(scale: Scale) -> Vec<Fig5Row> {
    let sweep: &[u32] = &[1, 10, 50, 100, 200];
    let warmup_s = scale.pick(2, 1);
    let run_s = scale.pick(8, 2);
    let mut rows = Vec::new();
    for &clients in sweep {
        // --- dLog ---
        let tuning = RingTuning {
            storage: StorageMode::SyncDisk,
            lambda: 1_000,
            ..RingTuning::default()
        };
        let deployment = DLogDeployment::build(
            &DLogTopology::new(2, tuning).engine(mrp_amcast::EngineKind::MultiRing),
        );
        let mut cluster = Cluster::new(
            SimConfig {
                seed: 5,
                ..SimConfig::default()
            },
            Topology::lan(8),
        );
        cluster.set_protocol(deployment.config.clone());
        let logs: Vec<u16> = deployment.group_of_log.keys().copied().collect();
        for &s in &deployment.servers {
            let app = DLogApp::new(logs.clone(), 200 * 1024 * 1024);
            let replica = Replica::new(
                s,
                deployment.config.clone(),
                app,
                CheckpointPolicy {
                    interval_us: 0,
                    sync: false,
                },
            );
            cluster.add_actor(s, Hosted::new(replica).boxed());
            cluster.set_cpu(s, server_cpu());
            // One journal disk per ring (paper: one disk per ring).
            for r in 0..=2u16 {
                let d = cluster.add_disk(s, journal_disk());
                cluster.map_ring_to_disk(s, RingId::new(r), d);
            }
        }
        let client_proc = ProcessId::new(900);
        let client_id = ClientId::new(1);
        let mut cfg = DLogClientConfig::new(client_id, clients);
        cfg.warmup_until = Time::from_secs(warmup_s);
        let client = DLogClient::new(cfg, deployment.clone());
        cluster.add_actor(client_proc, Box::new(client));
        cluster.register_client(client_id, client_proc);
        cluster.start();
        cluster.run_until(Time::from_secs(warmup_s + run_s));
        rows.push(Fig5Row {
            system: "dlog",
            clients,
            ops_per_sec: cluster.metrics().counter("dlog/ops") as f64 / run_s as f64,
            latency_ms: cluster
                .metrics()
                .histogram("dlog/latency_us")
                .map_or(0.0, |h| h.mean() / 1000.0),
        });

        // --- Bookkeeper-like ---
        let mut cluster = Cluster::new(
            SimConfig {
                seed: 5,
                ..SimConfig::default()
            },
            Topology::lan(8),
        );
        let ensemble: Vec<ProcessId> = (0..3).map(ProcessId::new).collect();
        for &b in &ensemble {
            cluster.add_actor(
                b,
                Box::new(Bookie::new(JournalPolicy {
                    // Aggressive batching: large chunks, long linger —
                    // the mechanism the paper blames for Bookkeeper's
                    // latency (Section 8.3.3).
                    flush_bytes: 256 * 1024,
                    flush_interval_us: 150_000,
                    disk: 0,
                })),
            );
            cluster.set_cpu(b, server_cpu());
            cluster.add_disk(b, journal_disk());
        }
        let client_proc = ProcessId::new(900);
        let client_id = ClientId::new(1);
        let client = QuorumLogClient::new(client_id, clients, ensemble, 2, 1024, "bookkeeper")
            .warmup_until(Time::from_secs(warmup_s));
        cluster.add_actor(client_proc, Box::new(client));
        cluster.register_client(client_id, client_proc);
        cluster.start();
        cluster.run_until(Time::from_secs(warmup_s + run_s));
        rows.push(Fig5Row {
            system: "bookkeeper-like",
            clients,
            ops_per_sec: cluster.metrics().counter("bookkeeper/ops") as f64 / run_s as f64,
            latency_ms: cluster
                .metrics()
                .histogram("bookkeeper/latency_us")
                .map_or(0.0, |h| h.mean() / 1000.0),
        });
    }
    rows
}

// ---------------------------------------------------------------- fig 6

/// One point of Figure 6.
#[derive(Clone, Debug)]
pub struct Fig6Row {
    /// Number of log rings.
    pub rings: u16,
    /// Aggregate throughput in 1 KB-append operations per second.
    pub ops_per_sec: f64,
    /// Scalability relative to linear extrapolation from 1 ring, in %.
    pub pct_linear: f64,
    /// Latency CDF points in microseconds.
    pub cdf: Vec<(u64, f64)>,
}

/// Figure 6: dLog vertical scalability — 1..5 log rings, one disk per
/// ring, asynchronous writes; clients submit 32 KB batches of 1 KB
/// appends.
pub fn fig6(scale: Scale) -> Vec<Fig6Row> {
    let warmup_s = scale.pick(2, 1);
    let run_s = scale.pick(8, 2);
    let max_rings = scale.pick(5u16, 3);
    let mut rows: Vec<Fig6Row> = Vec::new();
    let mut base: Option<f64> = None;
    for rings in 1..=max_rings {
        let tuning = RingTuning {
            storage: StorageMode::AsyncDisk,
            lambda: 2_000,
            ..RingTuning::default()
        };
        let deployment = DLogDeployment::build(
            &DLogTopology::new(rings, tuning).engine(mrp_amcast::EngineKind::MultiRing),
        );
        let mut cluster = Cluster::new(
            SimConfig {
                seed: 6,
                ..SimConfig::default()
            },
            Topology::lan(8),
        );
        cluster.set_protocol(deployment.config.clone());
        let logs: Vec<u16> = deployment.group_of_log.keys().copied().collect();
        for &s in &deployment.servers {
            let app = DLogApp::new(logs.clone(), 200 * 1024 * 1024);
            let replica = Replica::new(
                s,
                deployment.config.clone(),
                app,
                CheckpointPolicy {
                    interval_us: 0,
                    sync: false,
                },
            );
            cluster.add_actor(s, Hosted::new(replica).boxed());
            // The paper's 32-core servers absorb per-byte work across
            // rings; charge per-event cost only so the disks (one per
            // ring) govern scaling as in the paper.
            cluster.set_cpu(s, CpuModel::new(40, 0));
            for r in 0..=rings {
                let d = cluster.add_disk(s, DiskModel::hdd());
                cluster.map_ring_to_disk(s, RingId::new(r), d);
            }
        }
        let client_proc = ProcessId::new(900);
        let client_id = ClientId::new(1);
        let mut cfg = DLogClientConfig::new(client_id, 16 * u32::from(rings));
        cfg.append_bytes = 32 * 1024; // a 32 KB packet of 1 KB appends
        cfg.warmup_until = Time::from_secs(warmup_s);
        let client = DLogClient::new(cfg, deployment.clone());
        cluster.add_actor(client_proc, Box::new(client));
        cluster.register_client(client_id, client_proc);
        cluster.start();
        cluster.run_until(Time::from_secs(warmup_s + run_s));
        // One 32 KB packet = 32 logical 1 KB appends.
        let ops = cluster.metrics().counter("dlog/ops") as f64 * 32.0 / run_s as f64;
        let pct = match base {
            None => {
                base = Some(ops);
                100.0
            }
            Some(b) => ops / (b * f64::from(rings)) * 100.0,
        };
        let cdf = cluster
            .metrics()
            .histogram("dlog/latency_us")
            .map(mrp_sim::metrics::Histogram::cdf)
            .unwrap_or_default();
        rows.push(Fig6Row {
            rings,
            ops_per_sec: ops,
            pct_linear: pct,
            cdf,
        });
    }
    rows
}

// ---------------------------------------------------------------- fig 7

/// One point of Figure 7.
#[derive(Clone, Debug)]
pub struct Fig7Row {
    /// Number of regions (= partitions/rings).
    pub regions: u16,
    /// Aggregate throughput in operations per second (1 KB updates).
    pub ops_per_sec: f64,
    /// Scalability relative to linear extrapolation, %.
    pub pct_linear: f64,
    /// Latency CDF (us) measured at the us-west-2 client.
    pub cdf: Vec<(u64, f64)>,
}

/// Figure 7: MRP-Store deployed across four EC2 regions — one
/// partition ring per region plus a global ring over all replicas. The
/// deployment is constant (all four regions, as in the paper); the sweep
/// adds client load region by region. Latency stays roughly constant
/// (it is governed by the fixed global-ring circuit) while aggregate
/// throughput adds up per region.
pub fn fig7(scale: Scale) -> Vec<Fig7Row> {
    let warmup_s = scale.pick(5, 3);
    let run_s = scale.pick(15, 4);
    let max_active = scale.pick(4u16, 2);
    let region_order = [
        Region::UsWest2,
        Region::UsWest1,
        Region::UsEast1,
        Region::EuWest1,
    ];
    let mut rows: Vec<Fig7Row> = Vec::new();
    let mut base: Option<f64> = None;
    for active in 1..=max_active {
        let tuning = RingTuning::wide_area();
        let topo = StoreTopology {
            partitions: 4,
            replicas_per_partition: 3,
            global_ring: true,
            tuning,
            global_tuning: tuning,
            engine: mrp_amcast::EngineKind::MultiRing,
        };
        let deployment = StoreDeployment::build(&topo);
        let mut net = Topology::ec2_four_regions();
        for part in 0..4u16 {
            let site = region_order[part as usize].site();
            for &p in &deployment.replicas[&part] {
                net.assign(p, site);
            }
            net.assign(ProcessId::new(900 + u32::from(part)), site);
        }
        let mut cluster = Cluster::new(
            SimConfig {
                seed: 7,
                ..SimConfig::default()
            },
            net,
        );
        cluster.set_protocol(deployment.config.clone());
        for (p, partition) in deployment.all_replicas() {
            let replica = Replica::new(
                p,
                deployment.config.clone(),
                StoreApp::new(partition),
                CheckpointPolicy {
                    interval_us: 0,
                    sync: false,
                },
            );
            cluster.add_actor(p, Hosted::new(replica).boxed());
            cluster.set_cpu(p, server_cpu());
        }
        // Clients in the first `active` regions, each writing only keys
        // owned by its local partition.
        for part in 0..active {
            let client_proc = ProcessId::new(900 + u32::from(part));
            let client_id = ClientId::new(1 + u64::from(part));
            let map = deployment.partition_map.clone();
            let keys: Vec<Bytes> = (0..200_000u64)
                .map(|i| Bytes::from(format!("key{i:09}")))
                .filter(|k| map.group_of(k).value() == part)
                .take(2_000)
                .collect();
            let mut n = 0usize;
            let gen = move |_r: &mut mrp_sim::rng::Rng| {
                n += 1;
                ClientOp::Single {
                    cmd: StoreCommand::Insert {
                        key: keys[n % keys.len()].clone(),
                        value: Bytes::from(vec![0x42u8; 1024]),
                    },
                    tag: "update",
                }
            };
            let mut cfg = StoreClientConfig::new(client_id, 200);
            cfg.batch = Some(mrp_store::client::ClientBatching {
                max_bytes: 32 * 1024,
                linger_us: 5_000,
            });
            cfg.warmup_until = Time::from_secs(warmup_s);
            cfg.metric_prefix = format!("fig7/r{part}");
            cfg.proposer_override
                .insert(GroupId::new(part), deployment.replicas[&part][0]);
            let client = StoreClient::new(cfg, deployment.clone(), gen);
            cluster.add_actor(client_proc, Box::new(client));
            cluster.register_client(client_id, client_proc);
        }
        cluster.start();
        cluster.run_until(Time::from_secs(warmup_s + run_s));
        let mut total_ops = 0.0;
        for part in 0..active {
            total_ops += cluster.metrics().counter(&format!("fig7/r{part}/ops")) as f64;
        }
        let ops = total_ops / run_s as f64;
        let pct = match base {
            None => {
                base = Some(ops);
                100.0
            }
            Some(b) => ops / (b * f64::from(active)) * 100.0,
        };
        let cdf = cluster
            .metrics()
            .histogram("fig7/r0/latency_us")
            .map(mrp_sim::metrics::Histogram::cdf)
            .unwrap_or_default();
        rows.push(Fig7Row {
            regions: active,
            ops_per_sec: ops,
            pct_linear: pct,
            cdf,
        });
    }
    rows
}

// ---------------------------------------------------------------- fig 8

/// One window of the Figure 8 timeline.
#[derive(Clone, Debug)]
pub struct Fig8Point {
    /// Window start, seconds.
    pub t_s: u64,
    /// Completed operations per second in the window.
    pub ops_per_sec: f64,
    /// Mean latency in the window, milliseconds.
    pub latency_ms: f64,
}

/// The Figure 8 result: the timeline plus event annotations.
#[derive(Clone, Debug)]
pub struct Fig8Result {
    /// The atomic-multicast engine the run used.
    pub engine: &'static str,
    /// Per-window points.
    pub timeline: Vec<Fig8Point>,
    /// `(time s, event)` annotations.
    pub events: Vec<(u64, &'static str)>,
    /// Checkpoints taken by the replicas.
    pub checkpoints: u64,
    /// Acceptor log trims executed (ring engine only; the white-box
    /// engine prunes sequencer history instead, which the simulator does
    /// not count as a storage trim).
    pub trims: u64,
}

/// Figure 8: impact of recovery — a replica is killed at 20 s and
/// restarts at 240 s of a 300 s run; replicas checkpoint synchronously
/// every 30 s, acceptors trim after checkpoints; the system runs at
/// roughly 75 % of its peak load. Parameterized over the ordering
/// engine: the ring engine recovers through checkpoint + acceptor-log
/// retransmission, the white-box engine through checkpoint + sequencer
/// stream resync — both behind the same engine-generic replica surface.
pub fn fig8(scale: Scale, kind: mrp_amcast::EngineKind) -> Fig8Result {
    type StoreReplica = Hosted<Replica<StoreApp>>;
    type StoreEngineReplica = Hosted<mrp_amcast::EngineReplica<StoreApp>>;
    let total_s = scale.pick(300u64, 30);
    let kill_s = scale.pick(20u64, 4);
    let restart_s = scale.pick(240u64, 18);
    let ckpt_interval_s = scale.pick(30u64, 5);

    // Ring: three proposer/acceptors (p0..p2) + three replicas (p3..p5).
    let tuning = RingTuning {
        storage: StorageMode::AsyncDisk,
        lambda: 2_000,
        trim_interval_us: ckpt_interval_s * 1_000_000,
        ..RingTuning::default()
    };
    let mut spec = RingSpec::new(RingId::new(0)).tuning(tuning);
    for i in 0..3 {
        spec = spec.member(ProcessId::new(i), Roles::PROPOSER | Roles::ACCEPTOR);
    }
    for i in 3..6 {
        spec = spec.member(ProcessId::new(i), Roles::LEARNER);
    }
    let mut builder = ClusterConfig::builder()
        .ring(spec)
        .group(GroupId::new(0), RingId::new(0));
    for i in 3..6 {
        builder = builder.subscribe(ProcessId::new(i), GroupId::new(0));
    }
    let config = builder.build().expect("fig8 config");

    let mut cluster = Cluster::new(
        SimConfig {
            seed: 8,
            election_timeout_us: 500_000,
            series_window_us: 5_000_000,
            ..SimConfig::default()
        },
        Topology::lan(8),
    );
    cluster.set_protocol(config.clone());
    for i in 0..3 {
        let p = ProcessId::new(i);
        cluster.add_actor(p, Hosted::new(kind.build(p, config.clone())).boxed());
        cluster.set_cpu(p, server_cpu());
        cluster.add_disk(p, DiskModel::hdd());
    }
    let policy = CheckpointPolicy {
        interval_us: ckpt_interval_s * 1_000_000,
        sync: true,
    };
    for i in 3..6 {
        let p = ProcessId::new(i);
        cluster.add_recoverable_replica_actor(kind, p, config.clone(), policy, || StoreApp::new(0));
        cluster.set_cpu(p, server_cpu());
        cluster.add_disk(p, DiskModel::ssd());
    }
    // Open-loop load at ~75% of the CPU-bound peak.
    let client_proc = ProcessId::new(900);
    let client_id = ClientId::new(1);
    let mut k = 0u64;
    let client = OpenLoopClient::new(
        client_id,
        ProcessId::new(0),
        GroupId::new(0),
        360, // ~2800 ops/s, about 70% of the measured peak
        "fig8",
        move |_req| {
            k += 1;
            StoreCommand::Insert {
                key: Bytes::from(format!("key{:06}", k % 5_000)),
                value: Bytes::from(vec![0x7Au8; 128]),
            }
            .encode()
        },
    );
    cluster.add_actor(client_proc, Box::new(client));
    cluster.register_client(client_id, client_proc);
    cluster.start();
    cluster.schedule_crash(Time::from_secs(kill_s), ProcessId::new(4));
    cluster.schedule_restart(Time::from_secs(restart_s), ProcessId::new(4));
    cluster.run_until(Time::from_secs(total_s));

    let mut timeline = Vec::new();
    if let Some(ops) = cluster.metrics().series("fig8/ops") {
        let lat = cluster.metrics().series("fig8/latency_sum_us");
        for (t, n) in ops.points() {
            let window_s = ops.window_us() as f64 / 1e6;
            let latency_ms = lat.map_or(0.0, |l| l.at(t) / n.max(1.0) / 1000.0);
            timeline.push(Fig8Point {
                t_s: t.as_micros() / 1_000_000,
                ops_per_sec: n / window_s,
                latency_ms,
            });
        }
    }
    let mut checkpoints = 0;
    for i in 3..6 {
        let p = ProcessId::new(i);
        if let Some(r) = cluster.actor_as::<StoreReplica>(p) {
            checkpoints += r.inner().checkpoints_taken();
        } else if let Some(r) = cluster.actor_as::<StoreEngineReplica>(p) {
            checkpoints += r.inner().checkpoints_taken();
        }
    }
    Fig8Result {
        engine: kind.name(),
        timeline,
        events: vec![
            (kill_s, "replica terminated"),
            (
                restart_s,
                "replica restarts (checkpoint + resync/retransmission)",
            ),
        ],
        checkpoints,
        trims: cluster.metrics().counter("trim_storage"),
    }
}

// ------------------------------------------------------------- ablations

/// One row of the 2PC-vs-multicast ablation.
#[derive(Clone, Debug)]
pub struct Ablation2pcRow {
    /// Hot keys per partition (smaller = more contention).
    pub hot_keys: u64,
    /// 2PC committed transactions per second.
    pub twopc_commits_per_sec: f64,
    /// 2PC abort ratio in percent.
    pub twopc_abort_pct: f64,
    /// Atomic-multicast ordered transactions per second (never abort).
    pub multicast_txn_per_sec: f64,
}

/// Section 3 ablation: conflicting cross-partition transactions under
/// no-wait 2PC vs ordered execution through the global ring.
pub fn ablation_2pc(scale: Scale) -> Vec<Ablation2pcRow> {
    let warmup_s = scale.pick(1, 1);
    let run_s = scale.pick(6, 2);
    let sweep: &[u64] = &[10_000, 100, 10, 2];
    let mut rows = Vec::new();
    for &hot in sweep {
        // --- 2PC ---
        let mut cluster = Cluster::new(SimConfig::default(), Topology::lan(8));
        let parts: Vec<ProcessId> = (0..2).map(ProcessId::new).collect();
        for &p in &parts {
            cluster.add_actor(p, Box::new(TxnParticipant::new()));
            cluster.set_cpu(p, server_cpu());
        }
        let client_proc = ProcessId::new(900);
        let client_id = ClientId::new(1);
        let client = TwoPcClient::new(client_id, 32, parts, hot, "2pc")
            .warmup_until(Time::from_secs(warmup_s));
        cluster.add_actor(client_proc, Box::new(client));
        cluster.register_client(client_id, client_proc);
        cluster.start();
        cluster.run_until(Time::from_secs(warmup_s + run_s));
        let commits = cluster.metrics().counter("2pc/commit") as f64;
        let aborts = cluster.metrics().counter("2pc/abort") as f64;

        // --- atomic multicast: the same conflicting pairs ordered via
        // the global ring always commit ---
        let tuning = RingTuning {
            lambda: 2_000,
            ..RingTuning::default()
        };
        let deployment = StoreDeployment::build(
            &StoreTopology::local(2, tuning).engine(mrp_amcast::EngineKind::MultiRing),
        );
        let mut cluster = Cluster::new(SimConfig::default(), Topology::lan(16));
        cluster.set_protocol(deployment.config.clone());
        for (p, partition) in deployment.all_replicas() {
            let replica = Replica::new(
                p,
                deployment.config.clone(),
                StoreApp::new(partition),
                CheckpointPolicy {
                    interval_us: 0,
                    sync: false,
                },
            );
            cluster.add_actor(p, Hosted::new(replica).boxed());
            cluster.set_cpu(p, server_cpu());
        }
        let global = deployment.global_group.expect("global ring");
        let payload = StoreCommand::Batch(vec![
            StoreCommand::Insert {
                key: Bytes::from_static(b"x"),
                value: Bytes::from_static(b"1"),
            },
            StoreCommand::Insert {
                key: Bytes::from_static(b"y"),
                value: Bytes::from_static(b"2"),
            },
        ])
        .encode();
        let client_proc = ProcessId::new(900);
        let client_id = ClientId::new(1);
        let target = deployment.proposer_of[&global];
        let client = PingClient::new(client_id, 32, target, global, payload.len(), "mcast")
            .with_payload(payload.clone())
            .warmup_until(Time::from_secs(warmup_s));
        cluster.add_actor(client_proc, Box::new(client));
        cluster.register_client(client_id, client_proc);
        cluster.start();
        cluster.run_until(Time::from_secs(warmup_s + run_s));
        let mcast = cluster.metrics().counter("mcast/ops") as f64;

        rows.push(Ablation2pcRow {
            hot_keys: hot,
            twopc_commits_per_sec: commits / run_s as f64,
            twopc_abort_pct: if commits + aborts > 0.0 {
                aborts / (commits + aborts) * 100.0
            } else {
                0.0
            },
            multicast_txn_per_sec: mcast / run_s as f64,
        });
    }
    rows
}

/// One row of the rate-leveling ablation.
#[derive(Clone, Debug)]
pub struct AblationMergeRow {
    /// λ of the idle ring (instances/s; 0 disables rate leveling).
    pub lambda: u64,
    /// Δ of the idle ring, milliseconds.
    pub delta_ms: u64,
    /// Mean delivery latency of the busy group, milliseconds.
    pub latency_ms: f64,
    /// Operations per second on the busy group.
    pub ops_per_sec: f64,
}

/// Section 4 ablation: a learner subscribed to a busy and an idle ring
/// only delivers at the pace of the idle ring unless rate leveling
/// (λ, Δ) keeps it flowing.
pub fn ablation_merge(scale: Scale) -> Vec<AblationMergeRow> {
    let warmup_s = scale.pick(1, 1);
    let run_s = scale.pick(6, 2);
    let sweep: &[(u64, u64)] = &[(0, 5), (200, 100), (2_000, 20), (9_000, 5)];
    let mut rows = Vec::new();
    for &(lambda, delta_ms) in sweep {
        let mk_tuning = |l: u64| RingTuning {
            lambda: l,
            delta_us: delta_ms * 1000,
            ..RingTuning::default()
        };
        let mut builder = ClusterConfig::builder();
        for ring in 0..2u16 {
            let mut spec = RingSpec::new(RingId::new(ring)).tuning(mk_tuning(lambda));
            for p in 0..3 {
                spec = spec.member(ProcessId::new(p), Roles::ALL);
            }
            builder = builder
                .ring(spec)
                .group(GroupId::new(ring), RingId::new(ring));
        }
        for p in 0..3 {
            builder = builder
                .subscribe(ProcessId::new(p), GroupId::new(0))
                .subscribe(ProcessId::new(p), GroupId::new(1));
        }
        let config = builder.build().expect("merge ablation config");
        let mut cluster = Cluster::new(SimConfig::default(), Topology::lan(8));
        cluster.set_protocol(config.clone());
        for p in 0..3 {
            let pid = ProcessId::new(p);
            let replica = Replica::new(
                pid,
                config.clone(),
                EchoApp::new(),
                CheckpointPolicy {
                    interval_us: 0,
                    sync: false,
                },
            );
            cluster.add_actor(pid, Hosted::new(replica).boxed());
        }
        // Busy client on group 0; group 1 idles entirely.
        let client_proc = ProcessId::new(900);
        let client_id = ClientId::new(1);
        let client = PingClient::new(
            client_id,
            16,
            ProcessId::new(0),
            GroupId::new(0),
            512,
            "busy",
        )
        .warmup_until(Time::from_secs(warmup_s));
        cluster.add_actor(client_proc, Box::new(client));
        cluster.register_client(client_id, client_proc);
        cluster.start();
        cluster.run_until(Time::from_secs(warmup_s + run_s));
        rows.push(AblationMergeRow {
            lambda,
            delta_ms,
            latency_ms: cluster
                .metrics()
                .histogram("busy/latency_us")
                .map_or(f64::INFINITY, |h| h.mean() / 1000.0),
            ops_per_sec: cluster.metrics().counter("busy/ops") as f64 / run_s as f64,
        });
    }
    rows
}

// ---------------------------------------------------------------- fig 9

/// Aggregated engine telemetry for one benchmark cell: the per-node
/// [`mrp_amcast::TelemetrySnapshot`]s collected by
/// [`Cluster::collect_engine_telemetry`] at the end of the run, folded
/// across nodes (counters summed, latency histograms merged).
#[derive(Clone, Debug, Default)]
pub struct EngineTelemetrySummary {
    /// Nodes that contributed a snapshot.
    pub nodes: usize,
    /// Whether every node's end-of-run health probe came back clean.
    pub healthy: bool,
    /// Protocol counters summed over the nodes.
    pub counters: BTreeMap<String, u64>,
    /// Phase-latency histograms merged over the nodes.
    pub histograms: BTreeMap<String, mrp_amcast::Histogram>,
}

/// One row of the engine comparison (Figure 9, an extension of the
/// paper's evaluation: same workload ordered by different
/// atomic-multicast engines).
#[derive(Clone, Debug)]
pub struct Fig9Row {
    /// Engine name.
    pub engine: &'static str,
    /// Number of multicast groups.
    pub groups: u16,
    /// Completed operations per second.
    pub ops_per_sec: f64,
    /// Mean client latency in milliseconds.
    pub latency_ms: f64,
    /// Median client latency in milliseconds.
    pub p50_ms: f64,
    /// 99th-percentile client latency in milliseconds.
    pub p99_ms: f64,
    /// The engines' own phase-level telemetry for this cell.
    pub telemetry: EngineTelemetrySummary,
}

/// A deployment for the engine comparison: `groups` rings over the same
/// `n` processes (membership rotated so coordinators/sequencers spread),
/// every process playing all roles and subscribing to every group.
fn engines_config(groups: u16, n: u32, tuning: RingTuning) -> ClusterConfig {
    let mut builder = ClusterConfig::builder();
    for g in 0..groups {
        let mut spec = RingSpec::new(RingId::new(g)).tuning(tuning);
        for j in 0..n {
            let p = ProcessId::new((u32::from(g) + j) % n);
            spec = spec.member(p, Roles::ALL);
        }
        builder = builder.ring(spec).group(GroupId::new(g), RingId::new(g));
    }
    for p in 0..n {
        for g in 0..groups {
            builder = builder.subscribe(ProcessId::new(p), GroupId::new(g));
        }
    }
    builder.build().expect("engines config is valid")
}

/// Figure 9: Multi-Ring Paxos vs the timestamp-based white-box engine
/// on the identical closed-loop workload, as the number of groups
/// grows. Both engines run behind the same engine-generic replica, so
/// the difference is purely the ordering path.
pub fn fig9(scale: Scale) -> Vec<Fig9Row> {
    use mrp_amcast::{EngineKind, EngineReplica};
    let group_counts: &[u16] = scale.pick(&[1, 2, 4], &[1, 2]);
    let warmup_s = scale.pick(2, 1);
    let run_s = scale.pick(10, 2);
    let n = 3u32;
    let mut rows = Vec::new();
    for kind in EngineKind::ALL {
        for &groups in group_counts {
            let tuning = RingTuning {
                lambda: 3_000,
                delta_us: 5_000,
                ..RingTuning::default()
            };
            let config = engines_config(groups, n, tuning);
            let mut cluster = Cluster::new(
                SimConfig {
                    seed: 9,
                    ..SimConfig::default()
                },
                Topology::lan(16),
            );
            cluster.set_protocol(config.clone());
            for p in 0..n {
                let pid = ProcessId::new(p);
                let replica = EngineReplica::new(
                    kind,
                    pid,
                    config.clone(),
                    EchoApp::new(),
                    CheckpointPolicy {
                        interval_us: 0,
                        sync: false,
                    },
                );
                cluster.add_actor(pid, Hosted::new(replica).boxed());
                // The replica is added as a plain actor, so install the
                // engine telemetry probe by hand (the recoverable-actor
                // surfaces do this automatically).
                cluster.set_telemetry_probe(
                    pid,
                    Box::new(|actor, now| {
                        let replica = actor
                            .as_any()
                            .downcast_mut::<Hosted<EngineReplica<EchoApp>>>()?
                            .inner();
                        Some((replica.telemetry(), replica.health(now)))
                    }),
                );
                cluster.set_cpu(pid, proto_cpu());
            }
            for g in 0..groups {
                let client_proc = ProcessId::new(900 + u32::from(g));
                let client_id = ClientId::new(u64::from(g) + 1);
                // Target the group's ring-rotation head so load (and the
                // sequencer role) spreads over the processes.
                let target = ProcessId::new(u32::from(g) % n);
                let client = PingClient::new(client_id, 8, target, GroupId::new(g), 512, "fig9")
                    .warmup_until(Time::from_secs(warmup_s));
                cluster.add_actor(client_proc, Box::new(client));
                cluster.register_client(client_id, client_proc);
            }
            cluster.start();
            cluster.run_until(Time::from_secs(warmup_s + run_s));
            let per_node = cluster.collect_engine_telemetry();
            let mut telemetry = EngineTelemetrySummary {
                nodes: per_node.len(),
                // `collect_engine_telemetry` folds health issues into
                // `engine.health.<code>` counters; none means every
                // node's probe came back clean.
                healthy: !cluster
                    .metrics()
                    .counter_names()
                    .any(|name| name.starts_with("engine.health.")),
                ..EngineTelemetrySummary::default()
            };
            for snapshot in per_node.values() {
                for (name, &v) in &snapshot.counters {
                    *telemetry.counters.entry(name.clone()).or_insert(0) += v;
                }
                for (name, h) in &snapshot.histograms {
                    telemetry
                        .histograms
                        .entry(name.clone())
                        .or_default()
                        .merge(h);
                }
            }
            let h = cluster.metrics().histogram("fig9/latency_us");
            rows.push(Fig9Row {
                engine: kind.name(),
                groups,
                ops_per_sec: cluster.metrics().counter("fig9/ops") as f64 / run_s as f64,
                latency_ms: h.map_or(0.0, |h| h.mean() / 1000.0),
                p50_ms: h.map_or(0.0, |h| h.quantile(0.5) as f64 / 1000.0),
                p99_ms: h.map_or(0.0, |h| h.quantile(0.99) as f64 / 1000.0),
                telemetry,
            });
        }
    }
    rows
}

// ------------------------------------------------------- fig multigroup

/// One row of the multi-group multicast comparison: the same mixed
/// workload with a growing fraction of multi-group messages, ordered by
/// each engine. The white-box engine orders them genuinely among the
/// addressed groups; Multi-Ring Paxos routes them through a covering
/// (global-ring-shaped) group.
#[derive(Clone, Debug)]
pub struct MultigroupRow {
    /// Engine name.
    pub engine: &'static str,
    /// Submission batching at the replicas: `"off"` (one engine round
    /// per value, the default deployment) or `"on"` (the
    /// `BatchConfig::enabled` defaults plus 64-value consensus
    /// instances for the ring engine).
    pub batch: &'static str,
    /// Fraction of multi-group messages, per mille.
    pub multi_per_mille: u32,
    /// Initiator-churn period in milliseconds (`0` = no churn): every
    /// `crash_ms` the process that initiates the multi-group messages
    /// is crashed and restarted half a period later, so the row
    /// measures throughput with multi-group rounds repeatedly orphaned
    /// mid-flight. Set via the `MRP_MULTIGROUP_CRASH_MS` env var.
    pub crash_ms: u64,
    /// Completed operations per second.
    pub ops_per_sec: f64,
    /// Mean client latency in milliseconds, all operations.
    pub latency_ms: f64,
    /// Mean latency of single-group operations, milliseconds.
    pub single_ms: f64,
    /// Mean latency of multi-group operations, milliseconds.
    pub multi_ms: f64,
    /// 99th-percentile client latency in milliseconds.
    pub p99_ms: f64,
}

/// Extension figure: genuine multi-group multicast vs covering-group
/// routing, as the fraction of multi-group messages grows (x-axis).
/// Three groups over three processes, every process subscribing to
/// every group — so the ring engine has a covering group available and
/// both engines run the identical workload behind the identical
/// engine-generic replica.
///
/// Setting `MRP_MULTIGROUP_CRASH_MS=<period>` adds **initiator churn**:
/// every period the process that initiates the multi-group messages is
/// crashed (orphaning its in-flight Skeen rounds) and restarted half a
/// period later, and client sessions retry abandoned operations — so
/// `BENCH_multigroup.json` records throughput while orphan recovery
/// (wbcast) / coordinator re-election (both engines) runs continuously.
pub fn fig_multigroup(scale: Scale) -> Vec<MultigroupRow> {
    use crate::harness::MixedGroupClient;
    use mrp_amcast::{EngineKind, EngineReplica};
    let fractions: &[u32] = scale.pick(&[0, 50, 200, 500, 1000], &[0, 500]);
    let warmup_s = scale.pick(2, 1);
    let run_s = scale.pick(10, 2);
    let crash_ms: u64 = std::env::var("MRP_MULTIGROUP_CRASH_MS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(0);
    let n = 3u32;
    let groups = 3u16;
    let mut rows = Vec::new();
    for batch in ["off", "on"] {
        // The replicas build their engines through `EngineKind::build`,
        // which reads the production batching knobs from the
        // environment — including the engines rebuilt when the churn
        // schedule restarts a crashed replica, so the env var (not a
        // one-shot setter) is the correct switch here.
        std::env::set_var("MRP_BATCH", if batch == "on" { "1" } else { "0" });
        for kind in EngineKind::ALL {
            for &multi_per_mille in fractions {
                let tuning = RingTuning {
                    lambda: 3_000,
                    delta_us: 5_000,
                    // Batched submissions arrive as one multi-value
                    // proposal: let the ring engine pack them into one
                    // consensus instance instead of 64 rounds.
                    values_per_instance: if batch == "on" { 64 } else { 1 },
                    ..RingTuning::default()
                };
                let config = engines_config(groups, n, tuning);
                let mut cluster = Cluster::new(
                    SimConfig {
                        seed: 11,
                        election_timeout_us: 50_000,
                        ..SimConfig::default()
                    },
                    Topology::lan(16),
                );
                cluster.set_protocol(config.clone());
                let policy = CheckpointPolicy {
                    // Churn runs checkpoint so a restarted victim rejoins
                    // from a snapshot instead of replaying from genesis.
                    interval_us: if crash_ms > 0 { 100_000 } else { 0 },
                    sync: false,
                };
                for p in 0..n {
                    let pid = ProcessId::new(p);
                    if crash_ms > 0 {
                        let cfg = config.clone();
                        cluster.add_recoverable_replica_actor(kind, pid, cfg, policy, EchoApp::new);
                    } else {
                        let replica =
                            EngineReplica::new(kind, pid, config.clone(), EchoApp::new(), policy);
                        cluster.add_actor(pid, Hosted::new(replica).boxed());
                    }
                    cluster.set_cpu(pid, proto_cpu());
                }
                let targets: Vec<(ProcessId, GroupId)> = (0..groups)
                    .map(|g| (ProcessId::new(u32::from(g) % n), GroupId::new(g)))
                    .collect();
                // The multi-group initiator (the first target) dies and
                // comes back every churn period.
                if crash_ms > 0 {
                    let victim = targets[0].0;
                    let period = crash_ms * 1_000;
                    let mut t = warmup_s * 1_000_000 + period;
                    while t + period / 2 < (warmup_s + run_s) * 1_000_000 {
                        cluster.schedule_crash(Time::from_micros(t), victim);
                        cluster.schedule_restart(Time::from_micros(t + period / 2), victim);
                        t += period;
                    }
                }
                let client_proc = ProcessId::new(950);
                let client_id = ClientId::new(1);
                let mut client = MixedGroupClient::new(
                    client_id,
                    24,
                    targets,
                    multi_per_mille,
                    512,
                    "multigroup",
                )
                .warmup_until(Time::from_secs(warmup_s));
                if crash_ms > 0 {
                    client = client.with_retry(crash_ms * 1_000 / 2);
                }
                cluster.add_actor(client_proc, Box::new(client));
                cluster.register_client(client_id, client_proc);
                cluster.start();
                cluster.run_until(Time::from_secs(warmup_s + run_s));
                let h = cluster.metrics().histogram("multigroup/latency_us");
                let single = cluster.metrics().histogram("multigroup/latency_us/single");
                let multi = cluster.metrics().histogram("multigroup/latency_us/multi");
                rows.push(MultigroupRow {
                    engine: kind.name(),
                    batch,
                    multi_per_mille,
                    crash_ms,
                    ops_per_sec: cluster.metrics().counter("multigroup/ops") as f64 / run_s as f64,
                    latency_ms: h.map_or(0.0, |h| h.mean() / 1000.0),
                    single_ms: single.map_or(0.0, |h| h.mean() / 1000.0),
                    multi_ms: multi.map_or(0.0, |h| h.mean() / 1000.0),
                    p99_ms: h.map_or(0.0, |h| h.quantile(0.99) as f64 / 1000.0),
                });
            }
        }
    }
    std::env::remove_var("MRP_BATCH");
    rows
}
