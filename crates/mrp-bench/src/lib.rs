//! # Benchmark harness: regenerating the paper's evaluation
//!
//! One bench target per figure of Section 8 (run with
//! `cargo bench -p mrp-bench --bench <name>`):
//!
//! | target | paper artifact |
//! |---|---|
//! | `fig3_baseline` | Fig. 3 — Multi-Ring Paxos under 5 storage modes × request sizes |
//! | `fig4_ycsb` | Fig. 4 — YCSB A–F: Cassandra-like vs MRP-Store (indep.) vs MRP-Store vs MySQL-like |
//! | `fig5_dlog` | Fig. 5 — dLog vs Bookkeeper-like quorum log |
//! | `fig6_vertical` | Fig. 6 — dLog vertical scalability (1–5 rings/disks) |
//! | `fig7_horizontal` | Fig. 7 — MRP-Store across 4 EC2 regions |
//! | `fig8_recovery` | Fig. 8 — recovery impact timeline |
//! | `ablation_2pc` | §3 — 2PC aborts vs atomic-multicast ordering |
//! | `ablation_merge` | §4 — rate-leveling (Δ, λ) sensitivity |
//! | `fig_multigroup` | extension — genuine multi-group multicast vs global-ring routing as the multi-group fraction grows (emits `BENCH_multigroup.json`) |
//! | `micro` | Criterion micro-benchmarks of the hot paths |
//!
//! Every harness prints the same rows/series the paper reports and is
//! parameterized by [`Scale`] so the test suite can run a fast smoke
//! version of the exact same code (`MRP_BENCH_SCALE=smoke`).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod figures;
pub mod harness;
pub mod table;

pub use harness::{EchoApp, MixedGroupClient, OpenLoopClient, PingClient, Scale};
pub use table::Table;
