//! # Benchmark harness: regenerating the paper's evaluation
//!
//! One bench target per figure of Section 8 (run with
//! `cargo bench -p mrp-bench --bench <name>`):
//!
//! | target | paper artifact |
//! |---|---|
//! | `fig3_baseline` | Fig. 3 — Multi-Ring Paxos under 5 storage modes × request sizes |
//! | `fig4_ycsb` | Fig. 4 — YCSB A–F: Cassandra-like vs MRP-Store (indep.) vs MRP-Store vs MySQL-like |
//! | `fig5_dlog` | Fig. 5 — dLog vs Bookkeeper-like quorum log |
//! | `fig6_vertical` | Fig. 6 — dLog vertical scalability (1–5 rings/disks) |
//! | `fig7_horizontal` | Fig. 7 — MRP-Store across 4 EC2 regions |
//! | `fig8_recovery` | Fig. 8 — recovery impact timeline |
//! | `ablation_2pc` | §3 — 2PC aborts vs atomic-multicast ordering |
//! | `ablation_merge` | §4 — rate-leveling (Δ, λ) sensitivity |
//! | `fig9_engines` | extension — Multi-Ring Paxos vs the white-box engine as groups scale (emits `BENCH_fig9.json`) |
//! | `fig_multigroup` | extension — genuine multi-group multicast vs global-ring routing as the multi-group fraction grows (emits `BENCH_multigroup.json`) |
//! | `micro` | Criterion micro-benchmarks of the hot paths |
//!
//! Every harness prints the same rows/series the paper reports and is
//! parameterized by [`Scale`] so the test suite can run a fast smoke
//! version of the exact same code (`MRP_BENCH_SCALE=smoke`).
//!
//! ## Bench artifacts: the `BENCH_*.json` schema
//!
//! Benches that feed cross-PR trajectory comparisons additionally write
//! hand-rolled JSON (the workspace is offline-hermetic — no serde) into
//! the bench binary's working directory, which `cargo bench` sets to
//! `crates/mrp-bench/`. CI runs them at smoke scale and uploads the
//! files as artifacts, so numbers are comparable PR-over-PR as long as
//! they come from the same scale.
//!
//! `BENCH_multigroup.json` — an array with one row per
//! (engine, multi-group fraction) cell of the sweep:
//!
//! | field | meaning |
//! |---|---|
//! | `engine` | engine name (`multiring` \| `wbcast`) |
//! | `multi_per_mille` | multi-group messages per 1000 client requests |
//! | `crash_ms` | initiator-churn period in ms (`0` = none): every period the multi-group initiator is crashed and restarted half a period later (`MRP_MULTIGROUP_CRASH_MS`), measuring throughput under repeatedly orphaned rounds |
//! | `ops_per_sec` | completed client operations per second |
//! | `latency_ms` | mean end-to-end latency over all operations |
//! | `single_ms` / `multi_ms` | mean latency split by message class |
//! | `p99_ms` | 99th-percentile latency |
//!
//! `BENCH_fig8.json` — an array with one object per engine run of the
//! recovery timeline:
//!
//! | field | meaning |
//! |---|---|
//! | `engine` | engine name the run used |
//! | `checkpoints` | replica checkpoints completed during the run |
//! | `trims` | acceptor-log trim commands executed (ring engine only; wbcast prunes sequencer history instead) |
//! | `events` | `{t_s, what}` annotations: the replica kill and restart instants |
//! | `timeline` | `{t_s, ops_per_sec, latency_ms}` per throughput window |
//!
//! The recovery dip and the post-restart catch-up are what to look at
//! in `timeline`; `checkpoints > 0` is what makes the restart recover
//! from a snapshot rather than replaying history from genesis.
//!
//! `BENCH_fig9.json` — the engine comparison, an object with two
//! parallel arrays (one entry each per `(engine, groups)` cell):
//!
//! | field | meaning |
//! |---|---|
//! | `rows[].engine` | engine name (`multiring` \| `wbcast`) |
//! | `rows[].groups` | number of multicast groups in the cell |
//! | `rows[].ops_per_sec`, `latency_ms`, `p50_ms`, `p99_ms` | client-side throughput and latency |
//! | `engine_telemetry[].engine`, `groups` | the matching cell |
//! | `engine_telemetry[].nodes` | nodes that contributed a snapshot |
//! | `engine_telemetry[].healthy` | `true` iff every node's end-of-run health probe was clean |
//! | `engine_telemetry[].counters` | protocol counters summed over nodes (the engine's own phase metrics, e.g. `sub.delivered`, `seq.takeovers` for wbcast; `delivered`, `backfill_rounds` for multiring) |
//! | `engine_telemetry[].histograms` | phase-latency histograms merged over nodes, summarized as `{count, p50_us, p99_us, max_us}` |
//!
//! A smoke-scale `BENCH_fig9.json` is checked in at the crate root as
//! the perf baseline; the `bench_baseline` integration test asserts it
//! (and any regenerated replacement) parses — with the zero-dependency
//! reader in [`json`] — and matches this schema.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod figures;
pub mod harness;
pub mod json;
pub mod table;

pub use harness::{EchoApp, MixedGroupClient, OpenLoopClient, PingClient, Scale};
pub use table::Table;
