//! Shared pieces of the figure harnesses: the dummy service, generic
//! closed/open-loop clients, and run-scale selection.

use bytes::Bytes;
use mrp_sim::actor::{Actor, ActorCtx, ActorEvent, Outbox};
use multiring_paxos::app::{decode_command, Application, Delivery, Reply};
use multiring_paxos::event::Message;
use multiring_paxos::types::{ClientId, GroupId, ProcessId, Time};
use std::any::Any;
use std::collections::BTreeMap;

/// Run scale: the full figure parameters or a fast smoke version (same
/// code path) used by the test suite.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum Scale {
    /// Paper-like parameters (tens of simulated seconds).
    Full,
    /// Seconds-scale smoke parameters for CI.
    Smoke,
}

impl Scale {
    /// Reads `MRP_BENCH_SCALE` (`smoke` selects the fast version).
    pub fn from_env() -> Scale {
        match std::env::var("MRP_BENCH_SCALE").as_deref() {
            Ok("smoke") => Scale::Smoke,
            _ => Scale::Full,
        }
    }

    /// Picks `full` or `smoke` accordingly.
    pub fn pick<T>(self, full: T, smoke: T) -> T {
        match self {
            Scale::Full => full,
            Scale::Smoke => smoke,
        }
    }
}

/// The "dummy service" of Section 8.3.1: commands execute no operation;
/// the reply is empty. Used to measure the bare atomic-multicast stack.
#[derive(Default, Debug)]
pub struct EchoApp {
    executed: u64,
    bytes: u64,
}

impl EchoApp {
    /// A fresh dummy service.
    pub fn new() -> Self {
        Self::default()
    }

    /// Commands executed.
    pub fn executed(&self) -> u64 {
        self.executed
    }

    /// Payload bytes executed.
    pub fn bytes(&self) -> u64 {
        self.bytes
    }
}

impl Application for EchoApp {
    fn execute(&mut self, delivery: &Delivery) -> Vec<Reply> {
        let Some((client, request, cmd)) = decode_command(delivery.value.payload.clone()) else {
            return Vec::new();
        };
        self.executed += 1;
        self.bytes += cmd.len() as u64;
        vec![Reply {
            client,
            request,
            payload: Bytes::new(),
        }]
    }

    fn snapshot(&self) -> Bytes {
        Bytes::copy_from_slice(&self.executed.to_le_bytes())
    }

    fn restore(&mut self, snapshot: &Bytes) {
        if snapshot.len() >= 8 {
            let mut b = [0u8; 8];
            b.copy_from_slice(&snapshot[..8]);
            self.executed = u64::from_le_bytes(b);
        }
    }
}

/// A closed-loop client sending fixed-size requests to a fixed target
/// and waiting for the first response (the paper's proposer threads).
pub struct PingClient {
    client: ClientId,
    sessions: u32,
    target: ProcessId,
    group: GroupId,
    payload: Bytes,
    next_request: u64,
    pending: BTreeMap<u64, (u32, Time)>,
    warmup_until: Time,
    prefix: String,
}

impl std::fmt::Debug for PingClient {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PingClient")
            .field("client", &self.client)
            .finish_non_exhaustive()
    }
}

impl PingClient {
    /// Creates a client with `sessions` closed loops sending
    /// `payload_bytes` requests to `target`.
    pub fn new(
        client: ClientId,
        sessions: u32,
        target: ProcessId,
        group: GroupId,
        payload_bytes: usize,
        prefix: impl Into<String>,
    ) -> Self {
        Self {
            client,
            sessions,
            target,
            group,
            payload: Bytes::from(vec![0x5Au8; payload_bytes]),
            next_request: 0,
            pending: BTreeMap::new(),
            warmup_until: Time::ZERO,
            prefix: prefix.into(),
        }
    }

    /// Discards samples before `t`.
    pub fn warmup_until(mut self, t: Time) -> Self {
        self.warmup_until = t;
        self
    }

    /// Replaces the filler payload with a concrete one (e.g. an encoded
    /// service command).
    pub fn with_payload(mut self, payload: Bytes) -> Self {
        self.payload = payload;
        self
    }

    fn issue(&mut self, session: u32, now: Time, out: &mut Outbox) {
        self.next_request += 1;
        self.pending.insert(self.next_request, (session, now));
        out.send(
            self.target,
            Message::Request {
                client: self.client,
                request: self.next_request,
                groups: vec![self.group],
                payload: self.payload.clone(),
            },
        );
    }
}

impl Actor for PingClient {
    fn on_event(&mut self, now: Time, event: ActorEvent, out: &mut Outbox, ctx: &mut ActorCtx<'_>) {
        match event {
            ActorEvent::Start => {
                for s in 0..self.sessions {
                    self.issue(s, now, out);
                }
            }
            ActorEvent::Message {
                msg: Message::Response { request, .. },
                ..
            } => {
                let Some((session, issued_at)) = self.pending.remove(&request) else {
                    return; // duplicate replica response
                };
                if now >= self.warmup_until {
                    let prefix = &self.prefix;
                    ctx.metrics
                        .record(&format!("{prefix}/latency_us"), now.since(issued_at));
                    ctx.metrics.incr(&format!("{prefix}/ops"), 1);
                    ctx.metrics
                        .incr(&format!("{prefix}/bytes"), self.payload.len() as u64);
                    ctx.metrics.series_add(&format!("{prefix}/ops"), now, 1.0);
                }
                self.issue(session, now, out);
            }
            _ => {}
        }
    }

    fn as_any(&mut self) -> &mut dyn Any {
        self
    }
}

/// A closed-loop client mixing single-group and multi-group requests:
/// with probability `multi_per_mille / 1000` an operation is multicast
/// to *all* configured groups (the cross-partition shape — a scan, a
/// multi-log append), otherwise to one group round-robin. Latencies are
/// recorded separately under `<prefix>/latency_us/{single,multi}`.
pub struct MixedGroupClient {
    client: ClientId,
    sessions: u32,
    /// One (proposer, group) pair per group; single-group requests
    /// rotate over them, multi-group requests address every group and
    /// go to the first proposer.
    targets: Vec<(ProcessId, GroupId)>,
    multi_per_mille: u32,
    payload: Bytes,
    next_request: u64,
    round_robin: u64,
    pending: BTreeMap<u64, (u32, Time, bool)>,
    warmup_until: Time,
    /// When nonzero, a session whose request has been unanswered this
    /// long abandons it and issues a fresh operation — the at-least-once
    /// client behavior churn experiments need (a request sent to a
    /// crashed replica would otherwise kill its closed loop forever).
    retry_us: u64,
    prefix: String,
}

impl std::fmt::Debug for MixedGroupClient {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MixedGroupClient")
            .field("client", &self.client)
            .field("multi_per_mille", &self.multi_per_mille)
            .finish_non_exhaustive()
    }
}

impl MixedGroupClient {
    /// A client with `sessions` closed loops over `targets`, sending
    /// `payload_bytes` requests, `multi_per_mille`/1000 of them
    /// multi-group.
    pub fn new(
        client: ClientId,
        sessions: u32,
        targets: Vec<(ProcessId, GroupId)>,
        multi_per_mille: u32,
        payload_bytes: usize,
        prefix: impl Into<String>,
    ) -> Self {
        assert!(!targets.is_empty());
        Self {
            client,
            sessions,
            targets,
            multi_per_mille,
            payload: Bytes::from(vec![0x6Bu8; payload_bytes]),
            next_request: 0,
            round_robin: 0,
            pending: BTreeMap::new(),
            warmup_until: Time::ZERO,
            retry_us: 0,
            prefix: prefix.into(),
        }
    }

    /// Discards samples before `t`.
    pub fn warmup_until(mut self, t: Time) -> Self {
        self.warmup_until = t;
        self
    }

    /// Enables session retries: an operation unanswered for `retry_us`
    /// is abandoned and the session issues a fresh one (at-least-once —
    /// the abandoned command may still execute). Required for churn
    /// runs where the target replica crashes with requests in flight.
    pub fn with_retry(mut self, retry_us: u64) -> Self {
        self.retry_us = retry_us;
        self
    }

    fn issue(&mut self, session: u32, now: Time, out: &mut Outbox, rng: &mut mrp_sim::rng::Rng) {
        let multi = self.multi_per_mille > 0 && rng.below(1000) < u64::from(self.multi_per_mille);
        self.next_request += 1;
        self.pending
            .insert(self.next_request, (session, now, multi));
        let (target, groups) = if multi {
            (
                self.targets[0].0,
                self.targets.iter().map(|&(_, g)| g).collect(),
            )
        } else {
            self.round_robin += 1;
            let (p, g) = self.targets[(self.round_robin % self.targets.len() as u64) as usize];
            (p, vec![g])
        };
        out.send(
            target,
            Message::Request {
                client: self.client,
                request: self.next_request,
                groups,
                payload: self.payload.clone(),
            },
        );
    }
}

impl Actor for MixedGroupClient {
    fn on_event(&mut self, now: Time, event: ActorEvent, out: &mut Outbox, ctx: &mut ActorCtx<'_>) {
        match event {
            ActorEvent::Start => {
                for s in 0..self.sessions {
                    self.issue(s, now, out, ctx.rng);
                }
                if self.retry_us > 0 {
                    out.wakeup(self.retry_us, 0);
                }
            }
            ActorEvent::Wakeup(0) if self.retry_us > 0 => {
                let stale: Vec<u64> = self
                    .pending
                    .iter()
                    .filter(|&(_, &(_, issued_at, _))| now.since(issued_at) >= self.retry_us)
                    .map(|(&request, _)| request)
                    .collect();
                for request in stale {
                    let (session, _, _) = self.pending.remove(&request).expect("stale entry");
                    self.issue(session, now, out, ctx.rng);
                }
                out.wakeup(self.retry_us, 0);
            }
            ActorEvent::Message {
                msg: Message::Response { request, .. },
                ..
            } => {
                let Some((session, issued_at, multi)) = self.pending.remove(&request) else {
                    return; // duplicate replica response
                };
                if now >= self.warmup_until {
                    let prefix = &self.prefix;
                    let latency = now.since(issued_at);
                    let tag = if multi { "multi" } else { "single" };
                    ctx.metrics.record(&format!("{prefix}/latency_us"), latency);
                    ctx.metrics
                        .record(&format!("{prefix}/latency_us/{tag}"), latency);
                    ctx.metrics.incr(&format!("{prefix}/ops"), 1);
                    ctx.metrics.series_add(&format!("{prefix}/ops"), now, 1.0);
                }
                self.issue(session, now, out, ctx.rng);
            }
            _ => {}
        }
    }

    fn as_any(&mut self) -> &mut dyn Any {
        self
    }
}

/// An open-loop client issuing requests at a fixed rate regardless of
/// responses (used by the recovery experiment, which runs the system at
/// 75 % of peak load).
pub struct OpenLoopClient {
    client: ClientId,
    target: ProcessId,
    group: GroupId,
    payload_of: Box<dyn FnMut(u64) -> Bytes>,
    interval_us: u64,
    next_request: u64,
    issued_at: BTreeMap<u64, Time>,
    warmup_until: Time,
    prefix: String,
}

impl std::fmt::Debug for OpenLoopClient {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("OpenLoopClient")
            .field("client", &self.client)
            .finish_non_exhaustive()
    }
}

impl OpenLoopClient {
    /// A client issuing one request every `interval_us`, with payloads
    /// produced by `payload_of(request_number)`.
    pub fn new(
        client: ClientId,
        target: ProcessId,
        group: GroupId,
        interval_us: u64,
        prefix: impl Into<String>,
        payload_of: impl FnMut(u64) -> Bytes + 'static,
    ) -> Self {
        Self {
            client,
            target,
            group,
            payload_of: Box::new(payload_of),
            interval_us: interval_us.max(1),
            next_request: 0,
            issued_at: BTreeMap::new(),
            warmup_until: Time::ZERO,
            prefix: prefix.into(),
        }
    }

    /// Discards samples before `t`.
    pub fn warmup_until(mut self, t: Time) -> Self {
        self.warmup_until = t;
        self
    }

    fn tick(&mut self, now: Time, out: &mut Outbox) {
        self.next_request += 1;
        let payload = (self.payload_of)(self.next_request);
        self.issued_at.insert(self.next_request, now);
        // Bound memory if the service stalls (recovery experiments).
        while self.issued_at.len() > 100_000 {
            let Some((&old, _)) = self.issued_at.iter().next() else {
                break;
            };
            self.issued_at.remove(&old);
        }
        out.send(
            self.target,
            Message::Request {
                client: self.client,
                request: self.next_request,
                groups: vec![self.group],
                payload,
            },
        );
        out.wakeup(self.interval_us, 0);
    }
}

impl Actor for OpenLoopClient {
    fn on_event(&mut self, now: Time, event: ActorEvent, out: &mut Outbox, ctx: &mut ActorCtx<'_>) {
        match event {
            ActorEvent::Start | ActorEvent::Wakeup(0) => self.tick(now, out),
            ActorEvent::Message {
                msg: Message::Response { request, .. },
                ..
            } => {
                let Some(issued) = self.issued_at.remove(&request) else {
                    return;
                };
                if now >= self.warmup_until {
                    let prefix = &self.prefix;
                    ctx.metrics
                        .record(&format!("{prefix}/latency_us"), now.since(issued));
                    ctx.metrics.incr(&format!("{prefix}/ops"), 1);
                    ctx.metrics.series_add(&format!("{prefix}/ops"), now, 1.0);
                    ctx.metrics.series_add(
                        &format!("{prefix}/latency_sum_us"),
                        now,
                        now.since(issued) as f64,
                    );
                }
            }
            _ => {}
        }
    }

    fn as_any(&mut self) -> &mut dyn Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use multiring_paxos::app::encode_command;
    use multiring_paxos::types::{InstanceId, Value, ValueId};

    #[test]
    fn scale_pick() {
        assert_eq!(Scale::Full.pick(10, 1), 10);
        assert_eq!(Scale::Smoke.pick(10, 1), 1);
    }

    #[test]
    fn echo_app_counts_and_replies() {
        let mut app = EchoApp::new();
        let d = Delivery {
            group: GroupId::new(0),
            instance: InstanceId::new(1),
            value: Value::new(
                ValueId::new(ProcessId::new(0), 1),
                GroupId::new(0),
                encode_command(ClientId::new(3), 8, b"abcd"),
            ),
        };
        let replies = app.execute(&d);
        assert_eq!(replies.len(), 1);
        assert_eq!(replies[0].request, 8);
        assert_eq!(app.executed(), 1);
        assert_eq!(app.bytes(), 4);
    }
}
