//! A minimal JSON reader for validating the `BENCH_*.json` artifacts.
//!
//! The workspace is offline-hermetic (no serde), and the bench binaries
//! hand-roll their JSON output; this module is the matching hand-rolled
//! parser so the test suite and CI can assert the artifacts actually
//! parse and carry the documented schema. It supports the full JSON
//! grammar the writers can produce (objects, arrays, strings with
//! escapes, numbers, booleans, null) — it is a validator-grade reader,
//! not a performance-oriented one.

use std::collections::BTreeMap;

/// A parsed JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (kept as `f64`; bench counters stay well below
    /// the 2^53 integer-exact range).
    Number(f64),
    /// A string literal, with escapes decoded.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object; member order is not preserved.
    Object(BTreeMap<String, Value>),
}

impl Value {
    /// Member `key` of an object value.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(m) => m.get(key),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(v) => Some(v),
            _ => None,
        }
    }

    /// The members, if this is an object.
    pub fn as_object(&self) -> Option<&BTreeMap<String, Value>> {
        match self {
            Value::Object(m) => Some(m),
            _ => None,
        }
    }

    /// The number, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// The number as a non-negative integer, if it is one exactly.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= u64::MAX as f64 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// The string, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }
}

/// Parses `text` as a single JSON document.
pub fn parse(text: &str) -> Result<Value, String> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing content at byte {}", p.pos));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {}", char::from(b), self.pos))
        }
    }

    fn literal(&mut self, word: &str, v: Value) -> Result<Value, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Value, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Value::String(self.string()?)),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'n') => self.literal("null", Value::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(format!("unexpected input at byte {}", self.pos)),
        }
    }

    fn object(&mut self) -> Result<Value, String> {
        self.expect(b'{')?;
        let mut members = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            members.insert(key, self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(members));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }

    fn array(&mut self) -> Result<Value, String> {
        self.expect(b'[')?;
        let mut elements = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(elements));
        }
        loop {
            self.skip_ws();
            elements.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(elements));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or("unterminated escape")?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{0008}'),
                        b'f' => out.push('\u{000C}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or("truncated \\u escape")?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| "invalid \\u escape".to_string())?;
                            self.pos += 4;
                            // Surrogate pairs are not produced by the
                            // bench writers; map them to U+FFFD rather
                            // than rejecting the document.
                            out.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                        }
                        _ => return Err(format!("invalid escape at byte {}", self.pos)),
                    }
                }
                Some(_) => {
                    // Copy the full UTF-8 scalar starting here.
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|_| "invalid UTF-8".to_string())?;
                    let c = s.chars().next().expect("non-empty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, String> {
        let start = self.pos;
        while matches!(
            self.peek(),
            Some(b'-' | b'+' | b'.' | b'e' | b'E' | b'0'..=b'9')
        ) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii");
        text.parse::<f64>()
            .map(Value::Number)
            .map_err(|_| format!("invalid number at byte {start}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(parse("null").unwrap(), Value::Null);
        assert_eq!(parse(" true ").unwrap(), Value::Bool(true));
        assert_eq!(parse("false").unwrap(), Value::Bool(false));
        assert_eq!(parse("-12.5e2").unwrap(), Value::Number(-1250.0));
        assert_eq!(
            parse("\"a\\n\\\"b\\u0041\"").unwrap().as_str(),
            Some("a\n\"bA")
        );
    }

    #[test]
    fn parses_nested_structures() {
        let doc = r#"{"rows": [{"engine": "wbcast", "groups": 2, "ok": true}], "empty": {}}"#;
        let v = parse(doc).unwrap();
        let rows = v.get("rows").and_then(Value::as_array).unwrap();
        assert_eq!(rows.len(), 1);
        assert_eq!(
            rows[0].get("engine").and_then(Value::as_str),
            Some("wbcast")
        );
        assert_eq!(rows[0].get("groups").and_then(Value::as_u64), Some(2));
        assert_eq!(rows[0].get("ok").and_then(Value::as_bool), Some(true));
        assert!(v
            .get("empty")
            .and_then(Value::as_object)
            .unwrap()
            .is_empty());
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            "[1,]",
            "{\"a\" 1}",
            "[1] x",
            "\"unterminated",
            "nul",
        ] {
            assert!(parse(bad).is_err(), "{bad:?} must not parse");
        }
    }

    #[test]
    fn integer_accessor_rejects_fractions_and_negatives() {
        assert_eq!(parse("3").unwrap().as_u64(), Some(3));
        assert_eq!(parse("3.5").unwrap().as_u64(), None);
        assert_eq!(parse("-3").unwrap().as_u64(), None);
    }
}
