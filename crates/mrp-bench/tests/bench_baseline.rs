//! Validates the checked-in benchmark baselines `BENCH_fig9.json` and
//! `BENCH_micro.json`: they must parse as JSON and carry the documented
//! schema — the client-side rows plus the `engine_telemetry` section
//! (fig9), and the submission/decode throughput rows with their speedup
//! summary (micro). CI regenerates both files at smoke scale and
//! re-runs this test, so a writer/schema drift fails loudly in both
//! places.

use mrp_bench::json::{self, Value};

fn load(name: &str) -> Value {
    let path = format!("{}/{name}", env!("CARGO_MANIFEST_DIR"));
    let text = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("checked-in baseline {path} must be readable: {e}"));
    json::parse(&text).unwrap_or_else(|e| panic!("{path} must parse as JSON: {e}"))
}

fn baseline() -> Value {
    load("BENCH_fig9.json")
}

#[test]
fn fig9_baseline_rows_match_schema() {
    let doc = baseline();
    let rows = doc
        .get("rows")
        .and_then(Value::as_array)
        .expect("top-level \"rows\" array");
    assert!(!rows.is_empty(), "baseline must carry at least one cell");
    let mut engines = std::collections::BTreeSet::new();
    for row in rows {
        let engine = row
            .get("engine")
            .and_then(Value::as_str)
            .expect("row.engine");
        engines.insert(engine.to_string());
        assert!(row.get("groups").and_then(Value::as_u64).is_some());
        for field in ["ops_per_sec", "latency_ms", "p50_ms", "p99_ms"] {
            let v = row
                .get(field)
                .and_then(Value::as_f64)
                .unwrap_or_else(|| panic!("row.{field} must be a number"));
            assert!(v.is_finite() && v >= 0.0, "row.{field} = {v}");
        }
    }
    assert_eq!(
        engines.into_iter().collect::<Vec<_>>(),
        ["multiring", "wbcast"],
        "the baseline compares both engines"
    );
}

#[test]
fn fig9_baseline_engine_telemetry_matches_schema() {
    let doc = baseline();
    let cells = doc
        .get("engine_telemetry")
        .and_then(Value::as_array)
        .expect("top-level \"engine_telemetry\" array");
    let rows = doc.get("rows").and_then(Value::as_array).expect("rows");
    assert_eq!(
        cells.len(),
        rows.len(),
        "one telemetry entry per benchmark cell"
    );
    for cell in cells {
        let engine = cell
            .get("engine")
            .and_then(Value::as_str)
            .expect("cell.engine");
        assert!(cell.get("nodes").and_then(Value::as_u64).unwrap_or(0) > 0);
        assert_eq!(
            cell.get("healthy").and_then(Value::as_bool),
            Some(true),
            "{engine}: a checked-in baseline must come from a healthy run"
        );
        let counters = cell
            .get("counters")
            .and_then(Value::as_object)
            .expect("cell.counters object");
        // The engines' delivery counters must show the workload actually
        // flowed through the instrumented phases.
        let delivered_counter = match engine {
            "multiring" => "delivered",
            "wbcast" => "sub.delivered",
            other => panic!("unknown engine {other}"),
        };
        let delivered = counters
            .get(delivered_counter)
            .and_then(Value::as_u64)
            .unwrap_or_else(|| panic!("{engine}: missing counter {delivered_counter}"));
        assert!(delivered > 0, "{engine}: no deliveries in baseline");
        for (name, v) in counters {
            assert!(v.as_u64().is_some(), "{engine}: counter {name} not a u64");
        }
        let histograms = cell
            .get("histograms")
            .and_then(Value::as_object)
            .expect("cell.histograms object");
        let latency_histogram = match engine {
            "multiring" => "ring_latency_us",
            "wbcast" => "round.delivery_latency_us",
            other => panic!("unknown engine {other}"),
        };
        let h = histograms
            .get(latency_histogram)
            .unwrap_or_else(|| panic!("{engine}: missing histogram {latency_histogram}"));
        let count = h.get("count").and_then(Value::as_u64).expect("count");
        assert!(count > 0, "{engine}: empty latency histogram in baseline");
        for field in ["p50_us", "p99_us", "max_us"] {
            assert!(
                h.get(field).and_then(Value::as_u64).is_some(),
                "{engine}: histogram field {field}"
            );
        }
    }
}

#[test]
fn micro_baseline_matches_schema_and_batching_pays() {
    let doc = load("BENCH_micro.json");
    let submit = doc
        .get("submit")
        .and_then(Value::as_array)
        .expect("top-level \"submit\" array");
    let mut seen = std::collections::BTreeSet::new();
    for row in submit {
        let engine = row
            .get("engine")
            .and_then(Value::as_str)
            .expect("row.engine");
        let mode = row.get("mode").and_then(Value::as_str).expect("row.mode");
        seen.insert(format!("{engine}/{mode}"));
        assert!(row.get("values").and_then(Value::as_u64).unwrap_or(0) > 0);
        assert!(row.get("wire_frames").and_then(Value::as_u64).unwrap_or(0) > 0);
        let vps = row
            .get("values_per_sec")
            .and_then(Value::as_f64)
            .expect("row.values_per_sec");
        assert!(vps.is_finite() && vps > 0.0, "{engine}/{mode}: vps = {vps}");
    }
    assert_eq!(
        seen.into_iter().collect::<Vec<_>>(),
        [
            "multiring/batched",
            "multiring/unbatched",
            "wbcast/batched",
            "wbcast/unbatched"
        ],
        "both engines, both submission modes"
    );
    let decode = doc
        .get("decode")
        .and_then(Value::as_array)
        .expect("top-level \"decode\" array");
    assert_eq!(decode.len(), 2, "copying and zero-copy decode rows");
    for row in decode {
        assert!(row.get("name").and_then(Value::as_str).is_some());
        let mbps = row
            .get("mb_per_sec")
            .and_then(Value::as_f64)
            .expect("row.mb_per_sec");
        assert!(mbps.is_finite() && mbps > 0.0);
    }
    let speedup = doc
        .get("speedup")
        .and_then(Value::as_object)
        .expect("top-level \"speedup\" object");
    let s = |k: &str| {
        speedup
            .get(k)
            .and_then(Value::as_f64)
            .unwrap_or_else(|| panic!("speedup.{k}"))
    };
    // The headline claim: packing submission batches into shared
    // consensus instances beats one-value-per-instance by a wide
    // margin. 2.0 is a deliberately loose floor (measured ~4.5x) so
    // slow CI machines don't flake; a real regression lands far below.
    assert!(
        s("submit_multiring") >= 2.0,
        "batched multiring submission must stay well ahead of unbatched \
         (measured {:.2}x, floor 2.0x)",
        s("submit_multiring")
    );
    // Frame coalescing alone cannot lose throughput; the virtual pump
    // does not price syscalls, so parity is the honest expectation.
    assert!(
        s("submit_wbcast") >= 0.8,
        "batched wbcast submission fell behind unbatched: {:.2}x",
        s("submit_wbcast")
    );
    assert!(
        s("decode_32k") >= 1.0,
        "zero-copy burst decode fell behind the copying path: {:.2}x",
        s("decode_32k")
    );
}
