//! Validates the checked-in benchmark baseline `BENCH_fig9.json`: it
//! must parse as JSON and carry the documented schema — the client-side
//! rows plus the `engine_telemetry` section with per-engine counters,
//! histograms and a health verdict. CI regenerates the file at smoke
//! scale and re-runs this test, so a writer/schema drift fails loudly
//! in both places.

use mrp_bench::json::{self, Value};

fn baseline() -> Value {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/BENCH_fig9.json");
    let text = std::fs::read_to_string(path)
        .unwrap_or_else(|e| panic!("checked-in baseline {path} must be readable: {e}"));
    json::parse(&text).unwrap_or_else(|e| panic!("{path} must parse as JSON: {e}"))
}

#[test]
fn fig9_baseline_rows_match_schema() {
    let doc = baseline();
    let rows = doc
        .get("rows")
        .and_then(Value::as_array)
        .expect("top-level \"rows\" array");
    assert!(!rows.is_empty(), "baseline must carry at least one cell");
    let mut engines = std::collections::BTreeSet::new();
    for row in rows {
        let engine = row
            .get("engine")
            .and_then(Value::as_str)
            .expect("row.engine");
        engines.insert(engine.to_string());
        assert!(row.get("groups").and_then(Value::as_u64).is_some());
        for field in ["ops_per_sec", "latency_ms", "p50_ms", "p99_ms"] {
            let v = row
                .get(field)
                .and_then(Value::as_f64)
                .unwrap_or_else(|| panic!("row.{field} must be a number"));
            assert!(v.is_finite() && v >= 0.0, "row.{field} = {v}");
        }
    }
    assert_eq!(
        engines.into_iter().collect::<Vec<_>>(),
        ["multiring", "wbcast"],
        "the baseline compares both engines"
    );
}

#[test]
fn fig9_baseline_engine_telemetry_matches_schema() {
    let doc = baseline();
    let cells = doc
        .get("engine_telemetry")
        .and_then(Value::as_array)
        .expect("top-level \"engine_telemetry\" array");
    let rows = doc.get("rows").and_then(Value::as_array).expect("rows");
    assert_eq!(
        cells.len(),
        rows.len(),
        "one telemetry entry per benchmark cell"
    );
    for cell in cells {
        let engine = cell
            .get("engine")
            .and_then(Value::as_str)
            .expect("cell.engine");
        assert!(cell.get("nodes").and_then(Value::as_u64).unwrap_or(0) > 0);
        assert_eq!(
            cell.get("healthy").and_then(Value::as_bool),
            Some(true),
            "{engine}: a checked-in baseline must come from a healthy run"
        );
        let counters = cell
            .get("counters")
            .and_then(Value::as_object)
            .expect("cell.counters object");
        // The engines' delivery counters must show the workload actually
        // flowed through the instrumented phases.
        let delivered_counter = match engine {
            "multiring" => "delivered",
            "wbcast" => "sub.delivered",
            other => panic!("unknown engine {other}"),
        };
        let delivered = counters
            .get(delivered_counter)
            .and_then(Value::as_u64)
            .unwrap_or_else(|| panic!("{engine}: missing counter {delivered_counter}"));
        assert!(delivered > 0, "{engine}: no deliveries in baseline");
        for (name, v) in counters {
            assert!(v.as_u64().is_some(), "{engine}: counter {name} not a u64");
        }
        let histograms = cell
            .get("histograms")
            .and_then(Value::as_object)
            .expect("cell.histograms object");
        let latency_histogram = match engine {
            "multiring" => "ring_latency_us",
            "wbcast" => "round.delivery_latency_us",
            other => panic!("unknown engine {other}"),
        };
        let h = histograms
            .get(latency_histogram)
            .unwrap_or_else(|| panic!("{engine}: missing histogram {latency_histogram}"));
        let count = h.get("count").and_then(Value::as_u64).expect("count");
        assert!(count > 0, "{engine}: empty latency histogram in baseline");
        for field in ["p50_us", "p99_us", "max_us"] {
            assert!(
                h.get(field).and_then(Value::as_u64).is_some(),
                "{engine}: histogram field {field}"
            );
        }
    }
}
