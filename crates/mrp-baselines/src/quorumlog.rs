//! A quorum-replicated log with aggressive batching (Bookkeeper-like
//! baseline of Figure 5).
//!
//! Clients write each entry to an ensemble of bookies and wait for an
//! acknowledgement quorum. Every bookie appends entries to a journal it
//! flushes *in large batches* — the strategy the paper identifies as the
//! source of Bookkeeper's high latency ("its aggressive batching
//! mechanism, which attempts to maximize disk use by writing in large
//! chunks").

use bytes::{Buf, BufMut, Bytes, BytesMut};
use mrp_sim::actor::{Actor, ActorCtx, ActorEvent, Op, Outbox};
use multiring_paxos::event::Message;
use multiring_paxos::types::{ClientId, GroupId, ProcessId, Time};
use std::any::Any;
use std::collections::BTreeMap;

/// Batching policy of a bookie's journal.
#[derive(Copy, Clone, Debug)]
pub struct JournalPolicy {
    /// Flush when this many bytes have accumulated.
    pub flush_bytes: usize,
    /// Flush at the latest after this many microseconds.
    pub flush_interval_us: u64,
    /// Disk index used for journal writes.
    pub disk: usize,
}

impl Default for JournalPolicy {
    fn default() -> Self {
        Self {
            flush_bytes: 64 * 1024,
            flush_interval_us: 10_000,
            disk: 0,
        }
    }
}

const FLUSH_TIMER: u64 = 1;

/// One bookie: journals entries and acknowledges them once the batch
/// containing them is durable.
#[derive(Debug)]
pub struct Bookie {
    policy: JournalPolicy,
    /// Entries awaiting the next flush: `(client, request)`.
    buffered: Vec<(ClientId, u64)>,
    buffered_bytes: usize,
    /// Entries inside the flush currently on disk, keyed by token.
    in_flight: BTreeMap<u64, Vec<(ClientId, u64)>>,
    next_token: u64,
    timer_armed: bool,
    entries: u64,
}

impl Bookie {
    /// A bookie with the given journal policy.
    pub fn new(policy: JournalPolicy) -> Self {
        Self {
            policy,
            buffered: Vec::new(),
            buffered_bytes: 0,
            in_flight: BTreeMap::new(),
            next_token: 100, // distinct from FLUSH_TIMER wakeups
            timer_armed: false,
            entries: 0,
        }
    }

    /// Entries journaled so far.
    pub fn entries(&self) -> u64 {
        self.entries
    }

    fn flush(&mut self, out: &mut Outbox) {
        if self.buffered.is_empty() {
            return;
        }
        self.next_token += 1;
        let token = self.next_token;
        let batch = std::mem::take(&mut self.buffered);
        let bytes = std::mem::take(&mut self.buffered_bytes);
        self.in_flight.insert(token, batch);
        out.push(Op::DiskWrite {
            disk: self.policy.disk,
            bytes,
            sync: true,
            token,
        });
    }
}

impl Actor for Bookie {
    fn on_event(
        &mut self,
        _now: Time,
        event: ActorEvent,
        out: &mut Outbox,
        _ctx: &mut ActorCtx<'_>,
    ) {
        match event {
            ActorEvent::Message {
                msg:
                    Message::Request {
                        client,
                        request,
                        payload,
                        ..
                    },
                ..
            } => {
                self.entries += 1;
                self.buffered.push((client, request));
                self.buffered_bytes += payload.len();
                if self.buffered_bytes >= self.policy.flush_bytes {
                    self.flush(out);
                } else if !self.timer_armed {
                    self.timer_armed = true;
                    out.wakeup(self.policy.flush_interval_us, FLUSH_TIMER);
                }
            }
            ActorEvent::Wakeup(FLUSH_TIMER) => {
                self.timer_armed = false;
                self.flush(out);
            }
            ActorEvent::DiskDone(token) => {
                if let Some(batch) = self.in_flight.remove(&token) {
                    for (client, request) in batch {
                        out.push(Op::Respond {
                            client,
                            request,
                            payload: Bytes::new(),
                        });
                    }
                }
            }
            _ => {}
        }
    }

    fn as_any(&mut self) -> &mut dyn Any {
        self
    }
}

/// Encodes an append entry for the wire (entry id + payload).
pub fn encode_entry(data: &Bytes) -> Bytes {
    let mut buf = BytesMut::with_capacity(4 + data.len());
    buf.put_u32_le(data.len() as u32);
    buf.put_slice(data);
    buf.freeze()
}

/// Decodes an append entry.
pub fn decode_entry(mut b: Bytes) -> Option<Bytes> {
    if b.remaining() < 4 {
        return None;
    }
    let n = b.get_u32_le() as usize;
    (b.remaining() >= n).then(|| b.copy_to_bytes(n))
}

#[derive(Debug)]
struct PendingAppend {
    session: u32,
    issued_at: Time,
    acks: u32,
    done: bool,
}

/// The Bookkeeper-style client: writes each entry to the whole ensemble
/// and completes on an acknowledgement quorum.
pub struct QuorumLogClient {
    client: ClientId,
    sessions: u32,
    ensemble: Vec<ProcessId>,
    ack_quorum: u32,
    entry_bytes: usize,
    next_request: u64,
    pending: BTreeMap<u64, PendingAppend>,
    warmup_until: Time,
    metric_prefix: String,
}

impl std::fmt::Debug for QuorumLogClient {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("QuorumLogClient")
            .field("client", &self.client)
            .finish_non_exhaustive()
    }
}

impl QuorumLogClient {
    /// A client appending `entry_bytes`-sized entries to `ensemble`,
    /// completing on `ack_quorum` acknowledgements.
    pub fn new(
        client: ClientId,
        sessions: u32,
        ensemble: Vec<ProcessId>,
        ack_quorum: u32,
        entry_bytes: usize,
        metric_prefix: impl Into<String>,
    ) -> Self {
        Self {
            client,
            sessions,
            ensemble,
            ack_quorum,
            entry_bytes,
            next_request: 0,
            pending: BTreeMap::new(),
            warmup_until: Time::ZERO,
            metric_prefix: metric_prefix.into(),
        }
    }

    /// Discards samples before `t`.
    pub fn warmup_until(mut self, t: Time) -> Self {
        self.warmup_until = t;
        self
    }

    fn issue(&mut self, session: u32, now: Time, out: &mut Outbox) {
        self.next_request += 1;
        let request = self.next_request;
        self.pending.insert(
            request,
            PendingAppend {
                session,
                issued_at: now,
                acks: 0,
                done: false,
            },
        );
        let payload = encode_entry(&Bytes::from(vec![0xB0u8; self.entry_bytes]));
        for &b in &self.ensemble {
            out.send(
                b,
                Message::Request {
                    client: self.client,
                    request,
                    groups: vec![GroupId::new(0)],
                    payload: payload.clone(),
                },
            );
        }
    }
}

impl Actor for QuorumLogClient {
    fn on_event(&mut self, now: Time, event: ActorEvent, out: &mut Outbox, ctx: &mut ActorCtx<'_>) {
        match event {
            ActorEvent::Start => {
                for s in 0..self.sessions {
                    self.issue(s, now, out);
                }
            }
            ActorEvent::Message {
                msg: Message::Response { request, .. },
                ..
            } => {
                let ensemble = self.ensemble.len() as u32;
                let Some(p) = self.pending.get_mut(&request) else {
                    return;
                };
                p.acks += 1;
                let complete_now = !p.done && p.acks >= self.ack_quorum;
                if complete_now {
                    p.done = true;
                    let session = p.session;
                    let issued_at = p.issued_at;
                    if now >= self.warmup_until {
                        let prefix = &self.metric_prefix;
                        ctx.metrics
                            .record(&format!("{prefix}/latency_us"), now.since(issued_at));
                        ctx.metrics.incr(&format!("{prefix}/ops"), 1);
                        ctx.metrics.series_add(&format!("{prefix}/ops"), now, 1.0);
                    }
                    self.issue(session, now, out);
                }
                // Clean up once the whole ensemble answered.
                let drop_it = self
                    .pending
                    .get(&request)
                    .is_some_and(|p| p.done && p.acks >= ensemble);
                if drop_it {
                    self.pending.remove(&request);
                }
            }
            _ => {}
        }
    }

    fn as_any(&mut self) -> &mut dyn Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mrp_sim::cluster::{Cluster, SimConfig};
    use mrp_sim::disk::DiskModel;
    use mrp_sim::net::Topology;

    #[test]
    fn quorum_appends_complete_after_batched_flush() {
        let mut cluster = Cluster::new(SimConfig::default(), Topology::lan(8));
        let ensemble: Vec<ProcessId> = (0..3).map(ProcessId::new).collect();
        for &b in &ensemble {
            cluster.add_actor(b, Box::new(Bookie::new(JournalPolicy::default())));
            cluster.add_disk(b, DiskModel::hdd());
        }
        let client_proc = ProcessId::new(9);
        let client_id = ClientId::new(1);
        cluster.add_actor(
            client_proc,
            Box::new(QuorumLogClient::new(
                client_id,
                4,
                ensemble.clone(),
                2,
                1024,
                "bookkeeper",
            )),
        );
        cluster.register_client(client_id, client_proc);
        cluster.start();
        cluster.run_until(Time::from_secs(2));
        let ops = cluster.metrics().counter("bookkeeper/ops");
        assert!(ops > 20, "quorum appends progressed: {ops}");
        // Latency is dominated by the flush interval (10 ms policy).
        let h = cluster
            .metrics()
            .histogram("bookkeeper/latency_us")
            .unwrap();
        assert!(
            h.quantile(0.5) >= 5_000,
            "batched flushes should dominate latency, p50={}",
            h.quantile(0.5)
        );
    }

    #[test]
    fn entry_codec_roundtrip() {
        let e = encode_entry(&Bytes::from_static(b"data"));
        assert_eq!(decode_entry(e).unwrap(), Bytes::from_static(b"data"));
        assert!(decode_entry(Bytes::from_static(&[1, 0])).is_none());
    }
}
