//! A single-server strongly consistent store (MySQL-like baseline of
//! Figure 4): one process holds the whole database and executes
//! operations serially. Strong consistency is trivial; the cost is that
//! it cannot scale horizontally — its throughput is whatever one
//! server's CPU model admits.

use bytes::Bytes;
use mrp_sim::actor::{Actor, ActorCtx, ActorEvent, Op, Outbox};
use mrp_store::app::StoreApp;
use mrp_store::command::StoreCommand;
use mrp_store::kv::KvStore;
use multiring_paxos::event::Message;
use multiring_paxos::types::Time;
use std::any::Any;

/// The single server.
#[derive(Debug, Default)]
pub struct SingleServer {
    kv: KvStore,
}

impl SingleServer {
    /// An empty server.
    pub fn new() -> Self {
        Self::default()
    }

    /// Pre-loads an entry.
    pub fn load(&mut self, key: Bytes, value: Bytes) {
        self.kv.load(key, value);
    }

    /// Entries held.
    pub fn len(&self) -> usize {
        self.kv.len()
    }

    /// Whether the database is empty.
    pub fn is_empty(&self) -> bool {
        self.kv.is_empty()
    }
}

impl Actor for SingleServer {
    fn on_event(
        &mut self,
        _now: Time,
        event: ActorEvent,
        out: &mut Outbox,
        _ctx: &mut ActorCtx<'_>,
    ) {
        let ActorEvent::Message {
            msg:
                Message::Request {
                    client,
                    request,
                    payload,
                    ..
                },
            ..
        } = event
        else {
            return;
        };
        let mut buf = payload;
        let Some(cmd) = StoreCommand::decode(&mut buf) else {
            return;
        };
        let response = self.kv.apply(&cmd);
        out.push(Op::Respond {
            client,
            request,
            payload: StoreApp::frame_response(0, &response),
        });
    }

    fn as_any(&mut self) -> &mut dyn Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eventual::BaselineClient;
    use mrp_coord::PartitionMap;
    use mrp_sim::cluster::{Cluster, SimConfig};
    use mrp_sim::cpu::CpuModel;
    use mrp_sim::net::Topology;
    use multiring_paxos::types::{ClientId, ProcessId};
    use std::collections::BTreeMap;

    #[test]
    fn cpu_model_caps_throughput() {
        // Two runs: a fast server and a slow server; the slow one must
        // complete measurably fewer ops in the same time.
        let mut totals = Vec::new();
        for per_event_us in [10u64, 1000] {
            let mut cluster = Cluster::new(SimConfig::default(), Topology::lan(4));
            let server = ProcessId::new(0);
            cluster.add_actor(server, Box::new(SingleServer::new()));
            cluster.set_cpu(server, CpuModel::new(per_event_us, 0));
            let client_proc = ProcessId::new(9);
            let client_id = ClientId::new(1);
            let mut n = 0u64;
            let client = BaselineClient::new(
                client_id,
                4,
                PartitionMap::hash(1, 0),
                BTreeMap::from([(0u16, server)]),
                "mysql",
                move |_rng| {
                    n += 1;
                    (
                        StoreCommand::Insert {
                            key: Bytes::from(format!("k{n}")),
                            value: Bytes::from_static(b"v"),
                        },
                        "insert",
                    )
                },
            );
            cluster.add_actor(client_proc, Box::new(client));
            cluster.register_client(client_id, client_proc);
            cluster.start();
            cluster.run_until(Time::from_secs(2));
            totals.push(cluster.metrics().counter("mysql/ops"));
        }
        assert!(
            totals[0] > totals[1] * 5,
            "fast {} vs slow {}",
            totals[0],
            totals[1]
        );
    }
}
