//! Two-phase commit with no-wait locking across partitions.
//!
//! Section 3 of the paper argues that storage systems built on atomic
//! commitment let unordered cross-partition transactions invalidate each
//! other: two transactions `T1` (read x, write y) and `T2` (read y,
//! write x) that prepare concurrently both abort, while with atomic
//! multicast both are ordered and commit. This module implements the 2PC
//! side of that comparison; the ablation benchmark runs the same
//! conflicting workload through both.

use bytes::{Buf, BufMut, Bytes, BytesMut};
use mrp_sim::actor::{Actor, ActorCtx, ActorEvent, Op, Outbox};
use multiring_paxos::event::Message;
use multiring_paxos::types::{ClientId, GroupId, ProcessId, Time};
use std::any::Any;
use std::collections::{BTreeMap, BTreeSet};

const M_PREPARE: u8 = 1;
const M_COMMIT: u8 = 2;
const M_ABORT: u8 = 3;
const R_VOTE_YES: u8 = 1;
const R_VOTE_NO: u8 = 2;
const R_DONE: u8 = 3;

/// Encodes a participant message: tag + transaction id + keys.
fn encode_msg(tag: u8, txn: u64, keys: &[u64]) -> Bytes {
    let mut buf = BytesMut::new();
    buf.put_u8(tag);
    buf.put_u64_le(txn);
    buf.put_u16_le(keys.len() as u16);
    for &k in keys {
        buf.put_u64_le(k);
    }
    buf.freeze()
}

fn decode_msg(mut b: Bytes) -> Option<(u8, u64, Vec<u64>)> {
    if b.remaining() < 11 {
        return None;
    }
    let tag = b.get_u8();
    let txn = b.get_u64_le();
    let n = b.get_u16_le() as usize;
    if b.remaining() < n * 8 {
        return None;
    }
    Some((tag, txn, (0..n).map(|_| b.get_u64_le()).collect()))
}

/// A 2PC participant: owns a key partition, locks keys at prepare with
/// a no-wait policy (any conflict votes no).
#[derive(Debug, Default)]
pub struct TxnParticipant {
    locks: BTreeMap<u64, u64>,         // key → owning txn
    prepared: BTreeMap<u64, Vec<u64>>, // txn → locked keys
    commits: u64,
    aborts: u64,
}

impl TxnParticipant {
    /// A participant with no locks held.
    pub fn new() -> Self {
        Self::default()
    }

    /// Transactions committed here.
    pub fn commits(&self) -> u64 {
        self.commits
    }

    /// Prepares voted down here.
    pub fn aborts(&self) -> u64 {
        self.aborts
    }
}

impl Actor for TxnParticipant {
    fn on_event(
        &mut self,
        _now: Time,
        event: ActorEvent,
        out: &mut Outbox,
        _ctx: &mut ActorCtx<'_>,
    ) {
        let ActorEvent::Message {
            msg:
                Message::Request {
                    client,
                    request,
                    payload,
                    ..
                },
            ..
        } = event
        else {
            return;
        };
        let Some((tag, txn, keys)) = decode_msg(payload) else {
            return;
        };
        match tag {
            M_PREPARE => {
                let conflict = keys
                    .iter()
                    .any(|k| self.locks.get(k).is_some_and(|&owner| owner != txn));
                let vote = if conflict {
                    self.aborts += 1;
                    R_VOTE_NO
                } else {
                    for &k in &keys {
                        self.locks.insert(k, txn);
                    }
                    self.prepared.insert(txn, keys);
                    R_VOTE_YES
                };
                out.push(Op::Respond {
                    client,
                    request,
                    payload: Bytes::from(vec![vote]),
                });
            }
            M_COMMIT | M_ABORT => {
                if let Some(keys) = self.prepared.remove(&txn) {
                    for k in keys {
                        if self.locks.get(&k) == Some(&txn) {
                            self.locks.remove(&k);
                        }
                    }
                }
                if tag == M_COMMIT {
                    self.commits += 1;
                }
                out.push(Op::Respond {
                    client,
                    request,
                    payload: Bytes::from(vec![R_DONE]),
                });
            }
            _ => {}
        }
    }

    fn as_any(&mut self) -> &mut dyn Any {
        self
    }
}

#[derive(Debug)]
enum TxnPhase {
    Preparing { yes: u32, no: u32 },
    Finishing { acks: u32, committed: bool },
}

#[derive(Debug)]
struct OpenTxn {
    session: u32,
    issued_at: Time,
    participants: Vec<ProcessId>,
    phase: TxnPhase,
}

/// The client-coordinated 2PC driver: sessions issue symmetric
/// cross-partition transactions (`T1`/`T2` of Section 3) and record the
/// commit/abort outcome.
pub struct TwoPcClient {
    client: ClientId,
    sessions: u32,
    /// One owner process per partition.
    partitions: Vec<ProcessId>,
    /// Keys are drawn from this many hot keys per partition: smaller =
    /// more contention.
    hot_keys: u64,
    next_request: u64,
    next_txn: u64,
    open: BTreeMap<u64, u64>, // request → txn
    txns: BTreeMap<u64, OpenTxn>,
    warmup_until: Time,
    metric_prefix: String,
}

impl std::fmt::Debug for TwoPcClient {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TwoPcClient")
            .field("client", &self.client)
            .finish_non_exhaustive()
    }
}

impl TwoPcClient {
    /// Creates the driver.
    pub fn new(
        client: ClientId,
        sessions: u32,
        partitions: Vec<ProcessId>,
        hot_keys: u64,
        metric_prefix: impl Into<String>,
    ) -> Self {
        Self {
            client,
            sessions,
            partitions,
            hot_keys: hot_keys.max(1),
            next_request: 0,
            next_txn: 0,
            open: BTreeMap::new(),
            txns: BTreeMap::new(),
            warmup_until: Time::ZERO,
            metric_prefix: metric_prefix.into(),
        }
    }

    /// Discards samples before `t`.
    pub fn warmup_until(mut self, t: Time) -> Self {
        self.warmup_until = t;
        self
    }

    fn issue(&mut self, session: u32, now: Time, out: &mut Outbox, rng: &mut mrp_sim::rng::Rng) {
        // A symmetric cross-partition transaction: read a hot key on one
        // partition, write a hot key on another.
        self.next_txn += 1;
        let txn = self.next_txn;
        let a = rng.below(self.partitions.len() as u64) as usize;
        let mut b = rng.below(self.partitions.len() as u64) as usize;
        if self.partitions.len() > 1 && b == a {
            b = (a + 1) % self.partitions.len();
        }
        let parts: BTreeSet<usize> = [a, b].into_iter().collect();
        let participants: Vec<ProcessId> = parts.iter().map(|&i| self.partitions[i]).collect();
        let keys_by_part: Vec<Vec<u64>> = parts
            .iter()
            .map(|_| vec![rng.below(self.hot_keys)])
            .collect();
        self.txns.insert(
            txn,
            OpenTxn {
                session,
                issued_at: now,
                participants: participants.clone(),
                phase: TxnPhase::Preparing { yes: 0, no: 0 },
            },
        );
        for (p, keys) in participants.iter().zip(&keys_by_part) {
            self.next_request += 1;
            self.open.insert(self.next_request, txn);
            out.send(
                *p,
                Message::Request {
                    client: self.client,
                    request: self.next_request,
                    groups: vec![GroupId::new(0)],
                    payload: encode_msg(M_PREPARE, txn, keys),
                },
            );
        }
    }

    fn finish(&mut self, txn: u64, commit: bool, out: &mut Outbox) {
        let Some(t) = self.txns.get_mut(&txn) else {
            return;
        };
        t.phase = TxnPhase::Finishing {
            acks: 0,
            committed: commit,
        };
        let tag = if commit { M_COMMIT } else { M_ABORT };
        let participants = t.participants.clone();
        for p in participants {
            self.next_request += 1;
            self.open.insert(self.next_request, txn);
            out.send(
                p,
                Message::Request {
                    client: self.client,
                    request: self.next_request,
                    groups: vec![GroupId::new(0)],
                    payload: encode_msg(tag, txn, &[]),
                },
            );
        }
    }
}

impl Actor for TwoPcClient {
    fn on_event(&mut self, now: Time, event: ActorEvent, out: &mut Outbox, ctx: &mut ActorCtx<'_>) {
        match event {
            ActorEvent::Start => {
                for s in 0..self.sessions {
                    self.issue(s, now, out, ctx.rng);
                }
            }
            ActorEvent::Message {
                msg: Message::Response {
                    request, payload, ..
                },
                ..
            } => {
                let Some(txn) = self.open.remove(&request) else {
                    return;
                };
                let Some(t) = self.txns.get_mut(&txn) else {
                    return;
                };
                let n = t.participants.len() as u32;
                match &mut t.phase {
                    TxnPhase::Preparing { yes, no } => {
                        match payload.first() {
                            Some(&R_VOTE_YES) => *yes += 1,
                            _ => *no += 1,
                        }
                        if *yes + *no == n {
                            let commit = *no == 0;
                            self.finish(txn, commit, out);
                        }
                    }
                    TxnPhase::Finishing { acks, committed } => {
                        *acks += 1;
                        if *acks == n {
                            let committed = *committed;
                            let t = self.txns.remove(&txn).expect("open txn");
                            if now >= self.warmup_until {
                                let prefix = &self.metric_prefix;
                                let outcome = if committed { "commit" } else { "abort" };
                                ctx.metrics.incr(&format!("{prefix}/{outcome}"), 1);
                                ctx.metrics.record(
                                    &format!("{prefix}/latency_us"),
                                    now.since(t.issued_at),
                                );
                            }
                            self.issue(t.session, now, out, ctx.rng);
                        }
                    }
                }
            }
            _ => {}
        }
    }

    fn as_any(&mut self) -> &mut dyn Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mrp_sim::cluster::{Cluster, SimConfig};
    use mrp_sim::net::Topology;

    fn run(hot_keys: u64, sessions: u32) -> (u64, u64) {
        let mut cluster = Cluster::new(SimConfig::default(), Topology::lan(8));
        let parts: Vec<ProcessId> = (0..2).map(ProcessId::new).collect();
        for &p in &parts {
            cluster.add_actor(p, Box::new(TxnParticipant::new()));
        }
        let client_proc = ProcessId::new(9);
        let client_id = ClientId::new(1);
        cluster.add_actor(
            client_proc,
            Box::new(TwoPcClient::new(
                client_id, sessions, parts, hot_keys, "2pc",
            )),
        );
        cluster.register_client(client_id, client_proc);
        cluster.start();
        cluster.run_until(Time::from_secs(2));
        (
            cluster.metrics().counter("2pc/commit"),
            cluster.metrics().counter("2pc/abort"),
        )
    }

    #[test]
    fn low_contention_mostly_commits() {
        let (commits, aborts) = run(10_000, 2);
        assert!(commits > 100);
        assert!(
            aborts * 10 < commits,
            "low contention: {commits} commits vs {aborts} aborts"
        );
    }

    #[test]
    fn high_contention_aborts() {
        let (commits, aborts) = run(1, 16);
        assert!(
            aborts > commits / 5,
            "high contention should abort often: {commits} commits vs {aborts} aborts"
        );
    }
}
