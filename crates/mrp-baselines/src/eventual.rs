//! An eventually consistent partitioned store (Cassandra-like).
//!
//! Each partition has an owner and `RF - 1` asynchronous replicas. The
//! owner executes operations against its local tree and answers the
//! client *immediately*; mutations propagate to the replicas in the
//! background with no ordering. This captures the property the paper
//! contrasts in Figure 4: no request ordering ⇒ lower latency and higher
//! throughput, weaker guarantees (consistency ONE).

use bytes::Bytes;
use mrp_coord::PartitionMap;
use mrp_sim::actor::{Actor, ActorCtx, ActorEvent, Outbox};
use mrp_store::command::StoreCommand;
use mrp_store::kv::KvStore;
use multiring_paxos::event::Message;
use multiring_paxos::types::{ClientId, GroupId, ProcessId, Time};
use std::any::Any;
use std::collections::BTreeMap;

/// Marks internal replication traffic (never a real client id).
const REPLICATION_CLIENT: ClientId = ClientId::new(u64::MAX);

/// One partition server of the eventual store.
#[derive(Debug)]
pub struct EventualServer {
    partition: u16,
    /// Asynchronous replicas of this partition (receive mutations in
    /// the background).
    replicas: Vec<ProcessId>,
    kv: KvStore,
    /// Extra CPU microseconds charged per entry returned by a scan:
    /// models LSM/SSTable merges and read repair — the reason range
    /// scans are the workload where this style of store loses in the
    /// paper's Figure 4 (workload E).
    scan_us_per_entry: u64,
}

impl EventualServer {
    /// A server for `partition` replicating to `replicas`.
    pub fn new(partition: u16, replicas: Vec<ProcessId>) -> Self {
        Self {
            partition,
            replicas,
            kv: KvStore::new(),
            scan_us_per_entry: 15,
        }
    }

    /// Pre-loads an entry.
    pub fn load(&mut self, key: Bytes, value: Bytes) {
        self.kv.load(key, value);
    }

    /// Entries currently held.
    pub fn len(&self) -> usize {
        self.kv.len()
    }

    /// Whether the store is empty.
    pub fn is_empty(&self) -> bool {
        self.kv.is_empty()
    }
}

impl Actor for EventualServer {
    fn on_event(
        &mut self,
        _now: Time,
        event: ActorEvent,
        out: &mut Outbox,
        _ctx: &mut ActorCtx<'_>,
    ) {
        let ActorEvent::Message {
            msg:
                Message::Request {
                    client,
                    request,
                    payload,
                    ..
                },
            ..
        } = event
        else {
            return;
        };
        let mut buf = payload.clone();
        let Some(cmd) = StoreCommand::decode(&mut buf) else {
            return;
        };
        let response = self.kv.apply(&cmd);
        if let mrp_store::command::StoreResponse::Entries(es) = &response {
            // LSM scan penalty (see `scan_us_per_entry`).
            out.push(mrp_sim::actor::Op::Busy {
                us: self.scan_us_per_entry * (es.len() as u64 + 1),
            });
        }
        if client == REPLICATION_CLIENT {
            return; // background replication: no reply, no re-replication
        }
        // Answer immediately (consistency ONE)…
        out.push(mrp_sim::actor::Op::Respond {
            client,
            request,
            payload: mrp_store::app::StoreApp::frame_response(self.partition, &response),
        });
        // …and propagate mutations asynchronously.
        let mutates = matches!(
            cmd,
            StoreCommand::Update { .. }
                | StoreCommand::Insert { .. }
                | StoreCommand::Delete { .. }
                | StoreCommand::Batch(_)
        );
        if mutates {
            for &r in &self.replicas {
                out.send(
                    r,
                    Message::Request {
                        client: REPLICATION_CLIENT,
                        request: 0,
                        groups: vec![GroupId::new(self.partition)],
                        payload: payload.clone(),
                    },
                );
            }
        }
    }

    fn as_any(&mut self) -> &mut dyn Any {
        self
    }
}

#[derive(Debug)]
struct Pending {
    session: u32,
    tag: &'static str,
    issued_at: Time,
    need: usize,
    got: usize,
}

/// A workload source: draws the next command (with its metric tag)
/// from the client's deterministic random stream.
pub type CommandSource = Box<dyn FnMut(&mut mrp_sim::rng::Rng) -> (StoreCommand, &'static str)>;

/// A closed-loop client for partitioned baseline stores ([`EventualServer`]
/// and the single-server store): routes by partition map, fans scans out
/// to every partition owner.
pub struct BaselineClient {
    client: ClientId,
    sessions: u32,
    partition_map: PartitionMap,
    /// Owner process per partition.
    owners: BTreeMap<u16, ProcessId>,
    source: CommandSource,
    next_request: u64,
    pending: BTreeMap<u64, Pending>,
    warmup_until: Time,
    metric_prefix: String,
}

impl std::fmt::Debug for BaselineClient {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BaselineClient")
            .field("client", &self.client)
            .finish_non_exhaustive()
    }
}

impl BaselineClient {
    /// Creates the client.
    pub fn new(
        client: ClientId,
        sessions: u32,
        partition_map: PartitionMap,
        owners: BTreeMap<u16, ProcessId>,
        metric_prefix: impl Into<String>,
        source: impl FnMut(&mut mrp_sim::rng::Rng) -> (StoreCommand, &'static str) + 'static,
    ) -> Self {
        Self {
            client,
            sessions,
            partition_map,
            owners,
            source: Box::new(source),
            next_request: 0,
            pending: BTreeMap::new(),
            warmup_until: Time::ZERO,
            metric_prefix: metric_prefix.into(),
        }
    }

    /// Discards samples before `t`.
    pub fn warmup_until(mut self, t: Time) -> Self {
        self.warmup_until = t;
        self
    }

    fn issue(&mut self, session: u32, now: Time, out: &mut Outbox, rng: &mut mrp_sim::rng::Rng) {
        let (cmd, tag) = (self.source)(rng);
        let targets: Vec<ProcessId> = match &cmd {
            StoreCommand::Scan { .. } => self.owners.values().copied().collect(),
            StoreCommand::Read { key }
            | StoreCommand::Update { key, .. }
            | StoreCommand::Insert { key, .. }
            | StoreCommand::Delete { key } => {
                let part = self.partition_map.group_of(key).value();
                self.owners.get(&part).copied().into_iter().collect()
            }
            StoreCommand::Batch(cmds) => cmds
                .first()
                .and_then(|c| match c {
                    StoreCommand::Read { key } | StoreCommand::Update { key, .. } => {
                        let part = self.partition_map.group_of(key).value();
                        self.owners.get(&part).copied()
                    }
                    _ => None,
                })
                .into_iter()
                .collect(),
        };
        if targets.is_empty() {
            return;
        }
        self.next_request += 1;
        let request = self.next_request;
        self.pending.insert(
            request,
            Pending {
                session,
                tag,
                issued_at: now,
                need: targets.len(),
                got: 0,
            },
        );
        let payload = cmd.encode();
        for t in targets {
            out.send(
                t,
                Message::Request {
                    client: self.client,
                    request,
                    groups: vec![GroupId::new(0)],
                    payload: payload.clone(),
                },
            );
        }
    }
}

impl Actor for BaselineClient {
    fn on_event(&mut self, now: Time, event: ActorEvent, out: &mut Outbox, ctx: &mut ActorCtx<'_>) {
        match event {
            ActorEvent::Start => {
                for s in 0..self.sessions {
                    self.issue(s, now, out, ctx.rng);
                }
            }
            ActorEvent::Message {
                msg: Message::Response { request, .. },
                ..
            } => {
                let Some(p) = self.pending.get_mut(&request) else {
                    return;
                };
                p.got += 1;
                if p.got < p.need {
                    return;
                }
                let p = self.pending.remove(&request).expect("present");
                if now >= self.warmup_until {
                    let prefix = &self.metric_prefix;
                    ctx.metrics
                        .record(&format!("{prefix}/latency_us"), now.since(p.issued_at));
                    ctx.metrics.record(
                        &format!("{prefix}/latency_us/{}", p.tag),
                        now.since(p.issued_at),
                    );
                    ctx.metrics.incr(&format!("{prefix}/ops"), 1);
                    ctx.metrics.series_add(&format!("{prefix}/ops"), now, 1.0);
                }
                self.issue(p.session, now, out, ctx.rng);
            }
            _ => {}
        }
    }

    fn as_any(&mut self) -> &mut dyn Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mrp_sim::cluster::{Cluster, SimConfig};
    use mrp_sim::net::Topology;

    #[test]
    fn eventual_store_serves_and_replicates() {
        let mut cluster = Cluster::new(SimConfig::default(), Topology::lan(8));
        // Partition 0: owner p0, replicas p1, p2.
        let owner = ProcessId::new(0);
        let mut s0 = EventualServer::new(0, vec![ProcessId::new(1), ProcessId::new(2)]);
        s0.load(Bytes::from_static(b"k"), Bytes::from_static(b"v0"));
        cluster.add_actor(owner, Box::new(s0));
        for i in 1..3 {
            cluster.add_actor(ProcessId::new(i), Box::new(EventualServer::new(0, vec![])));
        }
        let client_proc = ProcessId::new(9);
        let client_id = ClientId::new(1);
        let mut n = 0u64;
        let client = BaselineClient::new(
            client_id,
            2,
            PartitionMap::hash(1, 0),
            BTreeMap::from([(0u16, owner)]),
            "cassandra",
            move |_rng| {
                n += 1;
                (
                    StoreCommand::Insert {
                        key: Bytes::from(format!("key{}", n % 20)),
                        value: Bytes::from_static(b"x"),
                    },
                    "insert",
                )
            },
        );
        cluster.add_actor(client_proc, Box::new(client));
        cluster.register_client(client_id, client_proc);
        cluster.start();
        cluster.run_until(Time::from_secs(2));
        assert!(cluster.metrics().counter("cassandra/ops") > 100);
        // Replication reached the async replicas.
        let r1 = cluster
            .actor_as::<EventualServer>(ProcessId::new(1))
            .unwrap();
        assert!(!r1.is_empty(), "async replica received mutations");
    }
}
