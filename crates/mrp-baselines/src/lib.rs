//! # Baseline systems for the evaluation
//!
//! Simulator models of the systems the paper compares against. Each is
//! implemented as actors with the same queueing, network, CPU and disk
//! models as the Multi-Ring Paxos stack, so comparisons exercise
//! mechanisms rather than hard-coded numbers:
//!
//! * [`eventual`] — an eventually consistent partitioned store in the
//!   style of Apache Cassandra (Figure 4): per-partition owners answer
//!   immediately and replicate asynchronously; no request ordering.
//! * [`single`] — a single-server strongly consistent store in the
//!   style of one MySQL instance (Figure 4): a CPU-bound server with a
//!   bounded worker pool.
//! * [`quorumlog`] — a quorum-replicated log in the style of Apache
//!   Bookkeeper (Figure 5): clients write entries to an ensemble of
//!   bookies and wait for an acknowledgement quorum; bookies batch
//!   aggressively before each synchronous flush, which is what produces
//!   Bookkeeper's characteristic latency in the paper.
//! * [`twopc`] — two-phase commit with no-wait locking across
//!   partitions (the Section 3 discussion: unordered cross-partition
//!   transactions can invalidate each other and abort; atomic multicast
//!   orders them and commits both).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod eventual;
pub mod quorumlog;
pub mod single;
pub mod twopc;
