//! The simulation event loop: hosts actors, models the network, disks
//! and CPUs, injects crashes/restarts, and runs coordinator re-election
//! (the role Zookeeper plays in the paper's deployment).

use crate::actor::{Actor, ActorCtx, ActorEvent, Hosted, Op, Outbox};
use crate::cpu::CpuModel;
use crate::disk::DiskModel;
use crate::metrics::Metrics;
use crate::net::{NetState, Topology};
use crate::rng::Rng;
use mrp_amcast::{
    AmcastEngine, AnyEngine, EngineKind, EngineReplica, HealthReport, TelemetrySnapshot,
};
use mrp_storage::NodeStorage;
use multiring_paxos::app::Application;
use multiring_paxos::codec;
use multiring_paxos::config::ClusterConfig;
use multiring_paxos::event::{Message, PersistRecord, PersistToken};
use multiring_paxos::replica::{CheckpointPolicy, Replica};
use multiring_paxos::types::{Ballot, ClientId, ProcessId, RingId, Time};
use std::cmp::Reverse;
use std::collections::{BTreeMap, BinaryHeap};

/// Global simulation knobs.
#[derive(Clone, Debug)]
pub struct SimConfig {
    /// Master random seed; everything is deterministic given it.
    pub seed: u64,
    /// Whether the harness plays coordination service: on coordinator
    /// crash, elect the lowest-id live acceptor after the detection
    /// timeout.
    pub auto_reelect: bool,
    /// Failure-detection delay before re-election, microseconds.
    pub election_timeout_us: u64,
    /// Interpret the first 8 payload bytes of values delivered by bare
    /// nodes as a send timestamp and record end-to-end latency.
    pub measure_delivery_latency: bool,
    /// Window width for throughput series, microseconds.
    pub series_window_us: u64,
}

impl Default for SimConfig {
    fn default() -> Self {
        Self {
            seed: 1,
            auto_reelect: true,
            election_timeout_us: 1_000_000,
            measure_delivery_latency: false,
            series_window_us: 1_000_000,
        }
    }
}

enum What {
    ActorEv {
        p: ProcessId,
        ev: ActorEvent,
    },
    DiskDone {
        p: ProcessId,
        record: PersistRecord,
        token: PersistToken,
    },
    Crash(ProcessId),
    Restart(ProcessId),
    Elect(RingId),
    Membership(RingId),
}

struct Sched {
    at: Time,
    seq: u64,
    what: What,
}

impl PartialEq for Sched {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl Eq for Sched {}
impl PartialOrd for Sched {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Sched {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.at, self.seq).cmp(&(other.at, other.seq))
    }
}

/// Factory rebuilding an actor from its stable storage on restart.
pub type ActorFactory = Box<dyn FnMut(&NodeStorage) -> Box<dyn Actor>>;

/// Extracts a telemetry snapshot and health report from a hosted actor.
/// Captured at spawn time — when the concrete actor type is known — so
/// [`Cluster::collect_engine_telemetry`] can probe through `dyn Actor`;
/// the probe survives restarts because the factory rebuilds the same
/// concrete type.
pub type TelemetryProbe =
    Box<dyn FnMut(&mut dyn Actor, Time) -> Option<(TelemetrySnapshot, HealthReport)>>;

struct Slot {
    actor: Option<Box<dyn Actor>>,
    factory: Option<ActorFactory>,
    probe: Option<TelemetryProbe>,
    storage: NodeStorage,
    disks: Vec<DiskModel>,
    disk_of_ring: BTreeMap<RingId, usize>,
    cpu: Option<CpuModel>,
    rng: Rng,
    up: bool,
}

/// The simulated cluster.
pub struct Cluster {
    cfg: SimConfig,
    topology: Topology,
    net: NetState,
    queue: BinaryHeap<Reverse<Sched>>,
    seq: u64,
    now: Time,
    slots: BTreeMap<ProcessId, Slot>,
    clients: BTreeMap<ClientId, ProcessId>,
    protocol: Option<ClusterConfig>,
    ring_coordinator: BTreeMap<RingId, ProcessId>,
    /// Monotonic election round per ring (the coordination service's
    /// zxid analogue), carried as the `supersedes` ballot of every
    /// `CoordinatorChange` it announces.
    election_round: BTreeMap<RingId, u32>,
    metrics: Metrics,
    rng: Rng,
    started: bool,
}

impl std::fmt::Debug for Cluster {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Cluster")
            .field("now", &self.now)
            .field("processes", &self.slots.len())
            .field("pending_events", &self.queue.len())
            .finish_non_exhaustive()
    }
}

impl Cluster {
    /// A cluster over `topology` with the given knobs.
    pub fn new(cfg: SimConfig, topology: Topology) -> Self {
        let mut rng = Rng::new(cfg.seed);
        let metrics = Metrics::new(cfg.series_window_us);
        let _ = rng.next_u64();
        Self {
            cfg,
            topology,
            net: NetState::default(),
            queue: BinaryHeap::new(),
            seq: 0,
            now: Time::ZERO,
            slots: BTreeMap::new(),
            clients: BTreeMap::new(),
            protocol: None,
            ring_coordinator: BTreeMap::new(),
            election_round: BTreeMap::new(),
            metrics,
            rng,
            started: false,
        }
    }

    /// Registers the protocol configuration, enabling coordinator
    /// re-election on crashes.
    pub fn set_protocol(&mut self, config: ClusterConfig) {
        for (&ring_id, ring) in config.rings() {
            self.ring_coordinator.insert(ring_id, ring.coordinator());
        }
        self.protocol = Some(config);
    }

    /// Adds an actor for process `p`. If the cluster already started,
    /// the actor is started immediately.
    pub fn add_actor(&mut self, p: ProcessId, actor: Box<dyn Actor>) {
        let rng = self.rng.fork();
        self.slots.insert(
            p,
            Slot {
                actor: Some(actor),
                factory: None,
                probe: None,
                storage: NodeStorage::new(),
                disks: Vec::new(),
                disk_of_ring: BTreeMap::new(),
                cpu: None,
                rng,
                up: true,
            },
        );
        if self.started {
            self.push(
                self.now,
                What::ActorEv {
                    p,
                    ev: ActorEvent::Start,
                },
            );
        }
    }

    /// Adds one bare ordering node per process of `config`, built by
    /// the selected atomic-multicast engine, and registers the protocol
    /// configuration. This is how engine-generic workloads (tests,
    /// benches, examples) spawn a cluster without naming an engine
    /// type.
    pub fn add_engine_actors(&mut self, config: &ClusterConfig, kind: EngineKind) {
        self.set_protocol(config.clone());
        for p in config.processes() {
            self.add_actor(p, Hosted::new(kind.build(p, config.clone())).boxed());
            self.set_telemetry_probe(
                p,
                Box::new(|actor, now| {
                    let hosted = actor.as_any().downcast_mut::<Hosted<AnyEngine>>()?;
                    let engine = hosted.inner();
                    Some((engine.telemetry(), engine.health(now)))
                }),
            );
        }
    }

    /// Adds one replicated-service actor for `p` running `app` over the
    /// selected engine: the full trim/peer-recovery-capable [`Replica`]
    /// when the engine is Multi-Ring Paxos, the engine-generic
    /// [`EngineReplica`] otherwise — both honoring `policy` for
    /// periodic checkpoints. Service deployment helpers (MRP-Store,
    /// dLog) all funnel through here.
    pub fn add_replica_actor<A: Application + 'static>(
        &mut self,
        kind: EngineKind,
        p: ProcessId,
        config: ClusterConfig,
        app: A,
        policy: CheckpointPolicy,
    ) {
        match kind {
            EngineKind::MultiRing => {
                self.add_actor(p, Hosted::new(Replica::new(p, config, app, policy)).boxed());
                self.set_telemetry_probe(
                    p,
                    Box::new(|actor, now| {
                        let hosted = actor.as_any().downcast_mut::<Hosted<Replica<A>>>()?;
                        let node = hosted.inner().node();
                        Some((
                            AmcastEngine::telemetry(node),
                            AmcastEngine::health(node, now),
                        ))
                    }),
                );
            }
            kind => {
                self.add_actor(
                    p,
                    Hosted::new(EngineReplica::new(kind, p, config, app, policy)).boxed(),
                );
                self.set_telemetry_probe(
                    p,
                    Box::new(|actor, now| {
                        let hosted = actor.as_any().downcast_mut::<Hosted<EngineReplica<A>>>()?;
                        let replica = hosted.inner();
                        Some((replica.telemetry(), replica.health(now)))
                    }),
                );
            }
        }
    }

    /// Like [`Cluster::add_replica_actor`], but also registers the
    /// restart factory that rebuilds the replica from its stable
    /// storage after [`Cluster::schedule_crash`] /
    /// [`Cluster::schedule_restart`]: the acceptor logs plus the latest
    /// durable checkpoint feed [`Replica::recovering`] (ring engine,
    /// which additionally runs the Section 5.2 peer-checkpoint query) or
    /// [`EngineReplica::recovering`] (any other engine, which restores
    /// the local checkpoint and resyncs its streams). `mk_app` builds a
    /// fresh application instance on every (re)start.
    pub fn add_recoverable_replica_actor<A, F>(
        &mut self,
        kind: EngineKind,
        p: ProcessId,
        config: ClusterConfig,
        policy: CheckpointPolicy,
        mut mk_app: F,
    ) where
        A: Application + 'static,
        F: FnMut() -> A + 'static,
    {
        self.add_replica_actor(kind, p, config.clone(), mk_app(), policy);
        match kind {
            EngineKind::MultiRing => {
                self.set_factory(
                    p,
                    Box::new(move |storage: &NodeStorage| {
                        Hosted::new(Replica::recovering(
                            p,
                            config.clone(),
                            mk_app(),
                            policy,
                            storage.acceptor_recovery(),
                            storage.checkpoint_cloned(),
                        ))
                        .boxed()
                    }),
                );
            }
            kind => {
                self.set_factory(
                    p,
                    Box::new(move |storage: &NodeStorage| {
                        Hosted::new(EngineReplica::recovering(
                            kind,
                            p,
                            config.clone(),
                            mk_app(),
                            policy,
                            storage.acceptor_recovery(),
                            storage.checkpoint_cloned(),
                        ))
                        .boxed()
                    }),
                );
            }
        }
    }

    /// Registers the factory used to rebuild `p`'s actor on restart.
    pub fn set_factory(&mut self, p: ProcessId, factory: ActorFactory) {
        if let Some(slot) = self.slots.get_mut(&p) {
            slot.factory = Some(factory);
        }
    }

    /// Registers the telemetry probe used to read `p`'s engine
    /// telemetry and health through `dyn Actor` (the engine/replica
    /// spawn helpers install one automatically).
    pub fn set_telemetry_probe(&mut self, p: ProcessId, probe: TelemetryProbe) {
        if let Some(slot) = self.slots.get_mut(&p) {
            slot.probe = Some(probe);
        }
    }

    /// Attaches a CPU model to `p`.
    pub fn set_cpu(&mut self, p: ProcessId, cpu: CpuModel) {
        if let Some(slot) = self.slots.get_mut(&p) {
            slot.cpu = Some(cpu);
        }
    }

    /// Adds a disk to `p`, returning its index.
    pub fn add_disk(&mut self, p: ProcessId, disk: DiskModel) -> usize {
        let slot = self.slots.get_mut(&p).expect("unknown process");
        slot.disks.push(disk);
        slot.disks.len() - 1
    }

    /// Routes persist records of `ring` at `p` to disk index `disk`.
    pub fn map_ring_to_disk(&mut self, p: ProcessId, ring: RingId, disk: usize) {
        if let Some(slot) = self.slots.get_mut(&p) {
            slot.disk_of_ring.insert(ring, disk);
        }
    }

    /// Declares that client session `client` lives on process `home`
    /// (service replies are routed there).
    pub fn register_client(&mut self, client: ClientId, home: ProcessId) {
        self.clients.insert(client, home);
    }

    /// Starts every registered actor (at the current time).
    pub fn start(&mut self) {
        self.started = true;
        let ps: Vec<ProcessId> = self.slots.keys().copied().collect();
        for p in ps {
            self.push(
                self.now,
                What::ActorEv {
                    p,
                    ev: ActorEvent::Start,
                },
            );
        }
    }

    /// Current virtual time.
    pub fn now(&self) -> Time {
        self.now
    }

    /// The metrics registry.
    pub fn metrics(&self) -> &Metrics {
        &self.metrics
    }

    /// Mutable metrics (for harness-level annotations).
    pub fn metrics_mut(&mut self) -> &mut Metrics {
        &mut self.metrics
    }

    /// Reads the current engine telemetry snapshot and health report of
    /// `p`, if its actor hosts an engine (spawned through the engine or
    /// replica helpers) and is up.
    pub fn engine_telemetry(&mut self, p: ProcessId) -> Option<(TelemetrySnapshot, HealthReport)> {
        let now = self.now;
        let slot = self.slots.get_mut(&p)?;
        if !slot.up {
            return None;
        }
        let actor = slot.actor.as_mut()?;
        slot.probe.as_mut()?(actor.as_mut(), now)
    }

    /// Probes every live engine-hosting node and folds the snapshots
    /// into the run [`Metrics`]:
    ///
    /// * counters sum across nodes into `engine.<name>.<counter>`;
    /// * histograms merge into `engine.<name>.<histogram>`;
    /// * each gauge records one sample per node into
    ///   `engine.<name>.<gauge>` (a per-node distribution);
    /// * health issues count into `engine.health.<code>`.
    ///
    /// Returns the per-node snapshots for harnesses that want the
    /// unmerged view (benchmark reports embed them per run).
    pub fn collect_engine_telemetry(&mut self) -> BTreeMap<ProcessId, TelemetrySnapshot> {
        let now = self.now;
        // Probe first, fold second: the probes borrow the slots while
        // the fold borrows the metrics.
        let mut snapshots: BTreeMap<ProcessId, TelemetrySnapshot> = BTreeMap::new();
        let mut issues: Vec<&'static str> = Vec::new();
        for (&p, slot) in &mut self.slots {
            if !slot.up {
                continue;
            }
            let Some(actor) = slot.actor.as_mut() else {
                continue;
            };
            let Some(probe) = slot.probe.as_mut() else {
                continue;
            };
            let Some((snapshot, health)) = probe(actor.as_mut(), now) else {
                continue;
            };
            issues.extend(health.issues.iter().map(|i| i.code));
            snapshots.insert(p, snapshot);
        }
        for snapshot in snapshots.values() {
            let engine = snapshot.engine;
            for (name, &v) in &snapshot.counters {
                self.metrics.incr(&format!("engine.{engine}.{name}"), v);
            }
            for (name, &v) in &snapshot.gauges {
                self.metrics.record(&format!("engine.{engine}.{name}"), v);
            }
            for (name, h) in &snapshot.histograms {
                self.metrics
                    .merge_histogram(&format!("engine.{engine}.{name}"), h);
            }
        }
        for code in issues {
            self.metrics.incr(&format!("engine.health.{code}"), 1);
        }
        snapshots
    }

    /// Total bytes offered to the network.
    pub fn network_bytes(&self) -> u64 {
        self.net.bytes_sent
    }

    /// Stable storage of `p` (inspection).
    pub fn storage(&self, p: ProcessId) -> Option<&NodeStorage> {
        self.slots.get(&p).map(|s| &s.storage)
    }

    /// Disk `idx` of `p` (inspection).
    pub fn disk(&self, p: ProcessId, idx: usize) -> Option<&DiskModel> {
        self.slots.get(&p).and_then(|s| s.disks.get(idx))
    }

    /// CPU model of `p` (inspection).
    pub fn cpu(&self, p: ProcessId) -> Option<&CpuModel> {
        self.slots.get(&p).and_then(|s| s.cpu.as_ref())
    }

    /// Whether `p` is currently up.
    pub fn is_up(&self, p: ProcessId) -> bool {
        self.slots.get(&p).is_some_and(|s| s.up)
    }

    /// Downcasts `p`'s actor for inspection.
    pub fn actor_as<T: 'static>(&mut self, p: ProcessId) -> Option<&mut T> {
        self.slots
            .get_mut(&p)?
            .actor
            .as_mut()?
            .as_any()
            .downcast_mut::<T>()
    }

    /// Schedules a crash of `p` at absolute time `at`.
    pub fn schedule_crash(&mut self, at: Time, p: ProcessId) {
        self.push(at, What::Crash(p));
    }

    /// Schedules a restart of `p` at absolute time `at` (requires a
    /// factory).
    pub fn schedule_restart(&mut self, at: Time, p: ProcessId) {
        self.push(at, What::Restart(p));
    }

    fn push(&mut self, at: Time, what: What) {
        self.seq += 1;
        self.queue.push(Reverse(Sched {
            at,
            seq: self.seq,
            what,
        }));
    }

    /// Runs until virtual time `t` (inclusive of events at `t`).
    pub fn run_until(&mut self, t: Time) {
        while let Some(Reverse(head)) = self.queue.peek() {
            if head.at > t {
                break;
            }
            let Reverse(sched) = self.queue.pop().expect("peeked");
            self.now = sched.at;
            self.process(sched);
        }
        self.now = t;
    }

    /// Runs for `us` more microseconds.
    pub fn run_for(&mut self, us: u64) {
        self.run_until(self.now.plus(us));
    }

    fn process(&mut self, sched: Sched) {
        match sched.what {
            What::ActorEv { p, ev } => self.deliver(p, ev),
            What::DiskDone { p, record, token } => {
                let Some(slot) = self.slots.get_mut(&p) else {
                    return;
                };
                if !slot.up {
                    return; // the write was lost with the crash
                }
                slot.storage.apply(&record);
                self.deliver(p, ActorEvent::PersistDone(token));
            }
            What::Crash(p) => self.crash(p),
            What::Restart(p) => self.restart(p),
            What::Elect(ring) => self.elect(ring),
            What::Membership(ring) => self.broadcast_membership(ring),
        }
    }

    fn event_bytes(ev: &ActorEvent) -> usize {
        match ev {
            ActorEvent::Message { msg, .. } => codec::encoded_len(msg),
            _ => 0,
        }
    }

    fn deliver(&mut self, p: ProcessId, ev: ActorEvent) {
        let Some(slot) = self.slots.get_mut(&p) else {
            return;
        };
        if !slot.up {
            return;
        }
        // CPU gating: requeue if busy, otherwise charge and process at
        // the completion instant.
        let t_proc = if let Some(cpu) = slot.cpu.as_mut() {
            if cpu.next_free() > self.now {
                let at = cpu.next_free();
                self.push(at, What::ActorEv { p, ev });
                return;
            }
            cpu.charge(self.now, Self::event_bytes(&ev))
        } else {
            self.now
        };
        let Some(mut actor) = slot.actor.take() else {
            return;
        };
        let mut out = Outbox::new();
        {
            let slot = self.slots.get_mut(&p).expect("slot exists");
            let mut ctx = ActorCtx {
                me: p,
                rng: &mut slot.rng,
                metrics: &mut self.metrics,
            };
            actor.on_event(t_proc, ev, &mut out, &mut ctx);
        }
        if let Some(slot) = self.slots.get_mut(&p) {
            if slot.actor.is_none() {
                slot.actor = Some(actor);
            }
        }
        for op in out.take() {
            self.apply_op(p, t_proc, op);
        }
    }

    fn apply_op(&mut self, p: ProcessId, t: Time, op: Op) {
        match op {
            Op::Send { to, msg } => self.send_message(p, to, t, msg),
            Op::ProtoTimer { after_us, timer } => {
                self.push(
                    t.plus(after_us),
                    What::ActorEv {
                        p,
                        ev: ActorEvent::ProtoTimer(timer),
                    },
                );
            }
            Op::Wakeup { after_us, token } => {
                self.push(
                    t.plus(after_us),
                    What::ActorEv {
                        p,
                        ev: ActorEvent::Wakeup(token),
                    },
                );
            }
            Op::Persist {
                record,
                sync,
                token,
            } => {
                let bytes = codec::record_len(&record);
                let slot = self.slots.get_mut(&p).expect("slot exists");
                let done = if slot.disks.is_empty() {
                    t.plus(1)
                } else {
                    let idx = match &record {
                        PersistRecord::Promise { ring, .. }
                        | PersistRecord::Vote { ring, .. }
                        | PersistRecord::Decision { ring, .. } => {
                            slot.disk_of_ring.get(ring).copied().unwrap_or(0)
                        }
                        PersistRecord::Checkpoint { .. } => 0,
                    };
                    let idx = idx.min(slot.disks.len() - 1);
                    slot.disks[idx].write(t, bytes, sync)
                };
                self.push(done, What::DiskDone { p, record, token });
            }
            Op::TrimStorage { ring, upto } => {
                if let Some(slot) = self.slots.get_mut(&p) {
                    slot.storage.trim(ring, upto);
                }
                self.metrics.incr("trim_storage", 1);
            }
            Op::Busy { us } => {
                if let Some(slot) = self.slots.get_mut(&p) {
                    if let Some(cpu) = slot.cpu.as_mut() {
                        cpu.occupy(t, us);
                    }
                }
            }
            Op::DiskWrite {
                disk,
                bytes,
                sync,
                token,
            } => {
                let slot = self.slots.get_mut(&p).expect("slot exists");
                let idx = disk.min(slot.disks.len().saturating_sub(1));
                let done = match slot.disks.get_mut(idx) {
                    Some(d) => d.write(t, bytes, sync),
                    None => t.plus(1),
                };
                self.push(
                    done,
                    What::ActorEv {
                        p,
                        ev: ActorEvent::DiskDone(token),
                    },
                );
            }
            Op::Delivered { value, .. } => {
                self.metrics.incr("delivered_values", 1);
                self.metrics
                    .incr("delivered_bytes", value.payload.len() as u64);
                self.metrics.series_add("deliveries", t, 1.0);
                if self.cfg.measure_delivery_latency && value.payload.len() >= 8 {
                    let mut ts = [0u8; 8];
                    ts.copy_from_slice(&value.payload[..8]);
                    let sent = u64::from_le_bytes(ts);
                    let latency = t.as_micros().saturating_sub(sent);
                    self.metrics.record("delivery_latency_us", latency);
                }
            }
            Op::Respond {
                client,
                request,
                payload,
            } => {
                if let Some(&home) = self.clients.get(&client) {
                    self.send_message(
                        p,
                        home,
                        t,
                        Message::Response {
                            client,
                            request,
                            payload,
                        },
                    );
                }
            }
        }
    }

    fn send_message(&mut self, from: ProcessId, to: ProcessId, t: Time, msg: Message) {
        if !self.slots.contains_key(&to) {
            return;
        }
        if from == to {
            self.push(
                t,
                What::ActorEv {
                    p: to,
                    ev: ActorEvent::Message { from, msg },
                },
            );
            return;
        }
        let bytes = codec::encoded_len(&msg);
        // Client RPC traffic (the paper's Thrift/UDP paths with
        // application-level retries) is exempt from loss injection: the
        // loss knob stresses the ring protocol, whose own retransmission
        // machinery must absorb it. Engine frames are exempt too — the
        // `Action::Send` contract promises a reliable FIFO channel
        // (TCP), and alternative engines (wbcast) build on exactly that
        // promise with no repair path of their own; dropping their
        // frames would silently diverge replicas rather than stress
        // anything the loss knob is meant to stress.
        let reliable = matches!(
            msg,
            Message::Request { .. } | Message::Response { .. } | Message::Engine { .. }
        );
        let arrival = if reliable && self.topology.loss > 0.0 {
            let saved = std::mem::replace(&mut self.topology.loss, 0.0);
            let a = self
                .net
                .transit(&self.topology, t, from, to, bytes, &mut self.rng);
            self.topology.loss = saved;
            a
        } else {
            self.net
                .transit(&self.topology, t, from, to, bytes, &mut self.rng)
        };
        if let Some(arrival) = arrival {
            self.push(
                arrival,
                What::ActorEv {
                    p: to,
                    ev: ActorEvent::Message { from, msg },
                },
            );
        }
    }

    fn crash(&mut self, p: ProcessId) {
        let Some(slot) = self.slots.get_mut(&p) else {
            return;
        };
        slot.up = false;
        slot.actor = None;
        self.metrics.incr("crashes", 1);
        if self.cfg.auto_reelect {
            let rings: Vec<RingId> = self
                .ring_coordinator
                .iter()
                .filter(|&(_, &c)| c == p)
                .map(|(&r, _)| r)
                .collect();
            for r in rings {
                self.push(self.now.plus(self.cfg.election_timeout_us), What::Elect(r));
            }
            // Every ring this process belongs to learns (after the
            // detection timeout) that it must route around it.
            if let Some(config) = self.protocol.clone() {
                for r in config.rings_of(p) {
                    self.push(
                        self.now.plus(self.cfg.election_timeout_us),
                        What::Membership(r),
                    );
                }
            }
        }
    }

    /// Sends the current down-set of `ring` to all its live members (the
    /// coordination service's failure-detector output).
    fn broadcast_membership(&mut self, ring_id: RingId) {
        let Some(config) = self.protocol.clone() else {
            return;
        };
        let Some(ring) = config.ring(ring_id) else {
            return;
        };
        let down: Vec<ProcessId> = ring
            .members()
            .iter()
            .map(|m| m.process)
            .filter(|q| !self.slots.get(q).is_some_and(|s| s.up))
            .collect();
        for m in ring.members() {
            if self.slots.get(&m.process).is_some_and(|s| s.up) {
                self.push(
                    self.now,
                    What::ActorEv {
                        p: m.process,
                        ev: ActorEvent::MembershipChange {
                            ring: ring_id,
                            down: down.clone(),
                        },
                    },
                );
            }
        }
    }

    fn restart(&mut self, p: ProcessId) {
        let Some(slot) = self.slots.get_mut(&p) else {
            return;
        };
        if slot.up {
            return;
        }
        let Some(factory) = slot.factory.as_mut() else {
            return;
        };
        let actor = factory(&slot.storage);
        slot.actor = Some(actor);
        slot.up = true;
        self.metrics.incr("restarts", 1);
        self.push(
            self.now,
            What::ActorEv {
                p,
                ev: ActorEvent::Start,
            },
        );
        // Tell the restarted process who currently coordinates its rings
        // (the coordination service's configuration snapshot), and let
        // every ring fold the process back into the overlay.
        if let Some(config) = self.protocol.clone() {
            for ring_id in config.rings_of(p) {
                if let Some(&coordinator) = self.ring_coordinator.get(&ring_id) {
                    let round = self.election_round.get(&ring_id).copied().unwrap_or(0);
                    self.push(
                        self.now,
                        What::ActorEv {
                            p,
                            ev: ActorEvent::CoordinatorChange {
                                ring: ring_id,
                                coordinator,
                                supersedes: Ballot::new(round, coordinator),
                            },
                        },
                    );
                }
                self.push(
                    self.now.plus(self.cfg.election_timeout_us),
                    What::Membership(ring_id),
                );
            }
        }
    }

    fn elect(&mut self, ring_id: RingId) {
        let Some(config) = self.protocol.clone() else {
            return;
        };
        let Some(ring) = config.ring(ring_id) else {
            return;
        };
        // The current believed coordinator may have recovered meanwhile.
        if let Some(&cur) = self.ring_coordinator.get(&ring_id) {
            if self.slots.get(&cur).is_some_and(|s| s.up) {
                return;
            }
        }
        let Some(&new) = ring
            .acceptors()
            .iter()
            .find(|&&a| self.slots.get(&a).is_some_and(|s| s.up))
        else {
            return;
        };
        self.ring_coordinator.insert(ring_id, new);
        let round = self.election_round.entry(ring_id).or_insert(0);
        *round += 1;
        let supersedes = Ballot::new(*round, new);
        self.metrics.incr("elections", 1);
        // The coordination service's configuration watch fires at every
        // live process, not only the ring's members: ring members re-run
        // Phase 1, while engine actors re-route in-flight submissions
        // and adopt or resign the sequencer role (wbcast failover).
        // Processes the event does not concern ignore it.
        let live: Vec<ProcessId> = self
            .slots
            .iter()
            .filter(|(_, s)| s.up)
            .map(|(&p, _)| p)
            .collect();
        for p in live {
            self.push(
                self.now,
                What::ActorEv {
                    p,
                    ev: ActorEvent::CoordinatorChange {
                        ring: ring_id,
                        coordinator: new,
                        supersedes,
                    },
                },
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::actor::Hosted;
    use bytes::Bytes;
    use multiring_paxos::config::{single_ring, ClusterConfig, RingSpec, RingTuning, Roles};
    use multiring_paxos::node::Node;
    use multiring_paxos::types::GroupId;
    use std::any::Any;

    fn quiet() -> RingTuning {
        RingTuning {
            lambda: 0,
            ..RingTuning::default()
        }
    }

    /// A client actor that fires `n` requests at a proposer and counts
    /// deliveries it observes via the shared metrics.
    #[derive(Debug)]
    struct Pulse {
        target: ProcessId,
        groups: Vec<GroupId>,
        n: u64,
        client: ClientId,
    }

    impl Actor for Pulse {
        fn on_event(
            &mut self,
            _now: Time,
            event: ActorEvent,
            out: &mut Outbox,
            _ctx: &mut ActorCtx<'_>,
        ) {
            if event == ActorEvent::Start {
                for i in 0..self.n {
                    out.send(
                        self.target,
                        Message::Request {
                            client: self.client,
                            request: i,
                            groups: self.groups.clone(),
                            payload: Bytes::from_static(b"ping"),
                        },
                    );
                }
            }
        }

        fn as_any(&mut self) -> &mut dyn Any {
            self
        }
    }

    fn build(seed: u64) -> Cluster {
        let config = single_ring(3, quiet());
        let mut cluster = Cluster::new(
            SimConfig {
                seed,
                election_timeout_us: 100_000,
                ..SimConfig::default()
            },
            Topology::lan(4),
        );
        cluster.set_protocol(config.clone());
        for i in 0..3 {
            let p = ProcessId::new(i);
            let cfg = config.clone();
            cluster.add_actor(p, Hosted::new(Node::new(p, cfg.clone())).boxed());
            cluster.set_factory(
                p,
                Box::new(move |storage: &NodeStorage| {
                    Hosted::new(Node::with_recovery(
                        p,
                        cfg.clone(),
                        storage.acceptor_recovery(),
                    ))
                    .boxed()
                }),
            );
        }
        let client = ProcessId::new(100);
        cluster.add_actor(
            client,
            Box::new(Pulse {
                target: ProcessId::new(1),
                groups: vec![GroupId::new(0)],
                n: 10,
                client: ClientId::new(1),
            }),
        );
        cluster.register_client(ClientId::new(1), client);
        cluster
    }

    #[test]
    fn end_to_end_delivery_over_simulated_lan() {
        let mut cluster = build(7);
        cluster.start();
        cluster.run_until(Time::from_secs(2));
        // 10 requests delivered at each of the 3 learners.
        assert_eq!(cluster.metrics().counter("delivered_values"), 30);
    }

    /// Both engines' telemetry flows through the spawn-time probes:
    /// per-node snapshots report deliveries and a quiescent cluster is
    /// healthy, and the fold lands under the `engine.<name>.` metric
    /// namespace.
    #[test]
    fn engine_telemetry_collection_folds_into_metrics() {
        for kind in EngineKind::ALL {
            let config = single_ring(3, quiet());
            let mut cluster = Cluster::new(
                SimConfig {
                    seed: 11,
                    ..SimConfig::default()
                },
                Topology::lan(4),
            );
            cluster.add_engine_actors(&config, kind);
            let client = ProcessId::new(100);
            cluster.add_actor(
                client,
                Box::new(Pulse {
                    target: ProcessId::new(1),
                    groups: vec![GroupId::new(0)],
                    n: 10,
                    client: ClientId::new(1),
                }),
            );
            cluster.register_client(ClientId::new(1), client);
            cluster.start();
            cluster.run_until(Time::from_secs(2));
            let (snapshot, health) = cluster
                .engine_telemetry(ProcessId::new(0))
                .expect("engine node is probeable");
            assert_eq!(
                snapshot.engine,
                kind.build(ProcessId::new(0), config).engine_name()
            );
            assert!(
                health.is_healthy(),
                "{kind}: settled cluster reports healthy: {health:?}"
            );
            let snapshots = cluster.collect_engine_telemetry();
            assert_eq!(snapshots.len(), 3, "{kind}: every engine node reports");
            let engine = snapshot.engine;
            let delivered_key = match kind {
                EngineKind::MultiRing => format!("engine.{engine}.delivered"),
                _ => format!("engine.{engine}.sub.delivered"),
            };
            assert_eq!(
                cluster.metrics().counter(&delivered_key),
                30,
                "{kind}: 10 deliveries at each of 3 subscribers"
            );
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let mut a = build(42);
        let mut b = build(42);
        a.start();
        b.start();
        a.run_until(Time::from_secs(2));
        b.run_until(Time::from_secs(2));
        assert_eq!(
            a.metrics().counter("delivered_values"),
            b.metrics().counter("delivered_values")
        );
        assert_eq!(a.network_bytes(), b.network_bytes());
    }

    #[test]
    fn coordinator_crash_triggers_election_and_progress_resumes() {
        let mut cluster = build(3);
        cluster.start();
        cluster.run_until(Time::from_secs(1));
        assert_eq!(cluster.metrics().counter("delivered_values"), 30);
        // Kill the coordinator (p0); elections should move the ring to
        // p1 and new traffic should still be ordered and delivered to
        // the two surviving learners.
        cluster.schedule_crash(Time::from_millis(1100), ProcessId::new(0));
        cluster.run_until(Time::from_millis(1500));
        assert_eq!(cluster.metrics().counter("elections"), 1);
        assert!(!cluster.is_up(ProcessId::new(0)));
        let late_client = ProcessId::new(101);
        cluster.add_actor(
            late_client,
            Box::new(Pulse {
                target: ProcessId::new(1),
                groups: vec![GroupId::new(0)],
                n: 5,
                client: ClientId::new(2),
            }),
        );
        cluster.run_until(Time::from_secs(4));
        // 30 before the crash + 5 × 2 surviving learners.
        assert_eq!(cluster.metrics().counter("delivered_values"), 40);
    }

    #[test]
    fn crashed_process_recovers_and_catches_up() {
        let mut cluster = build(5);
        cluster.start();
        cluster.run_until(Time::from_secs(1));
        // Crash a non-coordinator learner, keep traffic flowing, restart.
        cluster.schedule_crash(Time::from_millis(1100), ProcessId::new(2));
        cluster.schedule_restart(Time::from_millis(1400), ProcessId::new(2));
        let late_client = ProcessId::new(101);
        cluster.add_actor(
            late_client,
            Box::new(Pulse {
                target: ProcessId::new(0),
                groups: vec![GroupId::new(0)],
                n: 5,
                client: ClientId::new(2),
            }),
        );
        cluster.run_until(Time::from_secs(5));
        assert_eq!(cluster.metrics().counter("restarts"), 1);
        assert!(cluster.is_up(ProcessId::new(2)));
        // 30 + 5 at p0 and p1; the restarted p2 read nothing from its
        // in-memory acceptor log, but gap repair must recover the 5 new
        // values (delivered ≥ 40; p2 may or may not replay the old 10
        // depending on what acceptors retained).
        assert!(cluster.metrics().counter("delivered_values") >= 40);
    }

    /// The crash/re-election machinery is engine-generic: killing the
    /// wbcast sequencer (the ring coordinator) hands the group to the
    /// next live acceptor, and traffic submitted afterwards is ordered
    /// by the new sequencer and delivered to the surviving subscribers.
    #[test]
    fn wbcast_sequencer_crash_triggers_failover_and_progress_resumes() {
        let config = single_ring(3, quiet());
        let mut cluster = Cluster::new(
            SimConfig {
                seed: 11,
                election_timeout_us: 100_000,
                ..SimConfig::default()
            },
            Topology::lan(4),
        );
        cluster.add_engine_actors(&config, EngineKind::Wbcast);
        let client = ProcessId::new(100);
        cluster.add_actor(
            client,
            Box::new(Pulse {
                target: ProcessId::new(1),
                groups: vec![GroupId::new(0)],
                n: 10,
                client: ClientId::new(1),
            }),
        );
        cluster.register_client(ClientId::new(1), client);
        cluster.start();
        cluster.run_until(Time::from_secs(1));
        assert_eq!(cluster.metrics().counter("delivered_values"), 30);
        // Kill the sequencer (p0, the ring coordinator).
        cluster.schedule_crash(Time::from_millis(1100), ProcessId::new(0));
        cluster.run_until(Time::from_millis(1500));
        assert_eq!(cluster.metrics().counter("elections"), 1);
        assert!(!cluster.is_up(ProcessId::new(0)));
        let late_client = ProcessId::new(101);
        cluster.add_actor(
            late_client,
            Box::new(Pulse {
                target: ProcessId::new(1),
                groups: vec![GroupId::new(0)],
                n: 5,
                client: ClientId::new(2),
            }),
        );
        cluster.run_until(Time::from_secs(4));
        // 30 before the crash + 5 × 2 surviving subscribers.
        assert_eq!(cluster.metrics().counter("delivered_values"), 40);
    }

    /// Crashing the *initiator* of multi-group wbcast rounds mid-round
    /// — a plain proposer, so no election fires at all — must not stall
    /// the addressed groups: the crash/membership machinery notifies
    /// the sequencers, which recover the orphaned rounds themselves.
    /// The crash instant is controlled to catch the rounds with their
    /// `Submit`s delivered but every `ProposeAck` still in flight.
    #[test]
    fn wbcast_initiator_crash_mid_round_is_recovered_by_the_groups() {
        // Two rings over three processes, rotated so p0 and p1 are the
        // coordinators (= sequencers) and p2 coordinates nothing;
        // everyone subscribes to both groups.
        let mut b = ClusterConfig::builder();
        for ring in 0..2u16 {
            let mut spec = RingSpec::new(RingId::new(ring)).tuning(quiet());
            for p in 0..3u32 {
                spec = spec.member(ProcessId::new((p + u32::from(ring)) % 3), Roles::ALL);
            }
            b = b.ring(spec).group(GroupId::new(ring), RingId::new(ring));
        }
        for p in 0..3u32 {
            for g in 0..2u16 {
                b = b.subscribe(ProcessId::new(p), GroupId::new(g));
            }
        }
        let config = b.build().expect("two-ring config");
        let mut cluster = Cluster::new(
            SimConfig {
                seed: 13,
                election_timeout_us: 100_000,
                ..SimConfig::default()
            },
            Topology::lan(4),
        );
        cluster.add_engine_actors(&config, EngineKind::Wbcast);
        let client = ProcessId::new(100);
        cluster.add_actor(
            client,
            Box::new(Pulse {
                target: ProcessId::new(2),
                groups: vec![GroupId::new(0), GroupId::new(1)],
                n: 5,
                client: ClientId::new(1),
            }),
        );
        cluster.register_client(ClientId::new(1), client);
        // At 120 µs the client's requests (one ~50 µs hop) have reached
        // p2 and its Submits are on the wire, while the sequencers'
        // ProposeAcks (~165 µs round trip) have not come back: every
        // round dies undecided with its initiator.
        cluster.schedule_crash(Time::from_micros(120), ProcessId::new(2));
        cluster.start();
        cluster.run_until(Time::from_secs(2));
        assert_eq!(
            cluster.metrics().counter("elections"),
            0,
            "no sequencer was involved in the crash — recovery is the groups' own"
        );
        assert!(!cluster.is_up(ProcessId::new(2)));
        // 5 orphaned rounds × 2 surviving subscribers of both groups.
        assert_eq!(cluster.metrics().counter("delivered_values"), 10);
    }
}
