//! Deterministic discrete-event simulator for Multi-Ring Paxos.
//!
//! The paper's evaluation ran on a 10 GbE cluster and across four Amazon
//! EC2 regions. This crate substitutes that testbed with a discrete-event
//! simulation that runs the *same protocol state machines*
//! (`multiring-paxos` is sans-io) under controlled, reproducible
//! conditions:
//!
//! * [`net`] — WAN/LAN topologies: per-link one-way latency, jitter and
//!   bandwidth with FIFO serialization queues; presets for the paper's
//!   local cluster and the four EC2 regions of Section 8.4.2.
//! * [`disk`] — disk service models (7200-RPM HDD, SATA SSD) with seek
//!   cost, streaming bandwidth and a FIFO queue; sync writes pay the
//!   latency before the acceptor's vote is forwarded, exactly like the
//!   paper's five storage modes.
//! * [`cpu`] — an optional per-process CPU cost model (per-message +
//!   per-byte), capturing the coordinator bottleneck visible in the
//!   paper's Figure 3.
//! * [`cluster`] — the event loop: hosts protocol nodes and custom
//!   actors (clients, baseline systems), injects crashes/restarts, runs
//!   coordinator re-election, and collects [`metrics`].
//!
//! Everything is deterministic given a seed: the event queue breaks time
//! ties by insertion order and all randomness flows from one
//! [`rng::Rng`].
//!
//! ```
//! use mrp_sim::cluster::{Cluster, SimConfig};
//! use mrp_sim::net::Topology;
//! use multiring_paxos::types::Time;
//!
//! let mut cluster = Cluster::new(SimConfig::default(), Topology::lan(4));
//! cluster.run_until(Time::from_secs(1));
//! assert_eq!(cluster.now(), Time::from_secs(1));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod actor;
pub mod cluster;
pub mod cpu;
pub mod disk;
pub mod metrics;
pub mod net;
pub mod rng;

pub use actor::{Actor, ActorEvent, Hosted, Op, Outbox};
pub use cluster::{Cluster, SimConfig};
pub use disk::DiskModel;
pub use metrics::{Histogram, Metrics, TimeSeries};
pub use net::Topology;
pub use rng::Rng;
