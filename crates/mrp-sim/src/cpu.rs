//! A per-process CPU cost model.
//!
//! The paper's Figure 3 shows that with in-memory storage the ring's
//! throughput is limited by the coordinator's CPU. We model a process as
//! a single server queue: handling an event costs a fixed per-message
//! overhead plus a per-byte cost (marshalling, checksums, copying).
//! Events arriving while the CPU is busy wait; the utilization statistic
//! is busy time over elapsed time — the quantity plotted in Figure 3's
//! bottom-left panel.

use multiring_paxos::types::Time;

/// Single-server CPU queue with linear event costs.
#[derive(Clone, Debug)]
pub struct CpuModel {
    /// Fixed cost per handled event, microseconds.
    pub per_event_us: u64,
    /// Cost per 1024 payload bytes, microseconds.
    pub per_kb_us: u64,
    next_free: Time,
    busy_us: u64,
}

impl CpuModel {
    /// A model with the given costs.
    pub fn new(per_event_us: u64, per_kb_us: u64) -> Self {
        Self {
            per_event_us,
            per_kb_us,
            next_free: Time::ZERO,
            busy_us: 0,
        }
    }

    /// When the CPU can next take work.
    pub fn next_free(&self) -> Time {
        self.next_free
    }

    /// Charges the handling of an event carrying `bytes` payload bytes
    /// arriving at `now`; returns the time processing completes.
    pub fn charge(&mut self, now: Time, bytes: usize) -> Time {
        let cost = self.per_event_us + (bytes as u64 * self.per_kb_us) / 1024;
        let start = if self.next_free > now {
            self.next_free
        } else {
            now
        };
        let done = start.plus(cost.max(1));
        self.busy_us += cost.max(1);
        self.next_free = done;
        done
    }

    /// Occupies the CPU for exactly `us` microseconds starting no
    /// earlier than `now` (models service work beyond message handling,
    /// e.g. scan execution); returns the completion time.
    pub fn occupy(&mut self, now: Time, us: u64) -> Time {
        let start = if self.next_free > now {
            self.next_free
        } else {
            now
        };
        let done = start.plus(us.max(1));
        self.busy_us += us.max(1);
        self.next_free = done;
        done
    }

    /// Total busy microseconds.
    pub fn busy_us(&self) -> u64 {
        self.busy_us
    }

    /// Utilization over an elapsed window (clamped to 1).
    pub fn utilization(&self, elapsed_us: u64) -> f64 {
        if elapsed_us == 0 {
            0.0
        } else {
            (self.busy_us as f64 / elapsed_us as f64).min(1.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn charges_linear_cost() {
        let mut c = CpuModel::new(10, 2);
        let done = c.charge(Time::ZERO, 2048);
        assert_eq!(done.as_micros(), 14);
        assert_eq!(c.busy_us(), 14);
    }

    #[test]
    fn queues_when_busy() {
        let mut c = CpuModel::new(100, 0);
        let t1 = c.charge(Time::ZERO, 0);
        let t2 = c.charge(Time::from_micros(10), 0);
        assert_eq!(t1.as_micros(), 100);
        assert_eq!(t2.as_micros(), 200);
        // Idle gap: next charge starts at arrival.
        let t3 = c.charge(Time::from_millis(1), 0);
        assert_eq!(t3.as_micros(), 1100);
    }

    #[test]
    fn utilization_clamped() {
        let mut c = CpuModel::new(1000, 0);
        c.charge(Time::ZERO, 0);
        assert!((c.utilization(500) - 1.0).abs() < 1e-9);
        assert!((c.utilization(2000) - 0.5).abs() < 1e-9);
    }
}
