//! A small, fast, fully deterministic PRNG (xoshiro256++ seeded via
//! SplitMix64). Implemented locally so simulation results are stable
//! across dependency upgrades.

/// Deterministic pseudo-random number generator.
#[derive(Clone, Debug)]
pub struct Rng {
    s: [u64; 4],
}

impl Rng {
    /// Creates a generator from a seed (any value, including 0).
    pub fn new(seed: u64) -> Self {
        // SplitMix64 to spread the seed across the state.
        let mut x = seed.wrapping_add(0x9E3779B97F4A7C15);
        let mut next = || {
            x = x.wrapping_add(0x9E3779B97F4A7C15);
            let mut z = x;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            z ^ (z >> 31)
        };
        Self {
            s: [next(), next(), next(), next()],
        }
    }

    /// Next raw 64-bit value (xoshiro256++).
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform value in `[0, bound)`; returns 0 for `bound == 0`.
    pub fn below(&mut self, bound: u64) -> u64 {
        if bound == 0 {
            return 0;
        }
        // Lemire's multiply-shift rejection-free approximation is fine
        // for simulation purposes.
        ((u128::from(self.next_u64()) * u128::from(bound)) >> 64) as u64
    }

    /// Uniform value in `[lo, hi]` (inclusive).
    pub fn range(&mut self, lo: u64, hi: u64) -> u64 {
        debug_assert!(lo <= hi);
        lo + self.below(hi - lo + 1)
    }

    /// Uniform float in `[0, 1)`.
    pub fn f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Bernoulli trial with probability `p`.
    pub fn chance(&mut self, p: f64) -> bool {
        self.f64() < p
    }

    /// Derives an independent generator (for per-process streams).
    pub fn fork(&mut self) -> Rng {
        Rng::new(self.next_u64())
    }

    /// Fills `buf` with pseudo-random bytes.
    pub fn fill(&mut self, buf: &mut [u8]) {
        for chunk in buf.chunks_mut(8) {
            let v = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&v[..chunk.len()]);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_same_seed() {
        let mut a = Rng::new(42);
        let mut b = Rng::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = Rng::new(1);
        let mut b = Rng::new(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn below_respects_bound() {
        let mut r = Rng::new(7);
        for bound in [1u64, 2, 10, 1000] {
            for _ in 0..200 {
                assert!(r.below(bound) < bound);
            }
        }
        assert_eq!(r.below(0), 0);
    }

    #[test]
    fn range_inclusive() {
        let mut r = Rng::new(9);
        let mut seen_lo = false;
        let mut seen_hi = false;
        for _ in 0..2000 {
            let v = r.range(3, 5);
            assert!((3..=5).contains(&v));
            seen_lo |= v == 3;
            seen_hi |= v == 5;
        }
        assert!(seen_lo && seen_hi);
    }

    #[test]
    fn f64_in_unit_interval_and_spread() {
        let mut r = Rng::new(11);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let v = r.f64();
            assert!((0.0..1.0).contains(&v));
            sum += v;
        }
        let mean = sum / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn fork_is_independent() {
        let mut a = Rng::new(5);
        let mut c = a.fork();
        let av: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let cv: Vec<u64> = (0..8).map(|_| c.next_u64()).collect();
        assert_ne!(av, cv);
    }

    #[test]
    fn fill_covers_partial_chunks() {
        let mut r = Rng::new(3);
        let mut buf = [0u8; 13];
        r.fill(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }
}
