//! Disk service models.
//!
//! The paper's Figure 3 evaluates five storage modes: in-memory,
//! asynchronous and synchronous writes on 7200-RPM hard disks and on
//! SSDs. The in-memory mode never reaches a disk; the other four are
//! modeled here as a FIFO service queue with:
//!
//! * a per-write base cost (positioning/flush overhead), paid only by
//!   synchronous writes — asynchronous writes are coalesced by the OS
//!   write-back path and pay bandwidth only;
//! * a streaming-bandwidth cost proportional to the bytes written.

use multiring_paxos::types::Time;

/// A FIFO disk with seek/flush overhead and streaming bandwidth.
#[derive(Clone, Debug)]
pub struct DiskModel {
    /// Human-readable name for reports.
    pub name: &'static str,
    /// Base cost of a synchronous write (seek + flush), microseconds.
    pub sync_base_us: u64,
    /// Streaming bandwidth, bytes per microsecond (= MB/s).
    pub bytes_per_us: u64,
    next_free: Time,
    busy_us: u64,
    writes: u64,
    bytes: u64,
}

impl DiskModel {
    /// A 7200-RPM hard disk behind a controller with a write-back cache
    /// (the paper's testbed sustains >90 % of synchronous 32 KB writes
    /// under 10 ms, which a raw 5 ms-seek disk cannot): ~1.5 ms per sync
    /// write, ~140 MB/s streaming.
    pub fn hdd() -> Self {
        Self::custom("hdd", 1_500, 140)
    }

    /// A raw 7200-RPM disk without write cache (~5 ms positioning).
    pub fn hdd_raw() -> Self {
        Self::custom("hdd-raw", 5_000, 140)
    }

    /// A SATA SSD: ~120 µs flush, ~450 MB/s streaming.
    pub fn ssd() -> Self {
        Self::custom("ssd", 120, 450)
    }

    /// A custom disk.
    pub fn custom(name: &'static str, sync_base_us: u64, mb_per_s: u64) -> Self {
        Self {
            name,
            sync_base_us,
            bytes_per_us: mb_per_s.max(1),
            next_free: Time::ZERO,
            busy_us: 0,
            writes: 0,
            bytes: 0,
        }
    }

    /// Schedules a write of `bytes` at `now`; returns its completion
    /// time. Sync writes pay the base cost; async writes pay bandwidth
    /// only (write-back coalescing).
    pub fn write(&mut self, now: Time, bytes: usize, sync: bool) -> Time {
        let cost = if sync { self.sync_base_us } else { 0 } + bytes as u64 / self.bytes_per_us;
        let cost = cost.max(1);
        let start = if self.next_free > now {
            self.next_free
        } else {
            now
        };
        let done = start.plus(cost);
        self.next_free = done;
        self.busy_us += cost;
        self.writes += 1;
        self.bytes += bytes as u64;
        done
    }

    /// Total busy time, microseconds.
    pub fn busy_us(&self) -> u64 {
        self.busy_us
    }

    /// Number of writes issued.
    pub fn writes(&self) -> u64 {
        self.writes
    }

    /// Total bytes written.
    pub fn bytes_written(&self) -> u64 {
        self.bytes
    }

    /// Utilization over an elapsed window.
    pub fn utilization(&self, elapsed_us: u64) -> f64 {
        if elapsed_us == 0 {
            0.0
        } else {
            self.busy_us as f64 / elapsed_us as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sync_write_pays_base_cost() {
        let mut d = DiskModel::hdd();
        let done = d.write(Time::ZERO, 1024, true);
        // 1500 us base (write-cached controller) + 1024/140 ≈ 7 us.
        assert_eq!(done.as_micros(), 1507);
        let mut raw = DiskModel::hdd_raw();
        let done = raw.write(Time::ZERO, 1024, true);
        // 5000 us positioning on the raw disk.
        assert_eq!(done.as_micros(), 5007);
    }

    #[test]
    fn async_write_pays_bandwidth_only() {
        let mut d = DiskModel::ssd();
        let done = d.write(Time::ZERO, 450_000, false);
        assert_eq!(done.as_micros(), 1000);
    }

    #[test]
    fn writes_queue_fifo() {
        let mut d = DiskModel::custom("x", 100, 1);
        let t1 = d.write(Time::ZERO, 100, true);
        assert_eq!(t1.as_micros(), 200);
        let t2 = d.write(Time::ZERO, 100, true);
        assert_eq!(t2.as_micros(), 400);
        // After the queue drains, a later write starts fresh.
        let t3 = d.write(Time::from_millis(1), 100, true);
        assert_eq!(t3.as_micros(), 1200);
        assert_eq!(d.writes(), 3);
        assert_eq!(d.bytes_written(), 300);
    }

    #[test]
    fn utilization_tracks_busy_time() {
        let mut d = DiskModel::custom("x", 500, 1000);
        d.write(Time::ZERO, 0, true);
        assert!((d.utilization(1000) - 0.5).abs() < 1e-9);
        assert_eq!(d.utilization(0), 0.0);
    }

    #[test]
    fn ssd_faster_than_hdd_for_sync() {
        let mut h = DiskModel::hdd();
        let mut s = DiskModel::ssd();
        let th = h.write(Time::ZERO, 32 * 1024, true);
        let ts = s.write(Time::ZERO, 32 * 1024, true);
        assert!(ts < th);
    }
}
