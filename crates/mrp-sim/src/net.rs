//! Network models: sites, latency matrices, per-link bandwidth with FIFO
//! serialization queues, optional loss injection.

use crate::rng::Rng;
use multiring_paxos::types::{ProcessId, Time};
use std::collections::BTreeMap;

/// Bits per second of a 10 Gb Ethernet link.
pub const GBPS_10: u64 = 10_000_000_000;
/// Bits per second of a 1 Gb Ethernet link.
pub const GBPS_1: u64 = 1_000_000_000;
/// Bits per second assumed between EC2 regions (large instances, 2014).
pub const INTER_REGION_BPS: u64 = 300_000_000;

/// A static description of where processes live and what the links
/// between sites look like.
#[derive(Clone, Debug)]
pub struct Topology {
    site_of: BTreeMap<ProcessId, usize>,
    sites: usize,
    /// One-way latency between sites, microseconds.
    latency_us: Vec<Vec<u64>>,
    /// Jitter bound (uniform, added to latency), microseconds.
    jitter_us: Vec<Vec<u64>>,
    /// Link bandwidth between sites, bits per second.
    bandwidth_bps: Vec<Vec<u64>>,
    /// Default site for unassigned processes.
    default_site: usize,
    /// Probability that a message is dropped (0 for TCP-like links).
    pub loss: f64,
}

impl Topology {
    /// A single-site LAN: `n` is only advisory (any process id may send);
    /// 0.05 ms one-way latency (0.1 ms RTT, the paper's local cluster)
    /// and 10 Gbps links.
    pub fn lan(_n: u32) -> Self {
        Self::uniform(1, 50, 5, GBPS_10)
    }

    /// A topology of `sites` sites with uniform parameters.
    pub fn uniform(sites: usize, latency_us: u64, jitter_us: u64, bandwidth_bps: u64) -> Self {
        let l = vec![vec![latency_us; sites]; sites];
        let j = vec![vec![jitter_us; sites]; sites];
        let b = vec![vec![bandwidth_bps; sites]; sites];
        Self {
            site_of: BTreeMap::new(),
            sites,
            latency_us: l,
            jitter_us: j,
            bandwidth_bps: b,
            default_site: 0,
            loss: 0.0,
        }
    }

    /// The four-region EC2 topology of the paper's Section 8.4.2
    /// (eu-west-1, us-east-1, us-west-1, us-west-2), with measured-era
    /// round-trip times. Site indices follow [`Region`].
    pub fn ec2_four_regions() -> Self {
        // RTT in milliseconds between regions (order: EuWest, UsEast,
        // UsWest1, UsWest2); intra-region RTT 1 ms.
        const RTT_MS: [[u64; 4]; 4] = [
            [1, 80, 160, 150],
            [80, 1, 75, 85],
            [160, 75, 1, 25],
            [150, 85, 25, 1],
        ];
        let mut t = Self::uniform(4, 0, 0, GBPS_1);
        for (a, row) in RTT_MS.iter().enumerate() {
            for (b, &rtt) in row.iter().enumerate() {
                t.latency_us[a][b] = rtt * 1000 / 2;
                t.jitter_us[a][b] = rtt * 25; // 5% of RTT
                t.bandwidth_bps[a][b] = if a == b { GBPS_1 } else { INTER_REGION_BPS };
            }
        }
        t
    }

    /// Assigns a process to a site.
    ///
    /// # Panics
    ///
    /// Panics if `site` is out of range.
    pub fn assign(&mut self, p: ProcessId, site: usize) {
        assert!(site < self.sites, "site {site} out of range");
        self.site_of.insert(p, site);
    }

    /// The site a process lives in.
    pub fn site_of(&self, p: ProcessId) -> usize {
        self.site_of.get(&p).copied().unwrap_or(self.default_site)
    }

    /// Number of sites.
    pub fn sites(&self) -> usize {
        self.sites
    }

    /// One-way latency between two processes, without jitter.
    pub fn base_latency_us(&self, from: ProcessId, to: ProcessId) -> u64 {
        self.latency_us[self.site_of(from)][self.site_of(to)]
    }

    /// Link bandwidth between two processes.
    pub fn bandwidth_bps(&self, from: ProcessId, to: ProcessId) -> u64 {
        self.bandwidth_bps[self.site_of(from)][self.site_of(to)]
    }

    fn jitter(&self, from: ProcessId, to: ProcessId, rng: &mut Rng) -> u64 {
        let j = self.jitter_us[self.site_of(from)][self.site_of(to)];
        if j == 0 {
            0
        } else {
            rng.below(j)
        }
    }
}

/// EC2 regions used by the paper's horizontal-scalability experiment.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum Region {
    /// eu-west-1 (Ireland) — site 0.
    EuWest1,
    /// us-east-1 (Virginia) — site 1.
    UsEast1,
    /// us-west-1 (N. California) — site 2.
    UsWest1,
    /// us-west-2 (Oregon) — site 3.
    UsWest2,
}

impl Region {
    /// The site index of this region in
    /// [`Topology::ec2_four_regions`].
    pub fn site(self) -> usize {
        match self {
            Region::EuWest1 => 0,
            Region::UsEast1 => 1,
            Region::UsWest1 => 2,
            Region::UsWest2 => 3,
        }
    }

    /// All four regions in site order.
    pub fn all() -> [Region; 4] {
        [
            Region::EuWest1,
            Region::UsEast1,
            Region::UsWest1,
            Region::UsWest2,
        ]
    }
}

/// Dynamic link state: FIFO serialization queues per ordered process
/// pair.
#[derive(Debug, Default)]
pub struct NetState {
    next_free: BTreeMap<(ProcessId, ProcessId), Time>,
    /// Enforces in-order arrival per link (TCP semantics): jitter may
    /// never reorder two messages on the same connection.
    last_arrival: BTreeMap<(ProcessId, ProcessId), Time>,
    /// Total bytes offered per ordered pair (metrics).
    pub bytes_sent: u64,
    /// Messages dropped by loss injection.
    pub dropped: u64,
}

impl NetState {
    /// Computes the arrival time of a `bytes`-long message sent from
    /// `from` to `to` at time `now`, updating the link queue. Returns
    /// `None` if the message was dropped by loss injection.
    pub fn transit(
        &mut self,
        topo: &Topology,
        now: Time,
        from: ProcessId,
        to: ProcessId,
        bytes: usize,
        rng: &mut Rng,
    ) -> Option<Time> {
        if topo.loss > 0.0 && rng.chance(topo.loss) {
            self.dropped += 1;
            return None;
        }
        self.bytes_sent += bytes as u64;
        let bw = topo.bandwidth_bps(from, to).max(1);
        let ser_us = (bytes as u128 * 8 * 1_000_000 / bw as u128) as u64;
        let key = (from, to);
        let free = self.next_free.get(&key).copied().unwrap_or(Time::ZERO);
        let start = if free > now { free } else { now };
        let done = start.plus(ser_us);
        self.next_free.insert(key, done);
        let latency = topo.base_latency_us(from, to) + topo.jitter(from, to, rng);
        let mut arrival = done.plus(latency);
        // TCP links deliver in order: never before the previous message.
        if let Some(&prev) = self.last_arrival.get(&key) {
            arrival = arrival.max(prev);
        }
        self.last_arrival.insert(key, arrival);
        Some(arrival)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(i: u32) -> ProcessId {
        ProcessId::new(i)
    }

    #[test]
    fn lan_has_low_symmetric_latency() {
        let t = Topology::lan(4);
        assert_eq!(t.base_latency_us(p(0), p(1)), 50);
        assert_eq!(t.base_latency_us(p(1), p(0)), 50);
    }

    #[test]
    fn ec2_matrix_shape() {
        let mut t = Topology::ec2_four_regions();
        t.assign(p(0), Region::EuWest1.site());
        t.assign(p(1), Region::UsEast1.site());
        t.assign(p(2), Region::UsWest2.site());
        // eu-west ↔ us-east one-way ≈ 40 ms.
        assert_eq!(t.base_latency_us(p(0), p(1)), 40_000);
        // us-east ↔ us-west-2 one-way ≈ 42.5 ms.
        assert_eq!(t.base_latency_us(p(1), p(2)), 42_500);
        // intra-region is sub-millisecond.
        t.assign(p(3), Region::EuWest1.site());
        assert_eq!(t.base_latency_us(p(0), p(3)), 500);
        assert!(t.bandwidth_bps(p(0), p(1)) < t.bandwidth_bps(p(0), p(3)));
    }

    #[test]
    fn transit_orders_fifo_and_charges_bandwidth() {
        let topo = Topology::uniform(1, 100, 0, 8_000_000); // 1 MB/s
        let mut net = NetState::default();
        let mut rng = Rng::new(1);
        // 1000 bytes at 8 Mbps = 1 ms serialization.
        let t1 = net
            .transit(&topo, Time::ZERO, p(0), p(1), 1000, &mut rng)
            .unwrap();
        assert_eq!(t1.as_micros(), 1000 + 100);
        // Second message queues behind the first on the same link.
        let t2 = net
            .transit(&topo, Time::ZERO, p(0), p(1), 1000, &mut rng)
            .unwrap();
        assert_eq!(t2.as_micros(), 2000 + 100);
        // A different link does not queue.
        let t3 = net
            .transit(&topo, Time::ZERO, p(0), p(2), 1000, &mut rng)
            .unwrap();
        assert_eq!(t3.as_micros(), 1000 + 100);
        assert_eq!(net.bytes_sent, 3000);
    }

    #[test]
    fn loss_drops_messages() {
        let mut topo = Topology::uniform(1, 10, 0, GBPS_10);
        topo.loss = 1.0;
        let mut net = NetState::default();
        let mut rng = Rng::new(1);
        assert!(net
            .transit(&topo, Time::ZERO, p(0), p(1), 10, &mut rng)
            .is_none());
        assert_eq!(net.dropped, 1);
    }

    #[test]
    fn jitter_bounded() {
        let topo = Topology::uniform(1, 100, 50, GBPS_10);
        let mut net = NetState::default();
        let mut rng = Rng::new(3);
        for _ in 0..100 {
            let t = net
                .transit(&topo, Time::ZERO, p(0), p(1), 1, &mut rng)
                .unwrap();
            assert!(t.as_micros() >= 100 && t.as_micros() < 151);
        }
    }
}
