//! Measurement primitives: counters, log-linear histograms (for latency
//! percentiles/CDFs) and time series (for throughput-over-time plots
//! like the paper's Figure 8).

use multiring_paxos::types::Time;
use std::collections::BTreeMap;

// The histogram started life here and moved to `mrp-amcast` when the
// engines grew their own latency telemetry; re-exported so existing
// harness/report code (and the engine snapshots the cluster folds into
// these metrics) share one implementation. The shared type also fixes
// the old `Default`/`new()` asymmetry: `Histogram::default()` now seeds
// `min` correctly, so empty-histogram `min()`/`max()` are well-defined
// however the value was constructed.
pub use mrp_amcast::telemetry::Histogram;

/// A time series bucketed into fixed windows (for throughput-over-time
/// plots).
#[derive(Clone, Debug)]
pub struct TimeSeries {
    window_us: u64,
    buckets: BTreeMap<u64, f64>,
}

impl TimeSeries {
    /// A series with the given window width.
    pub fn new(window_us: u64) -> Self {
        Self {
            window_us: window_us.max(1),
            buckets: BTreeMap::new(),
        }
    }

    /// Adds `v` to the window containing `t`.
    pub fn add(&mut self, t: Time, v: f64) {
        *self
            .buckets
            .entry(t.as_micros() / self.window_us)
            .or_insert(0.0) += v;
    }

    /// The window width in microseconds.
    pub fn window_us(&self) -> u64 {
        self.window_us
    }

    /// `(window start time, sum)` points in time order.
    pub fn points(&self) -> Vec<(Time, f64)> {
        self.buckets
            .iter()
            .map(|(&w, &v)| (Time::from_micros(w * self.window_us), v))
            .collect()
    }

    /// Sum over every window.
    pub fn total(&self) -> f64 {
        self.buckets.values().sum()
    }

    /// Value in the window containing `t` (0 if empty).
    pub fn at(&self, t: Time) -> f64 {
        self.buckets
            .get(&(t.as_micros() / self.window_us))
            .copied()
            .unwrap_or(0.0)
    }
}

/// A named registry of counters, histograms and series shared by the
/// simulation harness and actors.
#[derive(Debug)]
pub struct Metrics {
    counters: BTreeMap<String, u64>,
    histograms: BTreeMap<String, Histogram>,
    series: BTreeMap<String, TimeSeries>,
    series_window_us: u64,
}

impl Default for Metrics {
    fn default() -> Self {
        Self::new(1_000_000)
    }
}

impl Metrics {
    /// A registry whose series use `series_window_us` windows.
    pub fn new(series_window_us: u64) -> Self {
        Self {
            counters: BTreeMap::new(),
            histograms: BTreeMap::new(),
            series: BTreeMap::new(),
            series_window_us,
        }
    }

    /// Adds `n` to counter `name`.
    pub fn incr(&mut self, name: &str, n: u64) {
        *self.counters.entry(name.to_string()).or_insert(0) += n;
    }

    /// Reads counter `name` (0 if absent).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Records `v` into histogram `name`.
    pub fn record(&mut self, name: &str, v: u64) {
        self.histograms
            .entry(name.to_string())
            .or_default()
            .record(v);
    }

    /// Merges a whole histogram into `name` (used when folding per-node
    /// engine telemetry into a run's metrics).
    pub fn merge_histogram(&mut self, name: &str, h: &Histogram) {
        self.histograms
            .entry(name.to_string())
            .or_default()
            .merge(h);
    }

    /// Reads histogram `name`, if any samples were recorded.
    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        self.histograms.get(name)
    }

    /// Adds `v` at time `t` to series `name`.
    pub fn series_add(&mut self, name: &str, t: Time, v: f64) {
        let w = self.series_window_us;
        self.series
            .entry(name.to_string())
            .or_insert_with(|| TimeSeries::new(w))
            .add(t, v);
    }

    /// Reads series `name`.
    pub fn series(&self, name: &str) -> Option<&TimeSeries> {
        self.series.get(name)
    }

    /// All counter names (for reports).
    pub fn counter_names(&self) -> impl Iterator<Item = &str> {
        self.counters.keys().map(String::as_str)
    }

    /// All histogram names (for reports).
    pub fn histogram_names(&self) -> impl Iterator<Item = &str> {
        self.histograms.keys().map(String::as_str)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_small_values_exact() {
        let mut h = Histogram::new();
        for v in [0u64, 1, 2, 3, 100, 127] {
            h.record(v);
        }
        assert_eq!(h.count(), 6);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 127);
        assert_eq!(h.quantile(0.0), 0);
        assert_eq!(h.quantile(1.0), 127);
    }

    #[test]
    fn histogram_relative_precision() {
        let mut h = Histogram::new();
        h.record(1_000_000);
        let q = h.quantile(0.5) as f64;
        assert!((q - 1_000_000.0).abs() / 1_000_000.0 < 0.01, "q={q}");
    }

    #[test]
    fn histogram_quantiles_ordered() {
        let mut h = Histogram::new();
        for v in 1..=10_000u64 {
            h.record(v);
        }
        let p50 = h.quantile(0.5);
        let p90 = h.quantile(0.9);
        let p99 = h.quantile(0.99);
        assert!(p50 <= p90 && p90 <= p99);
        assert!((p50 as f64 - 5000.0).abs() / 5000.0 < 0.02);
        assert!((p99 as f64 - 9900.0).abs() / 9900.0 < 0.02);
        let mean = h.mean();
        assert!((mean - 5000.5).abs() < 1.0);
    }

    #[test]
    fn histogram_cdf_monotone() {
        let mut h = Histogram::new();
        for v in [5u64, 5, 10, 200, 3000, 3000, 3000] {
            h.record(v);
        }
        let cdf = h.cdf();
        assert!((cdf.last().unwrap().1 - 1.0).abs() < 1e-9);
        for pair in cdf.windows(2) {
            assert!(pair[0].0 < pair[1].0);
            assert!(pair[0].1 <= pair[1].1);
        }
    }

    #[test]
    fn histogram_merge() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        a.record(10);
        b.record(20);
        a.merge(&b);
        assert_eq!(a.count(), 2);
        assert_eq!(a.min(), 10);
        assert_eq!(a.max(), 20);
    }

    #[test]
    fn series_buckets_by_window() {
        let mut s = TimeSeries::new(1_000_000);
        s.add(Time::from_millis(100), 1.0);
        s.add(Time::from_millis(900), 2.0);
        s.add(Time::from_millis(1500), 5.0);
        assert_eq!(s.at(Time::from_millis(500)), 3.0);
        assert_eq!(s.at(Time::from_millis(1999)), 5.0);
        assert_eq!(s.total(), 8.0);
        assert_eq!(s.points().len(), 2);
    }

    /// Regression: the pre-extraction local histogram's derived
    /// `Default` left `min = 0`, so a default-constructed histogram
    /// disagreed with `Histogram::new()` after recording. The shared
    /// type keeps both construction paths identical and empty-histogram
    /// `min()`/`max()` well-defined.
    #[test]
    fn default_histogram_behaves_like_new() {
        let empty = Histogram::default();
        assert_eq!(empty.min(), 0);
        assert_eq!(empty.max(), 0);
        let mut a = Histogram::default();
        let mut b = Histogram::new();
        a.record(42);
        b.record(42);
        assert_eq!(a.min(), b.min());
        assert_eq!(a.min(), 42, "default construction must not pin min at 0");
    }

    #[test]
    fn merge_histogram_folds_external_samples() {
        let mut m = Metrics::new(1_000_000);
        m.record("lat", 10);
        let mut h = Histogram::new();
        h.record(30);
        h.record(5);
        m.merge_histogram("lat", &h);
        let merged = m.histogram("lat").unwrap();
        assert_eq!(merged.count(), 3);
        assert_eq!(merged.min(), 5);
        assert_eq!(merged.max(), 30);
        // Merging into a fresh name starts from a well-defined empty.
        m.merge_histogram("other", &h);
        assert_eq!(m.histogram("other").unwrap().min(), 5);
    }

    #[test]
    fn registry_roundtrip() {
        let mut m = Metrics::new(1_000_000);
        m.incr("ops", 3);
        m.incr("ops", 2);
        assert_eq!(m.counter("ops"), 5);
        assert_eq!(m.counter("missing"), 0);
        m.record("lat", 42);
        assert_eq!(m.histogram("lat").unwrap().count(), 1);
        m.series_add("tput", Time::from_secs(2), 7.0);
        assert_eq!(m.series("tput").unwrap().total(), 7.0);
    }
}
