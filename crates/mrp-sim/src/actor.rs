//! The actor interface the simulator hosts, and the adapter that hosts
//! any sans-io protocol [`StateMachine`] (a `Node` or a `Replica`) as an
//! actor.

use crate::metrics::Metrics;
use crate::rng::Rng;
use bytes::Bytes;
use multiring_paxos::event::{
    Action, Event, Message, PersistRecord, PersistToken, StateMachine, TimerKind,
};
use multiring_paxos::types::{
    Ballot, ClientId, GroupId, InstanceId, ProcessId, RingId, Time, Value,
};
use std::any::Any;

/// Inputs delivered to an actor by the simulator.
#[derive(Clone, PartialEq, Debug)]
pub enum ActorEvent {
    /// The process starts (first boot or restart).
    Start,
    /// A message arrived.
    Message {
        /// Sender.
        from: ProcessId,
        /// The message.
        msg: Message,
    },
    /// A protocol timer fired.
    ProtoTimer(TimerKind),
    /// A custom wakeup requested via [`Outbox::wakeup`].
    Wakeup(u64),
    /// A raw disk write requested via [`Op::DiskWrite`] completed.
    DiskDone(u64),
    /// A durable write completed.
    PersistDone(PersistToken),
    /// The (simulated) coordination service designates a ring
    /// coordinator.
    CoordinatorChange {
        /// Ring affected.
        ring: RingId,
        /// New coordinator.
        coordinator: ProcessId,
        /// The highest ballot known to be in use for the ring: the
        /// service's monotonic per-ring election round. The ring engine
        /// starts Phase 1 above it; the wbcast engine derives globally
        /// unique sequencer epochs from it (two successive coordinators
        /// that never observed each other's frames would otherwise mint
        /// colliding epochs).
        supersedes: Ballot,
    },
    /// The (simulated) coordination service reports the down members of
    /// a ring.
    MembershipChange {
        /// Ring affected.
        ring: RingId,
        /// Members currently down.
        down: Vec<ProcessId>,
    },
}

/// Effects an actor requests from the simulator.
#[derive(Clone, PartialEq, Debug)]
pub enum Op {
    /// Send a message (charged for latency and bandwidth).
    Send {
        /// Destination.
        to: ProcessId,
        /// The message.
        msg: Message,
    },
    /// Re-fire a protocol timer.
    ProtoTimer {
        /// Delay.
        after_us: u64,
        /// Timer identity.
        timer: TimerKind,
    },
    /// Fire [`ActorEvent::Wakeup`] later.
    Wakeup {
        /// Delay.
        after_us: u64,
        /// Token echoed back.
        token: u64,
    },
    /// Durably persist a record through the process's disk model.
    Persist {
        /// The record.
        record: PersistRecord,
        /// Synchronous write?
        sync: bool,
        /// Completion token.
        token: PersistToken,
    },
    /// Reclaim acceptor log space.
    TrimStorage {
        /// Ring.
        ring: RingId,
        /// Trim watermark.
        upto: InstanceId,
    },
    /// Charges extra CPU time to this process (models service work the
    /// per-message cost cannot capture, e.g. LSM merges during scans).
    Busy {
        /// Microseconds of CPU time.
        us: u64,
    },
    /// A raw, service-level disk write (e.g. a baseline system's log
    /// flush) charged to one of the process's disks; completes with
    /// [`ActorEvent::DiskDone`].
    DiskWrite {
        /// Disk index.
        disk: usize,
        /// Bytes written.
        bytes: usize,
        /// Synchronous flush?
        sync: bool,
        /// Completion token.
        token: u64,
    },
    /// An atomic-multicast delivery surfaced by a bare node (the
    /// "dummy service" of Section 8.3.1). The harness records
    /// throughput/latency metrics for it.
    Delivered {
        /// Group.
        group: GroupId,
        /// Deciding instance.
        instance: InstanceId,
        /// The value.
        value: Value,
    },
    /// A service reply to route back to a client session.
    Respond {
        /// Client session.
        client: ClientId,
        /// Request echoed.
        request: u64,
        /// Payload.
        payload: Bytes,
    },
}

/// Ordered buffer of requested effects.
#[derive(Default, Debug)]
pub struct Outbox {
    ops: Vec<Op>,
}

impl Outbox {
    /// An empty outbox.
    pub fn new() -> Self {
        Self::default()
    }

    /// Queues an op.
    pub fn push(&mut self, op: Op) {
        self.ops.push(op);
    }

    /// Queues a message send.
    pub fn send(&mut self, to: ProcessId, msg: Message) {
        self.push(Op::Send { to, msg });
    }

    /// Queues a wakeup.
    pub fn wakeup(&mut self, after_us: u64, token: u64) {
        self.push(Op::Wakeup { after_us, token });
    }

    /// Drains the ops.
    pub fn take(&mut self) -> Vec<Op> {
        std::mem::take(&mut self.ops)
    }

    /// Whether nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }
}

/// Context handed to actors on every event.
#[derive(Debug)]
pub struct ActorCtx<'a> {
    /// This actor's process id.
    pub me: ProcessId,
    /// Deterministic randomness (per-process stream).
    pub rng: &'a mut Rng,
    /// Shared metrics registry.
    pub metrics: &'a mut Metrics,
}

/// Anything the simulator can host.
pub trait Actor: 'static {
    /// Handles one event, pushing effects into `out`.
    fn on_event(&mut self, now: Time, event: ActorEvent, out: &mut Outbox, ctx: &mut ActorCtx<'_>);

    /// Downcast support for test inspection.
    fn as_any(&mut self) -> &mut dyn Any;
}

/// Hosts any sans-io protocol [`StateMachine`] as a simulator actor,
/// translating between [`ActorEvent`]/[`Op`] and the protocol's
/// [`Event`]/[`Action`].
#[derive(Debug)]
pub struct Hosted<S> {
    inner: S,
}

impl<S: StateMachine + 'static> Hosted<S> {
    /// Wraps a state machine.
    pub fn new(inner: S) -> Self {
        Self { inner }
    }

    /// The wrapped state machine.
    pub fn inner(&self) -> &S {
        &self.inner
    }

    /// Mutable access to the wrapped state machine.
    pub fn inner_mut(&mut self) -> &mut S {
        &mut self.inner
    }

    /// Boxes this adapter as an [`Actor`].
    pub fn boxed(self) -> Box<dyn Actor> {
        Box::new(self)
    }

    /// Maps protocol actions into simulator ops.
    pub fn map_actions(actions: Vec<Action>, out: &mut Outbox) {
        for action in actions {
            out.push(match action {
                Action::Send { to, msg } => Op::Send { to, msg },
                Action::SetTimer { after_us, timer } => Op::ProtoTimer { after_us, timer },
                Action::Persist {
                    record,
                    sync,
                    token,
                } => Op::Persist {
                    record,
                    sync,
                    token,
                },
                Action::TrimStorage { ring, upto } => Op::TrimStorage { ring, upto },
                Action::Deliver {
                    group,
                    instance,
                    value,
                } => Op::Delivered {
                    group,
                    instance,
                    value,
                },
                Action::Respond {
                    client,
                    request,
                    payload,
                } => Op::Respond {
                    client,
                    request,
                    payload,
                },
            });
        }
    }
}

impl<S: StateMachine + 'static> Actor for Hosted<S> {
    fn on_event(
        &mut self,
        now: Time,
        event: ActorEvent,
        out: &mut Outbox,
        _ctx: &mut ActorCtx<'_>,
    ) {
        let proto_event = match event {
            ActorEvent::Start => Event::Start,
            ActorEvent::Message { from, msg } => Event::Message { from, msg },
            ActorEvent::ProtoTimer(kind) => Event::Timer(kind),
            ActorEvent::PersistDone(token) => Event::PersistDone(token),
            ActorEvent::CoordinatorChange {
                ring,
                coordinator,
                supersedes,
            } => Event::CoordinatorChange {
                ring,
                coordinator,
                supersedes,
            },
            ActorEvent::MembershipChange { ring, down } => Event::MembershipChange { ring, down },
            // Protocol nodes take no custom wakeups or raw disk ops.
            ActorEvent::Wakeup(_) | ActorEvent::DiskDone(_) => return,
        };
        let actions = self.inner.on_event(now, proto_event);
        Self::map_actions(actions, out);
    }

    fn as_any(&mut self) -> &mut dyn Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Debug)]
    struct Probe {
        events: Vec<ActorEvent>,
    }

    impl Actor for Probe {
        fn on_event(
            &mut self,
            _now: Time,
            event: ActorEvent,
            out: &mut Outbox,
            _ctx: &mut ActorCtx<'_>,
        ) {
            self.events.push(event);
            out.wakeup(10, 1);
        }

        fn as_any(&mut self) -> &mut dyn Any {
            self
        }
    }

    #[test]
    fn outbox_collects_and_drains() {
        let mut out = Outbox::new();
        assert!(out.is_empty());
        out.send(ProcessId::new(1), Message::CheckpointQuery { seq: 1 });
        out.wakeup(5, 9);
        let ops = out.take();
        assert_eq!(ops.len(), 2);
        assert!(out.is_empty());
    }

    #[test]
    fn probe_downcast_via_any() {
        let mut probe: Box<dyn Actor> = Box::new(Probe { events: vec![] });
        let mut rng = Rng::new(0);
        let mut metrics = Metrics::default();
        let mut ctx = ActorCtx {
            me: ProcessId::new(0),
            rng: &mut rng,
            metrics: &mut metrics,
        };
        let mut out = Outbox::new();
        probe.on_event(Time::ZERO, ActorEvent::Start, &mut out, &mut ctx);
        let p = probe.as_any().downcast_mut::<Probe>().unwrap();
        assert_eq!(p.events.len(), 1);
    }
}
