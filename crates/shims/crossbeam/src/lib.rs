//! Minimal vendored shim of the [`crossbeam`](https://docs.rs/crossbeam)
//! channel API used by this workspace, backed by `std::sync::mpsc`.
//! The `select!` macro is not provided; the transport polls its
//! receivers with `try_recv` instead.

#![forbid(unsafe_code)]

/// Multi-producer single-consumer channels.
pub mod channel {
    pub use std::sync::mpsc::{Receiver, RecvTimeoutError, Sender, TryRecvError};

    /// An unbounded FIFO channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        std::sync::mpsc::channel()
    }
}

#[cfg(test)]
mod tests {
    use super::channel::{unbounded, RecvTimeoutError};
    use std::time::Duration;

    #[test]
    fn unbounded_send_recv() {
        let (tx, rx) = unbounded();
        tx.send(5).unwrap();
        assert_eq!(rx.recv().unwrap(), 5);
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(1)),
            Err(RecvTimeoutError::Timeout)
        );
    }
}
