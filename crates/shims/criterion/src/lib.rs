//! Minimal vendored shim of the [`criterion`](https://docs.rs/criterion)
//! benchmarking API: enough to compile and run the workspace's
//! micro-benchmarks as simple wall-clock timers. No statistics, no
//! warm-up calibration, no HTML reports — each benchmark runs a fixed
//! number of iterations and prints mean time per iteration.

#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

const ITERS: u32 = 200;

/// Throughput annotation attached to a benchmark group.
#[derive(Copy, Clone, Debug)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Elements processed per iteration.
    Elements(u64),
}

/// How `iter_batched` sizes its setup batches (ignored by this shim).
#[derive(Copy, Clone, Debug)]
pub enum BatchSize {
    /// Small per-iteration state.
    SmallInput,
    /// Large per-iteration state.
    LargeInput,
}

/// Passed to benchmark closures; drives the measured routine.
#[derive(Debug, Default)]
pub struct Bencher {
    elapsed: Duration,
    iters: u32,
}

impl Bencher {
    /// Times `routine` over a fixed number of iterations.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..ITERS {
            std::hint::black_box(routine());
        }
        self.elapsed = start.elapsed();
        self.iters = ITERS;
    }

    /// Times `routine` with a fresh `setup()` input per iteration;
    /// setup time is excluded from the measurement.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let mut total = Duration::ZERO;
        for _ in 0..ITERS {
            let input = setup();
            let start = Instant::now();
            std::hint::black_box(routine(input));
            total += start.elapsed();
        }
        self.elapsed = total;
        self.iters = ITERS;
    }

    fn report(&self, name: &str) {
        let per_iter = self.elapsed.as_nanos() / u128::from(self.iters.max(1));
        println!(
            "bench {name:<40} {per_iter:>12} ns/iter ({} iters)",
            self.iters
        );
    }
}

/// A named set of related benchmarks.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    name: String,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Attaches a throughput annotation (recorded, not reported).
    pub fn throughput(&mut self, _throughput: Throughput) -> &mut Self {
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher::default();
        f(&mut b);
        b.report(&format!("{}/{}", self.name, id.into()));
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// The benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion;

impl Criterion {
    /// A driver with default settings.
    pub fn new() -> Self {
        Self
    }

    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            _parent: self,
        }
    }

    /// Runs one stand-alone benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher::default();
        f(&mut b);
        b.report(&id.into());
        self
    }

    /// Runs registered groups (no-op: groups run eagerly here).
    pub fn final_summary(&mut self) {}
}

/// Declares a benchmark group function, mirroring the real macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::new();
            $($target(&mut c);)+
        }
    };
}

/// Declares the benchmark `main` that runs the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_runs_routines() {
        let mut c = Criterion::new();
        c.bench_function("noop", |b| b.iter(|| 1 + 1));
        let mut g = c.benchmark_group("g");
        g.throughput(Throughput::Bytes(8))
            .bench_function("batched", |b| {
                b.iter_batched(|| vec![1u8; 8], |v| v.len(), BatchSize::SmallInput);
            });
        g.finish();
    }
}
