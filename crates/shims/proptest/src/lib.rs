//! Minimal vendored shim of the [`proptest`](https://docs.rs/proptest)
//! crate: the `proptest!` macro, `any::<T>()`, integer-range and
//! `collection::vec` strategies, and the `prop_assert*` macros.
//!
//! Differences from the real crate, acceptable for this workspace's
//! tests: cases are drawn from a fixed deterministic RNG seeded by the
//! test name (fully reproducible, no persistence files), there is no
//! shrinking, and `prop_assert*` panics like `assert*` instead of
//! returning a `TestCaseError`.

#![forbid(unsafe_code)]

/// Number of random cases each `proptest!` test executes.
pub const NUM_CASES: u32 = 64;

/// Deterministic test RNG (splitmix64).
pub mod test_runner {
    /// A small deterministic RNG; every test gets a stream seeded by
    /// its own name, so runs are reproducible without a persistence
    /// file.
    #[derive(Clone, Debug)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// An RNG seeded by hashing `name` (FNV-1a).
        pub fn deterministic(name: &str) -> Self {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x100_0000_01b3);
            }
            Self { state: h | 1 }
        }

        /// The next raw 64-bit value.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }

        /// A uniform value in `[0, bound)`; `bound` must be non-zero.
        pub fn below(&mut self, bound: u64) -> u64 {
            self.next_u64() % bound
        }
    }
}

/// The strategy abstraction: something that can draw values.
pub mod strategy {
    use crate::test_runner::TestRng;

    /// A source of random values of one type.
    pub trait Strategy {
        /// The value type drawn.
        type Value;

        /// Draws one value.
        fn sample(&self, rng: &mut TestRng) -> Self::Value;
    }

    /// Strategy for "any value of `T`" — see [`crate::arbitrary::any`].
    #[derive(Clone, Copy, Debug, Default)]
    pub struct Any<T>(pub(crate) std::marker::PhantomData<T>);

    macro_rules! impl_any_uint {
        ($($t:ty),*) => {
            $(
                impl Strategy for Any<$t> {
                    type Value = $t;
                    fn sample(&self, rng: &mut TestRng) -> $t {
                        rng.next_u64() as $t
                    }
                }

                impl Strategy for std::ops::Range<$t> {
                    type Value = $t;
                    fn sample(&self, rng: &mut TestRng) -> $t {
                        assert!(self.start < self.end, "empty range strategy");
                        let span = u64::from(self.end - self.start);
                        self.start + rng.below(span) as $t
                    }
                }

                impl Strategy for std::ops::RangeInclusive<$t> {
                    type Value = $t;
                    fn sample(&self, rng: &mut TestRng) -> $t {
                        let (lo, hi) = (*self.start(), *self.end());
                        assert!(lo <= hi, "empty range strategy");
                        let span = u64::from(hi - lo).wrapping_add(1);
                        if span == 0 {
                            // Full u64 domain.
                            rng.next_u64() as $t
                        } else {
                            lo + rng.below(span) as $t
                        }
                    }
                }
            )*
        };
    }

    impl_any_uint!(u8, u16, u32, u64);

    impl Strategy for std::ops::Range<usize> {
        type Value = usize;
        fn sample(&self, rng: &mut TestRng) -> usize {
            assert!(self.start < self.end, "empty range strategy");
            let span = (self.end - self.start) as u64;
            self.start + rng.below(span) as usize
        }
    }

    impl Strategy for Any<bool> {
        type Value = bool;
        fn sample(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    /// A strategy that always yields the same value.
    #[derive(Clone, Copy, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn sample(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }
}

/// `any::<T>()` — the canonical strategy for a type.
pub mod arbitrary {
    use crate::strategy::Any;

    /// The full-domain strategy for `T`.
    pub fn any<T>() -> Any<T> {
        Any(std::marker::PhantomData)
    }
}

/// Collection strategies.
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy for `Vec<T>` with a length drawn from `len` and
    /// elements drawn from `element`.
    #[derive(Clone, Debug)]
    pub struct VecStrategy<S> {
        element: S,
        len: std::ops::Range<usize>,
    }

    /// Builds a [`VecStrategy`].
    pub fn vec<S: Strategy>(element: S, len: std::ops::Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = Strategy::sample(&self.len, rng);
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Error type kept for API compatibility (unused: `prop_assert*`
/// panics in this shim).
#[derive(Clone, Debug)]
pub struct TestCaseError(pub String);

/// The glob-import surface tests use.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Defines `#[test]` functions whose arguments are drawn from
/// strategies, executing each body [`NUM_CASES`] times.
#[macro_export]
macro_rules! proptest {
    ($( $(#[$meta:meta])* fn $name:ident ( $($arg:ident in $strat:expr),* $(,)? ) $body:block )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let mut __rng =
                    $crate::test_runner::TestRng::deterministic(stringify!($name));
                for __case in 0..$crate::NUM_CASES {
                    let _ = __case;
                    $(let $arg = $crate::strategy::Strategy::sample(&($strat), &mut __rng);)*
                    $body
                }
            }
        )*
    };
}

/// Like `assert!` (this shim panics instead of returning an error).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Like `assert_eq!`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Like `assert_ne!`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_respect_bounds(x in 3u8..9, y in 10u64..20, v in crate::collection::vec(any::<u8>(), 0..4)) {
            prop_assert!((3..9).contains(&x));
            prop_assert!((10..20).contains(&y));
            prop_assert!(v.len() < 4);
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let mut a = crate::test_runner::TestRng::deterministic("seed");
        let mut b = crate::test_runner::TestRng::deterministic("seed");
        assert_eq!(a.next_u64(), b.next_u64());
    }
}
