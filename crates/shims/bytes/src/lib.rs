//! Minimal vendored shim of the [`bytes`](https://docs.rs/bytes) crate.
//!
//! Implements exactly the API surface this workspace uses — a
//! cheaply-cloneable immutable byte buffer ([`Bytes`]), a growable
//! builder ([`BytesMut`]) and the [`Buf`]/[`BufMut`] cursor traits —
//! so the workspace builds without network access. `Bytes` is an
//! `Arc<Vec<u8>>` plus a sub-range, so `clone`, `slice`, `split_to` —
//! and freezing a [`BytesMut`], which moves its backing `Vec` behind
//! the `Arc` — are O(1) and never copy payload data.

#![forbid(unsafe_code)]

use std::borrow::Borrow;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::ops::{Bound, Deref, RangeBounds};
use std::sync::Arc;

/// A cheaply cloneable, immutable, contiguous slice of memory.
#[derive(Clone, Default)]
pub struct Bytes {
    data: Arc<Vec<u8>>,
    start: usize,
    end: usize,
}

impl Bytes {
    /// An empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// A buffer over a static slice (copied once on construction; the
    /// real crate borrows, which this shim does not need).
    pub fn from_static(bytes: &'static [u8]) -> Self {
        Self::from(bytes.to_vec())
    }

    /// Copies `data` into a new buffer.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Self::from(data.to_vec())
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// A zero-copy sub-range view.
    ///
    /// # Panics
    ///
    /// Panics if the range is out of bounds.
    pub fn slice(&self, range: impl RangeBounds<usize>) -> Self {
        let len = self.len();
        let begin = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let end = match range.end_bound() {
            Bound::Included(&n) => n + 1,
            Bound::Excluded(&n) => n,
            Bound::Unbounded => len,
        };
        assert!(begin <= end && end <= len, "slice out of bounds");
        Self {
            data: Arc::clone(&self.data),
            start: self.start + begin,
            end: self.start + end,
        }
    }

    /// Splits the buffer into two at `at`: returns `[0, at)` and
    /// leaves `[at, len)` in `self`. Both halves share the same
    /// allocation — no bytes are copied (matches the real crate).
    ///
    /// # Panics
    ///
    /// Panics if `at > len`.
    pub fn split_to(&mut self, at: usize) -> Bytes {
        assert!(at <= self.len(), "split_to out of bounds");
        let head = Self {
            data: Arc::clone(&self.data),
            start: self.start,
            end: self.start + at,
        };
        self.start += at;
        head
    }

    /// Splits the buffer into two at `at`: returns `[at, len)` and
    /// leaves `[0, at)` in `self`. Zero-copy, like [`Bytes::split_to`].
    ///
    /// # Panics
    ///
    /// Panics if `at > len`.
    pub fn split_off(&mut self, at: usize) -> Bytes {
        assert!(at <= self.len(), "split_off out of bounds");
        let tail = Self {
            data: Arc::clone(&self.data),
            start: self.start + at,
            end: self.end,
        };
        self.end = self.start + at;
        tail
    }

    /// The buffer contents as a plain slice.
    pub fn as_slice(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }

    /// Copies the contents into a fresh `Vec`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.as_slice().to_vec()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl Borrow<[u8]> for Bytes {
    fn borrow(&self) -> &[u8] {
        self.as_slice()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        let end = v.len();
        Self {
            data: Arc::new(v),
            start: 0,
            end,
        }
    }
}

impl From<String> for Bytes {
    fn from(s: String) -> Self {
        Self::from(s.into_bytes())
    }
}

impl From<&'static str> for Bytes {
    fn from(s: &'static str) -> Self {
        Self::from(s.as_bytes().to_vec())
    }
}

impl From<&'static [u8]> for Bytes {
    fn from(s: &'static [u8]) -> Self {
        Self::from(s.to_vec())
    }
}

impl From<Box<[u8]>> for Bytes {
    fn from(b: Box<[u8]>) -> Self {
        Self::from(b.into_vec())
    }
}

impl FromIterator<u8> for Bytes {
    fn from_iter<T: IntoIterator<Item = u8>>(iter: T) -> Self {
        Self::from(iter.into_iter().collect::<Vec<u8>>())
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}
impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_slice() == other
    }
}

impl PartialEq<&[u8]> for Bytes {
    fn eq(&self, other: &&[u8]) -> bool {
        self.as_slice() == *other
    }
}

impl PartialEq<Vec<u8>> for Bytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl PartialOrd for Bytes {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Bytes {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.as_slice().cmp(other.as_slice())
    }
}

impl Hash for Bytes {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.as_slice().hash(state);
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b\"")?;
        for &b in self.as_slice() {
            for esc in std::ascii::escape_default(b) {
                write!(f, "{}", esc as char)?;
            }
        }
        write!(f, "\"")
    }
}

/// A growable byte buffer, frozen into [`Bytes`] when complete.
#[derive(Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    inner: Vec<u8>,
    /// Read cursor for the `Buf` impl (bytes before it are consumed).
    read: usize,
}

impl BytesMut {
    /// An empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty buffer with `cap` bytes pre-allocated.
    pub fn with_capacity(cap: usize) -> Self {
        Self {
            inner: Vec::with_capacity(cap),
            read: 0,
        }
    }

    /// Unconsumed length in bytes.
    pub fn len(&self) -> usize {
        self.inner.len() - self.read
    }

    /// Whether no unconsumed bytes remain.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Ensures space for `additional` more bytes.
    pub fn reserve(&mut self, additional: usize) {
        self.inner.reserve(additional);
    }

    /// Appends a slice.
    pub fn extend_from_slice(&mut self, other: &[u8]) {
        self.inner.extend_from_slice(other);
    }

    /// Removes and returns the first `at` unconsumed bytes.
    ///
    /// # Panics
    ///
    /// Panics if `at > len`.
    pub fn split_to(&mut self, at: usize) -> BytesMut {
        assert!(at <= self.len(), "split_to out of bounds");
        let head = self.inner[self.read..self.read + at].to_vec();
        self.inner.drain(..self.read + at);
        self.read = 0;
        BytesMut {
            inner: head,
            read: 0,
        }
    }

    /// Freezes into an immutable [`Bytes`].
    ///
    /// O(1): the backing `Vec` moves behind the shared `Arc` untouched
    /// — no bytes are copied — and a non-zero read cursor becomes the
    /// view's start offset.
    pub fn freeze(self) -> Bytes {
        let read = self.read;
        let mut out = Bytes::from(self.inner);
        out.start = read;
        out
    }

    /// The unconsumed contents as a plain slice.
    pub fn as_slice(&self) -> &[u8] {
        &self.inner[self.read..]
    }

    /// Clears the buffer.
    pub fn clear(&mut self) {
        self.inner.clear();
        self.read = 0;
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl std::ops::DerefMut for BytesMut {
    fn deref_mut(&mut self) -> &mut [u8] {
        let read = self.read;
        &mut self.inner[read..]
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl fmt::Debug for BytesMut {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(&Bytes::from(self.as_slice().to_vec()), f)
    }
}

impl Extend<u8> for BytesMut {
    fn extend<T: IntoIterator<Item = u8>>(&mut self, iter: T) {
        self.inner.extend(iter);
    }
}

/// Read cursor over a contiguous byte source.
pub trait Buf {
    /// Bytes left to consume.
    fn remaining(&self) -> usize;

    /// The unconsumed bytes (always the full remainder here: every
    /// implementation in this shim is contiguous).
    fn chunk(&self) -> &[u8];

    /// Consumes `cnt` bytes.
    fn advance(&mut self, cnt: usize);

    /// Reads one byte.
    ///
    /// # Panics
    ///
    /// All `get_*` methods panic on underflow; protocol code checks
    /// `remaining()` first.
    fn get_u8(&mut self) -> u8 {
        let b = self.chunk()[0];
        self.advance(1);
        b
    }

    /// Reads a little-endian `u16`.
    fn get_u16_le(&mut self) -> u16 {
        let mut raw = [0u8; 2];
        raw.copy_from_slice(&self.chunk()[..2]);
        self.advance(2);
        u16::from_le_bytes(raw)
    }

    /// Reads a little-endian `u32`.
    fn get_u32_le(&mut self) -> u32 {
        let mut raw = [0u8; 4];
        raw.copy_from_slice(&self.chunk()[..4]);
        self.advance(4);
        u32::from_le_bytes(raw)
    }

    /// Reads a little-endian `u64`.
    fn get_u64_le(&mut self) -> u64 {
        let mut raw = [0u8; 8];
        raw.copy_from_slice(&self.chunk()[..8]);
        self.advance(8);
        u64::from_le_bytes(raw)
    }

    /// Consumes `len` bytes into an owned [`Bytes`].
    fn copy_to_bytes(&mut self, len: usize) -> Bytes {
        let out = Bytes::from(self.chunk()[..len].to_vec());
        self.advance(len);
        out
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn chunk(&self) -> &[u8] {
        self.as_slice()
    }

    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.len(), "advance past end");
        self.start += cnt;
    }

    fn copy_to_bytes(&mut self, len: usize) -> Bytes {
        // Zero-copy: narrow the shared view.
        let out = self.slice(..len);
        self.advance(len);
        out
    }
}

impl Buf for BytesMut {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn chunk(&self) -> &[u8] {
        self.as_slice()
    }

    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.len(), "advance past end");
        self.read += cnt;
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn chunk(&self) -> &[u8] {
        self
    }

    fn advance(&mut self, cnt: usize) {
        *self = &self[cnt..];
    }
}

/// Write cursor over a growable byte sink.
pub trait BufMut {
    /// Appends a slice.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Appends a little-endian `u16`.
    fn put_u16_le(&mut self, v: u16) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u32`.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u64`.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.inner.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bytes_slice_is_zero_copy_view() {
        let b = Bytes::from(vec![1u8, 2, 3, 4, 5]);
        let s = b.slice(1..4);
        assert_eq!(&s[..], &[2, 3, 4]);
        assert_eq!(s.len(), 3);
        let s2 = s.slice(..2);
        assert_eq!(&s2[..], &[2, 3]);
    }

    #[test]
    fn buf_cursor_roundtrip() {
        let mut m = BytesMut::new();
        m.put_u8(7);
        m.put_u16_le(258);
        m.put_u32_le(70_000);
        m.put_u64_le(u64::MAX - 1);
        m.put_slice(b"xyz");
        let mut b = m.freeze();
        assert_eq!(b.get_u8(), 7);
        assert_eq!(b.get_u16_le(), 258);
        assert_eq!(b.get_u32_le(), 70_000);
        assert_eq!(b.get_u64_le(), u64::MAX - 1);
        assert_eq!(b.copy_to_bytes(3), Bytes::from_static(b"xyz"));
        assert_eq!(b.remaining(), 0);
    }

    #[test]
    fn bytesmut_split_to_and_advance() {
        let mut m = BytesMut::new();
        m.put_slice(b"headtail");
        m.advance(2);
        let head = m.split_to(2);
        assert_eq!(&head[..], b"ad");
        assert_eq!(&m[..], b"tail");
    }

    #[test]
    fn bytes_split_to_matches_real_crate_semantics() {
        // Mirrors the real crate's doc example: `a.split_to(5)` leaves
        // the tail in place and returns the head, both aliasing the
        // original allocation.
        let mut a = Bytes::from(&b"hello world"[..]);
        let base = a.as_slice().as_ptr();
        let b = a.split_to(5);
        assert_eq!(&a[..], b" world");
        assert_eq!(&b[..], b"hello");
        // Zero-copy: both halves point into the original storage.
        assert_eq!(b.as_slice().as_ptr(), base);
        assert_eq!(a.as_slice().as_ptr(), unsafe_free_ptr_add(base, 5));
        // Boundary cases.
        let empty = a.split_to(0);
        assert!(empty.is_empty());
        let rest = a.split_to(a.len());
        assert_eq!(&rest[..], b" world");
        assert!(a.is_empty());
    }

    #[test]
    fn bytes_split_off_matches_real_crate_semantics() {
        let mut a = Bytes::from(&b"hello world"[..]);
        let base = a.as_slice().as_ptr();
        let b = a.split_off(5);
        assert_eq!(&a[..], b"hello");
        assert_eq!(&b[..], b" world");
        assert_eq!(a.as_slice().as_ptr(), base);
        assert_eq!(b.as_slice().as_ptr(), unsafe_free_ptr_add(base, 5));
    }

    #[test]
    #[should_panic(expected = "split_to out of bounds")]
    fn bytes_split_to_panics_past_end() {
        let mut a = Bytes::from(vec![1u8, 2, 3]);
        let _ = a.split_to(4);
    }

    #[test]
    fn freeze_with_read_cursor_keeps_single_allocation() {
        let mut m = BytesMut::new();
        m.put_slice(b"prefix-payload");
        m.advance(7);
        let frozen = m.freeze();
        assert_eq!(&frozen[..], b"payload");
        // A slice of the frozen view still aliases the same storage.
        let view = frozen.slice(..3);
        assert_eq!(view.as_slice().as_ptr(), frozen.as_slice().as_ptr());
    }

    #[test]
    fn freeze_moves_the_backing_vec_without_copying() {
        let mut m = BytesMut::with_capacity(16);
        m.put_slice(b"zero-copy freeze");
        let heap = m.inner.as_ptr();
        let frozen = m.freeze();
        assert_eq!(
            frozen.as_slice().as_ptr(),
            heap,
            "freeze must reuse the builder's heap buffer"
        );
    }

    /// Pointer offset helper for the aliasing assertions (no unsafe:
    /// computed via `wrapping_add`, only ever compared for equality).
    fn unsafe_free_ptr_add(p: *const u8, n: usize) -> *const u8 {
        p.wrapping_add(n)
    }

    #[test]
    fn slice_buf_impl() {
        let mut s: &[u8] = &[9, 1, 0];
        assert_eq!(s.get_u8(), 9);
        assert_eq!(s.get_u16_le(), 1);
        assert_eq!(s.remaining(), 0);
    }
}
