//! Minimal vendored shim of the [`parking_lot`](https://docs.rs/parking_lot)
//! crate: a [`Mutex`] whose `lock()` returns the guard directly (no
//! poisoning), backed by `std::sync::Mutex`.

#![forbid(unsafe_code)]

use std::sync::PoisonError;

/// A mutex that does not poison: `lock()` returns the guard directly.
#[derive(Default, Debug)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

/// Guard type returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Wraps `value`.
    pub fn new(value: T) -> Self {
        Self(std::sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, ignoring poisoning.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lock_returns_guard_directly() {
        let m = Mutex::new(1);
        *m.lock() += 41;
        assert_eq!(*m.lock(), 42);
        assert_eq!(m.into_inner(), 42);
    }
}
