//! Canned deployments the checker explores: cluster configuration,
//! an engine factory, and the workload to submit.
//!
//! A [`Scenario`] is everything [`check`](crate::checker::check) and
//! [`replay_schedule`](crate::checker::replay_schedule) need: how many
//! processes, which rings and groups, how to build (and rebuild, after
//! a crash) each node's engine, and which values get multicast once the
//! start-up exchange has settled. The constructors here cover the
//! deployments the regression schedules and the CI smoke run against.

use std::collections::BTreeSet;
use std::fmt;

use bytes::Bytes;
use mrp_amcast::engine::AmcastEngine;
use mrp_amcast::{BatchConfig, EngineKind};
use multiring_paxos::config::{ClusterConfig, RingSpec, RingTuning, Roles};
use multiring_paxos::types::{GroupId, ProcessId, RingId, Time};

/// One value multicast into the system after start-up.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Submission {
    /// Submitting process.
    pub at: ProcessId,
    /// Destination group set γ.
    pub groups: Vec<GroupId>,
    /// Payload bytes.
    pub payload: Bytes,
    /// Submit through the client request path (framing + submission
    /// batcher) instead of calling `multicast` directly.
    pub via_request: bool,
}

/// A checkable deployment: configuration, engine factory and workload.
pub struct Scenario {
    /// Display name (reports, CI artifacts).
    pub name: String,
    /// The cluster layout all engines share.
    pub config: ClusterConfig,
    /// Builds the engine for a process; the `bool` is `true` when the
    /// process is restarting after a crash (recovery path). Must be
    /// deterministic — the checker rebuilds worlds constantly.
    pub factory: Box<dyn Fn(ProcessId, bool) -> Box<dyn AmcastEngine>>,
    /// Values to multicast once start-up has quiesced.
    pub submissions: Vec<Submission>,
    /// When set, the genuineness oracle rejects any value-bearing frame
    /// sent to a process outside this set (the union of the addressed
    /// groups' processes).
    pub value_frame_allowed: Option<BTreeSet<ProcessId>>,
}

impl fmt::Debug for Scenario {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Scenario")
            .field("name", &self.name)
            .field("submissions", &self.submissions)
            .field("value_frame_allowed", &self.value_frame_allowed)
            .finish_non_exhaustive()
    }
}

/// Tuning for model checking: a short Δ so timer fires advance the
/// virtual clock in small steps, λ sized so every Δ tick yields exactly
/// one rate-leveling Skip (an idle ring must pad the deterministic
/// merge or multi-ring delivery stalls — Section 4.2 of the paper), and
/// no background trim (checkpoints are scheduled explicitly as
/// choices).
fn quiet_tuning() -> RingTuning {
    RingTuning {
        lambda: 2_000,
        delta_us: 500,
        trim_interval_us: 0,
        ..RingTuning::default()
    }
}

/// Two groups over the same three processes, rings rotated so the two
/// coordinators (and wbcast sequencers) differ.
fn shared_two_group_config() -> ClusterConfig {
    let tuning = quiet_tuning();
    let mut b = ClusterConfig::builder();
    for ring in 0..2u16 {
        let mut spec = RingSpec::new(RingId::new(ring)).tuning(tuning);
        for p in 0..3u32 {
            spec = spec.member(ProcessId::new((p + u32::from(ring)) % 3), Roles::ALL);
        }
        b = b.ring(spec).group(GroupId::new(ring), RingId::new(ring));
    }
    for p in 0..3u32 {
        for g in 0..2u16 {
            b = b.subscribe(ProcessId::new(p), GroupId::new(g));
        }
    }
    b.build().expect("static scenario config is valid")
}

fn boxed_factory(
    kind: EngineKind,
    config: ClusterConfig,
    batching: Option<BatchConfig>,
) -> Box<dyn Fn(ProcessId, bool) -> Box<dyn AmcastEngine>> {
    Box::new(move |p, recovering| {
        let mut engine = if recovering {
            kind.build_recovering(p, config.clone(), std::collections::BTreeMap::new())
        } else {
            kind.build(p, config.clone())
        };
        // Batching is configured explicitly (never from the
        // environment): checker runs must be reproducible.
        let _ = engine.set_batching(Time::ZERO, batching);
        Box::new(engine)
    })
}

impl Scenario {
    /// The CI smoke deployment: three processes, two groups on rotated
    /// rings, one single-group and one multi-group submission — the
    /// multi-group value exercises the covering-group route on the ring
    /// engine and the timestamp merge on the white-box engine.
    pub fn mixed(kind: EngineKind) -> Scenario {
        let config = shared_two_group_config();
        Scenario {
            name: format!("mixed-{}", engine_tag(kind)),
            factory: boxed_factory(kind, config.clone(), None),
            config,
            submissions: vec![
                Submission {
                    at: ProcessId::new(0),
                    groups: vec![GroupId::new(0)],
                    payload: Bytes::from_static(b"a"),
                    via_request: false,
                },
                Submission {
                    at: ProcessId::new(2),
                    groups: vec![GroupId::new(0), GroupId::new(1)],
                    payload: Bytes::from_static(b"b"),
                    via_request: false,
                },
            ],
            value_frame_allowed: None,
        }
    }

    /// Two disjoint rings ({p0, p1} and {p2, p3}) with one submission
    /// addressed only to the first group: with the white-box engine, no
    /// frame referencing the value may ever reach p2 or p3
    /// (genuineness, Section 2 of the paper).
    pub fn genuine_pairs() -> Scenario {
        let tuning = quiet_tuning();
        let config = ClusterConfig::builder()
            .ring(
                RingSpec::new(RingId::new(0))
                    .tuning(tuning)
                    .member(ProcessId::new(0), Roles::ALL)
                    .member(ProcessId::new(1), Roles::ALL),
            )
            .ring(
                RingSpec::new(RingId::new(1))
                    .tuning(tuning)
                    .member(ProcessId::new(2), Roles::ALL)
                    .member(ProcessId::new(3), Roles::ALL),
            )
            .group(GroupId::new(0), RingId::new(0))
            .group(GroupId::new(1), RingId::new(1))
            .subscribe(ProcessId::new(0), GroupId::new(0))
            .subscribe(ProcessId::new(1), GroupId::new(0))
            .subscribe(ProcessId::new(2), GroupId::new(1))
            .subscribe(ProcessId::new(3), GroupId::new(1))
            .build()
            .expect("static scenario config is valid");
        Scenario {
            name: "genuine-pairs".into(),
            factory: boxed_factory(EngineKind::Wbcast, config.clone(), None),
            config,
            submissions: vec![Submission {
                at: ProcessId::new(0),
                groups: vec![GroupId::new(0)],
                payload: Bytes::from_static(b"only-g0"),
                via_request: false,
            }],
            value_frame_allowed: Some([ProcessId::new(0), ProcessId::new(1)].into_iter().collect()),
        }
    }

    /// A batching-enabled deployment of either engine: three client
    /// requests at two processes through the submission batcher. With
    /// `window_bound` false the batcher flushes on its two-value size
    /// bound; with it true the size bound is slack (eight values) and
    /// every flush must come from a `SubmitFlush` timer firing, so the
    /// checker interleaves the flush tick against deliveries and other
    /// timers like any other choice.
    pub fn batched(kind: EngineKind, window_bound: bool) -> Scenario {
        let config = shared_two_group_config();
        let batching = Some(if window_bound {
            BatchConfig {
                max_values: 8,
                max_bytes: 1 << 20,
                window_us: 500,
            }
        } else {
            BatchConfig {
                max_values: 2,
                max_bytes: 1 << 20,
                window_us: 1_000,
            }
        });
        let bound = if window_bound { "window" } else { "size" };
        Scenario {
            name: format!("batched-{bound}-{}", engine_tag(kind)),
            factory: boxed_factory(kind, config.clone(), batching),
            config,
            // Two values batch together at p0; the third, at p2, keeps a
            // second batcher (and a second SubmitFlush timer) in play.
            submissions: vec![
                Submission {
                    at: ProcessId::new(0),
                    groups: vec![GroupId::new(0)],
                    payload: Bytes::from_static(b"batch-a"),
                    via_request: true,
                },
                Submission {
                    at: ProcessId::new(0),
                    groups: vec![GroupId::new(0)],
                    payload: Bytes::from_static(b"batch-b"),
                    via_request: true,
                },
                Submission {
                    at: ProcessId::new(2),
                    groups: vec![GroupId::new(1)],
                    payload: Bytes::from_static(b"batch-c"),
                    via_request: true,
                },
            ],
            value_frame_allowed: None,
        }
    }

    /// The PR 7 regression deployment: white-box engine with the
    /// submission batcher flushing at two values, fed through the client
    /// request path so the flush produces coalesced outgoing frames.
    pub fn coalescer() -> Scenario {
        let config = shared_two_group_config();
        let batching = Some(BatchConfig {
            max_values: 2,
            max_bytes: 1 << 20,
            window_us: 1_000,
        });
        Scenario {
            name: "coalescer".into(),
            factory: boxed_factory(EngineKind::Wbcast, config.clone(), batching),
            config,
            submissions: vec![
                Submission {
                    at: ProcessId::new(0),
                    groups: vec![GroupId::new(0)],
                    payload: Bytes::from_static(b"req-1"),
                    via_request: true,
                },
                Submission {
                    at: ProcessId::new(0),
                    groups: vec![GroupId::new(0)],
                    payload: Bytes::from_static(b"req-2"),
                    via_request: true,
                },
            ],
            value_frame_allowed: None,
        }
    }

    /// The PR 5 regression deployment: three groups whose rings are all
    /// coordinated (and hence wbcast-sequenced) by p0, with a
    /// multi-group submission from p2 — crash p2 after one Submit frame
    /// lands and the sequencer must complete the round as an orphan,
    /// self-leading every remaining group.
    pub fn orphan() -> Scenario {
        let tuning = quiet_tuning();
        let mut b = ClusterConfig::builder().ring(
            RingSpec::new(RingId::new(0))
                .tuning(tuning)
                .member(ProcessId::new(0), Roles::ALL)
                .member(ProcessId::new(1), Roles::ALL)
                .member(ProcessId::new(2), Roles::ALL),
        );
        for ring in 1..3u16 {
            b = b.ring(
                RingSpec::new(RingId::new(ring))
                    .tuning(tuning)
                    .member(ProcessId::new(0), Roles::ALL)
                    .member(ProcessId::new(1), Roles::ALL),
            );
        }
        for g in 0..3u16 {
            b = b.group(GroupId::new(g), RingId::new(g));
            b = b
                .subscribe(ProcessId::new(0), GroupId::new(g))
                .subscribe(ProcessId::new(1), GroupId::new(g));
        }
        b = b.subscribe(ProcessId::new(2), GroupId::new(0));
        let config = b.build().expect("static scenario config is valid");
        Scenario {
            name: "orphan".into(),
            factory: boxed_factory(EngineKind::Wbcast, config.clone(), None),
            config,
            submissions: vec![Submission {
                at: ProcessId::new(2),
                groups: vec![GroupId::new(0), GroupId::new(1), GroupId::new(2)],
                payload: Bytes::from_static(b"orphaned"),
                via_request: false,
            }],
            value_frame_allowed: None,
        }
    }
}

fn engine_tag(kind: EngineKind) -> &'static str {
    match kind {
        EngineKind::MultiRing => "multiring",
        EngineKind::Wbcast => "wbcast",
    }
}
