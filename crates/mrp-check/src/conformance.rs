//! Wire-conformance lints: the codec, the engine frame vocabulary and
//! the protocol constants must stay mutually consistent.
//!
//! The sans-io lints in [`lint`](crate::lint) keep the engines
//! *checkable*; this suite keeps the wire layer *honest*. Three rule
//! families, all dependency-free source scanning plus one live codec
//! exercise:
//!
//! | rule                | rejects |
//! |---------------------|---------|
//! | `codec-tags`        | colliding wire-tag values; a declared tag not referenced by both an encode and a decode path (dead vocabulary) |
//! | `frame-coverage`    | an enum variant missing from any of its codec/dispatch functions — every [`Message`] variant must appear in `encode`, `encoded_len` and `decode`; every `PersistRecord` variant in `encode_record`, `record_len` and `decode_record`; every white-box `WbMessage` frame in `into_frame`, `parse` and `on_wb_message` (constructed somewhere ⇒ matched somewhere) |
//! | `protocol-constants`| a missing `const _` static assertion for the load-bearing recovery-window algebra (`TAKEOVER_GRACE_DELTAS ≥ ORPHAN_DELTAS + RETRY_DELTAS`, `ORPHAN_DELTAS > RETRY_DELTAS`) |
//! | `round-trip`        | a [`Message`] variant without a sample that encodes, length-checks, decodes and compares equal through the live codec |
//!
//! Like the purity lints, sources are stripped of comments and string
//! literals and matching stops at the first `#[cfg(test)]`. The
//! functions all take source *text* so the self-tests can feed doctored
//! sources with injected violations; [`conformance_check`] is the
//! entry point the `lint` binary runs against the real tree.

use std::fmt;
use std::path::Path;

use bytes::{Bytes, BytesMut};
use multiring_paxos::codec::{decode, encode, encoded_len};
use multiring_paxos::event::Message;
use multiring_paxos::recovery::CheckpointId;
use multiring_paxos::types::{
    Ballot, ClientId, ConsensusValue, GroupId, InstanceId, ProcessId, RingId, Value, ValueId,
};

use crate::lint::{contains_word, strip};

/// One conformance finding: the rule, the (logical) file and what is
/// inconsistent.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Finding {
    /// Rule identifier (`codec-tags`, `frame-coverage`,
    /// `protocol-constants`, `round-trip`).
    pub rule: &'static str,
    /// File the inconsistency concerns (as given to the checker).
    pub file: String,
    /// Human-readable description.
    pub detail: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: [{}] {}", self.file, self.rule, self.detail)
    }
}

/// Strips comments/strings and truncates at the first `#[cfg(test)]`
/// so test-module mentions never satisfy (or trip) a rule.
fn prepared(source: &str) -> String {
    let stripped = strip(source);
    match stripped
        .lines()
        .position(|l| l.trim_start().starts_with("#[cfg(test)]"))
    {
        Some(cut) => stripped.lines().take(cut).collect::<Vec<_>>().join("\n"),
        None => stripped,
    }
}

/// Counts word-boundary occurrences of `needle` in `text`.
fn count_word(text: &str, needle: &str) -> usize {
    text.lines().filter(|l| contains_word(l, needle)).count()
}

/// Extracts `const TAG_*` declarations with `u8` literal values:
/// `(name, value, 1-based line)`.
pub fn parse_tag_consts(source: &str) -> Vec<(String, u8, usize)> {
    let mut out = Vec::new();
    for (idx, raw) in prepared(source).lines().enumerate() {
        let line = raw.trim_start().trim_start_matches("pub ");
        let Some(rest) = line.strip_prefix("const TAG_") else {
            continue;
        };
        let Some((name_tail, rest)) = rest.split_once(':') else {
            continue;
        };
        let Some((_, value)) = rest.split_once('=') else {
            continue;
        };
        let Ok(value) = value.trim().trim_end_matches(';').trim().parse::<u8>() else {
            continue;
        };
        out.push((format!("TAG_{}", name_tail.trim()), value, idx + 1));
    }
    out
}

/// The `codec-tags` rule over one file: no two tags may share a value,
/// and every declared tag must be referenced at least twice beyond its
/// declaration (once encoding, once decoding) — a tag that is not is
/// dead vocabulary.
pub fn check_codec_tags(file: &str, source: &str) -> Vec<Finding> {
    let mut out = Vec::new();
    let text = prepared(source);
    let tags = parse_tag_consts(source);
    for (i, (name, value, line)) in tags.iter().enumerate() {
        for (other, value2, line2) in tags.iter().skip(i + 1) {
            if value == value2 {
                out.push(Finding {
                    rule: "codec-tags",
                    file: file.to_string(),
                    detail: format!(
                        "tag collision: `{name}` (line {line}) and `{other}` (line {line2}) \
                         both use wire value {value}"
                    ),
                });
            }
        }
        let uses = count_word(&text, name);
        if uses < 3 {
            out.push(Finding {
                rule: "codec-tags",
                file: file.to_string(),
                detail: format!(
                    "dead tag: `{name}` (line {line}) referenced on {uses} line(s) including \
                     its declaration; an alive tag appears in both an encode and a decode path"
                ),
            });
        }
    }
    out
}

/// Parses the variant names of `enum enum_name` out of `source`
/// (stripped, pre-`#[cfg(test)]`).
pub fn parse_enum_variants(source: &str, enum_name: &str) -> Vec<String> {
    let text = prepared(source);
    let Some(body) = enum_body(&text, enum_name) else {
        return Vec::new();
    };
    let mut out = Vec::new();
    let mut depth = 0usize;
    let mut at_variant = true;
    let mut chars = body.chars().peekable();
    while let Some(c) = chars.next() {
        match c {
            '{' | '(' | '<' | '[' => depth += 1,
            '}' | ')' | '>' | ']' => depth = depth.saturating_sub(1),
            ',' if depth == 0 => at_variant = true,
            c if at_variant && depth == 0 && c.is_ascii_uppercase() => {
                let mut name = String::new();
                name.push(c);
                while let Some(&n) = chars.peek() {
                    if n.is_ascii_alphanumeric() || n == '_' {
                        name.push(n);
                        chars.next();
                    } else {
                        break;
                    }
                }
                out.push(name);
                at_variant = false;
            }
            c if !c.is_whitespace() && depth == 0 => at_variant = false,
            _ => {}
        }
    }
    out
}

/// Returns the brace-matched body of `enum enum_name { ... }`.
fn enum_body<'t>(text: &'t str, enum_name: &str) -> Option<&'t str> {
    let needle = format!("enum {enum_name}");
    let mut search = 0usize;
    loop {
        let at = search + text[search..].find(&needle)?;
        let end = at + needle.len();
        let next = text[end..].chars().next();
        if next.is_some_and(|c| c.is_ascii_alphanumeric() || c == '_') {
            search = end;
            continue;
        }
        let open = end + text[end..].find('{')?;
        let mut depth = 0usize;
        for (i, c) in text[open..].char_indices() {
            match c {
                '{' => depth += 1,
                '}' => {
                    depth -= 1;
                    if depth == 0 {
                        return Some(&text[open + 1..open + i]);
                    }
                }
                _ => {}
            }
        }
        return None;
    }
}

/// Returns the brace-matched body of the first function named
/// `fn_name` in `text` (which must already be stripped).
fn fn_body<'t>(text: &'t str, fn_name: &str) -> Option<&'t str> {
    let needle = format!("fn {fn_name}");
    let mut search = 0usize;
    loop {
        let at = search + text[search..].find(&needle)?;
        let end = at + needle.len();
        let next = text[end..].chars().next();
        if next.is_some_and(|c| c.is_ascii_alphanumeric() || c == '_') {
            search = end;
            continue;
        }
        let open = end + text[end..].find('{')?;
        let mut depth = 0usize;
        for (i, c) in text[open..].char_indices() {
            match c {
                '{' => depth += 1,
                '}' => {
                    depth -= 1;
                    if depth == 0 {
                        return Some(&text[open..open + i + 1]);
                    }
                }
                _ => {}
            }
        }
        return None;
    }
}

/// The `frame-coverage` rule: every variant of `enum_name` (parsed from
/// `enum_src`) must appear, qualified (`Enum::Variant`), inside the
/// body of each function in `fns` within `impl_src` — constructed
/// somewhere means matched somewhere, in every direction the frame
/// travels.
pub fn check_enum_fn_coverage(
    file: &str,
    enum_src: &str,
    enum_name: &str,
    impl_src: &str,
    fns: &[&str],
) -> Vec<Finding> {
    let mut out = Vec::new();
    let variants = parse_enum_variants(enum_src, enum_name);
    if variants.is_empty() {
        out.push(Finding {
            rule: "frame-coverage",
            file: file.to_string(),
            detail: format!("enum `{enum_name}` not found (or has no variants)"),
        });
        return out;
    }
    let text = prepared(impl_src);
    for &f in fns {
        let Some(body) = fn_body(&text, f) else {
            out.push(Finding {
                rule: "frame-coverage",
                file: file.to_string(),
                detail: format!("function `{f}` not found while checking `{enum_name}` coverage"),
            });
            continue;
        };
        for v in &variants {
            let needle = format!("{enum_name}::{v}");
            if !body.lines().any(|l| contains_word(l, &needle)) {
                out.push(Finding {
                    rule: "frame-coverage",
                    file: file.to_string(),
                    detail: format!("`{needle}` is not handled in `{f}`"),
                });
            }
        }
    }
    out
}

/// The static assertions the `protocol-constants` rule demands in the
/// white-box engine source, compared whitespace-insensitively. The
/// recovery-window algebra from the sequencer-handover fix is
/// load-bearing: the takeover grace must cover the orphan timeout plus
/// one retry period or re-injected decided values can miss the held
/// stream.
const REQUIRED_CONST_ASSERTS: &[&str] = &[
    "const _: () = assert!(TAKEOVER_GRACE_DELTAS >= ORPHAN_DELTAS + RETRY_DELTAS",
    "const _: () = assert!(ORPHAN_DELTAS > RETRY_DELTAS",
];

/// The `protocol-constants` rule: the white-box engine source must
/// carry a compile-time assertion for each relation in
/// `REQUIRED_CONST_ASSERTS`.
pub fn check_protocol_constants(file: &str, source: &str) -> Vec<Finding> {
    let squeezed: String = prepared(source)
        .chars()
        .filter(|c| !c.is_whitespace())
        .collect();
    let mut out = Vec::new();
    for required in REQUIRED_CONST_ASSERTS {
        let needle: String = required.chars().filter(|c| !c.is_whitespace()).collect();
        if !squeezed.contains(&needle) {
            out.push(Finding {
                rule: "protocol-constants",
                file: file.to_string(),
                detail: format!("missing static assertion `{required}...)`"),
            });
        }
    }
    out
}

/// One hand-maintained sample per [`Message`] variant for the live
/// round-trip check. The completeness of this list is itself checked
/// against the enum source, so a new variant without a sample is a
/// finding, not a silent gap.
fn message_samples() -> Vec<(&'static str, Message)> {
    let value = Value::new(
        ValueId::new(ProcessId::new(3), 77),
        GroupId::new(2),
        Bytes::from_static(b"conformance"),
    );
    let cv = ConsensusValue::Values(vec![value.clone()]);
    let ckpt = CheckpointId {
        marks: vec![(GroupId::new(0), InstanceId::new(10))],
        cursor_group: 1,
        cursor_used: 0,
    };
    vec![
        (
            "Forward",
            Message::Forward {
                ring: RingId::new(1),
                values: vec![value],
                hops: 2,
            },
        ),
        (
            "Phase1A",
            Message::Phase1A {
                ring: RingId::new(1),
                ballot: Ballot::new(4, ProcessId::new(2)),
                from: InstanceId::new(5),
            },
        ),
        (
            "Phase1B",
            Message::Phase1B {
                ring: RingId::new(1),
                ballot: Ballot::new(4, ProcessId::new(2)),
                from: InstanceId::new(5),
                accepted: vec![(
                    InstanceId::new(6),
                    Ballot::new(3, ProcessId::new(1)),
                    cv.clone(),
                )],
                trimmed: InstanceId::new(2),
            },
        ),
        (
            "Phase2",
            Message::Phase2 {
                ring: RingId::new(1),
                ballot: Ballot::new(4, ProcessId::new(2)),
                first: InstanceId::new(7),
                count: 1,
                value: cv.clone(),
                votes: 2,
            },
        ),
        (
            "Decision",
            Message::Decision {
                ring: RingId::new(1),
                first: InstanceId::new(7),
                count: 1,
                value: Some(cv),
                hops: 1,
            },
        ),
        (
            "Retransmit",
            Message::Retransmit {
                ring: RingId::new(0),
                from: InstanceId::new(1),
                to: InstanceId::new(4),
            },
        ),
        (
            "RetransmitReply",
            Message::RetransmitReply {
                ring: RingId::new(0),
                decided: vec![(InstanceId::new(1), 2, ConsensusValue::Skip)],
                trimmed: InstanceId::ZERO,
            },
        ),
        (
            "TrimQuery",
            Message::TrimQuery {
                group: GroupId::new(3),
                seq: 9,
            },
        ),
        (
            "TrimReply",
            Message::TrimReply {
                group: GroupId::new(3),
                seq: 9,
                safe: InstanceId::new(100),
            },
        ),
        (
            "TrimCommand",
            Message::TrimCommand {
                ring: RingId::new(2),
                upto: InstanceId::new(50),
            },
        ),
        ("CheckpointQuery", Message::CheckpointQuery { seq: 1 }),
        (
            "CheckpointInfo",
            Message::CheckpointInfo {
                seq: 1,
                checkpoint: Some(ckpt.clone()),
            },
        ),
        (
            "CheckpointFetch",
            Message::CheckpointFetch {
                seq: 3,
                id: ckpt.clone(),
            },
        ),
        (
            "CheckpointData",
            Message::CheckpointData {
                seq: 3,
                id: ckpt,
                snapshot: Some(Bytes::from_static(b"snapshot")),
            },
        ),
        (
            "Request",
            Message::Request {
                client: ClientId::new(8),
                request: 55,
                groups: vec![GroupId::new(1)],
                payload: Bytes::from_static(b"cmd"),
            },
        ),
        (
            "Response",
            Message::Response {
                client: ClientId::new(8),
                request: 55,
                payload: Bytes::from_static(b"ok"),
            },
        ),
        (
            "Batch",
            Message::Batch(vec![Message::CheckpointQuery { seq: 4 }]),
        ),
        (
            "Engine",
            Message::Engine {
                engine: 1,
                payload: Bytes::from_static(b"engine-frame"),
            },
        ),
    ]
}

/// The `round-trip` rule: every `Message` variant parsed from
/// `event_src` must have a sample in `message_samples` that encodes
/// to exactly `encoded_len` bytes, decodes back equal, and leaves no
/// trailing bytes.
pub fn check_message_round_trip(event_src: &str) -> Vec<Finding> {
    let mut out = Vec::new();
    let samples = message_samples();
    let variants = parse_enum_variants(event_src, "Message");
    for v in &variants {
        if !samples.iter().any(|(name, _)| name == v) {
            out.push(Finding {
                rule: "round-trip",
                file: "crates/multiring-paxos/src/event.rs".into(),
                detail: format!("`Message::{v}` has no round-trip sample in the conformance suite"),
            });
        }
    }
    for (name, msg) in &samples {
        let mut buf = BytesMut::new();
        encode(msg, &mut buf);
        if buf.len() != encoded_len(msg) {
            out.push(Finding {
                rule: "round-trip",
                file: "crates/multiring-paxos/src/codec.rs".into(),
                detail: format!(
                    "`Message::{name}` encodes to {} bytes but encoded_len claims {}",
                    buf.len(),
                    encoded_len(msg)
                ),
            });
            continue;
        }
        let mut frozen = buf.freeze();
        match decode(&mut frozen) {
            Ok(back) if &back == msg && frozen.is_empty() => {}
            Ok(back) if &back == msg => out.push(Finding {
                rule: "round-trip",
                file: "crates/multiring-paxos/src/codec.rs".into(),
                detail: format!(
                    "`Message::{name}` leaves {} trailing byte(s) after decode",
                    frozen.len()
                ),
            }),
            Ok(_) => out.push(Finding {
                rule: "round-trip",
                file: "crates/multiring-paxos/src/codec.rs".into(),
                detail: format!("`Message::{name}` does not decode back to itself"),
            }),
            Err(e) => out.push(Finding {
                rule: "round-trip",
                file: "crates/multiring-paxos/src/codec.rs".into(),
                detail: format!("`Message::{name}` fails to decode: {e}"),
            }),
        }
    }
    out
}

/// Runs the whole wire-conformance suite against the real tree under
/// `repo_root`. Returns the findings and the number of source files
/// inspected.
///
/// # Errors
///
/// Fails when one of the inspected sources cannot be read.
pub fn conformance_check(repo_root: &Path) -> Result<(Vec<Finding>, usize), String> {
    let read = |rel: &str| -> Result<String, String> {
        std::fs::read_to_string(repo_root.join(rel)).map_err(|e| format!("{rel}: {e}"))
    };
    let event_src = read("crates/multiring-paxos/src/event.rs")?;
    let codec_src = read("crates/multiring-paxos/src/codec.rs")?;
    let wbcast_src = read("crates/mrp-amcast/src/wbcast.rs")?;
    let mut findings = Vec::new();
    findings.extend(check_codec_tags(
        "crates/multiring-paxos/src/codec.rs",
        &codec_src,
    ));
    findings.extend(check_codec_tags(
        "crates/mrp-amcast/src/wbcast.rs",
        &wbcast_src,
    ));
    findings.extend(check_enum_fn_coverage(
        "crates/multiring-paxos/src/codec.rs",
        &event_src,
        "Message",
        &codec_src,
        &["encode", "encoded_len", "decode"],
    ));
    findings.extend(check_enum_fn_coverage(
        "crates/multiring-paxos/src/codec.rs",
        &event_src,
        "PersistRecord",
        &codec_src,
        &["encode_record", "record_len", "decode_record"],
    ));
    findings.extend(check_enum_fn_coverage(
        "crates/mrp-amcast/src/wbcast.rs",
        &wbcast_src,
        "WbMessage",
        &wbcast_src,
        &["into_frame", "parse", "on_wb_message"],
    ));
    findings.extend(check_protocol_constants(
        "crates/mrp-amcast/src/wbcast.rs",
        &wbcast_src,
    ));
    findings.extend(check_message_round_trip(&event_src));
    Ok((findings, 3))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn colliding_and_dead_tags_are_flagged() {
        let src = "const TAG_A: u8 = 1;\nconst TAG_B: u8 = 1;\nconst TAG_C: u8 = 2;\n\
                   fn encode() { use_tag(TAG_A); use_tag(TAG_B); use_tag(TAG_C); }\n\
                   fn decode() { use_tag(TAG_A); use_tag(TAG_B); }\n";
        let findings = check_codec_tags("doctored.rs", src);
        assert!(
            findings
                .iter()
                .any(|f| f.detail.contains("collision") && f.detail.contains("TAG_B")),
            "{findings:?}"
        );
        assert!(
            findings
                .iter()
                .any(|f| f.detail.contains("dead tag") && f.detail.contains("TAG_C")),
            "{findings:?}"
        );
        assert_eq!(findings.len(), 2, "{findings:?}");
    }

    #[test]
    fn tag_mentions_inside_tests_do_not_count() {
        let src = "const TAG_A: u8 = 1;\nfn encode() { t(TAG_A); }\n\
                   #[cfg(test)]\nmod tests { fn x() { t(TAG_A); t(TAG_A); } }\n";
        let findings = check_codec_tags("doctored.rs", src);
        assert!(
            findings.iter().any(|f| f.detail.contains("dead tag")),
            "uses inside #[cfg(test)] must not keep a tag alive: {findings:?}"
        );
    }

    #[test]
    fn enum_variants_parse_from_real_shapes() {
        let src = "pub enum Message {\n    Forward { ring: RingId, values: Vec<Value> },\n\
                   \n    Decision {\n        ring: RingId,\n    },\n    Batch(Vec<Message>),\n\
                       Ping,\n}\n";
        assert_eq!(
            parse_enum_variants(src, "Message"),
            vec!["Forward", "Decision", "Batch", "Ping"]
        );
    }

    #[test]
    fn missing_handler_coverage_is_flagged() {
        let enum_src = "enum Wb { A { x: u8 }, B, C(u8) }";
        let impl_src = "fn into_frame(self) { match self { Wb::A { .. } => 1, Wb::B => 2, \
                        Wb::C(_) => 3 } }\n\
                        fn parse(b: u8) { if b == 1 { Wb::A { x: 0 } } else { Wb::B } }\n";
        let findings =
            check_enum_fn_coverage("d.rs", enum_src, "Wb", impl_src, &["into_frame", "parse"]);
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert!(findings[0]
            .detail
            .contains("`Wb::C` is not handled in `parse`"));
    }

    #[test]
    fn missing_function_is_flagged() {
        let findings =
            check_enum_fn_coverage("d.rs", "enum E { V }", "E", "fn other() {}", &["handle"]);
        assert!(
            findings
                .iter()
                .any(|f| f.detail.contains("`handle` not found")),
            "{findings:?}"
        );
    }

    #[test]
    fn missing_const_assert_is_flagged() {
        let with =
            "const _: () = assert!(TAKEOVER_GRACE_DELTAS >= ORPHAN_DELTAS + RETRY_DELTAS);\n\
                    const _: () = assert!(ORPHAN_DELTAS > RETRY_DELTAS);\n";
        assert!(check_protocol_constants("d.rs", with).is_empty());
        let without = "const TAKEOVER_GRACE_DELTAS: u64 = 16;\n";
        let findings = check_protocol_constants("d.rs", without);
        assert_eq!(findings.len(), 2, "{findings:?}");
        assert!(findings[0].rule == "protocol-constants");
    }

    #[test]
    fn unknown_variant_without_sample_is_flagged() {
        let doctored = "pub enum Message { Forward { x: u8 }, Teleport { warp: u64 } }";
        let findings = check_message_round_trip(doctored);
        assert!(
            findings.iter().any(|f| f
                .detail
                .contains("`Message::Teleport` has no round-trip sample")),
            "{findings:?}"
        );
    }

    #[test]
    fn live_codec_round_trips_every_sample() {
        // Against a minimal enum source listing exactly the real
        // variants, the rule reduces to the live encode/decode checks.
        let findings = check_message_round_trip("enum Message { Forward }");
        assert!(findings.is_empty(), "{findings:?}");
    }
}
