//! CI entry point for the sans-io purity lints:
//! `cargo run -p mrp-check --bin lint`.
//!
//! Exits 0 when the engine crates are clean, 1 with `file:line`
//! diagnostics when they are not, and 2 on an operational error (bad
//! allowlist, unreadable tree).

use std::path::Path;
use std::process::ExitCode;

fn main() -> ExitCode {
    // The binary is built from a fixed spot in the workspace; resolve
    // the repo root relative to it so the lint runs correctly from any
    // working directory.
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let root = root.canonicalize().unwrap_or(root);
    match mrp_check::lint_engine_sources(&root) {
        Ok((diags, files)) if diags.is_empty() => {
            println!("lint: {files} engine source files clean");
            ExitCode::SUCCESS
        }
        Ok((diags, files)) => {
            for d in &diags {
                println!("{d}");
            }
            println!(
                "lint: {} violation(s) across {files} files — engines must stay sans-io \
                 (see crates/mrp-check/src/lint.rs for the rules and lint.allow for exemptions)",
                diags.len()
            );
            ExitCode::from(1)
        }
        Err(e) => {
            eprintln!("lint: error: {e}");
            ExitCode::from(2)
        }
    }
}
