//! CI entry point for the static suites:
//! `cargo run -p mrp-check --bin lint`.
//!
//! Runs the sans-io purity lints over the engine crates, then the
//! wire-conformance suite (codec tags, frame coverage, protocol
//! constants, live round-trips). Exits 0 when everything is clean, 1
//! with diagnostics when not, and 2 on an operational error (bad
//! allowlist, unreadable tree).

use std::path::Path;
use std::process::ExitCode;

fn main() -> ExitCode {
    // The binary is built from a fixed spot in the workspace; resolve
    // the repo root relative to it so the lint runs correctly from any
    // working directory.
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let root = root.canonicalize().unwrap_or(root);
    let mut problems = 0usize;

    match mrp_check::lint_engine_sources(&root) {
        Ok((diags, files)) if diags.is_empty() => {
            println!("lint: {files} engine source files sans-io clean");
        }
        Ok((diags, files)) => {
            for d in &diags {
                println!("{d}");
            }
            println!(
                "lint: {} violation(s) across {files} files — engines must stay sans-io \
                 (see crates/mrp-check/src/lint.rs for the rules and lint.allow for exemptions)",
                diags.len()
            );
            problems += diags.len();
        }
        Err(e) => {
            eprintln!("lint: error: {e}");
            return ExitCode::from(2);
        }
    }

    match mrp_check::conformance_check(&root) {
        Ok((findings, files)) if findings.is_empty() => {
            println!("lint: wire conformance clean ({files} files inspected)");
        }
        Ok((findings, _)) => {
            for f in &findings {
                println!("{f}");
            }
            println!(
                "lint: {} wire-conformance finding(s) — codec, frame vocabulary and protocol \
                 constants must stay consistent (see crates/mrp-check/src/conformance.rs)",
                findings.len()
            );
            problems += findings.len();
        }
        Err(e) => {
            eprintln!("lint: error: {e}");
            return ExitCode::from(2);
        }
    }

    if problems == 0 {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(1)
    }
}
