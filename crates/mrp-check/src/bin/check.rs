//! CI entry point for the bounded exploration:
//! `cargo run --release -p mrp-check --bin check -- [--depth N] [--liveness] [--out FILE] [--baseline FILE]`.
//!
//! Explores both engines' three-node mixed-traffic scenario (plus the
//! genuineness deployment and both batching regimes) with fault
//! branching on, twice each: once with deduplication and partial-order
//! reduction enabled, once naive, reporting the state-count reduction.
//! `--liveness` additionally runs lasso-based non-progress detection on
//! the reduced pass (the exploration itself is identical, so the
//! reduction ratio is unaffected; the pass reports how many candidate
//! cycles it examined). Writes a small JSON artifact with the counts
//! when `--out` is given; `--baseline FILE` compares the deterministic
//! counts against a committed artifact and fails on any drift — state
//! counts are exact, so a mismatch means the protocol, the checker or
//! the reduction changed and the baseline must be reviewed and
//! regenerated. Exits non-zero on any invariant violation.

use std::process::ExitCode;

use mrp_amcast::EngineKind;
use mrp_check::{check, CheckerConfig, FaultBudget, Report, Scenario};

struct Run {
    name: String,
    reduced: Report,
    naive: Report,
    depth: usize,
}

fn ratio(naive: &Report, reduced: &Report) -> f64 {
    naive.explored as f64 / reduced.explored.max(1) as f64
}

fn json_escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

fn render_json(runs: &[Run], liveness: bool) -> String {
    let mut out = String::from("{\n  \"runs\": [\n");
    for (i, r) in runs.iter().enumerate() {
        let violation = match &r.reduced.violation {
            Some(v) => format!("\"{}\"", json_escape(&v.oracle)),
            None => "null".into(),
        };
        out.push_str(&format!(
            "    {{\"scenario\": \"{}\", \"depth\": {}, \"explored\": {}, \
             \"pruned_dedup\": {}, \"pruned_sleep\": {}, \"quiescent\": {}, \
             \"depth_cutoffs\": {}, \"capped\": {}, \"naive_explored\": {}, \
             \"reduction\": {:.1}, \"liveness\": {}, \"lasso_candidates\": {}, \
             \"violation\": {}}}{}\n",
            json_escape(&r.name),
            r.depth,
            r.reduced.explored,
            r.reduced.pruned_dedup,
            r.reduced.pruned_sleep,
            r.reduced.quiescent,
            r.reduced.depth_cutoffs,
            r.reduced.capped,
            r.naive.explored,
            ratio(&r.naive, &r.reduced),
            liveness,
            r.reduced.lasso_candidates,
            violation,
            if i + 1 < runs.len() { "," } else { "" },
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

/// Extracts `"field": value` for the run whose `"scenario"` matches, by
/// plain text scanning — the artifact format is ours and line-oriented,
/// so a JSON parser dependency is not warranted.
fn baseline_field(baseline: &str, scenario: &str, field: &str) -> Option<String> {
    let line = baseline
        .lines()
        .find(|l| l.contains(&format!("\"scenario\": \"{scenario}\"")))?;
    let tail = line.split(&format!("\"{field}\": ")).nth(1)?;
    let value: String = tail
        .chars()
        .take_while(|c| !matches!(c, ',' | '}' | '\n'))
        .collect();
    Some(value.trim().to_string())
}

/// Compares the deterministic state counts of `runs` against a
/// committed baseline artifact; returns the list of drifts.
fn diff_baseline(baseline: &str, runs: &[Run]) -> Vec<String> {
    let mut drifts = Vec::new();
    for r in runs {
        for (field, actual) in [
            ("depth", r.depth.to_string()),
            ("explored", r.reduced.explored.to_string()),
            ("naive_explored", r.naive.explored.to_string()),
        ] {
            match baseline_field(baseline, &r.name, field) {
                None => {
                    drifts.push(format!("{}: `{field}` missing from baseline", r.name));
                    break;
                }
                Some(expected) if expected != actual => {
                    drifts.push(format!(
                        "{}: `{field}` is {actual}, baseline says {expected}",
                        r.name
                    ));
                }
                Some(_) => {}
            }
        }
    }
    drifts
}

fn main() -> ExitCode {
    let mut depth = 5usize;
    let mut out_path: Option<String> = None;
    let mut baseline_path: Option<String> = None;
    let mut liveness = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--depth" => {
                depth = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage("--depth needs a number"));
            }
            "--out" => {
                out_path = Some(args.next().unwrap_or_else(|| usage("--out needs a path")));
            }
            "--baseline" => {
                baseline_path = Some(
                    args.next()
                        .unwrap_or_else(|| usage("--baseline needs a path")),
                );
            }
            "--liveness" => liveness = true,
            other => usage(&format!("unknown argument `{other}`")),
        }
    }

    let faults = FaultBudget {
        drops: 1,
        dups: 1,
        crashes: 1,
        checkpoints: 1,
    };
    let reduced_cfg = CheckerConfig {
        depth,
        max_timer_fires: 1,
        faults,
        dedup: true,
        por: true,
        max_states: 2_000_000,
        liveness,
    };
    // The naive cap only exists so a future depth bump cannot hang CI;
    // at the default depth the naive DFS completes well under it, so
    // the reported reduction is exact rather than a lower bound. The
    // naive pass stays safety-only: lasso detection does not change
    // which states are explored, so running it once is enough.
    let naive_cfg = CheckerConfig {
        dedup: false,
        por: false,
        max_states: 3_000_000,
        liveness: false,
        ..reduced_cfg
    };

    let scenarios: Vec<Scenario> = vec![
        Scenario::mixed(EngineKind::MultiRing),
        Scenario::mixed(EngineKind::Wbcast),
        Scenario::genuine_pairs(),
        Scenario::batched(EngineKind::Wbcast, false),
        Scenario::batched(EngineKind::Wbcast, true),
    ];
    let mut runs = Vec::new();
    let mut failed = false;
    for scenario in &scenarios {
        let reduced = check(scenario, reduced_cfg);
        let naive = check(scenario, naive_cfg);
        let r = ratio(&naive, &reduced);
        println!(
            "{:<18} depth {}: explored {:>8} (dedup-pruned {}, sleep-pruned {}, quiescent {}, \
             cutoffs {}){}{} | naive explored {:>8}{} | reduction {:.1}x",
            scenario.name,
            depth,
            reduced.explored,
            reduced.pruned_dedup,
            reduced.pruned_sleep,
            reduced.quiescent,
            reduced.depth_cutoffs,
            if liveness {
                format!(", lasso candidates {}", reduced.lasso_candidates)
            } else {
                String::new()
            },
            if reduced.capped { " CAPPED" } else { "" },
            naive.explored,
            if naive.capped { " (capped)" } else { "" },
            r,
        );
        if let Some(v) = &reduced.violation {
            println!("VIOLATION in {}:\n{v}", scenario.name);
            failed = true;
        }
        if let Some(v) = &naive.violation {
            println!("VIOLATION (naive run) in {}:\n{v}", scenario.name);
            failed = true;
        }
        // The headline engine scenarios must keep a >10x reduction over
        // the naive DFS (only asserted when the naive run completed, so
        // the ratio is exact). The ratio grows with depth, so the floor
        // only applies from the default depth up — a shallower manual
        // run legitimately reduces less.
        if scenario.name.starts_with("mixed-") && depth >= 5 && !naive.capped && r < 10.0 {
            println!(
                "REGRESSION: {} reduction {r:.1}x fell below the 10x floor",
                scenario.name
            );
            failed = true;
        }
        runs.push(Run {
            name: scenario.name.clone(),
            reduced,
            naive,
            depth,
        });
    }

    if let Some(path) = &baseline_path {
        match std::fs::read_to_string(path) {
            Ok(baseline) => {
                let drifts = diff_baseline(&baseline, &runs);
                if drifts.is_empty() {
                    println!("state counts match the committed baseline ({path})");
                } else {
                    for d in &drifts {
                        println!("BASELINE DRIFT: {d}");
                    }
                    println!(
                        "state counts drifted from {path}; if the change is intended, \
                         regenerate it with --out and commit the diff"
                    );
                    failed = true;
                }
            }
            Err(e) => {
                eprintln!("check: cannot read baseline {path}: {e}");
                return ExitCode::from(2);
            }
        }
    }
    if let Some(path) = out_path {
        let json = render_json(&runs, liveness);
        if let Err(e) = std::fs::write(&path, json) {
            eprintln!("check: cannot write {path}: {e}");
            return ExitCode::from(2);
        }
        println!("state counts written to {path}");
    }
    if failed {
        ExitCode::from(1)
    } else {
        ExitCode::SUCCESS
    }
}

fn usage(err: &str) -> ! {
    eprintln!("check: {err}\nusage: check [--depth N] [--liveness] [--out FILE] [--baseline FILE]");
    std::process::exit(2)
}
