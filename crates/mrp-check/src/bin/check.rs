//! CI entry point for the bounded exploration:
//! `cargo run --release -p mrp-check --bin check -- [--depth N] [--out FILE]`.
//!
//! Explores both engines' three-node mixed-traffic scenario (plus the
//! genuineness deployment) with fault branching on, twice each: once
//! with deduplication and partial-order reduction enabled, once naive,
//! reporting the state-count reduction. Writes a small JSON artifact
//! with the counts when `--out` is given. Exits non-zero on any
//! invariant violation.

use std::process::ExitCode;

use mrp_amcast::EngineKind;
use mrp_check::{check, CheckerConfig, FaultBudget, Report, Scenario};

struct Run {
    name: String,
    reduced: Report,
    naive: Report,
    depth: usize,
}

fn ratio(naive: &Report, reduced: &Report) -> f64 {
    naive.explored as f64 / reduced.explored.max(1) as f64
}

fn json_escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

fn render_json(runs: &[Run]) -> String {
    let mut out = String::from("{\n  \"runs\": [\n");
    for (i, r) in runs.iter().enumerate() {
        let violation = match &r.reduced.violation {
            Some(v) => format!("\"{}\"", json_escape(&v.oracle)),
            None => "null".into(),
        };
        out.push_str(&format!(
            "    {{\"scenario\": \"{}\", \"depth\": {}, \"explored\": {}, \
             \"pruned_dedup\": {}, \"pruned_sleep\": {}, \"quiescent\": {}, \
             \"depth_cutoffs\": {}, \"capped\": {}, \"naive_explored\": {}, \
             \"reduction\": {:.1}, \"violation\": {}}}{}\n",
            json_escape(&r.name),
            r.depth,
            r.reduced.explored,
            r.reduced.pruned_dedup,
            r.reduced.pruned_sleep,
            r.reduced.quiescent,
            r.reduced.depth_cutoffs,
            r.reduced.capped,
            r.naive.explored,
            ratio(&r.naive, &r.reduced),
            violation,
            if i + 1 < runs.len() { "," } else { "" },
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

fn main() -> ExitCode {
    let mut depth = 5usize;
    let mut out_path: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--depth" => {
                depth = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage("--depth needs a number"));
            }
            "--out" => {
                out_path = Some(args.next().unwrap_or_else(|| usage("--out needs a path")));
            }
            other => usage(&format!("unknown argument `{other}`")),
        }
    }

    let faults = FaultBudget {
        drops: 1,
        dups: 1,
        crashes: 1,
        checkpoints: 1,
    };
    let reduced_cfg = CheckerConfig {
        depth,
        max_timer_fires: 1,
        faults,
        dedup: true,
        por: true,
        max_states: 2_000_000,
    };
    // The naive cap only exists so a future depth bump cannot hang CI;
    // at the default depth the naive DFS completes well under it, so
    // the reported reduction is exact rather than a lower bound.
    let naive_cfg = CheckerConfig {
        dedup: false,
        por: false,
        max_states: 3_000_000,
        ..reduced_cfg
    };

    let scenarios: Vec<Scenario> = vec![
        Scenario::mixed(EngineKind::MultiRing),
        Scenario::mixed(EngineKind::Wbcast),
        Scenario::genuine_pairs(),
    ];
    let mut runs = Vec::new();
    let mut failed = false;
    for scenario in &scenarios {
        let reduced = check(scenario, reduced_cfg);
        let naive = check(scenario, naive_cfg);
        let r = ratio(&naive, &reduced);
        println!(
            "{:<18} depth {}: explored {:>8} (dedup-pruned {}, sleep-pruned {}, quiescent {}, \
             cutoffs {}){} | naive explored {:>8}{} | reduction {:.1}x",
            scenario.name,
            depth,
            reduced.explored,
            reduced.pruned_dedup,
            reduced.pruned_sleep,
            reduced.quiescent,
            reduced.depth_cutoffs,
            if reduced.capped { " CAPPED" } else { "" },
            naive.explored,
            if naive.capped { " (capped)" } else { "" },
            r,
        );
        if let Some(v) = &reduced.violation {
            println!("VIOLATION in {}:\n{v}", scenario.name);
            failed = true;
        }
        if let Some(v) = &naive.violation {
            println!("VIOLATION (naive run) in {}:\n{v}", scenario.name);
            failed = true;
        }
        // The headline engine scenarios must keep a >10x reduction over
        // the naive DFS (only asserted when the naive run completed, so
        // the ratio is exact). The ratio grows with depth, so the floor
        // only applies from the default depth up — a shallower manual
        // run legitimately reduces less.
        if scenario.name.starts_with("mixed-") && depth >= 5 && !naive.capped && r < 10.0 {
            println!(
                "REGRESSION: {} reduction {r:.1}x fell below the 10x floor",
                scenario.name
            );
            failed = true;
        }
        runs.push(Run {
            name: scenario.name.clone(),
            reduced,
            naive,
            depth,
        });
    }

    if let Some(path) = out_path {
        let json = render_json(&runs);
        if let Err(e) = std::fs::write(&path, json) {
            eprintln!("check: cannot write {path}: {e}");
            return ExitCode::from(2);
        }
        println!("state counts written to {path}");
    }
    if failed {
        ExitCode::from(1)
    } else {
        ExitCode::SUCCESS
    }
}

fn usage(err: &str) -> ! {
    eprintln!("check: {err}\nusage: check [--depth N] [--out FILE]");
    std::process::exit(2)
}
